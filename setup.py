"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` falls back to the legacy ``setup.py develop`` path
(``--no-use-pep517``) when PEP 660 builds are unavailable offline; all
real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
