"""Summary statistics used across the experiment suite.

Pure functions over number sequences: throughput series helpers, the
coefficient of variation (the paper's smoothness metric for TFRC vs
TCP), the Jain fairness index (TCP-friendliness experiments) and plain
percentiles.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def throughput_series(
    events: Sequence[Tuple[float, int]],
    bin_width: float,
    end: float,
) -> List[float]:
    """Bucket delivery events into a bytes/s time series.

    Parameters
    ----------
    events: iterable of ``(time, size_bytes)``.
    bin_width: bucket width in seconds.
    end: series horizon; buckets cover ``[0, end)``.
    """
    if bin_width <= 0 or end <= 0:
        raise ValueError("bin_width and end must be positive")
    n_bins = int(math.ceil(end / bin_width))
    bins = [0.0] * n_bins
    for t, size in events:
        if 0 <= t < end:
            # t / bin_width can round up to n_bins for t just below end
            # (e.g. t=11.399999999999999, bin_width=0.3, end=11.4)
            bins[min(int(t / bin_width), n_bins - 1)] += size
    return [b / bin_width for b in bins]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(values) / len(values) if values else 0.0


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation; 0.0 for fewer than two values."""
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def coefficient_of_variation(values: Sequence[float]) -> float:
    """``stddev / mean`` — the smoothness metric (lower = smoother).

    Returns 0.0 when the mean is zero (an all-idle series is "smooth").
    """
    mu = mean(values)
    if mu == 0:
        return 0.0
    return stddev(values) / mu


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(Σx)² / (n · Σx²)`` in ``(0, 1]``.

    1.0 means perfectly equal allocations; ``1/n`` means one flow takes
    everything.
    """
    if not values:
        raise ValueError("need at least one allocation")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) with linear interpolation."""
    if not values:
        raise ValueError("need at least one value")
    if not 0 <= q <= 100:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    interpolated = ordered[lo] * (1 - frac) + ordered[hi] * frac
    # the interpolation can land 1 ULP outside [ordered[lo], ordered[hi]]
    # (e.g. values=[7.135396919844353e-221]*2, q=4.5); clamp it back
    return min(max(interpolated, ordered[lo]), ordered[hi])


def normalized_throughput(flow_rate: float, fair_share: float) -> float:
    """Ratio of a flow's rate to its fair share (friendliness metric)."""
    if fair_share <= 0:
        raise ValueError("fair share must be positive")
    return flow_rate / fair_share
