"""Per-flow delivery recording.

Receivers call :meth:`FlowRecorder.record` for every delivered data
packet; experiments then read goodput, throughput time series and
latency distributions from the recorder.

Delivery events arrive in simulation-time order, and the recorder
exploits that: times, sizes, latencies and the exact integer byte
prefix-sum live in flat :mod:`array` columns (``'d'`` doubles /
``'q'`` 64-bit ints) instead of per-packet tuples, so the hot
``record`` path appends scalars into contiguous buffers — no per-event
object allocation, a fraction of the memory — and :meth:`mean_rate`
answers any ``(start, end]`` window with two
:func:`bisect.bisect_right` calls over the time column plus one
prefix-sum difference; byte totals are integer sums, so the windowed
total is exactly equal to a scan's.  Out-of-order recording (only seen
from hand-built tests) is detected on append and falls back to the
scan path.  The historical ``events`` / ``latencies`` list views are
materialized on demand.
"""

from __future__ import annotations

import math
from array import array
from bisect import bisect_right
from typing import List, Optional, Tuple

from repro.sim.packet import Packet


class FlowRecorder:
    """Accumulates delivery events ``(time, bytes, latency)`` of one flow."""

    __slots__ = (
        "name",
        "delivered_bytes",
        "delivered_packets",
        "first_time",
        "last_time",
        "_times",
        "_sizes",
        "_lats",
        "_cum_bytes",
        "_time_ordered",
    )

    def __init__(self, name: str = ""):
        self.name = name
        self.delivered_bytes = 0
        self.delivered_packets = 0
        self.first_time: Optional[float] = None
        self.last_time: Optional[float] = None
        self._times = array("d")
        self._sizes = array("q")
        self._lats = array("d")
        self._cum_bytes = array("q", (0,))  # _cum_bytes[i] = bytes of events[:i]
        self._time_ordered = True

    def record(self, now: float, packet: Packet) -> None:
        """Record the delivery of ``packet`` at time ``now``."""
        size = packet.size
        self._times.append(now)
        self._sizes.append(size)
        self._lats.append(now - packet.created_at)
        self.delivered_bytes += size
        self.delivered_packets += 1
        if self.first_time is None:
            self.first_time = now
        elif now < self.last_time:  # type: ignore[operator]
            self._time_ordered = False
        self.last_time = now
        self._cum_bytes.append(self.delivered_bytes)

    def record_bytes(self, now: float, nbytes: int, latency: float = 0.0) -> None:
        """Record a raw delivery (used by app-level reassembly)."""
        self._times.append(now)
        self._sizes.append(nbytes)
        self._lats.append(latency)
        self.delivered_bytes += nbytes
        self.delivered_packets += 1
        if self.first_time is None:
            self.first_time = now
        elif now < self.last_time:  # type: ignore[operator]
            self._time_ordered = False
        self.last_time = now
        self._cum_bytes.append(self.delivered_bytes)

    # ------------------------------------------------------------------
    @property
    def events(self) -> List[Tuple[float, int]]:
        """``(time, bytes)`` per delivery — materialized view (O(n))."""
        return list(zip(self._times, self._sizes))

    @property
    def latencies(self) -> List[float]:
        """Per-delivery latency — materialized view (O(n))."""
        return list(self._lats)

    # ------------------------------------------------------------------
    def mean_rate(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Mean delivery rate in **bytes/s** over the window ``(start, end]``.

        The half-open window gives clean warmup semantics: an event at
        exactly ``start`` belongs to the warmup, not the measurement.
        ``end`` defaults to the last recorded event time.

        O(log n): two bisects over the time column plus one prefix-sum
        difference (events are byte-integers, so this is exactly the
        windowed sum).
        """
        times = self._times
        if not times:
            return 0.0
        if end is None:
            end = times[-1]
        duration = end - start
        if duration <= 0:
            return 0.0
        if self._time_ordered:
            lo = bisect_right(times, start)
            hi = bisect_right(times, end)
            total = self._cum_bytes[hi] - self._cum_bytes[lo]
        else:  # out-of-order recording: exact scan fallback
            total = sum(
                size
                for t, size in zip(times, self._sizes)
                if start < t <= end
            )
        return total / duration

    def mean_rate_bps(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Mean delivery rate in bits/s (convenience)."""
        return 8.0 * self.mean_rate(start, end)

    def series(self, bin_width: float, end: Optional[float] = None) -> List[float]:
        """Throughput per ``bin_width`` bucket, in bytes/s.

        Returns one value per bucket from t=0 to ``end`` (default: last
        event).  Empty buckets yield 0.0.

        One pass over the event columns with a single multiply per
        event (``1 / bin_width`` is precomputed); the two boundary
        comparisons repair the rare half-ulp cases where the rounded
        multiply lands on the wrong side of a bucket edge, so bucketing
        matches ``floor(t / bin_width)`` against the representable bin
        edges ``k * bin_width``.
        """
        if bin_width <= 0:
            raise ValueError("bin width must be positive")
        if not math.isfinite(bin_width):
            raise ValueError("bin width must be finite")
        times = self._times
        if not times:
            return []
        if end is None:
            end = times[-1]
        n_bins = max(1, math.ceil(end / bin_width))
        bins = [0.0] * n_bins
        inv_width = 1.0 / bin_width
        for t, size in zip(times, self._sizes):
            idx = int(t * inv_width)
            if t < idx * bin_width:
                idx -= 1
            elif t >= (idx + 1) * bin_width:
                idx += 1
            if idx < n_bins:
                bins[idx] += size
        return [b / bin_width for b in bins]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlowRecorder({self.name!r}, {self.delivered_packets} pkts, "
            f"{self.delivered_bytes} B)"
        )
