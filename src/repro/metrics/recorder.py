"""Per-flow delivery recording.

Receivers call :meth:`FlowRecorder.record` for every delivered data
packet; experiments then read goodput, throughput time series and
latency distributions from the recorder.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.sim.packet import Packet


class FlowRecorder:
    """Accumulates delivery events ``(time, bytes, latency)`` of one flow."""

    def __init__(self, name: str = ""):
        self.name = name
        self.events: List[Tuple[float, int]] = []
        self.latencies: List[float] = []
        self.delivered_bytes = 0
        self.delivered_packets = 0
        self.first_time: Optional[float] = None
        self.last_time: Optional[float] = None

    def record(self, now: float, packet: Packet) -> None:
        """Record the delivery of ``packet`` at time ``now``."""
        self.events.append((now, packet.size))
        self.latencies.append(now - packet.created_at)
        self.delivered_bytes += packet.size
        self.delivered_packets += 1
        if self.first_time is None:
            self.first_time = now
        self.last_time = now

    def record_bytes(self, now: float, nbytes: int, latency: float = 0.0) -> None:
        """Record a raw delivery (used by app-level reassembly)."""
        self.events.append((now, nbytes))
        self.latencies.append(latency)
        self.delivered_bytes += nbytes
        self.delivered_packets += 1
        if self.first_time is None:
            self.first_time = now
        self.last_time = now

    # ------------------------------------------------------------------
    def mean_rate(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Mean delivery rate in **bytes/s** over the window ``(start, end]``.

        The half-open window gives clean warmup semantics: an event at
        exactly ``start`` belongs to the warmup, not the measurement.
        ``end`` defaults to the last recorded event time.
        """
        if not self.events:
            return 0.0
        if end is None:
            end = self.events[-1][0]
        duration = end - start
        if duration <= 0:
            return 0.0
        total = sum(size for t, size in self.events if start < t <= end)
        return total / duration

    def mean_rate_bps(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Mean delivery rate in bits/s (convenience)."""
        return 8.0 * self.mean_rate(start, end)

    def series(self, bin_width: float, end: Optional[float] = None) -> List[float]:
        """Throughput per ``bin_width`` bucket, in bytes/s.

        Returns one value per bucket from t=0 to ``end`` (default: last
        event).  Empty buckets yield 0.0.
        """
        if bin_width <= 0:
            raise ValueError("bin width must be positive")
        if not self.events:
            return []
        if end is None:
            end = self.events[-1][0]
        n_bins = max(1, math.ceil(end / bin_width))
        bins = [0.0] * n_bins
        for t, size in self.events:
            idx = int(t / bin_width)
            if idx < n_bins:
                bins[idx] += size
        return [b / bin_width for b in bins]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlowRecorder({self.name!r}, {self.delivered_packets} pkts, "
            f"{self.delivered_bytes} B)"
        )
