"""Per-flow delivery recording.

Receivers call :meth:`FlowRecorder.record` for every delivered data
packet; experiments then read goodput, throughput time series and
latency distributions from the recorder.

Delivery events arrive in simulation-time order, and the recorder
exploits that: alongside ``events`` it maintains an exact integer byte
prefix-sum, so :meth:`mean_rate` answers any ``(start, end]`` window
with two :func:`bisect.bisect_right` calls over ``events`` itself
(probing with ``(t, inf)`` keys, so only times are compared) instead of
a full scan; byte totals are integer sums, so the windowed total is
exactly equal to the scan's.  Out-of-order recording (only seen from
hand-built tests) is detected on append and falls back to the scan
path.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import List, Optional, Tuple

from repro.sim.packet import Packet

_INF = float("inf")


class FlowRecorder:
    """Accumulates delivery events ``(time, bytes, latency)`` of one flow."""

    def __init__(self, name: str = ""):
        self.name = name
        self.events: List[Tuple[float, int]] = []
        self.latencies: List[float] = []
        self.delivered_bytes = 0
        self.delivered_packets = 0
        self.first_time: Optional[float] = None
        self.last_time: Optional[float] = None
        self._cum_bytes: List[int] = [0]  # _cum_bytes[i] = bytes of events[:i]
        self._time_ordered = True

    def record(self, now: float, packet: Packet) -> None:
        """Record the delivery of ``packet`` at time ``now``."""
        size = packet.size
        self.events.append((now, size))
        self.latencies.append(now - packet.created_at)
        self.delivered_bytes += size
        self.delivered_packets += 1
        if self.first_time is None:
            self.first_time = now
        elif now < self.last_time:  # type: ignore[operator]
            self._time_ordered = False
        self.last_time = now
        self._cum_bytes.append(self.delivered_bytes)

    def record_bytes(self, now: float, nbytes: int, latency: float = 0.0) -> None:
        """Record a raw delivery (used by app-level reassembly)."""
        self.events.append((now, nbytes))
        self.latencies.append(latency)
        self.delivered_bytes += nbytes
        self.delivered_packets += 1
        if self.first_time is None:
            self.first_time = now
        elif now < self.last_time:  # type: ignore[operator]
            self._time_ordered = False
        self.last_time = now
        self._cum_bytes.append(self.delivered_bytes)

    # ------------------------------------------------------------------
    def mean_rate(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Mean delivery rate in **bytes/s** over the window ``(start, end]``.

        The half-open window gives clean warmup semantics: an event at
        exactly ``start`` belongs to the warmup, not the measurement.
        ``end`` defaults to the last recorded event time.

        O(log n): two bisects over the event list plus one prefix-sum
        difference (events are byte-integers, so this is exactly the
        windowed sum).
        """
        if not self.events:
            return 0.0
        if end is None:
            end = self.events[-1][0]
        duration = end - start
        if duration <= 0:
            return 0.0
        if self._time_ordered:
            # probe with (t, inf): sizes are finite, so the comparison
            # never goes past the time element — no parallel time array
            events = self.events
            inf = _INF
            lo = bisect_right(events, (start, inf))
            hi = bisect_right(events, (end, inf))
            total = self._cum_bytes[hi] - self._cum_bytes[lo]
        else:  # out-of-order recording: exact scan fallback
            total = sum(size for t, size in self.events if start < t <= end)
        return total / duration

    def mean_rate_bps(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Mean delivery rate in bits/s (convenience)."""
        return 8.0 * self.mean_rate(start, end)

    def series(self, bin_width: float, end: Optional[float] = None) -> List[float]:
        """Throughput per ``bin_width`` bucket, in bytes/s.

        Returns one value per bucket from t=0 to ``end`` (default: last
        event).  Empty buckets yield 0.0.

        One pass over the events with a single multiply per event
        (``1 / bin_width`` is precomputed); the two boundary
        comparisons repair the rare half-ulp cases where the rounded
        multiply lands on the wrong side of a bucket edge, so bucketing
        matches ``floor(t / bin_width)`` against the representable bin
        edges ``k * bin_width``.
        """
        if bin_width <= 0:
            raise ValueError("bin width must be positive")
        if not math.isfinite(bin_width):
            raise ValueError("bin width must be finite")
        if not self.events:
            return []
        if end is None:
            end = self.events[-1][0]
        n_bins = max(1, math.ceil(end / bin_width))
        bins = [0.0] * n_bins
        inv_width = 1.0 / bin_width
        for t, size in self.events:
            idx = int(t * inv_width)
            if t < idx * bin_width:
                idx -= 1
            elif t >= (idx + 1) * bin_width:
                idx += 1
            if idx < n_bins:
                bins[idx] += size
        return [b / bin_width for b in bins]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlowRecorder({self.name!r}, {self.delivered_packets} pkts, "
            f"{self.delivered_bytes} B)"
        )
