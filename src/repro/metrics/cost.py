"""Deterministic processing/memory cost accounting.

The paper's QTPlight claim is about the *asymptotic per-packet work*
done by a resource-limited receiver: the RFC 3448 receiver maintains the
loss-event history and recomputes the weighted average loss interval,
while the QTPlight receiver only updates a SACK interval set.

Wall-clock timing of a Python model would mostly measure interpreter
overhead, so components charge *abstract operations* and *resident
bytes* to a :class:`CostMeter`; the experiment then compares meters.
Charged constants approximate the work a C implementation would do
(one op ≈ one word-sized update or comparison), and the same code paths
are also wall-clock benchmarked (``benchmarks/test_t3_receiver_load.py``)
to confirm the ordering.
"""

from __future__ import annotations


class CostMeter:
    """Accumulates abstract operation counts and resident-memory bytes.

    Attributes
    ----------
    ops: total charged operations.
    events: number of charge() calls (≈ per-packet activations).
    resident_bytes: currently allocated model bytes.
    peak_bytes: high-water mark of ``resident_bytes``.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.ops = 0
        self.events = 0
        self.resident_bytes = 0
        self.peak_bytes = 0

    # -- CPU --------------------------------------------------------------
    def charge(self, ops: int = 1) -> None:
        """Charge ``ops`` abstract operations."""
        self.ops += ops
        self.events += 1

    def ops_per_event(self) -> float:
        """Average operations per activation (0.0 before any)."""
        return self.ops / self.events if self.events else 0.0

    # -- memory -----------------------------------------------------------
    def alloc(self, nbytes: int) -> None:
        """Account an allocation of model state."""
        self.resident_bytes += nbytes
        if self.resident_bytes > self.peak_bytes:
            self.peak_bytes = self.resident_bytes

    def free(self, nbytes: int) -> None:
        """Account a release of model state (floored at zero)."""
        self.resident_bytes = max(0, self.resident_bytes - nbytes)

    def set_resident(self, nbytes: int) -> None:
        """Set the resident size directly (for size-recomputed structures)."""
        self.resident_bytes = nbytes
        if nbytes > self.peak_bytes:
            self.peak_bytes = nbytes

    def reset(self) -> None:
        """Zero all counters."""
        self.ops = 0
        self.events = 0
        self.resident_bytes = 0
        self.peak_bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CostMeter({self.name!r}, ops={self.ops}, events={self.events}, "
            f"peak={self.peak_bytes}B)"
        )


class NullMeter(CostMeter):
    """A meter that ignores charges (default when accounting is off)."""

    def charge(self, ops: int = 1) -> None:  # noqa: D102 - see base
        pass

    def alloc(self, nbytes: int) -> None:  # noqa: D102 - see base
        pass

    def free(self, nbytes: int) -> None:  # noqa: D102 - see base
        pass

    def set_resident(self, nbytes: int) -> None:  # noqa: D102 - see base
        pass
