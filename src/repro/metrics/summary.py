"""One-call flow summaries for experiments and examples.

:func:`summarize_flow` condenses a recorder (and optional cost meter)
into the handful of numbers the paper's evaluation tables report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.metrics.cost import CostMeter
from repro.metrics.recorder import FlowRecorder
from repro.metrics.stats import coefficient_of_variation, percentile


@dataclass(frozen=True)
class FlowSummary:
    """Headline metrics of one flow over a measurement window."""

    name: str
    mean_rate_bps: float
    smoothness_cov: float
    delivered_packets: int
    delivered_bytes: int
    mean_latency: float
    p95_latency: float
    rx_ops_per_packet: float
    rx_peak_bytes: int

    def describe(self) -> str:
        """One line for logs: rate, smoothness, latency."""
        return (
            f"{self.name}: {self.mean_rate_bps / 1e6:.2f} Mbit/s "
            f"(CoV {self.smoothness_cov:.3f}), "
            f"lat p95 {self.p95_latency * 1e3:.1f} ms, "
            f"{self.delivered_packets} pkts"
        )


def summarize_flow(
    recorder: FlowRecorder,
    warmup: float,
    end: float,
    bin_width: float = 0.5,
    meter: Optional[CostMeter] = None,
) -> FlowSummary:
    """Summarize one flow over ``(warmup, end]``.

    Parameters
    ----------
    recorder: the flow's delivery recorder.
    warmup: seconds excluded from the front of the run.
    end: end of the measurement window.
    bin_width: bucket size for the smoothness (CoV) series.
    meter: optional receiver cost meter for the load columns.
    """
    if end <= warmup:
        raise ValueError("end must be after warmup")
    series = recorder.series(bin_width, end=end)
    steady = series[int(warmup / bin_width):]
    # events/latencies are O(n) materialized views: take them once and
    # fold the window in a single pass
    events = recorder.events
    latencies = recorder.latencies
    window_latencies = [
        lat for (t, _), lat in zip(events, latencies) if warmup < t <= end
    ]
    packets = 0
    nbytes = 0
    for t, size in events:
        if warmup < t <= end:
            packets += 1
            nbytes += size
    return FlowSummary(
        name=recorder.name,
        mean_rate_bps=recorder.mean_rate_bps(warmup, end),
        smoothness_cov=coefficient_of_variation(steady),
        delivered_packets=packets,
        delivered_bytes=nbytes,
        mean_latency=(
            sum(window_latencies) / len(window_latencies)
            if window_latencies
            else 0.0
        ),
        p95_latency=percentile(window_latencies, 95) if window_latencies else 0.0,
        rx_ops_per_packet=(
            meter.ops / max(1, packets) if meter is not None else 0.0
        ),
        rx_peak_bytes=meter.peak_bytes if meter is not None else 0,
    )
