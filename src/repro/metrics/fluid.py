"""Summaries of fluid background-traffic sources (hybrid fidelity).

A hybrid scenario reports what its modeled background did in aggregate
— bytes offered, served, dropped, and the utilization/loss figures
packet-level runs derive from queue counters.  One frozen record per
run keeps the numbers sweepable like every other metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class BackgroundSummary:
    """Aggregate over every :class:`~repro.fluid.source.FluidSource`."""

    sources: int
    offered_bytes: float
    served_bytes: float
    dropped_bytes: float
    backlog_bytes: float
    pending_bytes: float
    peak_backlog_bytes: float
    epochs: int

    @property
    def loss_ratio(self) -> float:
        """Fraction of offered background bytes dropped (0.0 when idle)."""
        if self.offered_bytes <= 0:
            return 0.0
        return self.dropped_bytes / self.offered_bytes

    def served_rate_bps(self, duration: float) -> float:
        """Mean background throughput over ``duration`` seconds."""
        if duration <= 0:
            return 0.0
        return self.served_bytes * 8.0 / duration


def background_summary(sources: Iterable) -> BackgroundSummary:
    """Fold FluidSources (e.g. ``built.fluid_sources.values()``) into one
    record; an empty iterable yields an all-zero summary, so packet-level
    runs of a hybrid scenario report the same metric contract."""
    n = 0
    offered = served = dropped = backlog = pending = peak = 0.0
    epochs = 0
    for src in sources:
        n += 1
        offered += src.offered_bytes
        served += src.served_bytes
        dropped += src.dropped_bytes
        backlog += src.backlog_bytes
        pending += src.pending_bytes
        peak = max(peak, src.peak_backlog_bytes)
        epochs += src.epochs
    return BackgroundSummary(
        sources=n,
        offered_bytes=offered,
        served_bytes=served,
        dropped_bytes=dropped,
        backlog_bytes=backlog,
        pending_bytes=pending,
        peak_backlog_bytes=peak,
        epochs=epochs,
    )
