"""Flow-completion-time records and summaries (PR 6).

Finite flows (``FlowSpec.size_bytes``) end by delivering their byte
budget; the sender stamps ``completed_at`` when they do.  A
:class:`FlowCompletion` freezes one such lifecycle and
:func:`fct_summary` distills a population of them into the scalar
metrics scenario results report (mean/p50/p95/max completion time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.metrics.stats import percentile


@dataclass(frozen=True)
class FlowCompletion:
    """One finished finite flow: identity, schedule and byte budget."""

    flow_id: str
    start: float
    completed_at: float
    size_bytes: int

    @property
    def duration(self) -> float:
        """Flow completion time (seconds from start to final delivery)."""
        return self.completed_at - self.start

    @property
    def goodput_bps(self) -> float:
        """Budget bytes over the completion time, in bits/s."""
        d = self.duration
        return self.size_bytes * 8.0 / d if d > 0 else 0.0


@dataclass(frozen=True)
class FctSummary:
    """Scalar digest of a completed-flow population (times in seconds).

    ``completed`` counts the completions summarized; the statistics are
    0.0 when nothing completed (a scenario cut off before any flow
    finished), so results stay scalar and sweepable either way.
    """

    completed: int
    mean: float
    p50: float
    p95: float
    max: float


def fct_summary(completions: Sequence[FlowCompletion]) -> FctSummary:
    """Summarize flow completion times; all-zero when nothing completed."""
    durations = [c.duration for c in completions]
    if not durations:
        return FctSummary(completed=0, mean=0.0, p50=0.0, p95=0.0, max=0.0)
    return FctSummary(
        completed=len(durations),
        mean=sum(durations) / len(durations),
        p50=percentile(durations, 50.0),
        p95=percentile(durations, 95.0),
        max=max(durations),
    )
