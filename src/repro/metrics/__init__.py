"""Measurement utilities: flow recorders, summary statistics, cost meters.

* :mod:`repro.metrics.cost` — deterministic CPU/memory accounting used
  by the QTPlight receiver-load experiment (T3);
* :mod:`repro.metrics.stats` — throughput series, smoothness (CoV),
  Jain fairness, percentiles;
* :mod:`repro.metrics.recorder` — per-flow delivery recording agents
  hook into.
"""

from repro.metrics.cost import CostMeter
from repro.metrics.recorder import FlowRecorder
from repro.metrics.stats import (
    coefficient_of_variation,
    jain_index,
    percentile,
    throughput_series,
)

__all__ = [
    "CostMeter",
    "FlowRecorder",
    "throughput_series",
    "coefficient_of_variation",
    "jain_index",
    "percentile",
]
