"""Measurement utilities: flow recorders, summary statistics, cost meters.

* :mod:`repro.metrics.cost` — deterministic CPU/memory accounting used
  by the QTPlight receiver-load experiment (T3);
* :mod:`repro.metrics.stats` — throughput series, smoothness (CoV),
  Jain fairness, percentiles;
* :mod:`repro.metrics.recorder` — per-flow delivery recording agents
  hook into;
* :mod:`repro.metrics.fct` — flow-completion-time records and
  summaries for finite (byte-budgeted) flow populations;
* :mod:`repro.metrics.fluid` — aggregate background-traffic summaries
  for hybrid-fidelity runs (:mod:`repro.fluid`).
"""

from repro.metrics.cost import CostMeter
from repro.metrics.fct import FctSummary, FlowCompletion, fct_summary
from repro.metrics.fluid import BackgroundSummary, background_summary
from repro.metrics.recorder import FlowRecorder
from repro.metrics.stats import (
    coefficient_of_variation,
    jain_index,
    percentile,
    throughput_series,
)

__all__ = [
    "BackgroundSummary",
    "CostMeter",
    "FctSummary",
    "FlowCompletion",
    "FlowRecorder",
    "background_summary",
    "fct_summary",
    "throughput_series",
    "coefficient_of_variation",
    "jain_index",
    "percentile",
]
