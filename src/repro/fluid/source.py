"""The fluid background-traffic engine component.

A :class:`FluidSource` realizes one
:class:`~repro.fluid.specs.BackgroundLoadSpec` at one link direction.
Instead of generating background packets, it runs a small fluid model
once per *epoch* (an ordinary event scheduled through the simulator, so
goldens pin it like everything else) and couples the aggregate into the
packet-level world through two levers:

1. **Queue occupancy** — the fluid backlog is converted to a virtual
   packet count (``queue.fluid_pkts``) that RED/RIO admission adds to
   the physical queue length.  For RIO only the *total* average rises
   (background is out-of-profile cross traffic), so in-profile GREEN
   foreground keeps exactly the protection the AF PHB gives it in a
   packet-level run, while out-of-profile foreground sees the
   aggressive out-curve — the paper's assurance mechanism, reproduced
   in fluid.
2. **Service capacity** — the link rate seen by foreground
   serialization is reduced by the background's *served* share of the
   previous epoch (never below ``min_foreground_share``), which models
   FIFO interleaving delay without per-packet cost.

Accounting is conservative by construction: every offered byte is
served, dropped (policed by the queue's own out-profile curve, or
virtual-buffer overflow), queued in the backlog, or — for *elastic*
aggregates — pending retransmission at the senders —
``tests/test_fluid_source.py`` pins the invariant with Hypothesis.

The epoch update mirrors a real queue's admit-then-serve order::

    capacity = base_rate * dt / 8          # bytes the wire moved
    foreground = Δ link.stats.tx_bytes     # bytes foreground actually used
    residual = max(0, capacity - foreground)
    demand   = offered + pending           # pending > 0 only if elastic
    p        = out-curve(physical qlen + backlog)   # RIO/RED policing
    admitted = min(demand * (1 - p), buffer-space + residual)
    refused  = demand - admitted           # -> pending (elastic) or dropped
    served   = min(residual, backlog + admitted)
    backlog += admitted - served

Policing matters: in a packet-level run the discipline drops
out-of-profile *background* arrivals first, which is what keeps an
8 Mb/s background aggregate from taking 8 Mb/s of a 10 Mb/s link away
from an assured foreground.  The fluid model applies the same curve to
the aggregate, and additionally floors the foreground's service share
at ``min_foreground_share`` — :func:`repro.fluid.derive.hybridize`
derives that floor from the foreground's committed AF rates, enforcing
in one line the protection per-packet RIO provides statistically.

The closed loop emerges: if foreground takes capacity, the background
backlog grows, inflating the queue averages, dropping (out-of-profile)
foreground until congestion control yields — and vice versa.

Determinism: the only randomness is the MMPP state transition, one
draw per epoch from ``sim.rng(spec.rng_stream)`` (the named-stream
discipline shared with queues and channels).  With ``REPRO_NO_FLUID=1``
the compiler skips FluidSource construction entirely — zero extra
events, zero extra RNG draws, byte-identical foreground-only runs.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.fluid.specs import BackgroundLoadSpec
from repro.sim.engine import Simulator
from repro.sim.link import Link


class FluidSource:
    """Aggregate background load injected at one link's queue.

    Constructed by :func:`repro.topo.build.build` (in pinned order)
    from a spec's ``background`` field; the first epoch event is
    scheduled at construction, so nothing before ``sim.run()`` draws
    randomness and tie-breaking stays pinned.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        spec: BackgroundLoadSpec,
        name: Optional[str] = None,
    ):
        self.sim = sim
        self.link = link
        self.queue = link.queue
        self.spec = spec
        self.name = name or f"fluid:{link.name}"
        self.base_rate_bps = link.rate_bps
        # virtual buffer: explicit override, else what the discipline
        # would let out-of-profile traffic occupy before dropping it
        if spec.buffer_packets is not None:
            buffer_pkts = spec.buffer_packets
        else:
            queue = link.queue
            buffer_pkts = getattr(
                queue,
                "out_max_th",
                getattr(queue, "max_th", None),
            )
            if buffer_pkts is None:
                buffer_pkts = queue.capacity_packets or 0
        self.buffer_bytes = float(buffer_pkts) * spec.mean_pkt_bytes
        # the discipline's out-of-profile drop curve polices the
        # aggregate exactly as it would police background packets
        queue = link.queue
        if hasattr(queue, "out_min_th"):  # RIO: the out-profile curve
            self._curve = (queue.out_min_th, queue.out_max_th, queue.out_max_p)
        elif hasattr(queue, "min_th"):  # RED: the single curve
            self._curve = (queue.min_th, queue.max_th, queue.max_p)
        else:  # DropTail: buffer bound only
            self._curve = None
        # MMPP is the only stochastic kind; other kinds must not touch
        # (or even create) the stream
        self._rng = sim.rng(spec.rng_stream) if spec.kind == "mmpp" else None
        self._mmpp_high = False
        self._profile_idx = 0
        self._rate_bps = self._initial_rate()
        self.backlog_bytes = 0.0
        self.pending_bytes = 0.0  # elastic: refused demand awaiting retry
        self.offered_bytes = 0.0
        self.served_bytes = 0.0
        self.dropped_bytes = 0.0
        self.peak_backlog_bytes = 0.0
        self.epochs = 0
        self.active = True
        self._last_now: Optional[float] = None
        self._last_tx = link.stats.tx_bytes
        sim.schedule(spec.start, self._on_epoch)

    # ------------------------------------------------------------------
    def _initial_rate(self) -> float:
        spec = self.spec
        if spec.kind == "constant":
            return spec.rate_bps
        if spec.kind == "mmpp":  # dwell starts in the low state, pinned
            return spec.rate_low_bps or 0.0
        profile = spec.profile
        return profile[0] * 8.0 / spec.epoch if profile else 0.0

    def _advance_rate(self, dt: float) -> float:
        """Rate for the *next* epoch (draw order is part of the contract)."""
        spec = self.spec
        if spec.kind == "constant":
            return spec.rate_bps
        if spec.kind == "mmpp":
            # exactly one draw per epoch regardless of state, so the
            # stream position is a function of epoch count alone
            dwell = spec.mean_high_s if self._mmpp_high else spec.mean_low_s
            if self._rng.random() < 1.0 - math.exp(-dt / dwell):
                self._mmpp_high = not self._mmpp_high
            if self._mmpp_high:
                return spec.rate_high_bps
            return spec.rate_low_bps or 0.0
        self._profile_idx += 1
        profile = spec.profile
        if self._profile_idx >= len(profile):
            return 0.0
        return profile[self._profile_idx] * 8.0 / spec.epoch

    # ------------------------------------------------------------------
    def _on_epoch(self) -> None:
        sim = self.sim
        now = sim.now
        spec = self.spec
        if self._last_now is None:
            # installation epoch: start the accounting clock; modulation
            # begins once one epoch of foreground service was observed
            self._last_now = now
            self._last_tx = self.link.stats.tx_bytes
            sim.schedule(spec.epoch, self._on_epoch)
            return
        dt = now - self._last_now
        self._last_now = now
        link = self.link
        capacity = self.base_rate_bps * dt / 8.0
        tx = link.stats.tx_bytes
        foreground = tx - self._last_tx
        self._last_tx = tx
        residual = capacity - foreground
        if residual < 0.0:
            residual = 0.0
        offered = self._rate_bps * dt / 8.0
        # demand this epoch: fresh arrivals plus (elastic only) demand
        # the queue refused earlier and the senders are retrying
        demand = offered + self.pending_bytes
        # 1. admission: the out-profile curve on (physical + virtual)
        # occupancy, then the buffer/service bound — arrivals a real
        # queue would never have enqueued do not enter the backlog
        admitted = demand
        if self._curve is not None and demand > 0.0:
            min_th, max_th, max_p = self._curve
            v = len(self.queue) + self.backlog_bytes / spec.mean_pkt_bytes
            if v >= max_th:
                p_b = 1.0
            elif v <= min_th:
                p_b = 0.0
            else:
                p_b = max_p * (v - min_th) / (max_th - min_th)
            admitted = demand * (1.0 - p_b)
        room = (self.buffer_bytes - self.backlog_bytes) + residual
        if admitted > room:
            admitted = room if room > 0.0 else 0.0
        # refused demand: an unresponsive aggregate loses it for good, a
        # closed-loop (TCP-like) aggregate retransmits until served
        if spec.elastic:
            self.pending_bytes = demand - admitted
        else:
            self.dropped_bytes += demand - admitted
            self.pending_bytes = 0.0
        # 2. service from the admitted backlog
        available = self.backlog_bytes + admitted
        served = available if available < residual else residual
        backlog = available - served
        self.backlog_bytes = backlog
        self.offered_bytes += offered
        self.served_bytes += served
        if backlog > self.peak_backlog_bytes:
            self.peak_backlog_bytes = backlog
        self.epochs += 1
        # -- advance the offered-rate process, then decide whether the
        # source is done (stop time reached, or profile exhausted with
        # nothing left to drain)
        self._rate_bps = self._advance_rate(dt)
        exhausted = (
            spec.kind == "population"
            and self._profile_idx >= len(spec.profile)
            and backlog <= 0.0
            and self.pending_bytes <= 0.0
        )
        if (spec.stop is not None and now >= spec.stop) or exhausted:
            self._uninstall()
            return
        # -- modulate for the next epoch
        self.queue.fluid_pkts = int(backlog / spec.mean_pkt_bytes + 0.5)
        floor = self.base_rate_bps * spec.min_foreground_share
        if spec.elastic:
            # a closed-loop aggregate claims capacity by *demand*: it
            # keeps pushing (and retransmitting) until served, so the
            # foreground only keeps what the claim leaves — never less
            # than its guaranteed floor
            claim = (
                self._rate_bps
                + (backlog + self.pending_bytes) * 8.0 / dt
            )
        else:
            # an open-loop aggregate only consumed what was served
            claim = served * 8.0 / dt
        shared = self.base_rate_bps - claim
        link.rate_bps = shared if shared > floor else floor
        sim.schedule(spec.epoch, self._on_epoch)

    def _uninstall(self) -> None:
        """Restore the packet-level world exactly as it was."""
        self.queue.fluid_pkts = 0
        self.link.rate_bps = self.base_rate_bps
        self.active = False

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Aggregate counters (bytes offered/served/dropped, backlog)."""
        return {
            "offered_bytes": self.offered_bytes,
            "served_bytes": self.served_bytes,
            "dropped_bytes": self.dropped_bytes,
            "backlog_bytes": self.backlog_bytes,
            "pending_bytes": self.pending_bytes,
            "peak_backlog_bytes": self.peak_backlog_bytes,
            "epochs": float(self.epochs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FluidSource({self.name}, kind={self.spec.kind!r}, "
            f"backlog={self.backlog_bytes:.0f}B, epochs={self.epochs})"
        )
