"""Frozen spec for aggregate background load at a queue.

A :class:`BackgroundLoadSpec` describes cross traffic as an *offered
byte rate over time* instead of as per-packet flows.  The
:class:`~repro.fluid.source.FluidSource` compiled from it modulates the
owning link's queue occupancy and service capacity in batched epochs,
so a scenario can pit its few packet-level foreground flows against a
background of thousands of modeled users at a per-epoch (not
per-packet) cost.

Three kinds:

``constant``
    A fixed offered rate (``rate_bps``) — the fluid analogue of the
    classic long-lived CBR cross-traffic aggregate.
``mmpp``
    A two-state Markov-modulated rate: dwell in a low state
    (``rate_low_bps``, mean ``mean_low_s``) and a high state
    (``rate_high_bps``, mean ``mean_high_s``), with state transitions
    sampled once per epoch from the named ``rng_stream`` — bursty
    aggregates without per-flow machinery.
``population``
    A piecewise-constant offered-load ``profile`` (bytes per epoch)
    derived from a generated :class:`repro.traffic.PopulationSpec` via
    its own arrival/size samplers (see :mod:`repro.fluid.derive`), so
    one population spec can run full-fidelity or hybrid.

The kind/parameter cross-validation follows the
:class:`repro.topo.specs.QueueSpec` convention: a tunable set for a
kind that does not consume it is an error, never silently ignored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: Background-load models understood by the compiler.
BACKGROUND_KINDS = ("constant", "mmpp", "population")


@dataclass(frozen=True)
class BackgroundLoadSpec:
    """Aggregate background load offered to one queue (link direction).

    Common knobs
    ------------
    ``epoch``
        Batch interval in seconds: the :class:`FluidSource` re-evaluates
        offered load, backlog and service share once per epoch.
    ``start``/``stop``
        Active window.  ``stop=None`` runs until the simulation ends
        (``population`` stops itself when its profile is exhausted and
        its backlog has drained).
    ``mean_pkt_bytes``
        Conversion between fluid backlog bytes and the virtual packet
        occupancy injected into RED/RIO averages.
    ``min_foreground_share``
        Guaranteed fraction of the link rate the packet-level foreground
        keeps even under background saturation (the fluid model's
        stand-in for FIFO service interleaving).
    ``buffer_packets``
        Cap on the virtual backlog, in packets.  ``None`` derives it
        from the owning queue: RIO's ``out_max_th``, RED's ``max_th``
        (beyond those averages the discipline would be dropping
        out-of-profile arrivals outright, so fluid backlog cannot
        realistically exceed them), or the DropTail capacity.
    ``elastic``
        How the aggregate responds to policing.  ``False`` (default)
        models an unresponsive aggregate: bytes the queue's drop curve
        or buffer refuses are gone, like UDP/CBR cross traffic.
        ``True`` models a closed-loop (TCP-like) aggregate: refused
        bytes stay *pending at the senders* and are re-offered next
        epoch — a dropped TCP segment is retransmitted, so aggregate
        demand persists until served.  Population-derived backgrounds
        (:mod:`repro.fluid.derive`) default to elastic because the
        generated flow classes they replace are TCP mice.
    """

    kind: str = "constant"
    rate_bps: Optional[float] = None  # constant
    # MMPP parameters (two-state Markov-modulated rate)
    rate_low_bps: Optional[float] = None
    rate_high_bps: Optional[float] = None
    mean_low_s: Optional[float] = None
    mean_high_s: Optional[float] = None
    # population: offered bytes per epoch, derived from a PopulationSpec
    profile: Optional[Tuple[float, ...]] = None
    # common
    epoch: float = 0.05
    start: float = 0.0
    stop: Optional[float] = None
    mean_pkt_bytes: float = 1000.0
    min_foreground_share: float = 0.05
    buffer_packets: Optional[int] = None
    elastic: bool = False
    rng_stream: str = "fluid"

    #: Which optional tunables each kind consumes; anything else set is
    #: a spec typo (the QueueSpec/ChannelSpec validation convention).
    _KIND_FIELDS = {
        "constant": frozenset({"rate_bps"}),
        "mmpp": frozenset(
            {"rate_low_bps", "rate_high_bps", "mean_low_s", "mean_high_s"}
        ),
        "population": frozenset({"profile"}),
    }

    def __post_init__(self) -> None:
        if self.kind not in BACKGROUND_KINDS:
            raise ValueError(
                f"unknown background kind {self.kind!r}; "
                f"known: {BACKGROUND_KINDS}"
            )
        allowed = self._KIND_FIELDS[self.kind]
        tunables = frozenset().union(*self._KIND_FIELDS.values())
        stray = sorted(
            name
            for name in tunables
            if getattr(self, name) is not None and name not in allowed
        )
        if stray:
            raise ValueError(
                f"background kind {self.kind!r} does not use parameter(s) "
                f"{stray}; they would be silently ignored"
            )
        if self.kind == "constant":
            if self.rate_bps is None or self.rate_bps < 0:
                raise ValueError(
                    "constant background requires a non-negative rate_bps"
                )
        elif self.kind == "mmpp":
            missing = [
                name
                for name in ("rate_high_bps", "mean_low_s", "mean_high_s")
                if getattr(self, name) is None
            ]
            if missing:
                raise ValueError(f"mmpp background requires {missing}")
            if self.mean_low_s <= 0 or self.mean_high_s <= 0:
                raise ValueError("mmpp dwell times must be positive")
            low = self.rate_low_bps if self.rate_low_bps is not None else 0.0
            if low < 0 or self.rate_high_bps < 0:
                raise ValueError("mmpp rates must be non-negative")
        else:  # population
            if self.profile is None:
                raise ValueError(
                    "population background requires a profile "
                    "(see repro.fluid.derive.background_from_population)"
                )
            if any(b < 0 for b in self.profile):
                raise ValueError("profile entries must be non-negative bytes")
        if self.epoch <= 0:
            raise ValueError("epoch must be positive")
        if self.start < 0:
            raise ValueError("start must be >= 0")
        if self.stop is not None and self.stop <= self.start:
            raise ValueError("stop must be > start")
        if self.mean_pkt_bytes <= 0:
            raise ValueError("mean_pkt_bytes must be positive")
        if not 0.0 < self.min_foreground_share <= 1.0:
            raise ValueError("min_foreground_share must be in (0, 1]")
        if self.buffer_packets is not None and self.buffer_packets < 0:
            raise ValueError("buffer_packets must be >= 0")
