"""Hybrid-fidelity simulation: fluid background traffic (PR 10).

``repro.fluid`` injects *aggregate* background load at queues instead
of simulating each background flow's packets, so a scenario keeps its
few foreground AF/gTFRC flows packet-level against a modeled
background of thousands of users — the population scales packet-level
simulation cannot reach at any constant factor.

Module map
----------
:mod:`repro.fluid.specs`
    :class:`BackgroundLoadSpec` — frozen offered-load models
    (``constant`` rate, ``mmpp`` two-state Markov-modulated bursts,
    ``population`` profiles derived from generated flow populations),
    kind/parameter cross-validated like every other spec.
:mod:`repro.fluid.source`
    :class:`FluidSource` — the engine component: one event per epoch
    updates a conservative fluid backlog and couples it into the
    packet world via virtual RED/RIO occupancy and foreground service
    share.  ``REPRO_NO_FLUID=1`` disables compilation entirely
    (byte-identical foreground-only runs, mirroring ``REPRO_NO_POOL``).
:mod:`repro.fluid.derive`
    :func:`background_from_population` (``PopulationSpec`` → profile
    via the population's own samplers) and :func:`hybridize`
    (``ScenarioSpec`` → packet-level foreground + fluid background on
    the bottlenecks).

Quickstart::

    from repro.fluid import hybridize
    hybrid = hybridize(spec, population, seed=0)   # same spec, hybrid
    # ... build(sim, hybrid) runs foreground packet-level only

Validation: the "fluid" goldens section pins hybrid runs bit-exactly,
and ``tests/test_fluid_equivalence.py`` holds hybrid vs packet-level
foreground metrics within documented tolerance bands on populations
small enough to run both ways.  See ``docs/hybrid.md``.
"""

from repro.fluid.derive import (  # noqa: F401
    background_from_population,
    background_from_population_flows,
    hybridize,
)
from repro.fluid.source import FluidSource  # noqa: F401
from repro.fluid.specs import BACKGROUND_KINDS, BackgroundLoadSpec  # noqa: F401

__all__ = [
    "BACKGROUND_KINDS",
    "BackgroundLoadSpec",
    "FluidSource",
    "background_from_population",
    "background_from_population_flows",
    "hybridize",
]
