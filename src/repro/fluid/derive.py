"""Population → background derivation and the ``hybridize`` transform.

Two doors into hybrid fidelity:

:func:`background_from_population`
    ``PopulationSpec -> BackgroundLoadSpec(kind="population")``: expand
    the population with its own arrival/size samplers (the exact
    ``(spec, seed)`` expansion a full-fidelity run would build) and
    bin the resulting byte deposits into a per-epoch offered-load
    profile.  Use this when the background never existed as packet
    flows — e.g. the 100k-user bench, where expanding is cheap but
    simulating is not.

:func:`hybridize`
    ``ScenarioSpec -> ScenarioSpec``: split an already-composed
    scenario into packet-level foreground and fluid background.  Flows
    that came from the population (matched by their expanded flow ids)
    are removed and replayed as an offered-load profile attached to the
    bottleneck links' ``background`` field; everything else stays
    packet-level.  Because the profile is computed from the *same
    expanded flows* the packet-level spec carries, both fidelities see
    byte-identical background demand — the paired equivalence tests
    compare exactly these two specs.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Optional, Tuple

from repro.fluid.specs import BackgroundLoadSpec
from repro.topo.specs import ScenarioSpec
from repro.traffic.population import expand_population, offered_load_profile
from repro.traffic.specs import PopulationSpec

#: Queue kinds treated as bottlenecks when ``hybridize`` is not told
#: where to attach the background (RED/RIO mark the congestion points
#: in every DiffServ scenario in this repo).
BOTTLENECK_QUEUE_KINDS = ("red", "rio")


def background_from_population(
    population: PopulationSpec,
    seed: int,
    epoch: float = 0.05,
    per_flow_rate_bps: Optional[float] = None,
    classes: Optional[Tuple[str, ...]] = None,
    **spec_kwargs,
) -> BackgroundLoadSpec:
    """Derive a fluid background spec from a generated population.

    ``classes`` restricts the derivation to the named flow classes
    (default: all of them).  ``per_flow_rate_bps`` spreads each flow's
    bytes at that pacing rate instead of depositing them in the arrival
    epoch.  Extra keyword arguments pass through to
    :class:`BackgroundLoadSpec` (``mean_pkt_bytes``,
    ``min_foreground_share``, ...).
    """
    flows = expand_population(population, seed)
    if classes is not None:
        names = set(classes)
        known = {cls.name for cls in population.classes}
        unknown = sorted(names - known)
        if unknown:
            raise ValueError(
                f"population {population.name!r} has no class(es) "
                f"{unknown}; known: {sorted(known)}"
            )
        flows = tuple(
            f for f in flows if _class_of(f.flow_id, known) in names
        )
    profile = offered_load_profile(
        flows, epoch, per_flow_rate_bps=per_flow_rate_bps
    )
    # the flow classes being replaced are closed-loop transports: a
    # policed byte is retransmitted, not lost, so demand persists
    spec_kwargs.setdefault("elastic", True)
    return BackgroundLoadSpec(
        kind="population", profile=profile, epoch=epoch, **spec_kwargs
    )


def hybridize(
    spec: ScenarioSpec,
    population: PopulationSpec,
    seed: int,
    background_classes: Optional[Tuple[str, ...]] = None,
    at: Optional[Iterable[Tuple[str, str]]] = None,
    epoch: float = 0.05,
    per_flow_rate_bps: Optional[float] = None,
    name: Optional[str] = None,
    **spec_kwargs,
) -> ScenarioSpec:
    """Convert a population's flows into fluid background on ``spec``.

    The flows :func:`expand_population(population, seed)
    <repro.traffic.population.expand_population>` produced (optionally
    restricted to ``background_classes``) are dropped from the
    scenario's flow tuple and replayed as a
    :class:`BackgroundLoadSpec` profile built from those very
    ``FlowSpec`` entries — start times and byte budgets included.
    Declared foreground flows (everything not matched) stay
    packet-level in their original order.

    ``at`` names the ``(src, dst)`` link pairs whose forward direction
    receives the background; the default attaches it to every RED/RIO
    bottleneck link.  Markers installed for fluidized assured flows are
    left in place (an srTCM meter that never sees a packet is inert).
    """
    known = {cls.name for cls in population.classes}
    selected = set(background_classes) if background_classes is not None else known
    unknown = sorted(selected - known)
    if unknown:
        raise ValueError(
            f"population {population.name!r} has no class(es) {unknown}; "
            f"known: {sorted(known)}"
        )
    expanded_ids = {
        f.flow_id
        for f in expand_population(population, seed)
        if _class_of(f.flow_id, known) in selected
    }
    background = tuple(f for f in spec.flows if f.flow_id in expanded_ids)
    foreground = tuple(f for f in spec.flows if f.flow_id not in expanded_ids)
    if not background:
        raise ValueError(
            f"scenario {spec.name!r} contains none of population "
            f"{population.name!r}'s flows (seed {seed}); nothing to hybridize"
        )
    targets = (
        {tuple(pair) for pair in at}
        if at is not None
        else {
            (ls.src, ls.dst)
            for ls in spec.topology.links
            if ls.queue.kind in BOTTLENECK_QUEUE_KINDS
        }
    )
    if not targets:
        raise ValueError(
            "no links to attach background to: pass at=[(src, dst), ...] "
            "or use a topology with a RED/RIO bottleneck"
        )
    link_pairs = {(ls.src, ls.dst) for ls in spec.topology.links}
    missing = sorted(targets - link_pairs)
    if missing:
        raise ValueError(f"at= names links not in the topology: {missing}")
    if "min_foreground_share" not in spec_kwargs:
        # the AF protection, enforced directly: the foreground keeps at
        # least its committed rates (plus a small fair-excess margin —
        # against a large elastic crowd the foreground's excess share
        # tends to zero) of the tightest bottleneck, exactly what
        # per-packet RIO would have protected statistically
        committed = sum(f.target_bps or 0.0 for f in foreground)
        bottleneck = min(
            ls.rate_bps
            for ls in spec.topology.links
            if (ls.src, ls.dst) in targets
        )
        spec_kwargs["min_foreground_share"] = min(
            0.95, max(0.05, committed / bottleneck + 0.05)
        )
    bg_spec = background_from_population_flows(
        background, epoch, per_flow_rate_bps=per_flow_rate_bps, **spec_kwargs
    )
    links = tuple(
        replace(ls, background=bg_spec) if (ls.src, ls.dst) in targets else ls
        for ls in spec.topology.links
    )
    topology = replace(spec.topology, links=links)
    return ScenarioSpec(
        name=name or f"{spec.name}:hybrid",
        topology=topology,
        flows=foreground,
        description=spec.description,
    )


def background_from_population_flows(
    flows: Tuple,
    epoch: float = 0.05,
    per_flow_rate_bps: Optional[float] = None,
    **spec_kwargs,
) -> BackgroundLoadSpec:
    """Wrap already-expanded flows into a population background spec."""
    profile = offered_load_profile(
        flows, epoch, per_flow_rate_bps=per_flow_rate_bps
    )
    spec_kwargs.setdefault("elastic", True)
    return BackgroundLoadSpec(
        kind="population", profile=profile, epoch=epoch, **spec_kwargs
    )


def _class_of(flow_id: str, class_names) -> Optional[str]:
    """Recover the class name from an expanded ``f"{name}{i}"`` flow id."""
    best = None
    for cname in class_names:
        if flow_id.startswith(cname) and flow_id[len(cname):].isdigit():
            if best is None or len(cname) > len(best):
                best = cname  # longest match wins ("mice" vs "mice2")
    return best
