"""Frozen declarative specs for generated traffic populations.

A *population* is workload-as-data: an arrival process
(:class:`ArrivalSpec`), a mix of flow classes (:class:`FlowClassSpec`,
each carrying a transport and a size distribution
:class:`SizeSpec`) and an endpoint pool, bundled into a
:class:`PopulationSpec`.  The expander
(:func:`repro.traffic.population.expand_population`) turns one into an
ordinary ``tuple[FlowSpec, ...]`` — generated workloads are built,
seeded, golden-pinned and swept exactly like hand-enumerated ones.

Validation follows the :class:`repro.topo.specs.QueueSpec` /
:class:`~repro.topo.specs.ChannelSpec` convention: each ``kind``
declares which tunables it consumes and anything else set is rejected
instead of silently ignored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.topo.specs import TRANSPORTS

#: Arrival processes understood by the samplers.
ARRIVAL_KINDS = ("poisson", "onoff", "flash_crowd")

#: Flow-size distributions understood by the samplers.
SIZE_KINDS = ("fixed", "exponential", "pareto")


@dataclass(frozen=True)
class ArrivalSpec:
    """One flow-arrival process.

    ``kind`` selects the model:

    * ``poisson`` — homogeneous Poisson arrivals at ``rate_per_s``;
    * ``onoff`` — bursty arrivals: exponentially distributed ON periods
      (mean ``mean_on`` seconds) during which flows arrive as a Poisson
      process at ``rate_per_s``, separated by silent OFF gaps (mean
      ``mean_off``);
    * ``flash_crowd`` — a non-homogeneous Poisson ramp: the rate is
      ``base_rate_per_s`` until ``ramp_start``, climbs linearly to
      ``peak_rate_per_s`` over ``ramp_duration`` seconds, then stays at
      the peak (sampled by thinning at the peak rate).

    Arrivals draw from one named RNG stream (see
    :func:`~repro.traffic.population.expand_population`), so the same
    seed always yields the same arrival times.
    """

    kind: str = "poisson"
    rate_per_s: Optional[float] = None  # poisson + onoff (ON-period rate)
    # on/off parameters
    mean_on: Optional[float] = None
    mean_off: Optional[float] = None
    # flash-crowd parameters
    base_rate_per_s: Optional[float] = None
    peak_rate_per_s: Optional[float] = None
    ramp_start: Optional[float] = None
    ramp_duration: Optional[float] = None

    #: Which tunables each kind consumes; anything else set is a typo.
    _KIND_FIELDS = {
        "poisson": frozenset({"rate_per_s"}),
        "onoff": frozenset({"rate_per_s", "mean_on", "mean_off"}),
        "flash_crowd": frozenset(
            {"base_rate_per_s", "peak_rate_per_s", "ramp_start",
             "ramp_duration"}
        ),
    }

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival kind {self.kind!r}; known: {ARRIVAL_KINDS}"
            )
        allowed = self._KIND_FIELDS[self.kind]
        tunables = frozenset().union(*self._KIND_FIELDS.values())
        stray = sorted(
            name
            for name in tunables
            if getattr(self, name) is not None and name not in allowed
        )
        if stray:
            raise ValueError(
                f"arrival kind {self.kind!r} does not use parameter(s) "
                f"{stray}; they would be silently ignored"
            )
        missing = sorted(
            name for name in allowed if getattr(self, name) is None
        )
        if missing:
            raise ValueError(
                f"arrival kind {self.kind!r} requires parameter(s) {missing}"
            )
        if self.kind in ("poisson", "onoff") and self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if self.kind == "onoff" and (self.mean_on <= 0 or self.mean_off <= 0):
            raise ValueError("mean_on and mean_off must be positive")
        if self.kind == "flash_crowd":
            if self.peak_rate_per_s <= 0:
                raise ValueError("peak_rate_per_s must be positive")
            if not 0 <= self.base_rate_per_s <= self.peak_rate_per_s:
                raise ValueError(
                    "base_rate_per_s must be within [0, peak_rate_per_s]"
                )
            if self.ramp_start < 0 or self.ramp_duration <= 0:
                raise ValueError(
                    "ramp_start must be >= 0 and ramp_duration > 0"
                )


@dataclass(frozen=True)
class SizeSpec:
    """One flow-size distribution (bytes).

    ``kind`` selects the model: ``fixed`` (every flow is exactly
    ``size_bytes``), ``exponential`` (mean ``mean_bytes``, floored at
    ``min_bytes``) or ``pareto`` — the truncated heavy tail behind
    "mice vs elephants": shape ``alpha``, scale ``min_bytes``, samples
    above ``max_bytes`` clamped to it.  Every sample is an integer
    ``>= 1``.
    """

    kind: str = "fixed"
    size_bytes: Optional[int] = None  # fixed
    mean_bytes: Optional[float] = None  # exponential
    alpha: Optional[float] = None  # pareto shape
    min_bytes: int = 1  # exponential floor / pareto scale
    max_bytes: Optional[int] = None  # pareto truncation

    _KIND_FIELDS = {
        "fixed": frozenset({"size_bytes"}),
        "exponential": frozenset({"mean_bytes"}),
        "pareto": frozenset({"alpha", "max_bytes"}),
    }

    def __post_init__(self) -> None:
        if self.kind not in SIZE_KINDS:
            raise ValueError(
                f"unknown size kind {self.kind!r}; known: {SIZE_KINDS}"
            )
        allowed = self._KIND_FIELDS[self.kind]
        tunables = frozenset().union(*self._KIND_FIELDS.values())
        stray = sorted(
            name
            for name in tunables
            if getattr(self, name) is not None and name not in allowed
        )
        if stray:
            raise ValueError(
                f"size kind {self.kind!r} does not use parameter(s) "
                f"{stray}; they would be silently ignored"
            )
        missing = sorted(
            name for name in allowed if getattr(self, name) is None
        )
        if missing:
            raise ValueError(
                f"size kind {self.kind!r} requires parameter(s) {missing}"
            )
        if self.min_bytes < 1:
            raise ValueError("min_bytes must be >= 1")
        if self.kind == "fixed" and self.size_bytes < 1:
            raise ValueError("size_bytes must be >= 1")
        if self.kind == "exponential" and self.mean_bytes <= 0:
            raise ValueError("mean_bytes must be positive")
        if self.kind == "pareto":
            if self.alpha <= 0:
                raise ValueError("alpha must be positive")
            if self.max_bytes < self.min_bytes:
                raise ValueError("max_bytes must be >= min_bytes")


@dataclass(frozen=True)
class FlowClassSpec:
    """One class in the population mix (e.g. TCP mice, assured elephants).

    ``weight`` is the class's share of the mix (relative, need not sum
    to 1); ``size`` its flow-size distribution.  The QoS-aware
    transports require ``target_bps`` (the per-flow AF guarantee ``g``
    that :func:`~repro.traffic.population.apply_slas` realizes as an
    edge meter).  ``record=False`` by default: thousand-flow
    populations measure completion times through the flow lifecycle,
    not per-flow recorders.
    """

    name: str
    weight: float
    transport: str = "tcp"
    size: SizeSpec = field(default_factory=lambda: SizeSpec(
        kind="fixed", size_bytes=30_000
    ))
    target_bps: Optional[float] = None
    record: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("class name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"class {self.name!r}: weight must be positive")
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"class {self.name!r}: unknown transport "
                f"{self.transport!r}; known: {TRANSPORTS}"
            )
        if self.transport in ("gtfrc", "qtpaf") and not self.target_bps:
            raise ValueError(
                f"class {self.name!r}: transport {self.transport!r} "
                "requires target_bps (the AF guarantee g)"
            )


@dataclass(frozen=True)
class PopulationSpec:
    """A generated flow population: arrivals x class mix x endpoints.

    The expander caps the population at ``n_flows`` arrivals within
    ``horizon`` seconds (whichever limit binds first), offset by
    ``start``.  ``endpoints`` is the pool of ``(src, dst)`` node pairs;
    best-effort flows draw from it with replacement, assured
    (``gtfrc``/``qtpaf``) flows without (each needs its own conditioned
    access link — see :func:`~repro.traffic.population.apply_slas`).
    ``rng_stream`` names the seed-derived stream family, mirroring the
    ``ChannelSpec.rng_stream`` discipline.
    """

    name: str
    arrival: ArrivalSpec
    classes: Tuple[FlowClassSpec, ...]
    endpoints: Tuple[Tuple[str, str], ...]
    n_flows: int
    horizon: float
    start: float = 0.0
    rng_stream: str = "traffic"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("population name must be non-empty")
        if not self.classes:
            raise ValueError("population needs at least one flow class")
        seen = set()
        for cls in self.classes:
            if cls.name in seen:
                raise ValueError(f"duplicate class name {cls.name!r}")
            seen.add(cls.name)
        if not self.endpoints:
            raise ValueError("population needs at least one endpoint pair")
        if self.n_flows < 1:
            raise ValueError("n_flows must be >= 1")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.start < 0:
            raise ValueError("start must be >= 0")
