"""Population expander: ``PopulationSpec -> tuple[FlowSpec, ...]``.

:func:`expand_population` is a pure function of ``(spec, seed)``.  It
draws from four *independent* named streams — ``arrivals``,
``classes``, ``sizes``, ``endpoints`` — each seeded
``random.Random(f"{seed}:{spec.rng_stream}:{substream}")``, the same
derivation :meth:`repro.sim.engine.Simulator.rng` uses for its named
streams.  Independence means changing one axis (say the size
distribution) never perturbs another (the arrival times), which is
what keeps population sweeps comparable across parameters; the
determinism tests pin both properties.

:func:`apply_slas` closes the DiffServ loop: every assured flow the
expander emitted needs an srTCM edge meter on its access link, and
this rewrites a :class:`~repro.topo.specs.TopologySpec` to attach
them, one marker-free link per flow, in flow order.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Iterable, List, Optional, Tuple

from repro.topo.specs import FlowSpec, MarkerSpec, SlaSpec, TopologySpec
from repro.traffic.samplers import sample_arrivals, sample_size
from repro.traffic.specs import PopulationSpec

#: Transports whose flows hold a per-flow AF guarantee.
ASSURED_TRANSPORTS = ("gtfrc", "qtpaf")


def expand_population(spec: PopulationSpec, seed: int) -> Tuple[FlowSpec, ...]:
    """Expand one population into concrete flows, in arrival order.

    Flow ids are ``f"{class.name}{i}"`` with ``i`` the arrival index
    across the whole population, so ids are unique even across classes.
    Best-effort flows draw their endpoint pair uniformly *with*
    replacement; assured flows draw *without* replacement (each needs
    its own conditioned access link — see :func:`apply_slas`) and a
    population with more assured arrivals than endpoint pairs raises
    ``ValueError``.
    """
    arrivals_rng = _stream(spec, seed, "arrivals")
    classes_rng = _stream(spec, seed, "classes")
    sizes_rng = _stream(spec, seed, "sizes")
    endpoints_rng = _stream(spec, seed, "endpoints")

    times = sample_arrivals(
        spec.arrival, arrivals_rng, spec.horizon, spec.n_flows
    )
    total_weight = sum(cls.weight for cls in spec.classes)
    assured_pool: List[Tuple[str, str]] = list(spec.endpoints)

    flows: List[FlowSpec] = []
    for i, t in enumerate(times):
        cls = _pick_class(spec, classes_rng, total_weight)
        size = sample_size(cls.size, sizes_rng)
        if cls.transport in ASSURED_TRANSPORTS:
            if not assured_pool:
                raise ValueError(
                    f"population {spec.name!r}: ran out of endpoint pairs "
                    f"for assured flow {cls.name}{i} (assured flows draw "
                    "without replacement; add endpoints or lower the "
                    "assured class weight)"
                )
            src, dst = assured_pool.pop(
                endpoints_rng.randrange(len(assured_pool))
            )
        else:
            src, dst = spec.endpoints[
                endpoints_rng.randrange(len(spec.endpoints))
            ]
        flows.append(
            FlowSpec(
                f"{cls.name}{i}",
                src,
                dst,
                transport=cls.transport,
                target_bps=cls.target_bps,
                record=cls.record,
                start=spec.start + t,
                size_bytes=size,
            )
        )
    return tuple(flows)


def _stream(spec: PopulationSpec, seed: int, substream: str) -> random.Random:
    return random.Random(f"{seed}:{spec.rng_stream}:{substream}")


def _pick_class(spec, rng: random.Random, total_weight: float):
    # one draw per flow regardless of the class count, so adding a
    # class never shifts which draw later flows consume
    x = rng.random() * total_weight
    acc = 0.0
    for cls in spec.classes:
        acc += cls.weight
        if x < acc:
            return cls
    return spec.classes[-1]


def offered_load_profile(
    flows: Iterable[FlowSpec],
    epoch: float,
    horizon: Optional[float] = None,
    per_flow_rate_bps: Optional[float] = None,
) -> Tuple[float, ...]:
    """Bin the flows' offered bytes into per-epoch buckets.

    The population→aggregate derivation behind hybrid fidelity
    (:mod:`repro.fluid`): each flow's byte budget is deposited along
    the time axis, either entirely in its arrival epoch (the default)
    or spread at ``per_flow_rate_bps`` from its start (modeling
    access-link pacing).  Because the input is the *expanded* flow
    tuple, the same ``(spec, seed)`` that drives a packet-level run
    yields exactly the bytes the fluid model offers — that is what the
    hybrid/packet equivalence tests lean on.

    ``horizon=None`` sizes the profile to cover every deposit; an
    explicit horizon truncates (late bytes are discarded).  Flows
    without a ``size_bytes`` budget have no defined offered volume and
    raise ``ValueError``.
    """
    if epoch <= 0:
        raise ValueError("epoch must be positive")
    deposits: List[Tuple[float, float, float]] = []  # (start, end, bytes)
    end_max = 0.0
    for flow in flows:
        if flow.size_bytes is None:
            raise ValueError(
                f"flow {flow.flow_id!r} has no size_bytes budget; offered "
                "load is only defined for finite flows"
            )
        if per_flow_rate_bps:
            duration = flow.size_bytes * 8.0 / per_flow_rate_bps
        else:
            duration = 0.0
        deposits.append((flow.start, flow.start + duration, float(flow.size_bytes)))
        end_max = max(end_max, flow.start + duration)
    truncate = horizon is not None  # an explicit horizon discards late bytes
    if horizon is None:
        horizon = end_max
    n_bins = max(1, int(horizon / epoch) + 1) if horizon > 0 else 1
    bins = [0.0] * n_bins
    for start, end, size in deposits:
        if truncate and start >= horizon > 0:
            continue
        first = int(start / epoch)
        if end <= start:  # point deposit: all bytes in the arrival epoch
            if first < n_bins:
                bins[first] += size
            continue
        rate = size / (end - start)  # bytes per second, uniform spread
        last = min(int(end / epoch), n_bins - 1)
        for idx in range(first, last + 1):
            lo = max(start, idx * epoch)
            hi = min(end, (idx + 1) * epoch)
            if hi > lo:
                bins[idx] += rate * (hi - lo)
    return tuple(bins)


def apply_slas(
    topology: TopologySpec,
    flows: Iterable[FlowSpec],
    burst_bytes: float = 30_000.0,
) -> TopologySpec:
    """Attach one srTCM edge marker per assured flow to ``topology``.

    For each assured (``gtfrc``/``qtpaf``) flow, in flow order, the
    first still-unmarked link whose ``src`` matches the flow's source
    gets a ``MarkerSpec(SlaSpec(flow_id, target_bps, burst_bytes))`` —
    the domain-edge conditioning every AF scenario applies by hand
    today.  Raises ``ValueError`` when a flow has no free access link
    (two assured flows sharing a single-homed source).  Links keep
    their spec order, so the rewrite never perturbs build order.
    """
    links = list(topology.links)
    for flow in flows:
        if flow.transport not in ASSURED_TRANSPORTS:
            continue
        for idx, link in enumerate(links):
            if link.src == flow.src and link.marker is None:
                links[idx] = replace(
                    link,
                    marker=MarkerSpec(
                        sla=SlaSpec(
                            flow.flow_id,
                            flow.target_bps,
                            burst_bytes=burst_bytes,
                        )
                    ),
                )
                break
        else:
            raise ValueError(
                f"no unmarked access link out of {flow.src!r} for assured "
                f"flow {flow.flow_id!r}"
            )
    return TopologySpec(links=tuple(links), nodes=topology.nodes)
