"""Generated flow populations (PR 6).

``repro.traffic`` is the workload-generation layer: stochastic traffic
models that emit ordinary ``FlowSpec`` populations, so churny
thousand-flow workloads are registered, seeded, golden-pinned and
sweepable exactly like the hand-enumerated 4-flow dumbbells.

Module map
----------
:mod:`repro.traffic.specs`
    The vocabulary — :class:`ArrivalSpec` (Poisson / on-off bursts /
    flash-crowd ramp), :class:`SizeSpec` (fixed / exponential /
    truncated-Pareto "mice vs elephants"), :class:`FlowClassSpec`
    (transport + mix weight + size distribution) and the top-level
    :class:`PopulationSpec`.  All frozen, kind/parameter
    cross-validated pure data.
:mod:`repro.traffic.samplers`
    Deterministic samplers: pure functions of ``(spec, rng)`` with a
    pinned draw order.
:mod:`repro.traffic.population`
    :func:`expand_population` — ``PopulationSpec -> tuple[FlowSpec,
    ...]`` driven by independent named RNG streams (the ``ChannelSpec``
    seeding discipline) — and :func:`apply_slas`, which rewrites a
    ``TopologySpec`` to give every generated assured flow its srTCM
    edge meter.

Quickstart::

    from repro.sim.engine import Simulator
    from repro.topo import ScenarioSpec, build
    from repro.topo.generators import access_star_endpoints, access_star_spec
    from repro.traffic import (
        ArrivalSpec, FlowClassSpec, PopulationSpec, SizeSpec,
        apply_slas, expand_population,
    )

    pop = PopulationSpec(
        name="mice",
        arrival=ArrivalSpec(kind="poisson", rate_per_s=20.0),
        classes=(FlowClassSpec("mouse", 1.0, "tcp",
                               SizeSpec(kind="pareto", alpha=1.3,
                                        min_bytes=8_000, max_bytes=200_000)),),
        endpoints=access_star_endpoints(16),
        n_flows=100, horizon=8.0,
    )
    flows = expand_population(pop, seed=0)
    topo = apply_slas(access_star_spec(16), flows)
    sim = Simulator(seed=0)
    built = build(sim, ScenarioSpec("demo", topo, flows))
    sim.run(until=10.0)
    print(len(built.completions()), "flows completed")

See ``examples/traffic_churn.py`` for the full walkthrough.
"""

from repro.traffic.population import (  # noqa: F401
    ASSURED_TRANSPORTS,
    apply_slas,
    expand_population,
)
from repro.traffic.samplers import sample_arrivals, sample_size  # noqa: F401
from repro.traffic.specs import (  # noqa: F401
    ARRIVAL_KINDS,
    SIZE_KINDS,
    ArrivalSpec,
    FlowClassSpec,
    PopulationSpec,
    SizeSpec,
)

__all__ = [
    "ARRIVAL_KINDS",
    "ASSURED_TRANSPORTS",
    "SIZE_KINDS",
    "ArrivalSpec",
    "FlowClassSpec",
    "PopulationSpec",
    "SizeSpec",
    "apply_slas",
    "expand_population",
    "sample_arrivals",
    "sample_size",
]
