"""Deterministic samplers behind the population specs.

Pure functions of ``(spec, random.Random)``: every draw comes from the
``rng`` argument and nothing else, so a caller that hands in a
seed-derived stream (the
:func:`~repro.traffic.population.expand_population` discipline) gets
bit-identical samples for the same seed.  Draw *order* is part of the
contract — the determinism tests pin it.
"""

from __future__ import annotations

import random
from typing import List

from repro.traffic.specs import ArrivalSpec, SizeSpec


def sample_arrivals(
    spec: ArrivalSpec, rng: random.Random, horizon: float, n_max: int
) -> List[float]:
    """Arrival times in ``(0, horizon)``, at most ``n_max``, ascending."""
    if spec.kind == "poisson":
        return _poisson(rng, spec.rate_per_s, horizon, n_max)
    if spec.kind == "onoff":
        return _onoff(
            rng, spec.rate_per_s, spec.mean_on, spec.mean_off, horizon, n_max
        )
    return _flash_crowd(
        rng,
        spec.base_rate_per_s,
        spec.peak_rate_per_s,
        spec.ramp_start,
        spec.ramp_duration,
        horizon,
        n_max,
    )


def _poisson(
    rng: random.Random, rate: float, horizon: float, n_max: int
) -> List[float]:
    out: List[float] = []
    t = 0.0
    while len(out) < n_max:
        t += rng.expovariate(rate)
        if t >= horizon:
            break
        out.append(t)
    return out


def _onoff(
    rng: random.Random,
    rate: float,
    mean_on: float,
    mean_off: float,
    horizon: float,
    n_max: int,
) -> List[float]:
    out: List[float] = []
    t = 0.0
    while t < horizon and len(out) < n_max:
        on_end = t + rng.expovariate(1.0 / mean_on)
        while len(out) < n_max:
            t += rng.expovariate(rate)
            if t >= on_end or t >= horizon:
                break
            out.append(t)
        # the overshooting inter-arrival gap is discarded: the next
        # burst restarts the Poisson process after the OFF gap
        t = min(on_end, horizon) + rng.expovariate(1.0 / mean_off)
    return out


def _flash_crowd(
    rng: random.Random,
    base: float,
    peak: float,
    ramp_start: float,
    ramp_duration: float,
    horizon: float,
    n_max: int,
) -> List[float]:
    """Non-homogeneous Poisson via thinning at the peak rate."""
    out: List[float] = []
    t = 0.0
    while len(out) < n_max:
        t += rng.expovariate(peak)
        if t >= horizon:
            break
        if ramp_start <= 0 and ramp_duration <= 0:  # pragma: no cover
            rate = peak
        elif t < ramp_start:
            rate = base
        else:
            rate = base + (peak - base) * min(
                1.0, (t - ramp_start) / ramp_duration
            )
        if rng.random() < rate / peak:
            out.append(t)
    return out


def sample_size(spec: SizeSpec, rng: random.Random) -> int:
    """One flow size in bytes (an integer ``>= 1``)."""
    if spec.kind == "fixed":
        return spec.size_bytes
    if spec.kind == "exponential":
        size = int(rng.expovariate(1.0 / spec.mean_bytes))
        return max(spec.min_bytes, size)
    # truncated Pareto: inverse-CDF with the tail clamped to max_bytes.
    # rng.random() is in [0, 1), so 1 - u is in (0, 1] and u == 0 maps
    # to the scale min_bytes exactly.
    u = rng.random()
    size = spec.min_bytes * (1.0 - u) ** (-1.0 / spec.alpha)
    return max(spec.min_bytes, min(spec.max_bytes, int(size)))
