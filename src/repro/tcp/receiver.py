"""TCP receiver: cumulative ACKs with optional SACK blocks.

ACKs every data segment (ns-2 style; a delayed-ACK option is provided
for ablations).  Delivery to the recorder is per unique segment, which
measures goodput rather than wire throughput.
"""

from __future__ import annotations

from typing import Optional

from repro.metrics.recorder import FlowRecorder
from repro.sack.blocks import ReceiverSackState
from repro.sim.engine import Simulator, Timer
from repro.sim.node import Agent
from repro.sim.packet import Packet, PacketKind, PacketPool, TcpSegmentHeader
from repro.tcp.sender import ACK_SIZE

#: Delayed-ACK flush timeout (RFC 1122 allows up to 500 ms; 200 ms typical).
DELACK_TIMEOUT = 0.2


class TcpReceiver(Agent):
    """TCP receiver endpoint.

    Parameters
    ----------
    sim: simulator.
    recorder: optional delivery recorder (unique segments only).
    sack: include SACK blocks in ACKs (RFC 2018).
    delayed_ack: acknowledge every second segment (100 ms flush timer
        is not modelled; dup-triggering out-of-order segments are still
        ACKed immediately, per RFC 5681).
    """

    def __init__(
        self,
        sim: Simulator,
        recorder: Optional[FlowRecorder] = None,
        sack: bool = False,
        delayed_ack: bool = False,
        sack_block_limit: int = 3,
    ):
        super().__init__(sim)
        self.recorder = recorder
        self.sack = sack
        self.delayed_ack = delayed_ack
        self.sack_block_limit = sack_block_limit
        self.state = ReceiverSackState()
        self._pool = PacketPool.of(sim)
        self._peer = ""
        self._delack_pending = 0
        self._delack_timer = Timer(sim, self._flush_delack)
        self._last_data_ts = 0.0
        self.acks_sent = 0
        self.received_segments = 0

    def receive(self, packet: Packet) -> None:
        """Handle an arriving data segment and emit an ACK."""
        header = packet.header
        if not isinstance(header, TcpSegmentHeader) or header.ack >= 0:
            return
        if not self._peer:
            self._peer = packet.src
        self.received_segments += 1
        in_order_before = self.state.cum_ack
        fresh = self.state.record(header.seq, packet.size)
        if fresh and self.recorder is not None:
            self.recorder.record(self.sim.now, packet)
        out_of_order = header.seq != in_order_before + 1
        timestamp = header.timestamp
        self._last_data_ts = timestamp
        if self._pool is not None:  # segment fully consumed: recycle
            self._pool.release(packet)
        if self.delayed_ack and not out_of_order:
            self._delack_pending += 1
            if self._delack_pending < 2:
                self._delack_timer.restart(DELACK_TIMEOUT)
                return
        self._delack_pending = 0
        self._delack_timer.stop()
        self._send_ack(timestamp)

    def _flush_delack(self) -> None:
        if self._delack_pending:
            self._delack_pending = 0
            self._send_ack(self._last_data_ts)

    def _send_ack(self, timestamp_echo: float) -> None:
        now = self.sim.now
        src = self.node.name if self.node else "?"
        blocks = (
            self.state.blocks(self.sack_block_limit) if self.sack else ()
        )
        size = ACK_SIZE + 8 * len(blocks)
        pool = self._pool
        packet = (
            pool.acquire(
                TcpSegmentHeader, src, self._peer, self.flow_id,
                size, PacketKind.ACK, now,
            )
            if pool is not None
            else None
        )
        if packet is not None:
            header = packet.header
            header.seq = -1
            header.payload = 0
            header.ack = self.state.cum_ack + 1
            header.syn = False
            header.fin = False
            header.sack_blocks = blocks
            header.timestamp = now
            header.timestamp_echo = timestamp_echo
        else:
            packet = Packet(
                src=src,
                dst=self._peer,
                flow_id=self.flow_id,
                size=size,
                kind=PacketKind.ACK,
                header=TcpSegmentHeader(
                    seq=-1,
                    payload=0,
                    ack=self.state.cum_ack + 1,
                    sack_blocks=blocks,
                    timestamp=now,
                    timestamp_echo=timestamp_echo,
                ),
                created_at=now,
            )
            if pool is not None:
                packet.pooled = True
        self.acks_sent += 1
        self.send(packet)
