"""TCP baseline: Reno / NewReno congestion control with optional SACK.

The comparator the paper measures QTPAF against (§4) and the protocol
whose wireless behaviour motivates TFRC (§2).  The model is
segment-granular (like ns-2's Agent/TCP): sequence numbers count
segments, the receiver acknowledges every data segment, and the sender
implements RFC 5681 congestion control, RFC 6582 NewReno recovery,
RFC 6298 retransmission timeouts and, optionally, RFC 2018 SACK-based
recovery via the shared scoreboard.
"""

from repro.tcp.sender import TcpSender
from repro.tcp.receiver import TcpReceiver

__all__ = ["TcpSender", "TcpReceiver"]
