"""TCP sender: Reno/NewReno with optional SACK-based recovery.

Window arithmetic is in segments (floats, so congestion avoidance can
add ``1/cwnd`` per ACK).  The sender is greedy (bulk transfer): it
fills the window whenever ACKs open it.
"""

from __future__ import annotations

from typing import Callable, Optional, Set

from repro.sack.scoreboard import SenderScoreboard
from repro.sim.engine import Simulator, Timer
from repro.sim.node import Agent
from repro.sim.packet import Packet, PacketKind, PacketPool, TcpSegmentHeader
from repro.tfrc.rtt import RtoEstimator

#: Size of a pure ACK on the wire, bytes.
ACK_SIZE = 40

#: Duplicate-ACK threshold for fast retransmit (RFC 5681).
DUPACK_THRESHOLD = 3


class TcpSender(Agent):
    """Bulk-transfer TCP sender.

    Parameters
    ----------
    sim: simulator.
    dst: receiver's node name.
    segment_size: payload bytes per segment.
    newreno: stay in fast recovery across partial ACKs (RFC 6582);
        False gives plain Reno.
    sack: drive retransmissions from the SACK scoreboard when the
        receiver supplies blocks.
    initial_cwnd: initial window in segments (RFC 3390 default of ~3
        for 1000-byte segments).
    max_cwnd: optional receiver/window clamp, segments.
    min_rto: RTO floor in seconds (simulation convention 0.2 s).
    size_bytes: optional finite byte budget.  The sender transmits
        ``ceil(size_bytes / segment_size)`` segments of new data, stops
        itself once the last one is cumulatively acknowledged, stamps
        ``completed_at`` and fires ``on_complete`` (the flow-lifecycle
        hook).  ``None`` keeps the historical unbounded bulk sender.
    """

    def __init__(
        self,
        sim: Simulator,
        dst: str,
        segment_size: int = 1000,
        newreno: bool = True,
        sack: bool = False,
        initial_cwnd: float = 3.0,
        max_cwnd: Optional[float] = None,
        min_rto: float = 0.2,
        size_bytes: Optional[int] = None,
    ):
        super().__init__(sim)
        self.dst = dst
        self.segment_size = segment_size
        self.newreno = newreno
        self.sack = sack
        self.cwnd = float(initial_cwnd)
        self.initial_cwnd = float(initial_cwnd)
        self.ssthresh = float("inf")
        self.max_cwnd = max_cwnd
        self.snd_una = 0
        self.snd_nxt = 0
        self._dup_acks = 0
        self._in_recovery = False
        self._recover = -1
        self.rto = RtoEstimator(min_rto=min_rto)
        self._rto_timer = Timer(sim, self._on_rto)
        self._retransmitted: Set[int] = set()
        self.scoreboard = SenderScoreboard()
        self._pool = PacketPool.of(sim)
        self._running = False
        if size_bytes is not None and size_bytes <= 0:
            raise ValueError("size_bytes must be positive (or None)")
        self._max_segments = (
            -(-size_bytes // segment_size) if size_bytes is not None else None
        )
        self.size_bytes = size_bytes
        self.completed_at: Optional[float] = None
        self.on_complete: Optional[Callable[["TcpSender"], None]] = None
        self.sent_segments = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.fast_retransmits = 0
        self.cwnd_log: list[tuple[float, float]] = []

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Open the connection (model: start sending immediately)."""
        if self._running:
            return
        self._running = True
        self._fill_window()

    def stop(self) -> None:
        """Stop transmitting and cancel the RTO timer."""
        self._running = False
        self._rto_timer.stop()

    # ------------------------------------------------------------------
    @property
    def flight_size(self) -> int:
        """Segments in flight (sent, not cumulatively acked)."""
        return self.snd_nxt - self.snd_una

    def _pipe(self) -> float:
        """In-flight estimate that also counts retransmissions.

        With SACK this is the scoreboard's RFC 6675 pipe; without, the
        classic ``snd_nxt - snd_una``.
        """
        if self.sack:
            return self.scoreboard.pipe()
        return self.flight_size

    def _window(self) -> float:
        w = self.cwnd
        if self.max_cwnd is not None:
            w = min(w, self.max_cwnd)
        return w

    def _fill_window(self) -> None:
        if not self._running:
            return
        # SACK recovery: repair known holes before sending new data
        if self.sack and self._in_recovery:
            for record in self.scoreboard.retransmission_candidates():
                if self._pipe() >= self._window():
                    break
                self._retransmit(record.seq)
        limit = self._max_segments
        while self._pipe() < self._window():
            if limit is not None and self.snd_nxt >= limit:
                break  # byte budget: no new data beyond the last segment
            self._transmit(self.snd_nxt, fresh=True)
            self.snd_nxt += 1
        if self._awaiting_ack() and not self._rto_timer.armed:
            self._rto_timer.restart(self.rto.rto())

    def _awaiting_ack(self) -> bool:
        """True while any data still needs acknowledgment.

        ``snd_nxt - snd_una`` alone is wrong with SACK: after a
        go-back-N rewind the two coincide while dropped retransmissions
        still sit in the scoreboard — the RTO must stay armed for them.
        """
        return self.flight_size > 0 or self.scoreboard.outstanding > 0

    def _transmit(self, seq: int, fresh: bool) -> None:
        now = self.sim.now
        src = self.node.name if self.node else "?"
        pool = self._pool
        packet = (
            pool.acquire(
                TcpSegmentHeader, src, self.dst, self.flow_id,
                self.segment_size, PacketKind.DATA, now,
            )
            if pool is not None
            else None
        )
        if packet is not None:
            header = packet.header
            header.seq = seq
            header.payload = self.segment_size
            header.ack = -1
            header.syn = False
            header.fin = False
            header.sack_blocks = ()
            header.timestamp = now
            header.timestamp_echo = 0.0
        else:
            packet = Packet(
                src=src,
                dst=self.dst,
                flow_id=self.flow_id,
                size=self.segment_size,
                kind=PacketKind.DATA,
                header=TcpSegmentHeader(
                    seq=seq, payload=self.segment_size, timestamp=now
                ),
                created_at=now,
            )
            if pool is not None:
                packet.pooled = True
        if fresh:
            self.scoreboard.on_send(seq, self.segment_size, self.sim.now)
        else:
            self.scoreboard.on_retransmit(
                seq, self.sim.now, highest_sent=self.snd_nxt - 1
            )
        self.sent_segments += 1
        self.send(packet)

    def _retransmit(self, seq: int) -> None:
        self._retransmitted.add(seq)
        self.retransmissions += 1
        self._transmit(seq, fresh=False)

    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        """Process an ACK segment."""
        header = packet.header
        if not isinstance(header, TcpSegmentHeader) or header.ack < 0:
            return
        ack = header.ack  # next expected segment
        if self.sack and header.sack_blocks:
            self.scoreboard.on_feedback(ack - 1, header.sack_blocks, self.sim.now)
        else:
            self.scoreboard.on_feedback(ack - 1, (), self.sim.now)
        if ack > self.snd_una:
            self._on_new_ack(ack, header)
        elif ack == self.snd_una and self.flight_size > 0:
            self._on_dup_ack()
        self._fill_window()
        self.cwnd_log.append((self.sim.now, self.cwnd))
        if self._pool is not None:  # ACK fully consumed: recycle
            self._pool.release(packet)

    def _on_new_ack(self, ack: int, header: TcpSegmentHeader) -> None:
        newly_acked = ack - self.snd_una
        self.snd_una = ack
        if self.snd_nxt < self.snd_una:
            # a spurious RTO rewound snd_nxt and the original ACKs then
            # overtook it: never (re)send below the cumulative ack
            self.snd_nxt = self.snd_una
        if (
            self._max_segments is not None
            and self.snd_una >= self._max_segments
        ):
            # the cumulative ack covers the whole byte budget (nothing
            # above it was ever sent): the flow is done
            self._complete()
            return
        # Karn: only sample RTT for never-retransmitted segments
        if header.timestamp_echo > 0 and (ack - 1) not in self._retransmitted:
            self.rto.update(self.sim.now - header.timestamp_echo)
        if self._in_recovery:
            if ack > self._recover:
                self._exit_recovery()
            elif self.sack:
                # RFC 6675: repair is scoreboard-driven (pipe < cwnd in
                # _fill_window); stay in recovery until the full ACK
                self._rto_timer.restart(self.rto.rto())
                return
            elif self.newreno:
                # partial ACK: retransmit the next hole, deflate
                self._retransmit(self.snd_una)
                self.cwnd = max(1.0, self.cwnd - newly_acked + 1.0)
                self._rto_timer.restart(self.rto.rto())
                return
            else:
                self._exit_recovery()
        self._dup_acks = 0
        self._grow_cwnd(newly_acked)
        if self._awaiting_ack():
            self._rto_timer.restart(self.rto.rto())
        else:
            self._rto_timer.stop()

    def _grow_cwnd(self, newly_acked: int) -> None:
        for _ in range(newly_acked):
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0  # slow start
            else:
                self.cwnd += 1.0 / self.cwnd  # congestion avoidance

    def _on_dup_ack(self) -> None:
        self._dup_acks += 1
        if self._in_recovery:
            if not self.sack:
                self.cwnd += 1.0  # Reno window inflation
            # with SACK, the pipe shrinking plays inflation's role
        elif self._dup_acks == DUPACK_THRESHOLD:
            self._enter_recovery()

    def _enter_recovery(self) -> None:
        self.ssthresh = max(self._pipe() / 2.0, 2.0)
        self._in_recovery = True
        self._recover = self.snd_nxt
        self.fast_retransmits += 1
        self._retransmit(self.snd_una)
        if self.sack:
            self.cwnd = self.ssthresh  # RFC 6675: pipe-limited sending
        else:
            self.cwnd = self.ssthresh + DUPACK_THRESHOLD
        self._rto_timer.restart(self.rto.rto())

    def _exit_recovery(self) -> None:
        self._in_recovery = False
        self.cwnd = self.ssthresh
        self._dup_acks = 0

    def _complete(self) -> None:
        if self.completed_at is not None:
            return
        self.completed_at = self.sim.now
        self.stop()
        if self.on_complete is not None:
            self.on_complete(self)

    # ------------------------------------------------------------------
    def _on_rto(self) -> None:
        if not self._running or not self._awaiting_ack():
            return
        self.timeouts += 1
        self.ssthresh = max(self.flight_size / 2.0, 2.0)
        self.cwnd = 1.0
        self._dup_acks = 0
        self._in_recovery = False
        self.rto.backoff()
        # go-back-N: everything unSACKed is presumed lost and will be
        # re-sent from the first unacked segment
        self.scoreboard.mark_outstanding_lost()
        self.snd_nxt = self.snd_una
        self._retransmitted.add(self.snd_una)
        self.retransmissions += 1
        self._fill_window()
        self._rto_timer.restart(self.rto.rto())
