"""TFRC sender rate state machine (RFC 3448 §4).

:class:`TfrcRateController` is a pure (simulator-free) state machine:
the agent feeds it feedback reports and timer expirations, and reads
back the allowed sending rate and the next nofeedback interval.  All
rates are **bytes per second**.

Slow-start doubles the rate at most once per RTT, capped by twice the
receive rate; once the first loss event is reported, the rate follows
the TCP throughput equation capped by ``2 * X_recv``; the nofeedback
timer halves the rate when reports stop arriving.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.tfrc.equation import tcp_throughput
from repro.tfrc.rtt import RttEstimator

#: Maximum back-off interval of §4.3: one packet per 64 seconds.
T_MBI = 64.0


class TfrcRateController:
    """RFC 3448 sender-side rate computation.

    Parameters
    ----------
    segment_size:
        Segment size ``s`` in bytes used in the throughput equation.
    initial_packet_interval:
        Rate before the first feedback: one packet per this many
        seconds (§4.2 mandates starting at one packet per second).
    """

    def __init__(
        self,
        segment_size: int = 1000,
        initial_packet_interval: float = 1.0,
        oscillation_damping: bool = False,
    ):
        if segment_size <= 0:
            raise ValueError("segment size must be positive")
        self.s = segment_size
        self.rtt = RttEstimator()
        self.rate = segment_size / initial_packet_interval  # bytes/s
        self.p = 0.0
        self.x_recv = 0.0
        self._t_last_double: Optional[float] = None
        self._had_first_feedback = False
        self.feedback_count = 0
        self.timeout_count = 0
        #: §4.5 oscillation prevention: modulate the inter-packet
        #: interval by sqrt(R_sample / R_sqmean) so that rising queueing
        #: delay immediately slows the sender
        self.oscillation_damping = oscillation_damping
        self._rtt_sqmean: Optional[float] = None
        self._last_rtt_sample: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def in_slow_start(self) -> bool:
        """True while no loss event has been reported (``p == 0``)."""
        return self.p <= 0.0

    def initial_window_rate(self, rtt: float) -> float:
        """RFC 3390 initial rate: ``min(4s, max(2s, 4380)) / R`` bytes/s."""
        w_init = min(4 * self.s, max(2 * self.s, 4380))
        return w_init / rtt

    # ------------------------------------------------------------------
    def on_feedback(
        self,
        now: float,
        p: float,
        x_recv: float,
        rtt_sample: float,
    ) -> float:
        """Process one receiver report; returns the new allowed rate.

        Parameters
        ----------
        p: loss event rate reported (or computed sender-side).
        x_recv: receive rate over the last feedback interval, bytes/s.
        rtt_sample: RTT measured from the report's timestamp echo.
        """
        self.feedback_count += 1
        rtt = self.rtt.update(rtt_sample)
        self._last_rtt_sample = rtt_sample
        if self._rtt_sqmean is None:
            self._rtt_sqmean = math.sqrt(rtt_sample)
        else:
            # EWMA of sqrt(RTT) with the §4.5 suggested gain
            self._rtt_sqmean = (
                0.9 * self._rtt_sqmean + 0.1 * math.sqrt(rtt_sample)
            )
        self.p = max(0.0, p)
        self.x_recv = max(0.0, x_recv)
        if not self._had_first_feedback:
            self._had_first_feedback = True
            self.rate = self.initial_window_rate(rtt)
            self._t_last_double = now
            if self.p > 0:
                self._apply_equation(rtt)
            return self.rate
        if self.p > 0:
            self._apply_equation(rtt)
        else:
            self._slow_start_step(now, rtt)
        return self.rate

    def _apply_equation(self, rtt: float) -> None:
        x_calc = tcp_throughput(self.s, rtt, self.p)
        cap = 2.0 * self.x_recv if self.x_recv > 0 else x_calc
        self.rate = max(min(x_calc, cap), self.s / T_MBI)

    def _slow_start_step(self, now: float, rtt: float) -> None:
        # §4.3: "X = max(min(2*X, 2*X_recv), s/R)", at most one doubling
        # per RTT.  With X_recv = 0 (no data received over the last
        # interval) this collapses to one packet per RTT — the receive
        # rate is the hard cap, never the sender's own previous rate.
        if self._t_last_double is not None and now - self._t_last_double < rtt:
            self.rate = max(min(self.rate, 2.0 * self.x_recv), self.s / rtt)
            return
        self.rate = max(min(2.0 * self.rate, 2.0 * self.x_recv), self.s / rtt)
        self._t_last_double = now

    # ------------------------------------------------------------------
    def on_nofeedback_timeout(self, now: float) -> float:
        """Halve the rate after a nofeedback interval (§4.4)."""
        self.timeout_count += 1
        if self.x_recv > 0:
            # emulate the RFC's X_recv halving: cap at half the old receive rate
            self.x_recv /= 2.0
        self.rate = max(self.rate / 2.0, self.s / T_MBI)
        return self.rate

    def nofeedback_interval(self) -> float:
        """Duration to arm the nofeedback timer for: ``max(4R, 2s/X)``."""
        if self.rtt.valid:
            assert self.rtt.rtt is not None
            return max(4.0 * self.rtt.rtt, 2.0 * self.s / self.rate)
        return 2.0  # before any RTT measurement (§4.2)

    def send_interval(self) -> float:
        """Inter-packet gap for paced sending: ``s / X`` seconds.

        With :attr:`oscillation_damping`, the instantaneous interval is
        scaled by ``sqrt(R_sample) / sqrt_mean(R)`` (§4.5): when the
        latest RTT sample exceeds its long-run mean (queue building),
        packets are spaced further apart without touching the average
        allowed rate.
        """
        if self.rate <= 0 or math.isinf(self.rate):
            raise ValueError(f"invalid rate {self.rate!r}")
        interval = self.s / self.rate
        if (
            self.oscillation_damping
            and self._rtt_sqmean
            and self._last_rtt_sample is not None
        ):
            ratio = math.sqrt(self._last_rtt_sample) / self._rtt_sqmean
            interval *= min(2.0, max(0.5, ratio))
        return interval

    @property
    def current_rtt(self) -> Optional[float]:
        """Smoothed RTT estimate (None before the first sample)."""
        return self.rtt.rtt
