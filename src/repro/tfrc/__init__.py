"""TFRC — TCP-Friendly Rate Control per RFC 3448, plus gTFRC.

Layered as pure state machines wrapped by thin simulator agents:

* :mod:`repro.tfrc.equation` — the TCP throughput equation (§3.1);
* :mod:`repro.tfrc.rtt` — RTT/RTO estimation (§4.3);
* :mod:`repro.tfrc.loss_history` — loss-event detection and the
  weighted-average loss interval (§5), usable on either endpoint
  (receiver-side as in the RFC, or sender-side as in QTPlight);
* :mod:`repro.tfrc.rate_control` — the sender rate state machine (§4);
* :mod:`repro.tfrc.sender` / :mod:`repro.tfrc.receiver` — simulator
  agents implementing the stock RFC 3448 protocol;
* :mod:`repro.tfrc.gtfrc` — the QoS-aware guaranteed-rate extension
  used by QTPAF (§4 of the paper; Lochin et al. IETF draft).
"""

from repro.tfrc.equation import tcp_throughput, solve_loss_rate
from repro.tfrc.loss_history import LossEventEstimator, LossIntervalHistory
from repro.tfrc.rate_control import TfrcRateController
from repro.tfrc.rtt import RttEstimator
from repro.tfrc.receiver import TfrcReceiver
from repro.tfrc.sender import TfrcSender
from repro.tfrc.gtfrc import GtfrcRateController

__all__ = [
    "tcp_throughput",
    "solve_loss_rate",
    "LossIntervalHistory",
    "LossEventEstimator",
    "RttEstimator",
    "TfrcRateController",
    "GtfrcRateController",
    "TfrcSender",
    "TfrcReceiver",
]
