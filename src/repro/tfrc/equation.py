"""The TCP throughput equation (RFC 3448 §3.1).

``X = s / (R*sqrt(2*b*p/3) + t_RTO * (3*sqrt(3*b*p/8)) * p * (1 + 32*p**2))``

where ``s`` is the segment size (bytes), ``R`` the round-trip time,
``p`` the loss event rate, ``b`` the number of packets acknowledged per
ACK and ``t_RTO ≈ 4R``.  This is the Padhye et al. (SIGCOMM'98) response
function; TFRC sends at the rate a conformant TCP would achieve under
the same loss/RTT conditions, which is the paper's definition of
TCP-friendliness.
"""

from __future__ import annotations

import math


def tcp_throughput(
    s: float,
    rtt: float,
    p: float,
    t_rto: float | None = None,
    b: float = 1.0,
) -> float:
    """TCP-equation sending rate in **bytes per second**.

    Parameters
    ----------
    s: segment size in bytes.
    rtt: round-trip time in seconds (must be positive).
    p: loss event rate in (0, 1].
    t_rto: retransmission timeout; defaults to ``4 * rtt`` per RFC 3448.
    b: packets acknowledged per ACK (1 without delayed ACKs).

    Returns
    -------
    float
        The equation rate; ``math.inf`` when ``p`` is zero or negative
        (the equation only constrains the rate once loss is observed).
    """
    if rtt <= 0:
        raise ValueError("rtt must be positive")
    if p <= 0:
        return math.inf
    p = min(p, 1.0)
    if t_rto is None:
        t_rto = 4.0 * rtt
    root_term = rtt * math.sqrt(2.0 * b * p / 3.0)
    rto_term = t_rto * (3.0 * math.sqrt(3.0 * b * p / 8.0)) * p * (1.0 + 32.0 * p * p)
    return s / (root_term + rto_term)


def solve_loss_rate(
    s: float,
    rtt: float,
    target_rate: float,
    b: float = 1.0,
    tolerance: float = 1e-9,
) -> float:
    """Invert the equation: the loss event rate that yields ``target_rate``.

    Used by equation-based marking baselines and by tests as an oracle
    (the equation is strictly decreasing in ``p``, so bisection on
    ``p ∈ (0, 1]`` converges).

    Parameters
    ----------
    target_rate: desired rate in bytes/s (must be positive).

    Returns
    -------
    float
        ``p`` such that ``tcp_throughput(s, rtt, p) ≈ target_rate``,
        clamped to 1.0 when even ``p = 1`` exceeds the target.
    """
    if target_rate <= 0:
        raise ValueError("target_rate must be positive")
    lo, hi = 0.0, 1.0
    if tcp_throughput(s, rtt, hi, b=b) >= target_rate:
        return 1.0
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if mid <= 0.0:
            break
        if tcp_throughput(s, rtt, mid, b=b) > target_rate:
            lo = mid
        else:
            hi = mid
        if hi - lo < tolerance:
            break
    return hi
