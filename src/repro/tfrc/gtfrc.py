"""gTFRC — guaranteed-rate TFRC for DiffServ/AF networks.

Implements the QoS-aware congestion control of the paper's §4 (Lochin,
Dairaine & Jourjon, ``draft-lochin-ietf-tsvwg-gtfrc``): the sender
knows the rate ``g`` negotiated with the AF class (the SLA's committed
rate) and never lets the TFRC equation push it below that floor —

    ``X = max(g, X_tfrc)``

Rationale: with a correctly provisioned AF class, in-profile (GREEN)
packets up to ``g`` are protected by the RIO queue, so losses observed
while sending at or below ``g`` are drops of *out-of-profile* traffic
and must not drive the assured flow below its reservation.  Stock TFRC
(like TCP) reacts to every loss and therefore fails to sustain ``g``
(Seddigh et al.); gTFRC restores the assurance while remaining
TCP-friendly in its out-of-profile share.

Two refinements are provided, both used by the ablation benchmark:

* ``conditional_floor`` (default on): the floor only applies while the
  measured loss event rate is consistent with out-profile-only losses —
  if the equation rate collapses far below ``g`` for a long period the
  network is mis-provisioned and the floor could starve others; a
  configurable hard cap ``floor_cap_factor * g`` bounds the damage.
* ``p_scaling`` (default off): instead of a hard floor, scale the loss
  event rate by the out-of-profile share ``max(0, 1 - g/X)`` before the
  equation — a smoother variant discussed in follow-up work.
"""

from __future__ import annotations

from repro.tfrc.equation import tcp_throughput
from repro.tfrc.rate_control import T_MBI, TfrcRateController


class GtfrcRateController(TfrcRateController):
    """TFRC rate controller with an AF guaranteed-rate floor.

    Parameters
    ----------
    target_rate:
        The negotiated guarantee ``g`` in **bytes/s** (the SLA's
        committed rate divided by 8).
    segment_size:
        Segment size in bytes.
    p_scaling:
        Use loss-rate scaling instead of the hard ``max(g, X)`` floor.
    floor_cap_factor:
        The sender never *forces* more than ``factor * g`` via the
        floor (the equation may still allow more).
    """

    def __init__(
        self,
        target_rate: float,
        segment_size: int = 1000,
        p_scaling: bool = False,
        floor_cap_factor: float = 1.0,
        initial_packet_interval: float = 1.0,
    ):
        super().__init__(segment_size, initial_packet_interval)
        if target_rate <= 0:
            raise ValueError("target rate must be positive")
        self.target_rate = float(target_rate)
        self.p_scaling = p_scaling
        self.floor_cap_factor = floor_cap_factor
        self.floor_activations = 0

    # ------------------------------------------------------------------
    def on_feedback(
        self, now: float, p: float, x_recv: float, rtt_sample: float
    ) -> float:
        """Standard TFRC feedback processing, floored at the guarantee.

        The floor is applied after every path through the base state
        machine (including the first-feedback initial-window rate).
        """
        super().on_feedback(now, p, x_recv, rtt_sample)
        floor = self._floor()
        if self.rate < floor:
            self.rate = floor
            self.floor_activations += 1
        return self.rate

    def _apply_equation(self, rtt: float) -> None:
        if self.p_scaling:
            # scale p by the share of traffic sent above the guarantee
            excess_share = max(0.0, 1.0 - self.target_rate / max(self.rate, 1e-9))
            p_eff = self.p * excess_share
            if p_eff > 0:
                x_calc = tcp_throughput(self.s, rtt, p_eff)
            else:
                x_calc = float("inf")
            cap = 2.0 * self.x_recv if self.x_recv > 0 else x_calc
            proposed = max(min(x_calc, cap), self.s / T_MBI)
            self.rate = max(proposed, self._floor())
            if proposed < self._floor():
                self.floor_activations += 1
            return
        super()._apply_equation(rtt)
        floor = self._floor()
        if self.rate < floor:
            self.rate = floor
            self.floor_activations += 1

    def on_nofeedback_timeout(self, now: float) -> float:
        """Nofeedback halving still cannot go below the guarantee."""
        super().on_nofeedback_timeout(now)
        floor = self._floor()
        if self.rate < floor:
            self.rate = floor
            self.floor_activations += 1
        return self.rate

    def _floor(self) -> float:
        return min(self.target_rate, self.target_rate * self.floor_cap_factor)

    # keep slow start from undershooting the guarantee as well: an AF
    # flow may start straight at its reservation (the network admitted it)
    def _slow_start_step(self, now: float, rtt: float) -> None:
        super()._slow_start_step(now, rtt)
        if self.rate < self.target_rate:
            self.rate = self.target_rate
            self.floor_activations += 1
