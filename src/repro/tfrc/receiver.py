"""Stock RFC 3448 TFRC receiver agent.

Runs the full §5/§6 receiver machinery: loss-event detection, the
weighted loss-interval history, receive-rate measurement, one feedback
per RTT plus immediate feedback on a new loss event, and the §6.3.1
synthetic first interval.

This is deliberately the *heavyweight* receiver whose per-packet cost
QTPlight removes (experiment T3); it charges an injectable
:class:`~repro.metrics.cost.CostMeter`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.metrics.cost import CostMeter
from repro.metrics.recorder import FlowRecorder
from repro.sim.engine import Simulator, Timer
from repro.sim.node import Agent
from repro.sim.packet import (
    Packet,
    PacketKind,
    PacketPool,
    TfrcDataHeader,
    TfrcFeedbackHeader,
)
from repro.tfrc.equation import solve_loss_rate
from repro.tfrc.loss_history import LossEventEstimator
from repro.tfrc.sender import FEEDBACK_SIZE


class TfrcReceiver(Agent):
    """RFC 3448 receiver endpoint.

    Parameters
    ----------
    sim: simulator.
    recorder: optional :class:`FlowRecorder` fed with every delivery.
    meter: optional cost meter charged for receiver-side work (T3).
    on_deliver: optional app callback ``fn(packet)``.
    """

    def __init__(
        self,
        sim: Simulator,
        recorder: Optional[FlowRecorder] = None,
        meter: Optional[CostMeter] = None,
        on_deliver: Optional[Callable[[Packet], None]] = None,
    ):
        super().__init__(sim)
        self.recorder = recorder
        self.meter = meter
        self.on_deliver = on_deliver
        self.estimator = LossEventEstimator(
            meter=meter, first_interval_fn=self._synthetic_first_interval
        )
        self._feedback_timer = Timer(sim, self._on_feedback_timer)
        self._pool = PacketPool.of(sim)
        self._rtt_hint = 0.0
        self._segment_size = 1000
        self._last_data_ts = 0.0
        self._last_data_arrival = 0.0
        self._bytes_since_feedback = 0
        self._last_feedback_time: Optional[float] = None
        self._x_recv = 0.0
        self.feedback_sent = 0
        self.received_packets = 0

    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        """Handle an arriving data packet."""
        header = packet.header
        if not isinstance(header, TfrcDataHeader):
            return
        self.received_packets += 1
        if not self._peer_name:
            self._peer_name = packet.src
        self._segment_size = packet.size
        self._rtt_hint = header.rtt_estimate
        self._last_data_ts = header.timestamp
        self._last_data_arrival = self.sim.now
        self._bytes_since_feedback += packet.size
        new_event = self.estimator.on_packet(
            header.seq, self.sim.now, max(header.rtt_estimate, 1e-6)
        )
        if self.recorder is not None:
            self.recorder.record(self.sim.now, packet)
        if self.on_deliver is not None:
            self.on_deliver(packet)
        if self._pool is not None:
            # terminal sink: recycle unless the app callback claimed the
            # packet via Packet.retain() (which makes this a no-op)
            self._pool.release(packet)
        if self._last_feedback_time is None or new_event:
            # first packet, or a fresh loss event: report immediately (§6.2)
            self._send_feedback()
        elif not self._feedback_timer.armed:
            self._feedback_timer.restart(self._feedback_interval())

    # ------------------------------------------------------------------
    def _feedback_interval(self) -> float:
        # one report per RTT; before the sender has an RTT estimate the
        # data header carries 0, so fall back to a short bootstrap timer
        return self._rtt_hint if self._rtt_hint > 0 else 0.05

    def _measure_x_recv(self) -> float:
        if self._last_feedback_time is None:
            return self._x_recv
        interval = self.sim.now - self._last_feedback_time
        if interval < 1e-3:
            # immediate (loss-triggered) report right after a timed one:
            # too short a window to measure a rate, keep the previous value
            return self._x_recv
        return self._bytes_since_feedback / interval

    def _synthetic_first_interval(self) -> Optional[float]:
        """§6.3.1: seed the history from the pre-loss receive rate."""
        rtt = self._rtt_hint
        rate = self._x_recv if self._x_recv > 0 else self._measure_x_recv()
        if rtt <= 0 or rate <= 0:
            return None
        p = solve_loss_rate(self._segment_size, rtt, rate)
        if p <= 0:
            return None
        return 1.0 / p

    def _on_feedback_timer(self) -> None:
        # RFC 3448 §6: if no data arrived since the last report, stay
        # quiet (the sender's nofeedback timer will throttle); the timer
        # re-arms on the next data arrival.
        if self._bytes_since_feedback == 0:
            return
        self._send_feedback()

    def _send_feedback(self) -> None:
        if self.node is None or self.received_packets == 0:
            return
        now = self.sim.now
        self._x_recv = self._measure_x_recv()
        pool = self._pool
        # the feedback's destination is the data packets' source flow
        packet = (
            pool.acquire(
                TfrcFeedbackHeader, self.node.name, self._peer_name,
                self.flow_id, FEEDBACK_SIZE, PacketKind.FEEDBACK, now,
            )
            if pool is not None
            else None
        )
        if packet is not None:
            header = packet.header
            header.timestamp_echo = self._last_data_ts
            header.elapsed = now - self._last_data_arrival
            header.x_recv = self._x_recv
            header.p = self.estimator.loss_event_rate()
            header.last_seq = self.estimator.max_seq
        else:
            packet = Packet(
                src=self.node.name,
                dst=self._peer_name,
                flow_id=self.flow_id,
                size=FEEDBACK_SIZE,
                kind=PacketKind.FEEDBACK,
                header=TfrcFeedbackHeader(
                    timestamp_echo=self._last_data_ts,
                    elapsed=now - self._last_data_arrival,
                    x_recv=self._x_recv,
                    p=self.estimator.loss_event_rate(),
                    last_seq=self.estimator.max_seq,
                ),
                created_at=now,
            )
            if pool is not None:
                packet.pooled = True
        self.send(packet)
        self.feedback_sent += 1
        self._bytes_since_feedback = 0
        self._last_feedback_time = self.sim.now
        self._feedback_timer.restart(self._feedback_interval())

    # ------------------------------------------------------------------
    _peer_name: str = ""

    def set_peer(self, node_name: str) -> None:
        """Tell the receiver where to send reports (the sender's node)."""
        self._peer_name = node_name

    def stop(self) -> None:
        """Cancel the feedback timer."""
        self._feedback_timer.stop()

    @property
    def loss_event_rate(self) -> float:
        """Receiver's current loss event rate estimate."""
        return self.estimator.loss_event_rate()
