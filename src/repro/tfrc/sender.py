"""Stock RFC 3448 TFRC sender agent.

Paces fixed-size data packets at the controller's allowed rate, stamps
each with its send time and the current RTT estimate, processes
receiver reports and runs the nofeedback timer.  The sender is
bulk-source by default (always has data); media-limited senders are
built in :mod:`repro.core` by composition.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import Simulator, Timer
from repro.sim.node import Agent
from repro.sim.packet import (
    Packet,
    PacketKind,
    PacketPool,
    TfrcDataHeader,
    TfrcFeedbackHeader,
)
from repro.tfrc.rate_control import TfrcRateController

#: Size of a TFRC feedback packet on the wire (bytes).
FEEDBACK_SIZE = 40


class TfrcSender(Agent):
    """RFC 3448 sender endpoint.

    Parameters
    ----------
    sim: simulator.
    dst: destination node name (the receiver's node).
    segment_size: data packet size in bytes.
    controller: rate controller; a fresh :class:`TfrcRateController`
        (or the gTFRC subclass) — defaults to stock TFRC.
    size_bytes: optional finite byte budget.  TFRC has no reliability
        service, so completion is send-based: after the transmission
        that exhausts the budget the sender stops itself, stamps
        ``completed_at`` and fires ``on_complete``.
    """

    def __init__(
        self,
        sim: Simulator,
        dst: str,
        segment_size: int = 1000,
        controller: Optional[TfrcRateController] = None,
        size_bytes: Optional[int] = None,
    ):
        super().__init__(sim)
        self.dst = dst
        self.segment_size = segment_size
        self.controller = controller or TfrcRateController(segment_size)
        self.next_seq = 0
        self.sent_packets = 0
        self.sent_bytes = 0
        self.feedback_received = 0
        self._running = False
        self._send_event = None
        self._last_send_time = 0.0
        self._nofeedback = Timer(sim, self._on_nofeedback)
        self._pool = PacketPool.of(sim)
        if size_bytes is not None and size_bytes <= 0:
            raise ValueError("size_bytes must be positive (or None)")
        self.size_bytes = size_bytes
        self.completed_at: Optional[float] = None
        self.on_complete: Optional[Callable[["TfrcSender"], None]] = None
        self.rate_log: list[tuple[float, float]] = []

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin paced transmission."""
        if self._running:
            return
        self._running = True
        self._nofeedback.restart(self.controller.nofeedback_interval())
        self._send_next()

    def stop(self) -> None:
        """Stop sending and cancel timers."""
        self._running = False
        if self._send_event is not None:
            self._send_event.cancel()
            self._send_event = None
        self._nofeedback.stop()

    # ------------------------------------------------------------------
    def _send_next(self) -> None:
        self._send_event = None
        if not self._running:
            return
        self._last_send_time = self.sim.now
        self._transmit_one()
        if self.size_bytes is not None and self.sent_bytes >= self.size_bytes:
            # send-based completion: the budget's last packet just left
            self.completed_at = self.sim.now
            self.stop()
            if self.on_complete is not None:
                self.on_complete(self)
            return
        self._send_event = self.sim.schedule(
            self.controller.send_interval(), self._send_next
        )

    def _reschedule_send(self) -> None:
        """Re-pace the pending transmission after a rate increase."""
        if not self._running or self._send_event is None:
            return
        due = max(
            self.sim.now, self._last_send_time + self.controller.send_interval()
        )
        if due >= self._send_event.time:
            return
        self._send_event.cancel()
        self._send_event = self.sim.schedule_at(due, self._send_next)

    def _transmit_one(self) -> None:
        now = self.sim.now
        src = self.node.name if self.node else "?"
        rtt = self.controller.current_rtt or 0.0
        pool = self._pool
        packet = (
            pool.acquire(
                TfrcDataHeader, src, self.dst, self.flow_id,
                self.segment_size, PacketKind.DATA, now,
            )
            if pool is not None
            else None
        )
        if packet is not None:
            header = packet.header
            header.seq = self.next_seq
            header.timestamp = now
            header.rtt_estimate = rtt
            header.forward_ack = 0
        else:
            packet = Packet(
                src=src,
                dst=self.dst,
                flow_id=self.flow_id,
                size=self.segment_size,
                kind=PacketKind.DATA,
                header=TfrcDataHeader(
                    seq=self.next_seq, timestamp=now, rtt_estimate=rtt
                ),
                created_at=now,
            )
            if pool is not None:
                packet.pooled = True  # recyclable at its terminal sink
        self.next_seq += 1
        self.sent_packets += 1
        self.sent_bytes += packet.size
        self.send(packet)

    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        """Process a receiver report."""
        header = packet.header
        if not isinstance(header, TfrcFeedbackHeader):
            return
        self.feedback_received += 1
        rtt_sample = self.sim.now - header.timestamp_echo - header.elapsed
        if rtt_sample <= 0:
            rtt_sample = 1e-6
        self.controller.on_feedback(
            self.sim.now, header.p, header.x_recv, rtt_sample
        )
        self.rate_log.append((self.sim.now, self.controller.rate))
        self._nofeedback.restart(self.controller.nofeedback_interval())
        self._reschedule_send()
        if self._pool is not None:  # report fully consumed: recycle
            self._pool.release(packet)

    def _on_nofeedback(self) -> None:
        if not self._running:
            return
        self.controller.on_nofeedback_timeout(self.sim.now)
        self.rate_log.append((self.sim.now, self.controller.rate))
        self._nofeedback.restart(self.controller.nofeedback_interval())

    @property
    def rate(self) -> float:
        """Current allowed sending rate, bytes/s."""
        return self.controller.rate
