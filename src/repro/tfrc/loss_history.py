"""Loss-event detection and the weighted-average loss interval (RFC 3448 §5).

Two classes:

* :class:`LossIntervalHistory` — the pure data structure: the last ``n``
  closed loss intervals, the open interval, and the weighted average
  with the RFC's ``1, 1, 1, 1, 0.8, 0.6, 0.4, 0.2`` weights, including
  the rule that the open interval is only counted when doing so
  *decreases* the loss event rate (§5.4).

* :class:`LossEventEstimator` — arrival-driven loss detection: a packet
  is declared lost once ``ndupack`` (3) packets with higher sequence
  numbers have arrived (§5.1); losses within one RTT of the start of a
  loss event belong to that event (§5.2).

The estimator is the component whose per-packet cost the paper's
QTPlight moves off the receiver; both classes charge an injectable
:class:`~repro.metrics.cost.CostMeter` so experiment T3 can compare the
work against the QTPlight receiver's SACK bookkeeping.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.metrics.cost import CostMeter, NullMeter

#: RFC 3448 §5.4 weights, most recent interval first.
RFC3448_WEIGHTS = (1.0, 1.0, 1.0, 1.0, 0.8, 0.6, 0.4, 0.2)

#: Packets with higher sequence numbers required to declare a loss (§5.1).
NDUPACK = 3


class LossIntervalHistory:
    """The last ``n`` closed loss intervals and their weighted average.

    An *interval* is the packet count between the first losses of two
    consecutive loss events.  The *open* interval counts packets since
    the most recent loss event started and is included in the average
    only when that lowers the resulting loss event rate, per §5.4.
    """

    def __init__(
        self,
        weights=RFC3448_WEIGHTS,
        meter: Optional[CostMeter] = None,
    ):
        if not weights or any(w <= 0 for w in weights):
            raise ValueError("weights must be positive")
        self.weights = tuple(float(w) for w in weights)
        self.n = len(self.weights)
        # prefix sums of the weights, left-to-right (the same addition
        # order as ``sum(weights[:k])``): _wsum[k] is the total weight
        # of the k most recent intervals, so average_interval() never
        # re-sums the weight vector per call
        wsum = [0.0]
        acc = 0.0
        for w in self.weights:
            acc += w
            wsum.append(acc)
        self._wsum = tuple(wsum)
        self._intervals: Deque[float] = deque(maxlen=self.n)  # most recent first
        self.open_interval = 0.0
        self.meter = meter or NullMeter()
        self.events = 0

    # ------------------------------------------------------------------
    def record_event(self, closed_interval: float) -> None:
        """Start a new loss event, closing the previous interval.

        ``closed_interval`` is the packet count of the interval that
        just ended (distance between the two events' first losses).
        """
        if closed_interval < 0:
            raise ValueError("interval cannot be negative")
        self._intervals.appendleft(float(closed_interval))
        self.open_interval = 0.0
        self.events += 1
        self.meter.charge(4)
        self._account_memory()

    def seed_first_interval(self, interval: float) -> None:
        """Install the synthetic first interval of §6.3.1.

        After the very first loss event, the history is primed with the
        interval corresponding to the receive rate observed before the
        loss, so the sender does not halve its rate more than once.
        """
        if self.events != 1 or len(self._intervals) != 1:
            raise ValueError("can only seed right after the first event")
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._intervals[0] = float(interval)
        self.meter.charge(2)

    def extend_open(self, packets: float = 1.0) -> None:
        """Count packets into the open (current) interval."""
        self.open_interval += packets
        self.meter.charge(1)

    # ------------------------------------------------------------------
    def average_interval(self) -> float:
        """Weighted average loss interval per §5.4 (0.0 with no history).

        Single pass over the (≤ n) closed intervals, using the
        precomputed weight prefix sums; the arithmetic (product order,
        addition order, clamping) is bit-identical to the reference
        two-``sum()`` formulation.
        """
        intervals = self._intervals
        k = len(intervals)
        if not k:
            return 0.0
        w = self.weights
        self.meter.charge(3 * k + 4)
        # average over closed intervals only; the weighted mean can land
        # 1 ULP outside [min, max] (e.g. three equal 1.9 intervals), so
        # clamp it back — same fix as percentile() in metrics.stats
        i_tot1 = 0.0
        mn1 = mx1 = intervals[0]
        for wi, ii in zip(w, intervals):
            i_tot1 += wi * ii
            if ii < mn1:
                mn1 = ii
            elif ii > mx1:
                mx1 = ii
        avg1 = min(max(i_tot1 / self._wsum[k], mn1), mx1)
        # average counting the open interval as most recent
        open_ = self.open_interval
        m = k if k < self.n - 1 else self.n - 1  # closed intervals included
        i_tot0 = w[0] * open_
        mn0 = mx0 = open_
        for i in range(m):
            ii = intervals[i]
            i_tot0 += w[i + 1] * ii
            if ii < mn0:
                mn0 = ii
            elif ii > mx0:
                mx0 = ii
        avg0 = min(max(i_tot0 / self._wsum[m + 1], mn0), mx0)
        return max(avg0, avg1)

    def loss_event_rate(self) -> float:
        """``p = 1 / average_interval`` (0.0 before any loss event)."""
        avg = self.average_interval()
        if avg <= 0:
            return 0.0
        return min(1.0, 1.0 / avg)

    @property
    def intervals(self) -> List[float]:
        """Closed intervals, most recent first (copy)."""
        return list(self._intervals)

    def _account_memory(self) -> None:
        self.meter.set_resident(8 * len(self._intervals) + 32)

    def __len__(self) -> int:
        return len(self._intervals)


class LossEventEstimator:
    """Receiver-side RFC 3448 loss machinery (detection + history).

    Feed every arriving data packet via :meth:`on_packet`; read the loss
    event rate via :meth:`loss_event_rate`.  The caller supplies the
    sender's RTT estimate (carried in TFRC data headers) used for
    loss-event clustering, and may supply ``first_interval_fn`` to
    compute the synthetic first interval of §6.3.1 from the pre-loss
    receive rate.

    Parameters
    ----------
    meter:
        Cost meter charged for the per-packet work (experiment T3).
    first_interval_fn:
        Called once, right after the first loss event, and expected to
        return the synthetic first interval in packets (or None to keep
        the raw packet count).
    max_gap:
        Safety bound on sequence gaps tracked per packet; beyond it the
        gap is treated as a restart rather than that many losses.
    """

    def __init__(
        self,
        meter: Optional[CostMeter] = None,
        first_interval_fn: Optional[Callable[[], Optional[float]]] = None,
        max_gap: int = 5000,
    ):
        self.meter = meter or NullMeter()
        self.history = LossIntervalHistory(meter=self.meter)
        self.first_interval_fn = first_interval_fn
        self.max_gap = max_gap
        self.max_seq = -1
        # presumed-lost sequence ranges as ``[start, end, reveal_time]``
        # half-open intervals, start-sorted and disjoint.  A gap of G
        # packets is one O(1) interval append (the seed code filled a
        # dict with G per-seq entries), and ripeness confirmation walks
        # the already-ordered list instead of sorting the pending set on
        # every arrival.  ``_pending_count`` tracks the total number of
        # presumed-lost sequence numbers across all intervals.
        self._pending: List[List[float]] = []
        self._pending_count = 0
        self.packets_received = 0
        self.duplicates = 0
        self.reordered_recoveries = 0
        self.confirmed_losses = 0
        self._last_event_seq: Optional[int] = None
        self._last_event_time = -1.0

    # ------------------------------------------------------------------
    def on_packet(self, seq: int, now: float, rtt: float) -> bool:
        """Record the arrival of data packet ``seq`` at time ``now``.

        ``rtt`` is the sender's RTT estimate from the packet header.
        Returns True when this arrival *started a new loss event*
        (receivers send immediate feedback in that case, §6.2).
        """
        self.meter.charge(5)
        self.packets_received += 1
        max_seq = self.max_seq
        if seq > max_seq:
            gap = seq - max_seq - 1
            if gap > self.max_gap:
                # treat as a restart: drop gap state rather than recording
                # thousands of losses from a pathological jump
                self._pending.clear()
                self._pending_count = 0
            elif gap > 0:
                self._pending.append([max_seq + 1, seq, now])
                self._pending_count += gap
                self.meter.charge(2 * gap)
            self.max_seq = seq
            if self.history.events:
                self.history.extend_open(1.0)
        else:
            # seq below the front: either a reordered recovery of a
            # presumed loss or a duplicate.  The interval list is
            # start-sorted, so the scan stops at the first interval
            # past seq (it rarely holds more than a couple of entries).
            hit = -1
            pending = self._pending
            for i, interval in enumerate(pending):
                if interval[0] > seq:
                    break
                if seq < interval[1]:
                    hit = i
                    break
            if hit < 0:
                self.duplicates += 1
                self.meter.charge(1)
                return False
            interval = pending[hit]
            start, end = interval[0], interval[1]
            if start == seq:
                if seq + 1 == end:
                    del pending[hit]
                else:
                    interval[0] = seq + 1
            elif end == seq + 1:
                interval[1] = seq
            else:  # split the interval around the recovered seq
                interval[1] = seq
                pending.insert(hit + 1, [seq + 1, end, interval[2]])
            self._pending_count -= 1
            self.reordered_recoveries += 1
            self.meter.charge(2)
        self._account_memory()
        return self._confirm_losses(rtt)

    def _confirm_losses(self, rtt: float) -> bool:
        """Promote presumed losses to confirmed ones (NDUPACK rule).

        Walks the start-sorted pending intervals from the front and
        consumes the ripe prefix (every seq with ``seq + NDUPACK <=
        max_seq``).  All seqs of one interval share a reveal time, so at
        most the first seq of each interval can start a loss event
        (after it fires, ``loss_time > loss_time + rtt`` is false for
        any ``rtt >= 0``) — the per-seq work of the reference loop
        collapses to O(1) per interval.
        """
        pending = self._pending
        if not pending:
            return False
        threshold = self.max_seq - NDUPACK
        new_event = False
        while pending:
            interval = pending[0]
            start = interval[0]
            if start > threshold:
                break
            end, loss_time = interval[1], interval[2]
            ripe_end = end if end <= threshold + 1 else threshold + 1
            count = ripe_end - start
            self.confirmed_losses += count
            # charged per confirmed seq (not one batched charge): the
            # meter's ops *and* activation counts model the per-packet
            # work of the seed cost model.  Confirmed losses are rare
            # relative to arrivals, so the loop costs nothing.
            for _ in range(count):
                self.meter.charge(4)
            if (
                self._last_event_seq is None
                or loss_time > self._last_event_time + rtt
            ):
                new_event = True
                self._start_event(start, loss_time)
            self._pending_count -= count
            if ripe_end == end:
                del pending[0]
            else:
                interval[0] = ripe_end
                break  # the rest of this interval (and all later) unripe
        self._account_memory()
        return new_event

    def _start_event(self, seq: int, loss_time: float) -> None:
        if self._last_event_seq is None:
            # first ever loss event: the "closed" interval is everything
            # received before it; optionally replaced by the synthetic
            # equation-derived interval of §6.3.1
            self.history.record_event(max(1, seq))
            if self.first_interval_fn is not None:
                synthetic = self.first_interval_fn()
                if synthetic is not None and synthetic > 0:
                    self.history.seed_first_interval(synthetic)
        else:
            self.history.record_event(max(1, seq - self._last_event_seq))
        # re-open the running interval at the current max_seq
        self.history.open_interval = float(max(0, self.max_seq - seq))
        self._last_event_seq = seq
        self._last_event_time = loss_time

    # ------------------------------------------------------------------
    def loss_event_rate(self) -> float:
        """Current loss event rate ``p`` (0.0 before any loss event)."""
        return self.history.loss_event_rate()

    @property
    def loss_events(self) -> int:
        """Number of loss events recorded."""
        return self.history.events

    def _account_memory(self) -> None:
        # loss-interval history + presumed-lost seqs + fixed bookkeeping.
        # Charged per presumed-lost *sequence number* (the seed model's
        # per-seq map), not per tracked interval: the meter models the
        # RFC 3448 receiver's asymptotic state, which the paper's T3
        # comparison depends on.
        self.meter.set_resident(
            8 * len(self.history) + 16 * self._pending_count + 64
        )
