"""Loss-event detection and the weighted-average loss interval (RFC 3448 §5).

Two classes:

* :class:`LossIntervalHistory` — the pure data structure: the last ``n``
  closed loss intervals, the open interval, and the weighted average
  with the RFC's ``1, 1, 1, 1, 0.8, 0.6, 0.4, 0.2`` weights, including
  the rule that the open interval is only counted when doing so
  *decreases* the loss event rate (§5.4).

* :class:`LossEventEstimator` — arrival-driven loss detection: a packet
  is declared lost once ``ndupack`` (3) packets with higher sequence
  numbers have arrived (§5.1); losses within one RTT of the start of a
  loss event belong to that event (§5.2).

The estimator is the component whose per-packet cost the paper's
QTPlight moves off the receiver; both classes charge an injectable
:class:`~repro.metrics.cost.CostMeter` so experiment T3 can compare the
work against the QTPlight receiver's SACK bookkeeping.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.metrics.cost import CostMeter, NullMeter

#: RFC 3448 §5.4 weights, most recent interval first.
RFC3448_WEIGHTS = (1.0, 1.0, 1.0, 1.0, 0.8, 0.6, 0.4, 0.2)

#: Packets with higher sequence numbers required to declare a loss (§5.1).
NDUPACK = 3


class LossIntervalHistory:
    """The last ``n`` closed loss intervals and their weighted average.

    An *interval* is the packet count between the first losses of two
    consecutive loss events.  The *open* interval counts packets since
    the most recent loss event started and is included in the average
    only when that lowers the resulting loss event rate, per §5.4.
    """

    def __init__(
        self,
        weights=RFC3448_WEIGHTS,
        meter: Optional[CostMeter] = None,
    ):
        if not weights or any(w <= 0 for w in weights):
            raise ValueError("weights must be positive")
        self.weights = tuple(float(w) for w in weights)
        self.n = len(self.weights)
        self._intervals: Deque[float] = deque(maxlen=self.n)  # most recent first
        self.open_interval = 0.0
        self.meter = meter or NullMeter()
        self.events = 0

    # ------------------------------------------------------------------
    def record_event(self, closed_interval: float) -> None:
        """Start a new loss event, closing the previous interval.

        ``closed_interval`` is the packet count of the interval that
        just ended (distance between the two events' first losses).
        """
        if closed_interval < 0:
            raise ValueError("interval cannot be negative")
        self._intervals.appendleft(float(closed_interval))
        self.open_interval = 0.0
        self.events += 1
        self.meter.charge(4)
        self._account_memory()

    def seed_first_interval(self, interval: float) -> None:
        """Install the synthetic first interval of §6.3.1.

        After the very first loss event, the history is primed with the
        interval corresponding to the receive rate observed before the
        loss, so the sender does not halve its rate more than once.
        """
        if self.events != 1 or len(self._intervals) != 1:
            raise ValueError("can only seed right after the first event")
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._intervals[0] = float(interval)
        self.meter.charge(2)

    def extend_open(self, packets: float = 1.0) -> None:
        """Count packets into the open (current) interval."""
        self.open_interval += packets
        self.meter.charge(1)

    # ------------------------------------------------------------------
    def average_interval(self) -> float:
        """Weighted average loss interval per §5.4 (0.0 with no history)."""
        if not self._intervals:
            return 0.0
        closed = list(self._intervals)
        w = self.weights
        self.meter.charge(3 * len(closed) + 4)
        # average over closed intervals only; the weighted mean can land
        # 1 ULP outside [min, max] (e.g. three equal 1.9 intervals), so
        # clamp it back — same fix as percentile() in metrics.stats
        w_used = w[: len(closed)]
        i_tot1 = sum(wi * ii for wi, ii in zip(w_used, closed))
        w_tot1 = sum(w_used)
        avg1 = min(max(i_tot1 / w_tot1, min(closed)), max(closed))
        # average counting the open interval as most recent
        shifted = [self.open_interval] + closed[: self.n - 1]
        w_shift = w[: len(shifted)]
        i_tot0 = sum(wi * ii for wi, ii in zip(w_shift, shifted))
        w_tot0 = sum(w_shift)
        avg0 = min(max(i_tot0 / w_tot0, min(shifted)), max(shifted))
        return max(avg0, avg1)

    def loss_event_rate(self) -> float:
        """``p = 1 / average_interval`` (0.0 before any loss event)."""
        avg = self.average_interval()
        if avg <= 0:
            return 0.0
        return min(1.0, 1.0 / avg)

    @property
    def intervals(self) -> List[float]:
        """Closed intervals, most recent first (copy)."""
        return list(self._intervals)

    def _account_memory(self) -> None:
        self.meter.set_resident(8 * len(self._intervals) + 32)

    def __len__(self) -> int:
        return len(self._intervals)


class LossEventEstimator:
    """Receiver-side RFC 3448 loss machinery (detection + history).

    Feed every arriving data packet via :meth:`on_packet`; read the loss
    event rate via :meth:`loss_event_rate`.  The caller supplies the
    sender's RTT estimate (carried in TFRC data headers) used for
    loss-event clustering, and may supply ``first_interval_fn`` to
    compute the synthetic first interval of §6.3.1 from the pre-loss
    receive rate.

    Parameters
    ----------
    meter:
        Cost meter charged for the per-packet work (experiment T3).
    first_interval_fn:
        Called once, right after the first loss event, and expected to
        return the synthetic first interval in packets (or None to keep
        the raw packet count).
    max_gap:
        Safety bound on sequence gaps tracked per packet; beyond it the
        gap is treated as a restart rather than that many losses.
    """

    def __init__(
        self,
        meter: Optional[CostMeter] = None,
        first_interval_fn: Optional[Callable[[], Optional[float]]] = None,
        max_gap: int = 5000,
    ):
        self.meter = meter or NullMeter()
        self.history = LossIntervalHistory(meter=self.meter)
        self.first_interval_fn = first_interval_fn
        self.max_gap = max_gap
        self.max_seq = -1
        self._pending: Dict[int, float] = {}  # presumed-lost seq -> reveal time
        self.packets_received = 0
        self.duplicates = 0
        self.reordered_recoveries = 0
        self.confirmed_losses = 0
        self._last_event_seq: Optional[int] = None
        self._last_event_time = -1.0

    # ------------------------------------------------------------------
    def on_packet(self, seq: int, now: float, rtt: float) -> bool:
        """Record the arrival of data packet ``seq`` at time ``now``.

        ``rtt`` is the sender's RTT estimate from the packet header.
        Returns True when this arrival *started a new loss event*
        (receivers send immediate feedback in that case, §6.2).
        """
        self.meter.charge(5)
        self.packets_received += 1
        if seq > self.max_seq:
            gap = seq - self.max_seq - 1
            if gap > self.max_gap:
                # treat as a restart: drop gap state rather than recording
                # thousands of losses from a pathological jump
                self._pending.clear()
            elif gap > 0:
                for missing in range(self.max_seq + 1, seq):
                    self._pending[missing] = now
                self.meter.charge(2 * gap)
            self.max_seq = seq
            if self.history.events:
                self.history.extend_open(1.0)
        elif seq in self._pending:
            del self._pending[seq]
            self.reordered_recoveries += 1
            self.meter.charge(2)
        else:
            self.duplicates += 1
            self.meter.charge(1)
            return False
        self._account_memory()
        return self._confirm_losses(rtt)

    def _confirm_losses(self, rtt: float) -> bool:
        """Promote presumed losses to confirmed ones (NDUPACK rule)."""
        if not self._pending:
            return False
        ripe = sorted(s for s in self._pending if self.max_seq >= s + NDUPACK)
        if not ripe:
            return False
        new_event = False
        for seq in ripe:
            loss_time = self._pending.pop(seq)
            self.confirmed_losses += 1
            self.meter.charge(4)
            if (
                self._last_event_seq is None
                or loss_time > self._last_event_time + rtt
            ):
                new_event = True
                self._start_event(seq, loss_time)
        self._account_memory()
        return new_event

    def _start_event(self, seq: int, loss_time: float) -> None:
        if self._last_event_seq is None:
            # first ever loss event: the "closed" interval is everything
            # received before it; optionally replaced by the synthetic
            # equation-derived interval of §6.3.1
            self.history.record_event(max(1, seq))
            if self.first_interval_fn is not None:
                synthetic = self.first_interval_fn()
                if synthetic is not None and synthetic > 0:
                    self.history.seed_first_interval(synthetic)
        else:
            self.history.record_event(max(1, seq - self._last_event_seq))
        # re-open the running interval at the current max_seq
        self.history.open_interval = float(max(0, self.max_seq - seq))
        self._last_event_seq = seq
        self._last_event_time = loss_time

    # ------------------------------------------------------------------
    def loss_event_rate(self) -> float:
        """Current loss event rate ``p`` (0.0 before any loss event)."""
        return self.history.loss_event_rate()

    @property
    def loss_events(self) -> int:
        """Number of loss events recorded."""
        return self.history.events

    def _account_memory(self) -> None:
        # intervals + pending-gap map + fixed bookkeeping
        self.meter.set_resident(
            8 * len(self.history) + 16 * len(self._pending) + 64
        )
