"""Round-trip time estimation for TFRC (RFC 3448 §4.3).

TFRC smooths RTT samples with an EWMA (``q = 0.9``) and derives the
timeout as ``t_RTO = 4 * R``.  A separate :class:`RtoEstimator`
implements the RFC 6298 SRTT/RTTVAR algorithm used by the TCP baseline.
"""

from __future__ import annotations

from typing import Optional


class RttEstimator:
    """EWMA RTT filter used by the TFRC sender.

    ``R <- q*R + (1-q)*sample`` with ``q = 0.9`` (RFC 3448 default).
    """

    def __init__(self, q: float = 0.9, initial: Optional[float] = None):
        if not 0.0 <= q < 1.0:
            raise ValueError("q must be in [0, 1)")
        self.q = q
        self.rtt: Optional[float] = initial

    def update(self, sample: float) -> float:
        """Fold one RTT sample in and return the smoothed estimate."""
        if sample <= 0:
            raise ValueError("rtt sample must be positive")
        if self.rtt is None:
            self.rtt = sample
        else:
            self.rtt = self.q * self.rtt + (1.0 - self.q) * sample
        return self.rtt

    @property
    def valid(self) -> bool:
        """True once at least one sample has been folded in."""
        return self.rtt is not None

    def rto(self) -> float:
        """TFRC timeout ``t_RTO = 4R`` (requires a valid estimate)."""
        if self.rtt is None:
            raise ValueError("no RTT sample yet")
        return 4.0 * self.rtt


class RtoEstimator:
    """RFC 6298 retransmission-timeout estimator (TCP baseline).

    ``SRTT``/``RTTVAR`` with the standard gains, a configurable minimum
    RTO (the RFC says 1 s; simulations conventionally use a smaller
    floor) and binary exponential backoff.
    """

    def __init__(self, min_rto: float = 0.2, max_rto: float = 60.0):
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self._backoff = 1.0

    def update(self, sample: float) -> None:
        """Fold one (non-retransmitted) RTT sample in; resets backoff."""
        if sample <= 0:
            raise ValueError("rtt sample must be positive")
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            assert self.rttvar is not None
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self._backoff = 1.0

    def backoff(self) -> None:
        """Double the timeout after an expiry (Karn's algorithm)."""
        self._backoff = min(self._backoff * 2.0, 64.0)

    def rto(self) -> float:
        """Current timeout, with floor/ceiling and backoff applied."""
        if self.srtt is None or self.rttvar is None:
            base = 1.0  # RFC 6298 initial RTO
        else:
            base = self.srtt + max(4.0 * self.rttvar, 1e-4)
        return min(self.max_rto, max(self.min_rto, base) * self._backoff)
