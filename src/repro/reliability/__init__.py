"""Reliability services composed over SACK (paper §1, feature 1).

* :mod:`repro.reliability.policies` — when to retransmit a lost packet:
  never, always (full reliability), while a deadline allows
  (time-bounded partial reliability) or up to a retransmission budget
  (count-bounded partial reliability);
* :mod:`repro.reliability.delivery` — receiver-side ordered delivery
  with gap-skipping for partial modes.
"""

from repro.reliability.policies import (
    CountBoundedReliability,
    FullReliability,
    NoReliability,
    ReliabilityPolicy,
    TimeBoundedReliability,
    policy_for,
)
from repro.reliability.delivery import DeliveryBuffer

__all__ = [
    "ReliabilityPolicy",
    "NoReliability",
    "FullReliability",
    "TimeBoundedReliability",
    "CountBoundedReliability",
    "policy_for",
    "DeliveryBuffer",
]
