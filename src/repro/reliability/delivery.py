"""Receiver-side ordered delivery with gap skipping.

Full reliability delivers strictly in order.  Partial modes cannot wait
forever for a hole the sender may have abandoned, so the buffer skips a
gap once it has aged past ``gap_timeout`` (a small multiple of the RTT
in practice), delivering subsequent data and recording the skip.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.sim.packet import Packet


class DeliveryBuffer:
    """Reorders packets by transport sequence number for the application.

    Parameters
    ----------
    deliver:
        Callback invoked with each packet released in order.
    gap_timeout:
        Seconds to wait on a missing sequence number before skipping it
        (``None`` = wait forever, i.e. full reliability).
    """

    def __init__(
        self,
        deliver: Callable[[Packet], None],
        gap_timeout: Optional[float] = None,
    ):
        if gap_timeout is not None and gap_timeout <= 0:
            raise ValueError("gap_timeout must be positive")
        self.deliver = deliver
        self.gap_timeout = gap_timeout
        self.next_seq = 0
        self._pending: Dict[int, Packet] = {}
        self._gap_started: Optional[float] = None
        self.delivered = 0
        self.skipped = 0
        self.duplicates = 0

    # ------------------------------------------------------------------
    def push(self, seq: int, packet: Packet, now: float) -> List[Packet]:
        """Insert an arrival; returns the packets released in order."""
        if seq < self.next_seq or seq in self._pending:
            self.duplicates += 1
            return []
        self._pending[seq] = packet
        released = self._drain(now)
        if self.waiting and self._gap_started is None:
            self._gap_started = now
        return released

    def advance(self, floor: int, now: float) -> List[Packet]:
        """Give up on every hole below ``floor`` (sender forward-ack).

        Buffered packets below the floor are delivered in order (holes
        between them are counted as skipped); then normal draining
        resumes from the floor.
        """
        released: List[Packet] = []
        while self.next_seq < floor:
            packet = self._pending.pop(self.next_seq, None)
            if packet is not None:
                self.delivered += 1
                released.append(packet)
                self.deliver(packet)
            else:
                self.skipped += 1
            self.next_seq += 1
        if released or self.next_seq >= floor:
            self._gap_started = None
        released.extend(self._drain(now))
        return released

    def poll(self, now: float) -> List[Packet]:
        """Timer hook: release data past any expired gap."""
        released = self._maybe_skip(now)
        if self.waiting and self._gap_started is None:
            self._gap_started = now
        return released

    def _drain(self, now: float) -> List[Packet]:
        released: List[Packet] = []
        while self.next_seq in self._pending:
            packet = self._pending.pop(self.next_seq)
            self.next_seq += 1
            self.delivered += 1
            self._gap_started = None
            released.append(packet)
            self.deliver(packet)
        released.extend(self._maybe_skip(now))
        return released

    def _maybe_skip(self, now: float) -> List[Packet]:
        if (
            self.gap_timeout is None
            or not self._pending
            or self._gap_started is None
            or now - self._gap_started < self.gap_timeout
        ):
            return []
        # skip the hole up to the next buffered packet
        next_buffered = min(self._pending)
        self.skipped += next_buffered - self.next_seq
        self.next_seq = next_buffered
        self._gap_started = None
        return self._drain(now)

    # ------------------------------------------------------------------
    @property
    def waiting(self) -> bool:
        """True while buffered data sits behind a hole."""
        return bool(self._pending)

    @property
    def buffered(self) -> int:
        """Number of packets held back by reordering."""
        return len(self._pending)
