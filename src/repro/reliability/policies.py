"""Retransmission policies: the reliability axis of the profile.

Each policy answers one question for a lost packet: *is retransmitting
it still worthwhile?*  Policies see the scoreboard record (send times,
retransmission count, the application rider with its deadline) and the
current time, so time-bounded policies can account for the retransmission
round-trip still ahead.
"""

from __future__ import annotations

from typing import Optional

from repro.core.profile import ReliabilityMode, TransportProfile
from repro.sack.scoreboard import SentRecord


class ReliabilityPolicy:
    """Base policy; subclasses override :meth:`should_retransmit`."""

    name = "abstract"

    def should_retransmit(self, record: SentRecord, now: float, rtt: float) -> bool:
        """Decide whether a lost packet is worth retransmitting."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class NoReliability(ReliabilityPolicy):
    """Pure datagram service: losses are never repaired (stock TFRC)."""

    name = "none"

    def should_retransmit(self, record: SentRecord, now: float, rtt: float) -> bool:
        """Never retransmit."""
        return False


class FullReliability(ReliabilityPolicy):
    """TCP-like service: every loss is repaired, without bound (QTPAF)."""

    name = "full"

    def should_retransmit(self, record: SentRecord, now: float, rtt: float) -> bool:
        """Always retransmit."""
        return True


class TimeBoundedReliability(ReliabilityPolicy):
    """Retransmit only while the data can still arrive in time.

    A packet is repaired when ``now + rtt/2`` (the earliest the
    retransmission can reach the receiver) is before its deadline.  The
    deadline comes from the application rider; messages without one get
    ``default_lifetime`` from their first transmission.
    """

    name = "partial-time"

    def __init__(self, default_lifetime: float = 0.5):
        if default_lifetime <= 0:
            raise ValueError("lifetime must be positive")
        self.default_lifetime = default_lifetime

    def _deadline(self, record: SentRecord) -> float:
        if record.app is not None and record.app.deadline is not None:
            return record.app.deadline
        return record.first_send_time + self.default_lifetime

    def should_retransmit(self, record: SentRecord, now: float, rtt: float) -> bool:
        """Retransmit while the one-way trip still beats the deadline."""
        return now + rtt / 2.0 < self._deadline(record)


class CountBoundedReliability(ReliabilityPolicy):
    """Retransmit each packet at most ``max_retx`` times."""

    name = "partial-count"

    def __init__(self, max_retx: int = 2):
        if max_retx < 0:
            raise ValueError("max_retx cannot be negative")
        self.max_retx = max_retx

    def should_retransmit(self, record: SentRecord, now: float, rtt: float) -> bool:
        """Retransmit while under the per-packet budget."""
        return record.retx_count < self.max_retx


def policy_for(profile: TransportProfile) -> ReliabilityPolicy:
    """Build the policy matching a profile's reliability mode."""
    mode = profile.reliability
    if mode is ReliabilityMode.NONE:
        return NoReliability()
    if mode is ReliabilityMode.FULL:
        return FullReliability()
    if mode is ReliabilityMode.PARTIAL_TIME:
        return TimeBoundedReliability(profile.partial_deadline)
    if mode is ReliabilityMode.PARTIAL_COUNT:
        return CountBoundedReliability(profile.partial_max_retx)
    raise ValueError(f"unknown reliability mode {mode!r}")
