"""Traffic sources that feed a media-limited QTP sender.

Each source schedules its own arrivals on the simulator and enqueues
:class:`~repro.sim.packet.AppDataHeader`-tagged messages into the
sender.  Sources are started with :meth:`start` and stopped with
:meth:`stop`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.sender import QtpSender
from repro.sim.engine import Simulator
from repro.sim.packet import AppDataHeader


class _BaseSource:
    """Common scheduling scaffolding for sources."""

    def __init__(self, sim: Simulator, sender: QtpSender):
        self.sim = sim
        self.sender = sender
        self._running = False
        self._event = None
        self.messages = 0

    def start(self) -> None:
        """Begin generating traffic (also starts the sender)."""
        if self._running:
            return
        self._running = True
        self.sender.start()
        self._schedule_next(first=True)

    def stop(self) -> None:
        """Stop generating (the sender keeps draining its queue)."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _schedule_next(self, first: bool = False) -> None:
        raise NotImplementedError

    def _emit(self, frame_type: str = "", lifetime: Optional[float] = None) -> None:
        deadline = self.sim.now + lifetime if lifetime is not None else None
        app = AppDataHeader(
            app_seq=self.messages, frame_type=frame_type, deadline=deadline
        )
        self.sender.enqueue_message(app)
        self.messages += 1


class CbrSource(_BaseSource):
    """Constant-bit-rate datagrams.

    Parameters
    ----------
    rate_bps: application rate in bits/s.
    lifetime: optional per-message usefulness window (seconds), used by
        time-bounded partial reliability.
    """

    def __init__(
        self,
        sim: Simulator,
        sender: QtpSender,
        rate_bps: float,
        lifetime: Optional[float] = None,
    ):
        super().__init__(sim, sender)
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.interval = sender.profile.segment_size * 8 / rate_bps
        self.lifetime = lifetime

    def _schedule_next(self, first: bool = False) -> None:
        if not self._running:
            return
        delay = 0.0 if first else self.interval
        self._event = self.sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        self._emit(lifetime=self.lifetime)
        self._schedule_next()


class PoissonSource(_BaseSource):
    """Poisson message arrivals at a given mean rate."""

    def __init__(
        self,
        sim: Simulator,
        sender: QtpSender,
        rate_bps: float,
        lifetime: Optional[float] = None,
        rng_name: str = "poisson-source",
    ):
        super().__init__(sim, sender)
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.mean_interval = sender.profile.segment_size * 8 / rate_bps
        self.lifetime = lifetime
        self._rng = sim.rng(rng_name)

    def _schedule_next(self, first: bool = False) -> None:
        if not self._running:
            return
        delay = 0.0 if first else self._rng.expovariate(1.0 / self.mean_interval)
        self._event = self.sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        self._emit(lifetime=self.lifetime)
        self._schedule_next()


class OnOffSource(_BaseSource):
    """Exponential ON/OFF CBR bursts (classic cross-traffic model)."""

    def __init__(
        self,
        sim: Simulator,
        sender: QtpSender,
        rate_bps: float,
        mean_on: float = 1.0,
        mean_off: float = 1.0,
        rng_name: str = "onoff-source",
    ):
        super().__init__(sim, sender)
        if rate_bps <= 0 or mean_on <= 0 or mean_off <= 0:
            raise ValueError("rate and periods must be positive")
        self.interval = sender.profile.segment_size * 8 / rate_bps
        self.mean_on = mean_on
        self.mean_off = mean_off
        self._rng = sim.rng(rng_name)
        self._on_until = 0.0

    def _schedule_next(self, first: bool = False) -> None:
        if not self._running:
            return
        if first:
            self._on_until = self.sim.now + self._rng.expovariate(1.0 / self.mean_on)
            self._event = self.sim.schedule(0.0, self._fire)
            return
        if self.sim.now < self._on_until:
            self._event = self.sim.schedule(self.interval, self._fire)
        else:
            off = self._rng.expovariate(1.0 / self.mean_off)
            self._event = self.sim.schedule(off, self._restart_burst)

    def _restart_burst(self) -> None:
        if not self._running:
            return
        self._on_until = self.sim.now + self._rng.expovariate(1.0 / self.mean_on)
        self._fire()

    def _fire(self) -> None:
        self._emit()
        self._schedule_next()


class MediaSource(_BaseSource):
    """MPEG-like frame source with I/P/B frame types and deadlines.

    A group of pictures (GoP) cycles ``I B B P B B P B B P B B`` at
    ``fps`` frames per second.  Frame sizes differ by type (I largest);
    each frame is fragmented into segment-size messages that inherit the
    frame's playout deadline ``now + playout_delay``.

    This is the workload of the paper's motivation: a streaming server
    feeding mobile clients, where late frames are worthless and key (I)
    frames matter most.
    """

    GOP = "IBBPBBPBBPBB"

    def __init__(
        self,
        sim: Simulator,
        sender: QtpSender,
        fps: float = 25.0,
        i_size: int = 6000,
        p_size: int = 3000,
        b_size: int = 1500,
        playout_delay: float = 0.4,
    ):
        super().__init__(sim, sender)
        if fps <= 0:
            raise ValueError("fps must be positive")
        self.fps = fps
        self.sizes = {"I": i_size, "P": p_size, "B": b_size}
        self.playout_delay = playout_delay
        self.frames = 0

    def mean_rate_bps(self) -> float:
        """Long-run average source rate implied by the GoP structure."""
        gop_bytes = sum(self.sizes[t] for t in self.GOP)
        return gop_bytes * 8 * self.fps / len(self.GOP)

    def _schedule_next(self, first: bool = False) -> None:
        if not self._running:
            return
        delay = 0.0 if first else 1.0 / self.fps
        self._event = self.sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        frame_type = self.GOP[self.frames % len(self.GOP)]
        size = self.sizes[frame_type]
        segment = self.sender.profile.segment_size
        deadline = self.sim.now + self.playout_delay
        fragments = max(1, (size + segment - 1) // segment)
        for _ in range(fragments):
            app = AppDataHeader(
                app_seq=self.messages, frame_type=frame_type, deadline=deadline
            )
            self.sender.enqueue_message(app)
            self.messages += 1
        self.frames += 1
        self._schedule_next()


__all__ = ["CbrSource", "PoissonSource", "OnOffSource", "MediaSource"]
