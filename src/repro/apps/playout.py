"""Receiver-side playout model for media workloads.

Counts delivered messages against their deadlines: a frame fragment
arriving after its playout instant is late (worthless to the decoder),
no matter that the transport delivered it.  Used by the reliability
experiments to show why *full* reliability is the wrong service for
media and partial reliability the right one.
"""

from __future__ import annotations

from typing import Dict

from repro.sim.packet import Packet


class PlayoutBuffer:
    """Deadline bookkeeping for delivered application messages."""

    def __init__(self) -> None:
        self.on_time = 0
        self.late = 0
        self.no_deadline = 0
        self.by_frame_type: Dict[str, Dict[str, int]] = {}

    def deliver(self, packet: Packet, now: float) -> bool:
        """Record a delivery; returns True when it met its deadline."""
        app = packet.app
        if app is None or app.deadline is None:
            self.no_deadline += 1
            return True
        frame = app.frame_type or "?"
        bucket = self.by_frame_type.setdefault(frame, {"on_time": 0, "late": 0})
        if now <= app.deadline:
            self.on_time += 1
            bucket["on_time"] += 1
            return True
        self.late += 1
        bucket["late"] += 1
        return False

    @property
    def total(self) -> int:
        """All deadline-bearing deliveries seen."""
        return self.on_time + self.late

    def on_time_ratio(self) -> float:
        """Fraction of deadline-bearing deliveries that met the deadline."""
        if self.total == 0:
            return 1.0
        return self.on_time / self.total
