"""Application traffic models.

Sources drive a :class:`~repro.core.sender.QtpSender` in media-limited
mode (``bulk=False``), enqueueing messages on their own schedule:

* :class:`CbrSource` — constant bit rate datagrams;
* :class:`OnOffSource` — exponential on/off bursts (cross traffic);
* :class:`MediaSource` — an MPEG-like I/P/B frame generator with
  per-frame playout deadlines, the paper's multimedia workload;
* :class:`PoissonSource` — Poisson datagram arrivals.

:class:`PlayoutBuffer` models the receiving application: frames that
miss their deadline are useless even if delivered.
"""

from repro.apps.sources import CbrSource, MediaSource, OnOffSource, PoissonSource
from repro.apps.playout import PlayoutBuffer

__all__ = [
    "CbrSource",
    "OnOffSource",
    "MediaSource",
    "PoissonSource",
    "PlayoutBuffer",
]
