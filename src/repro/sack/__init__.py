"""Selective acknowledgments per RFC 2018.

* :class:`~repro.sack.blocks.ReceiverSackState` — the receiver-side
  bookkeeping: cumulative ack plus disjoint received ranges, reported
  most-recently-updated first (the RFC's block ordering rules).  This
  is the *entire* per-packet work of a QTPlight receiver.
* :class:`~repro.sack.scoreboard.SenderScoreboard` — the sender-side
  view: which packets are acked, SACKed, or presumed lost, and which
  should be retransmitted under the active reliability policy.
"""

from repro.sack.blocks import ReceiverSackState
from repro.sack.scoreboard import SenderScoreboard, SentRecord

__all__ = ["ReceiverSackState", "SenderScoreboard", "SentRecord"]
