"""Receiver-side SACK state (RFC 2018).

Tracks the cumulative acknowledgment and the set of sequence ranges
received beyond it, as disjoint half-open intervals ``[start, end)``.
Per-packet work is a binary search plus neighbour merge — O(log k) in
the number of holes — which is what makes the QTPlight receiver cheap
compared with the RFC 3448 loss-event machinery.

Block reporting follows RFC 2018 §4: the first block contains the most
recently received segment, later blocks repeat the most recently
reported other ranges.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

from repro.metrics.cost import CostMeter, NullMeter


class ReceiverSackState:
    """Cumulative ack plus out-of-order ranges for one flow.

    Parameters
    ----------
    meter:
        Cost meter charged for per-packet work (experiment T3).
    """

    def __init__(self, meter: Optional[CostMeter] = None):
        self.meter = meter or NullMeter()
        self.cum_ack = -1  # highest seq with everything before it received
        self._starts: List[int] = []  # parallel sorted interval arrays
        self._ends: List[int] = []
        self._recency: List[int] = []  # touch counter per interval
        self._touch = 0
        self.received = 0
        self.duplicates = 0
        self.received_bytes = 0
        self.max_seq = -1

    # ------------------------------------------------------------------
    def record(self, seq: int, size: int = 0) -> bool:
        """Record arrival of ``seq``; returns False for duplicates."""
        self.meter.charge(3)
        self._touch += 1
        if seq > self.max_seq:
            self.max_seq = seq
        if seq <= self.cum_ack:
            self.duplicates += 1
            return False
        if seq == self.cum_ack + 1:
            self.cum_ack = seq
            self.received += 1
            self.received_bytes += size
            self._absorb_from_front()
            self._account_memory()
            return True
        inserted = self._insert(seq)
        if not inserted:
            self.duplicates += 1
            return False
        self.received += 1
        self.received_bytes += size
        self._account_memory()
        return True

    def _absorb_from_front(self) -> None:
        """Advance cum_ack through any interval now contiguous with it."""
        while self._starts and self._starts[0] == self.cum_ack + 1:
            self.cum_ack = self._ends[0] - 1
            del self._starts[0]
            del self._ends[0]
            del self._recency[0]
            self.meter.charge(2)

    def _insert(self, seq: int) -> bool:
        """Insert ``seq`` into the interval set; False if already present."""
        idx = bisect.bisect_right(self._starts, seq) - 1
        self.meter.charge(2)
        if idx >= 0 and self._starts[idx] <= seq < self._ends[idx]:
            return False  # duplicate inside an existing interval
        # can we extend the interval on the left?
        extends_left = idx >= 0 and self._ends[idx] == seq
        # or the one on the right?
        right = idx + 1
        extends_right = right < len(self._starts) and self._starts[right] == seq + 1
        if extends_left and extends_right:
            # bridging two intervals: merge them
            self._ends[idx] = self._ends[right]
            self._recency[idx] = self._touch
            del self._starts[right]
            del self._ends[right]
            del self._recency[right]
        elif extends_left:
            self._ends[idx] = seq + 1
            self._recency[idx] = self._touch
        elif extends_right:
            self._starts[right] = seq
            self._recency[right] = self._touch
        else:
            self._starts.insert(right, seq)
            self._ends.insert(right, seq + 1)
            self._recency.insert(right, self._touch)
        return True

    # ------------------------------------------------------------------
    def advance_floor(self, floor: int) -> None:
        """Advance the cumulative ack past holes below ``floor``.

        Used with the sender's forward-ack point (PR-SCTP style): every
        missing sequence number below ``floor`` is guaranteed never to
        arrive, so waiting for it is pointless.  Intervals at or below
        the new cumulative ack are dropped; one straddling it is
        absorbed.
        """
        if floor - 1 <= self.cum_ack:
            return
        self.meter.charge(2)
        self.cum_ack = floor - 1
        while self._starts and self._starts[0] <= self.cum_ack + 1:
            if self._ends[0] - 1 > self.cum_ack:
                self.cum_ack = self._ends[0] - 1
            del self._starts[0]
            del self._ends[0]
            del self._recency[0]
            self.meter.charge(2)
        self._account_memory()

    def blocks(self, limit: int = 3) -> Tuple[Tuple[int, int], ...]:
        """Report up to ``limit`` SACK blocks, most recently updated first."""
        if not self._starts or limit < 1:
            return ()
        self.meter.charge(len(self._starts) + 1)
        order = sorted(
            range(len(self._starts)), key=lambda i: self._recency[i], reverse=True
        )
        chosen = order[:limit]
        return tuple((self._starts[i], self._ends[i]) for i in chosen)

    def holes(self) -> List[Tuple[int, int]]:
        """Missing ranges between cum_ack and max_seq (diagnostics)."""
        result: List[Tuple[int, int]] = []
        prev_end = self.cum_ack + 1
        for start, end in zip(self._starts, self._ends):
            if start > prev_end:
                result.append((prev_end, start))
            prev_end = end
        if self.max_seq >= prev_end:
            result.append((prev_end, self.max_seq + 1))
        return result

    @property
    def interval_count(self) -> int:
        """Number of disjoint out-of-order ranges held."""
        return len(self._starts)

    def _account_memory(self) -> None:
        self.meter.set_resident(24 * len(self._starts) + 40)
