"""Sender-side SACK scoreboard.

Tracks every unacknowledged data packet, folds in feedback reports
(cumulative ack + SACK blocks) and derives:

* newly acknowledged packets (for reliability bookkeeping and RTT),
* newly *lost* packets via the dup-SACK rule — a packet is presumed
  lost once ``dupack_threshold`` (3) packets sent after it have been
  selectively acknowledged,
* retransmission candidates, filtered by the reliability policy.

The scoreboard is shared by the QTPAF/QTPlight sender and the SACK
variant of the TCP baseline.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.packet import AppDataHeader

#: SACKed-above count promoting a hole to a loss (mirrors TCP's dupthresh).
DUPSACK_THRESHOLD = 3


@dataclass
class SentRecord:
    """Book-keeping for one transmitted data packet."""

    seq: int
    size: int
    send_time: float
    app: Optional[AppDataHeader] = None
    retx_count: int = 0
    sacked: bool = False
    lost: bool = False
    retx_pending: bool = False
    first_send_time: float = field(default=-1.0)
    #: after a retransmission, SACK coverage must reach this sequence
    #: number before the packet may be declared lost again (guards
    #: against re-judging a fresh retransmission on stale evidence)
    retx_guard: int = -1

    def __post_init__(self) -> None:
        if self.first_send_time < 0:
            self.first_send_time = self.send_time


@dataclass
class FeedbackDigest:
    """What one feedback report taught the scoreboard."""

    newly_acked: List[SentRecord]
    newly_lost: List[SentRecord]
    cum_ack: int


class SenderScoreboard:
    """Outstanding-packet state machine driven by SACK feedback."""

    def __init__(self, dupack_threshold: int = DUPSACK_THRESHOLD):
        if dupack_threshold < 1:
            raise ValueError("dupack threshold must be >= 1")
        self.dupack_threshold = dupack_threshold
        self._outstanding: Dict[int, SentRecord] = {}
        self.cum_ack = -1
        self.high_sacked = -1
        self.total_sent = 0
        self.total_acked = 0
        self.total_lost = 0
        self.total_retx = 0

    # ------------------------------------------------------------------
    def on_send(
        self,
        seq: int,
        size: int,
        now: float,
        app: Optional[AppDataHeader] = None,
    ) -> SentRecord:
        """Register a (first) transmission."""
        record = SentRecord(seq=seq, size=size, send_time=now, app=app)
        self._outstanding[seq] = record
        self.total_sent += 1
        return record

    def on_retransmit(
        self, seq: int, now: float, highest_sent: Optional[int] = None
    ) -> Optional[SentRecord]:
        """Register a retransmission of an outstanding packet.

        ``highest_sent`` is the highest sequence number transmitted so
        far (the sender's ``next_seq - 1``); the packet will only be
        re-declared lost on SACK evidence *above* it, i.e. from packets
        sent after this retransmission (RFC 6675's rescue semantics).
        """
        record = self._outstanding.get(seq)
        if record is None:
            return None
        record.retx_count += 1
        record.send_time = now
        record.lost = False  # back in flight; a later report re-judges it
        record.retx_pending = False
        if highest_sent is None:
            highest_sent = max(self._outstanding) if self._outstanding else seq
        record.retx_guard = highest_sent
        self.total_retx += 1
        return record

    def abandon(self, seq: int) -> Optional[SentRecord]:
        """Drop a packet from tracking (partial-reliability give-up)."""
        return self._outstanding.pop(seq, None)

    # ------------------------------------------------------------------
    def on_feedback(
        self,
        cum_ack: int,
        blocks: Sequence[Tuple[int, int]],
        now: float,
    ) -> FeedbackDigest:
        """Fold in one report; returns newly acked / newly lost records.

        ``blocks`` are half-open ``[start, end)`` ranges.  Reports are
        cumulative, so a stale (reordered) report is harmless: an older
        ``cum_ack`` simply acknowledges nothing new.
        """
        newly_acked: List[SentRecord] = []
        if cum_ack > self.cum_ack:
            self.cum_ack = cum_ack
        for seq in sorted(self._outstanding):
            if seq > self.cum_ack:
                break
            record = self._outstanding.pop(seq)
            if not record.sacked:  # SACKed ones were counted when SACKed
                newly_acked.append(record)
                self.total_acked += 1
        for start, end in blocks:
            if end > self.high_sacked:
                self.high_sacked = end - 1
            for seq in range(start, end):
                record = self._outstanding.get(seq)
                if record is not None and not record.sacked:
                    record.sacked = True
                    newly_acked.append(record)
                    self.total_acked += 1
        newly_lost = self._detect_losses()
        return FeedbackDigest(newly_acked, newly_lost, self.cum_ack)

    def _detect_losses(self) -> List[SentRecord]:
        """Dup-SACK rule: a hole with >= threshold SACKed packets above it.

        A retransmitted packet is only re-declared lost once SACK
        coverage has advanced past its ``retx_guard`` — i.e. on evidence
        that arrived *after* the retransmission.
        """
        newly_lost: List[SentRecord] = []
        if self.high_sacked < 0:
            return newly_lost
        sacked_seqs = sorted(
            seq for seq, rec in self._outstanding.items() if rec.sacked
        )
        for seq in sorted(self._outstanding):
            record = self._outstanding[seq]
            if record.sacked or record.lost or record.retx_pending:
                continue
            # evidence threshold: for first transmissions, SACKs above the
            # packet itself; for retransmissions, SACKs above the highest
            # sequence that had been sent when the retransmission went out
            evidence_floor = seq if record.retx_count == 0 else record.retx_guard
            above = len(sacked_seqs) - bisect.bisect_right(
                sacked_seqs, evidence_floor
            )
            if seq > self.cum_ack and above >= self.dupack_threshold:
                record.lost = True
                record.retx_pending = True
                newly_lost.append(record)
                self.total_lost += 1
        return newly_lost

    def mark_outstanding_lost(self) -> int:
        """Presume every unSACKed outstanding packet lost (RTO recovery).

        Go-back-N retransmission re-registers those sequence numbers via
        :meth:`on_send`, putting them back into the pipe.  Returns the
        number of records marked.
        """
        marked = 0
        for record in self._outstanding.values():
            if not record.sacked and not record.lost:
                record.lost = True
                record.retx_pending = False
                marked += 1
        return marked

    def pipe(self) -> int:
        """RFC 6675-style in-flight estimate.

        Counts outstanding packets that are neither SACKed nor presumed
        lost; a retransmission puts its packet back into the pipe
        (``lost`` is cleared by :meth:`on_retransmit`).
        """
        return sum(
            1
            for rec in self._outstanding.values()
            if not rec.sacked and not rec.lost
        )

    # ------------------------------------------------------------------
    def retransmission_candidates(self) -> List[SentRecord]:
        """Packets marked lost and awaiting retransmission, in seq order."""
        return sorted(
            (rec for rec in self._outstanding.values() if rec.retx_pending),
            key=lambda rec: rec.seq,
        )

    def forward_point(self, default: int) -> int:
        """The PR-SCTP forward-ack point advertised to the receiver.

        Everything below it is cumulatively acked, SACKed (delivered) or
        abandoned — i.e. the receiver will never see a retransmission of
        a hole below this sequence number.  ``default`` is the sender's
        next fresh sequence number (used when nothing is outstanding).
        """
        awaited = [
            seq for seq, rec in self._outstanding.items() if not rec.sacked
        ]
        if awaited:
            return min(awaited)
        return default

    def prune_delivered(self, floor: int) -> int:
        """Drop SACKed records below ``floor``; returns how many.

        Without this, compositions that abandon losses (reliability NONE
        or partial) would keep delivered records forever, because the
        receiver's cumulative ack cannot cross the abandoned holes until
        it learns the forward point.
        """
        stale = [
            seq
            for seq, rec in self._outstanding.items()
            if rec.sacked and seq < floor
        ]
        for seq in stale:
            del self._outstanding[seq]
        return len(stale)

    def record_for(self, seq: int) -> Optional[SentRecord]:
        """Look up an outstanding packet's record."""
        return self._outstanding.get(seq)

    @property
    def in_flight(self) -> int:
        """Packets sent but neither cumulatively nor selectively acked."""
        return sum(1 for rec in self._outstanding.values() if not rec.sacked)

    @property
    def outstanding(self) -> int:
        """All tracked (not yet cumulatively acked / abandoned) packets."""
        return len(self._outstanding)

    def oldest_unacked(self) -> Optional[SentRecord]:
        """The outstanding record with the smallest sequence number."""
        if not self._outstanding:
            return None
        return self._outstanding[min(self._outstanding)]
