"""Service-level agreements and admission control.

The paper's QTPAF negotiates a minimum bandwidth with a DiffServ/AF
network service (the EuQoS NRT class).  This module provides the
network-side objects of that negotiation:

* :class:`ServiceLevelAgreement` — one flow's committed rate and burst;
* :class:`AdmissionController` — accepts or rejects SLAs against a
  provisioning budget and manufactures the matching edge meters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.qos.meters import SrTcmMeter


class AdmissionError(Exception):
    """SLA request rejected (over-subscription or duplicate flow)."""


@dataclass(frozen=True)
class ServiceLevelAgreement:
    """A negotiated assurance for one flow.

    Attributes
    ----------
    flow_id: transport flow the SLA covers.
    committed_rate_bps: the guaranteed (in-profile) rate ``g`` that
        gTFRC will use as its sending-rate floor.
    burst_bytes: committed burst size for the edge meter.
    excess_burst_bytes: optional EBS (yellow band).
    af_class: cosmetic AF class label (e.g. "AF1x").
    """

    flow_id: str
    committed_rate_bps: float
    burst_bytes: float = 15_000.0
    excess_burst_bytes: float = 0.0
    af_class: str = "AF1x"

    def __post_init__(self) -> None:
        if self.committed_rate_bps <= 0:
            raise ValueError("committed rate must be positive")
        if self.burst_bytes <= 0:
            raise ValueError("burst must be positive")

    def build_meter(self) -> SrTcmMeter:
        """Create the srTCM edge meter enforcing this SLA."""
        return SrTcmMeter(
            self.committed_rate_bps, self.burst_bytes, self.excess_burst_bytes
        )


class AdmissionController:
    """Tracks committed bandwidth against a link budget.

    Parameters
    ----------
    capacity_bps:
        Bottleneck capacity being provisioned.
    overprovision_factor:
        Fraction of capacity that may be committed (< 1 leaves headroom
        for the AF assurance to actually hold; the Seddigh experiments
        show the assurance failing as this approaches 1).
    """

    def __init__(self, capacity_bps: float, overprovision_factor: float = 0.9):
        if capacity_bps <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < overprovision_factor <= 1.5:
            raise ValueError("overprovision factor out of sane range")
        self.capacity_bps = capacity_bps
        self.overprovision_factor = overprovision_factor
        self.slas: Dict[str, ServiceLevelAgreement] = {}

    @property
    def committed_bps(self) -> float:
        """Sum of currently admitted committed rates."""
        return sum(s.committed_rate_bps for s in self.slas.values())

    @property
    def budget_bps(self) -> float:
        """Total commitable bandwidth."""
        return self.capacity_bps * self.overprovision_factor

    def admit(self, sla: ServiceLevelAgreement) -> ServiceLevelAgreement:
        """Admit an SLA or raise :class:`AdmissionError`."""
        if sla.flow_id in self.slas:
            raise AdmissionError(f"flow {sla.flow_id!r} already has an SLA")
        if self.committed_bps + sla.committed_rate_bps > self.budget_bps:
            raise AdmissionError(
                f"cannot admit {sla.committed_rate_bps / 1e6:.2f} Mbit/s: "
                f"{(self.budget_bps - self.committed_bps) / 1e6:.2f} Mbit/s left"
            )
        self.slas[sla.flow_id] = sla
        return sla

    def release(self, flow_id: str) -> None:
        """Release a flow's reservation; unknown flows are ignored."""
        self.slas.pop(flow_id, None)

    def sla_for(self, flow_id: str) -> ServiceLevelAgreement:
        """Look up an admitted SLA; raises KeyError when absent."""
        return self.slas[flow_id]
