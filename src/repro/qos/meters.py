"""Token buckets and two/three-color traffic meters.

These implement the metering half of DiffServ edge conditioning:

* :class:`TokenBucket` — the elementary continuous-fill bucket;
* :class:`SrTcmMeter` — single-rate three-color marker, RFC 2697;
* :class:`TrTcmMeter` — two-rate three-color marker, RFC 2698.

Meters are *color-blind* by default (they ignore any pre-existing
packet color), matching a first-hop edge conditioner.
"""

from __future__ import annotations

from repro.sim.packet import Color


class TokenBucket:
    """A continuously-filled token bucket.

    Parameters
    ----------
    rate_bps:
        Fill rate in bits per second (tokens are bytes; the bucket
        converts internally).
    burst_bytes:
        Bucket depth in bytes.
    """

    def __init__(self, rate_bps: float, burst_bytes: float):
        if rate_bps < 0 or burst_bytes <= 0:
            raise ValueError("need rate >= 0 and burst > 0")
        self.rate_bps = float(rate_bps)
        self.burst_bytes = float(burst_bytes)
        self.tokens = float(burst_bytes)
        self._last_fill = 0.0

    def refill(self, now: float) -> None:
        """Advance the fill clock to ``now``."""
        if now > self._last_fill:
            self.tokens = min(
                self.burst_bytes,
                self.tokens + (now - self._last_fill) * self.rate_bps / 8.0,
            )
            self._last_fill = now

    def try_consume(self, size_bytes: int, now: float) -> bool:
        """Consume ``size_bytes`` tokens if available; True on success."""
        self.refill(now)
        if self.tokens >= size_bytes:
            self.tokens -= size_bytes
            return True
        return False

    def peek(self, now: float) -> float:
        """Current token level (bytes) after refilling to ``now``."""
        self.refill(now)
        return self.tokens


class SrTcmMeter:
    """Single-rate three-color meter (RFC 2697).

    One committed rate (CIR) feeds both the committed burst bucket (CBS)
    and, with overflow, the excess burst bucket (EBS):

    * tokens in C  → ``GREEN`` (in-profile),
    * else tokens in E → ``YELLOW``,
    * else ``RED``.

    This is the standard AF edge meter: GREEN traffic is what the
    network's assurance (and gTFRC's guaranteed rate) protects.
    """

    def __init__(self, cir_bps: float, cbs_bytes: float, ebs_bytes: float = 0.0):
        if cir_bps <= 0 or cbs_bytes <= 0 or ebs_bytes < 0:
            raise ValueError("need cir > 0, cbs > 0, ebs >= 0")
        self.cir_bps = float(cir_bps)
        self.cbs_bytes = float(cbs_bytes)
        self.ebs_bytes = float(ebs_bytes)
        self.tc = float(cbs_bytes)
        self.te = float(ebs_bytes)
        self._last_fill = 0.0
        self.counts = {c: 0 for c in Color}

    def _refill(self, now: float) -> None:
        if now <= self._last_fill:
            return
        new_tokens = (now - self._last_fill) * self.cir_bps / 8.0
        self._last_fill = now
        room_c = self.cbs_bytes - self.tc
        into_c = min(new_tokens, room_c)
        self.tc += into_c
        self.te = min(self.ebs_bytes, self.te + (new_tokens - into_c))

    def color_of(self, size_bytes: int, now: float) -> Color:
        """Meter one packet and return its color (consuming tokens)."""
        self._refill(now)
        if self.tc >= size_bytes:
            self.tc -= size_bytes
            color = Color.GREEN
        elif self.te >= size_bytes:
            self.te -= size_bytes
            color = Color.YELLOW
        else:
            color = Color.RED
        self.counts[color] += 1
        return color


class TrTcmMeter:
    """Two-rate three-color meter (RFC 2698).

    A peak-rate bucket (PIR/PBS) and a committed-rate bucket (CIR/CBS):

    * above peak → ``RED``,
    * within peak but above committed → ``YELLOW``,
    * within committed → ``GREEN``.
    """

    def __init__(
        self, cir_bps: float, cbs_bytes: float, pir_bps: float, pbs_bytes: float
    ):
        if pir_bps < cir_bps:
            raise ValueError("peak rate must be >= committed rate")
        self._committed = TokenBucket(cir_bps, cbs_bytes)
        self._peak = TokenBucket(pir_bps, pbs_bytes)
        self.counts = {c: 0 for c in Color}

    def color_of(self, size_bytes: int, now: float) -> Color:
        """Meter one packet and return its color (consuming tokens)."""
        self._peak.refill(now)
        self._committed.refill(now)
        if self._peak.tokens < size_bytes:
            color = Color.RED
        elif self._committed.tokens < size_bytes:
            self._peak.tokens -= size_bytes
            color = Color.YELLOW
        else:
            self._peak.tokens -= size_bytes
            self._committed.tokens -= size_bytes
            color = Color.GREEN
        self.counts[color] += 1
        return color
