"""DiffServ / Assured Forwarding QoS substrate (the paper's §4 context).

Provides the EuQoS-like AF class machinery the paper assumes:

* token-bucket meters — :class:`SrTcmMeter` (RFC 2697) and
  :class:`TrTcmMeter` (RFC 2698);
* edge markers that color packets against a flow's traffic profile;
* :class:`ServiceLevelAgreement` plus :class:`AdmissionController` for
  bandwidth negotiation between applications and the network;
* the RIO queue that implements the AF PHB lives in
  :mod:`repro.sim.queues` (:class:`~repro.sim.queues.RioQueue`).
"""

from repro.qos.meters import SrTcmMeter, TokenBucket, TrTcmMeter
from repro.qos.marking import BestEffortMarker, ProfileMarker
from repro.qos.sla import AdmissionController, AdmissionError, ServiceLevelAgreement

__all__ = [
    "TokenBucket",
    "SrTcmMeter",
    "TrTcmMeter",
    "ProfileMarker",
    "BestEffortMarker",
    "ServiceLevelAgreement",
    "AdmissionController",
    "AdmissionError",
]
