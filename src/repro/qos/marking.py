"""Edge markers: apply a meter's verdict to packets entering the domain.

Markers implement the :class:`repro.sim.link.Marker` protocol and are
installed on edge links (see
:meth:`repro.sim.topology.Network.add_simplex_link`).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.packet import Color, Packet


class ProfileMarker:
    """Color packets of selected flows with a traffic meter.

    Parameters
    ----------
    meter:
        An object with ``color_of(size_bytes, now) -> Color``
        (:class:`~repro.qos.meters.SrTcmMeter` or
        :class:`~repro.qos.meters.TrTcmMeter`).
    flow_id:
        When given, only packets of this flow are metered; other flows
        fall through to ``default_color``.
    default_color:
        Color applied to non-metered flows (best-effort = ``RED``).
    """

    def __init__(
        self,
        meter,
        flow_id: Optional[str] = None,
        default_color: Color = Color.RED,
    ):
        self.meter = meter
        self.flow_id = flow_id
        self.default_color = default_color
        self.marked: Dict[Color, int] = {c: 0 for c in Color}

    def mark(self, packet: Packet, now: float) -> None:
        """Set ``packet.color`` according to the flow profile."""
        if self.flow_id is not None and packet.flow_id != self.flow_id:
            packet.color = self.default_color
        else:
            packet.color = self.meter.color_of(packet.size, now)
        self.marked[packet.color] += 1

    def green_fraction(self) -> float:
        """Fraction of marked packets colored GREEN (diagnostic)."""
        total = sum(self.marked.values())
        return self.marked[Color.GREEN] / total if total else 0.0


class BestEffortMarker:
    """Mark every packet with a fixed color (default: out-of-profile RED)."""

    def __init__(self, color: Color = Color.RED):
        self.color = color
        self.marked = 0

    def mark(self, packet: Packet, now: float) -> None:
        """Apply the fixed color."""
        packet.color = self.color
        self.marked += 1
