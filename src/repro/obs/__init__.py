"""repro.obs — the unified observability plane.

Four layers, all zero-cost when disabled (the default):

* :mod:`repro.obs.metrics` — process-wide metrics registry
  (``REPRO_METRICS=1`` / :func:`enable_metrics`), JSON + Prometheus
  exports, harvest hooks for the engine and the sweep fabric;
* :mod:`repro.obs.spans` — structured per-cell span tracing
  (``Experiment.trace()``), JSONL next to the sweep manifest,
  ``--trace-summary`` tables;
* :mod:`repro.obs.progress` — live ``--progress`` rendering on stderr;
* :mod:`repro.obs.profiling` — per-cell cProfile capture
  (``REPRO_PROFILE=1`` / ``Experiment.profile()``) with cross-sweep
  hotspot aggregation.

See ``docs/observability.md`` for the full flag reference.
"""

from repro.obs.metrics import (
    METRICS_ENV,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    harvest_simulator,
    harvest_sweep,
    metrics_enabled,
    registry,
    reset_metrics,
)
from repro.obs.profiling import (
    PROFILE_ENV,
    hotspot_table,
    merge_profiles,
    profile_call,
    profiling_requested,
)
from repro.obs.progress import ProgressRenderer
from repro.obs.spans import (
    SpanWriter,
    format_span_summary,
    read_spans,
    span_summary,
)

__all__ = [
    "METRICS_ENV",
    "MetricsRegistry",
    "PROFILE_ENV",
    "ProgressRenderer",
    "SpanWriter",
    "disable_metrics",
    "enable_metrics",
    "format_span_summary",
    "harvest_simulator",
    "harvest_sweep",
    "hotspot_table",
    "merge_profiles",
    "metrics_enabled",
    "profile_call",
    "profiling_requested",
    "read_spans",
    "registry",
    "reset_metrics",
    "span_summary",
]
