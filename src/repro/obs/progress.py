"""Live sweep progress rendering from the span event stream.

:class:`ProgressRenderer` is an observer callable (same vocabulary as
:mod:`repro.obs.spans`) that paints done/failed/retried counts, an ETA
extrapolated from completed-cell pace, and per-worker utilization.  It
writes to stderr by default so stdout stays pure data; on a TTY it
redraws one line in place (``\\r``), otherwise it prints one line per
completed cell so CI logs stay readable.
"""

from __future__ import annotations

import sys
from time import perf_counter
from typing import Any, Dict, IO, Optional

__all__ = ["ProgressRenderer"]


class ProgressRenderer:
    """Render live sweep progress from span events (see module doc)."""

    def __init__(self, total: Optional[int] = None,
                 stream: Optional[IO[str]] = None):
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.done = 0
        self.failed = 0
        self.retried = 0
        self.cached = 0
        self._t0 = perf_counter()
        self._workers: Dict[int, Dict[str, float]] = {}
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._painted = False

    # -- observer ------------------------------------------------------
    def __call__(self, event: Dict[str, Any]) -> None:
        kind = event.get("event")
        if kind == "sweep" and self.total is None:
            self.total = event.get("cells")
        elif kind == "retry":
            self.retried += 1
        elif kind == "done":
            self.done += 1
            if event.get("cached"):
                self.cached += 1
            else:
                worker = event.get("worker")
                if worker is not None:
                    slot = self._workers.setdefault(
                        worker, {"cells": 0, "busy": 0.0})
                    slot["cells"] += 1
                    slot["busy"] += event.get("wall", 0.0)
            self._paint()
        elif kind == "failed":
            self.failed += 1
            self._paint()

    # -- rendering -----------------------------------------------------
    def _line(self) -> str:
        finished = self.done + self.failed
        total = self.total if self.total is not None else finished
        elapsed = perf_counter() - self._t0
        if finished and total > finished:
            eta = elapsed / finished * (total - finished)
            eta_text = f" eta={eta:.0f}s"
        else:
            eta_text = ""
        return (
            f"[{finished}/{total}] ok={self.done}"
            f" failed={self.failed} retried={self.retried}"
            f" cached={self.cached}{eta_text}"
        )

    def _paint(self) -> None:
        if self._tty:
            self.stream.write("\r" + self._line() + "\x1b[K")
        else:
            self.stream.write(self._line() + "\n")
        self.stream.flush()
        self._painted = True

    def close(self) -> None:
        """Finish the display: newline (TTY) plus worker utilization."""
        if self._tty and self._painted:
            self.stream.write("\n")
        elapsed = perf_counter() - self._t0
        for pid in sorted(self._workers):
            slot = self._workers[pid]
            util = slot["busy"] / elapsed if elapsed > 0 else 0.0
            self.stream.write(
                f"worker {pid}: {int(slot['cells'])} cells, "
                f"{slot['busy']:.2f}s busy ({util:.0%} utilization)\n"
            )
        self.stream.flush()
