"""Per-cell cProfile capture and cross-sweep hotspot aggregation.

``REPRO_PROFILE=1`` (or ``Experiment.profile()``) makes the runner wrap
each fresh cell's scenario function in :class:`cProfile.Profile`.  The
captured stats travel back from the worker in a compact picklable form
— ``{(file, line, func): (cc, nc, tt, ct)}`` with caller chains
stripped — ride the ``RunRecord.profile`` field, and are merged across
the sweep by :func:`merge_profiles` into the :func:`hotspot_table`
printed by ``--profile``/verbose output.

Like everything in :mod:`repro.obs`, the capture is gated once per
sweep (the runner reads the flag at ``run_matrix`` entry); a disabled
sweep never touches :mod:`cProfile`.
"""

from __future__ import annotations

import cProfile
import os
from typing import Any, Callable, Dict, Iterable, Optional, Tuple

__all__ = [
    "PROFILE_ENV",
    "hotspot_table",
    "merge_profiles",
    "profile_call",
    "profiling_requested",
]

#: Environment variable enabling per-cell cProfile capture.
PROFILE_ENV = "REPRO_PROFILE"

#: ``{(file, line, func): (cc, nc, tt, ct)}``
ProfileStats = Dict[Tuple[str, int, str], Tuple[int, int, float, float]]


def profiling_requested() -> bool:
    """True when ``REPRO_PROFILE`` asks for per-cell capture."""
    return os.environ.get(PROFILE_ENV, "") not in ("", "0")


def profile_call(fn: Callable[..., Any], *args: Any,
                 **kwargs: Any) -> Tuple[Any, ProfileStats]:
    """Run ``fn`` under cProfile; return ``(result, compact stats)``.

    The stats keep only the per-function 4-tuple ``(call count,
    non-recursive calls, total time, cumulative time)`` — caller chains
    are dropped so the payload pickles cheaply across the worker pipe.
    """
    prof = cProfile.Profile()
    prof.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        prof.disable()
    prof.create_stats()
    stats: ProfileStats = {
        key: value[:4] for key, value in prof.stats.items()  # type: ignore[attr-defined]
    }
    return result, stats


def merge_profiles(profiles: Iterable[Optional[ProfileStats]]) -> ProfileStats:
    """Sum per-function stats across many cells (``None`` entries skipped)."""
    merged: Dict[Tuple[str, int, str], list] = {}
    for stats in profiles:
        if not stats:
            continue
        for key, (cc, nc, tt, ct) in stats.items():
            slot = merged.get(key)
            if slot is None:
                merged[key] = [cc, nc, tt, ct]
            else:
                slot[0] += cc
                slot[1] += nc
                slot[2] += tt
                slot[3] += ct
    return {key: tuple(value) for key, value in merged.items()}


def hotspot_table(merged: ProfileStats, top: int = 15) -> str:
    """Render the top-``top`` functions by total (self) time."""
    if not merged:
        return "profile: no samples captured"
    rows = sorted(merged.items(), key=lambda kv: kv[1][2], reverse=True)[:top]
    lines = [
        f"profile hotspots (top {len(rows)} by self time, "
        f"{len(merged)} functions total)",
        f"  {'calls':>10} {'tottime':>9} {'cumtime':>9}  function",
    ]
    for (file, line, func), (cc, nc, tt, ct) in rows:
        where = func if file == "~" else f"{os.path.basename(file)}:{line}:{func}"
        lines.append(f"  {nc:>10} {tt:>9.4f} {ct:>9.4f}  {where}")
    return "\n".join(lines)
