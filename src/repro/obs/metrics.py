"""Process-wide metrics registry (counters / gauges / histograms).

The registry is the publication side of the observability plane: the
engine, the sweep fabric and the warm pool all *harvest* their existing
private counters into it at collection boundaries — end of a
``Simulator.run()`` call, end of a sweep — and the registry exports the
resulting labeled series as JSON (:meth:`MetricsRegistry.to_json`) or
Prometheus text exposition format
(:meth:`MetricsRegistry.to_prometheus`).

Zero-cost-when-disabled contract
--------------------------------

Nothing in this module ever instruments a hot path.  Collection is
**harvest-based**: the hot loops keep maintaining exactly the counters
they always maintained (``QueueStats``, ``PacketPool.hits``,
``Simulator._events_processed``, ``warm_pool_stats()``), and only the
*boundaries* read them out:

* :func:`enable_metrics` installs a run-exit hook on
  :mod:`repro.sim.engine` (one module-global check per ``run()`` call,
  never per event) and flips the process flag;
* :func:`disable_metrics` (the default state) uninstalls it — the hook
  global is ``None`` and simulators do not even track their links, so
  the disabled cost is structurally absent from the event loop;
* sweep-level harvests (:func:`harvest_sweep`) walk the finished
  record list once, guarded by :func:`metrics_enabled` at the caller.

``REPRO_METRICS=1`` in the environment enables the registry at import
time (the CLI ``metrics`` subcommand enables it explicitly).
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "METRICS_ENV",
    "MetricsRegistry",
    "Metric",
    "disable_metrics",
    "enable_metrics",
    "harvest_simulator",
    "harvest_sweep",
    "metrics_enabled",
    "registry",
    "reset_metrics",
]

#: Environment variable enabling the metrics plane at import time.
METRICS_ENV = "REPRO_METRICS"

#: Default histogram bucket upper bounds (seconds-flavoured).
DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

_KINDS = ("counter", "gauge", "histogram")


def _label_key(labels: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    """Canonical (sorted, stringified) series key for one label set."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Metric:
    """One named metric holding labeled series (see :class:`MetricsRegistry`).

    A counter accumulates via :meth:`inc`, a gauge holds the last
    :meth:`set`, a histogram accumulates :meth:`observe` into bucket
    counts plus ``sum``/``count``.  The empty label set is a legal
    series (an unlabeled metric has exactly one).
    """

    __slots__ = ("name", "kind", "help", "buckets", "_series")

    def __init__(self, name: str, kind: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}; known: {_KINDS}")
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = tuple(sorted(buckets)) if kind == "histogram" else ()
        # label-key -> float (counter/gauge) or [bucket_counts, sum, count]
        self._series: Dict[Tuple[Tuple[str, str], ...], Any] = {}

    # -- write side ----------------------------------------------------
    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if self.kind != "counter":
            raise TypeError(f"{self.name} is a {self.kind}, not a counter")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def set(self, value: float, **labels: Any) -> None:
        if self.kind != "gauge":
            raise TypeError(f"{self.name} is a {self.kind}, not a gauge")
        self._series[_label_key(labels)] = float(value)

    def observe(self, value: float, **labels: Any) -> None:
        if self.kind != "histogram":
            raise TypeError(f"{self.name} is a {self.kind}, not a histogram")
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = [[0] * len(self.buckets), 0.0, 0]
        counts, _, _ = series
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
        series[1] += value
        series[2] += 1

    # -- read side -----------------------------------------------------
    def series(self) -> List[Tuple[Dict[str, str], Any]]:
        """``[(labels, value)]`` snapshots, deterministically ordered."""
        out = []
        for key in sorted(self._series):
            value = self._series[key]
            if self.kind == "histogram":
                counts, total, count = value
                value = {
                    "buckets": dict(zip(map(str, self.buckets), counts)),
                    "sum": total,
                    "count": count,
                }
            out.append((dict(key), value))
        return out

    def value(self, **labels: Any) -> Any:
        """The raw value of one series (KeyError when never written)."""
        value = self._series[_label_key(labels)]
        if self.kind == "histogram":
            counts, total, count = value
            return {"buckets": list(counts), "sum": total, "count": count}
        return value


class MetricsRegistry:
    """A named collection of :class:`Metric` objects.

    ``counter``/``gauge``/``histogram`` create-or-return by name (a
    kind mismatch on an existing name raises), so harvest code never
    has to pre-declare.  Thread-safe for registration; value updates
    are plain float ops (the GIL is sufficient for the harvest-side
    write pattern).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind: str, help: str,
             buckets: Sequence[float]) -> Metric:
        metric = self._metrics.get(name)
        if metric is not None:
            if metric.kind != kind:
                raise TypeError(
                    f"metric {name!r} already registered as a "
                    f"{metric.kind}, not a {kind}"
                )
            return metric
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = Metric(name, kind, help, buckets)
                self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Metric:
        return self._get(name, "counter", help, ())

    def gauge(self, name: str, help: str = "") -> Metric:
        return self._get(name, "gauge", help, ())

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Metric:
        return self._get(name, "histogram", help, buckets)

    def metrics(self) -> List[Metric]:
        return [self._metrics[name] for name in sorted(self._metrics)]

    def clear(self) -> None:
        self._metrics = {}

    # -- exports -------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        """A plain-dict snapshot: ``{name: {kind, help, series: [...]}}``."""
        out: Dict[str, Any] = {}
        for metric in self.metrics():
            out[metric.name] = {
                "kind": metric.kind,
                "help": metric.help,
                "series": [
                    {"labels": labels, "value": value}
                    for labels, value in metric.series()
                ],
            }
        return out

    def to_json_text(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4) of every series."""
        lines: List[str] = []
        for metric in self.metrics():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for labels, value in metric.series():
                if metric.kind == "histogram":
                    cumulative = 0
                    raw = metric.value(**labels)
                    for bound, count in zip(metric.buckets, raw["buckets"]):
                        cumulative = count  # bucket counts are cumulative
                        lines.append(
                            f"{metric.name}_bucket"
                            f"{_fmt_labels(labels, le=repr(float(bound)))}"
                            f" {count}"
                        )
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_fmt_labels(labels, le='+Inf')} {raw['count']}"
                    )
                    lines.append(
                        f"{metric.name}_sum{_fmt_labels(labels)} "
                        f"{_fmt_value(raw['sum'])}"
                    )
                    lines.append(
                        f"{metric.name}_count{_fmt_labels(labels)} "
                        f"{raw['count']}"
                    )
                else:
                    lines.append(
                        f"{metric.name}{_fmt_labels(labels)} "
                        f"{_fmt_value(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt_labels(labels: Dict[str, str], **extra: str) -> str:
    merged = {**labels, **extra}
    if not merged:
        return ""
    body = ",".join(
        f'{k}="{v}"' for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def _fmt_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


# ----------------------------------------------------------------------
# the process-wide default registry and the enable gate
# ----------------------------------------------------------------------
_REGISTRY = MetricsRegistry()
_ENABLED = False


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def metrics_enabled() -> bool:
    """True when the metrics plane is on (harvests should publish)."""
    return _ENABLED


def enable_metrics() -> None:
    """Turn the metrics plane on (idempotent).

    Installs the engine run-exit hook: from now on every
    ``Simulator.run()`` in this process publishes its event count,
    events/s and final heap depth, and newly constructed simulators
    track their links so per-queue color counters can be harvested at
    run exit.  The hook is a module global checked once per ``run()``
    call — never inside the event loop.
    """
    global _ENABLED
    _ENABLED = True
    from repro.sim import engine

    engine._obs_run_hook = _engine_run_hook


def disable_metrics() -> None:
    """Turn the metrics plane off (the default; idempotent)."""
    global _ENABLED
    _ENABLED = False
    from repro.sim import engine

    engine._obs_run_hook = None


def reset_metrics() -> None:
    """Clear every recorded series (the enable state is unchanged)."""
    _REGISTRY.clear()


# ----------------------------------------------------------------------
# harvests
# ----------------------------------------------------------------------
def _engine_run_hook(sim: Any, processed: int, wall: float) -> None:
    """Publish one finished ``Simulator.run()`` call (engine-installed)."""
    harvest_simulator(sim, processed=processed, wall=wall)


def harvest_simulator(sim: Any, processed: Optional[int] = None,
                      wall: Optional[float] = None) -> None:
    """Publish one simulator's counters into the default registry.

    Called automatically at ``run()`` exit while metrics are enabled;
    may also be called manually with any live simulator.  Publishes the
    engine series (events processed, events/s, heap depth) plus — for
    simulators constructed while metrics were enabled — the per-link
    queue accept/drop counters by DiffServ color and the packet-pool
    hit/miss/recycle counters.
    """
    reg = _REGISTRY
    if processed is None:
        processed = sim.events_processed
    reg.counter(
        "repro_engine_events_total", "callbacks executed by the event loop"
    ).inc(processed)
    if wall is not None and wall > 0:
        reg.gauge(
            "repro_engine_events_per_second",
            "event rate of the most recent run() call",
        ).set(processed / wall)
    reg.gauge(
        "repro_engine_heap_depth", "calendar entries at run() exit"
    ).set(len(sim._heap))
    pool = getattr(sim, "_packet_pool", None)
    if pool:
        pool_metric = reg.gauge(
            "repro_packet_pool", "packet pool lifecycle counters"
        )
        pool_metric.set(pool.hits, event="hits")
        pool_metric.set(pool.misses, event="misses")
        pool_metric.set(pool.recycled, event="recycled")
    links = getattr(sim, "_obs_links", None)
    if links:
        accepts = reg.gauge(
            "repro_queue_accepts", "packets accepted per link queue and color"
        )
        drops = reg.gauge(
            "repro_queue_drops", "packets dropped per link queue and color"
        )
        for link in links:
            stats = link.queue.stats
            for color, n in stats.accepts_by_color.items():
                if n:
                    accepts.set(n, link=link.name, color=color.name)
            for color, n in stats.drops_by_color.items():
                if n:
                    drops.set(n, link=link.name, color=color.name)


def harvest_sweep(records: Iterable[Any]) -> None:
    """Publish one finished sweep's record list into the registry.

    Harvests cache hits/misses, per-status cell counts, retry totals,
    terminal failures by kind, fresh cell wall/CPU time histograms, the
    warm-pool lifecycle counters and the corrupt-cache quarantine
    count.  One pass over the records; called only at sweep end and
    only while :func:`metrics_enabled`.
    """
    from repro.harness.runner import quarantine_count, warm_pool_stats

    reg = _REGISTRY
    cells = reg.counter("repro_sweep_cells_total", "sweep cells by status")
    retries = reg.counter(
        "repro_sweep_retries_total", "extra attempts spent across all cells"
    )
    failures = reg.counter(
        "repro_sweep_failures_total", "terminal cell failures by kind"
    )
    hits = reg.counter("repro_cache_hits_total", "sweep memo cache hits")
    misses = reg.counter("repro_cache_misses_total", "sweep memo cache misses")
    wall = reg.histogram(
        "repro_sweep_cell_seconds", "wall-clock seconds per fresh cell"
    )
    cpu = reg.histogram(
        "repro_sweep_cell_cpu_seconds", "CPU seconds per fresh cell"
    )
    n_hit = n_miss = 0
    for record in records:
        if record.cached:
            n_hit += 1
            cells.inc(status="cached")
            continue
        n_miss += 1
        if record.attempts > 1:
            retries.inc(record.attempts - 1)
        if record.ok:
            cells.inc(status="ok")
            wall.observe(record.elapsed)
            if record.cpu:
                cpu.observe(record.cpu)
        else:
            cells.inc(status="failed")
            failures.inc(kind=record.result.failure_kind)
    if n_hit:
        hits.inc(n_hit)
    if n_miss:
        misses.inc(n_miss)
    pool = reg.gauge(
        "repro_warm_pool", "warm worker-pool lifecycle counters"
    )
    for event, count in warm_pool_stats().items():
        pool.set(count, event=event)
    reg.gauge(
        "repro_cache_quarantines", "corrupt cache entries quarantined"
    ).set(quarantine_count())


if os.environ.get(METRICS_ENV, "") not in ("", "0"):
    enable_metrics()
