"""Structured span tracing for the sweep fabric.

Every sweep cell progresses through a small state machine::

    queued -> dispatched -> (retry(n) -> dispatched ...)* -> done | failed

The runner emits one flat dict per transition through its ``observer``
callback; :class:`SpanWriter` timestamps each event relative to the
sweep start, keeps it in memory, and — when given a path — appends it
as one JSON line so the trace lands next to the sweep manifest
(``<scenario>.spans.jsonl``).  The file is append-only and flushed per
event, so a killed sweep still leaves a valid prefix; :func:`read_spans`
tolerates a torn final line.

Event vocabulary (all events carry ``t``, seconds since sweep start):

``sweep``
    header — ``scenario``, ``cells``, ``started`` (epoch seconds)
``queued``
    ``i`` (cell index) — cache miss entering the work queue
``dispatched``
    ``i``, ``attempt``, ``worker`` (pid)
``retry``
    ``i``, ``attempt`` (the attempt that failed), ``kind``, ``delay``
``done``
    ``i``, ``wall``, ``cpu``, ``worker``, ``attempts``, ``cached``
``failed``
    ``i``, ``kind``, ``error``, ``attempts``, ``wall``

:func:`span_summary` folds an event list into per-sweep and per-worker
aggregates; :func:`format_span_summary` renders the ``--trace-summary``
table.
"""

from __future__ import annotations

import json
import os
from time import perf_counter
from typing import Any, Dict, IO, Iterable, List, Optional

__all__ = [
    "SpanWriter",
    "format_span_summary",
    "read_spans",
    "span_summary",
]


class SpanWriter:
    """Collects (and optionally persists) one sweep's span events.

    The writer is itself the observer callable: pass it wherever an
    ``observer=`` hook is accepted.  Events are kept in ``self.events``
    for in-process consumers (``ResultSet.spans``, the ``--trace-summary``
    table) and appended to ``path`` as JSONL when a path is given.
    """

    def __init__(self, path: Optional[str] = None,
                 header: Optional[Dict[str, Any]] = None,
                 *, append: bool = False):
        self.path = str(path) if path is not None else None
        self.events: List[Dict[str, Any]] = []
        self._t0 = perf_counter()
        self._fh: Optional[IO[str]] = None
        if self.path is not None:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            # append=True continues an earlier invocation's journal
            # (campaign resume) instead of truncating it
            self._fh = open(self.path, "a" if append else "w",
                            encoding="utf-8")
        if header is not None:
            self.emit({"event": "sweep", **header})

    def __call__(self, event: Dict[str, Any]) -> None:
        self.emit(event)

    def emit(self, event: Dict[str, Any]) -> None:
        entry = dict(event)
        entry["t"] = round(perf_counter() - self._t0, 6)
        self.events.append(entry)
        if self._fh is not None:
            self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.flush()
                os.fsync(self._fh.fileno())
            except OSError:
                pass
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SpanWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_spans(path: str) -> List[Dict[str, Any]]:
    """Parse a span JSONL file, skipping a torn (partial) final line."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return events


def span_summary(events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold a span event list into sweep- and worker-level aggregates.

    Returns a dict with ``scenario``, ``cells``, ``done``/``failed``/
    ``cached`` counts, ``retries``, wall-time stats over fresh ok cells
    (``wall_total``/``wall_mean``/``wall_max``), ``cpu_total``,
    ``duration`` (last event timestamp) and ``workers`` — a pid-keyed
    dict of ``{cells, busy, utilization}``.
    """
    scenario = None
    cells: Optional[int] = None
    done = failed = cached = retries = 0
    walls: List[float] = []
    cpu_total = 0.0
    duration = 0.0
    workers: Dict[int, Dict[str, float]] = {}
    for ev in events:
        duration = max(duration, ev.get("t", 0.0))
        kind = ev.get("event")
        if kind == "sweep":
            scenario = ev.get("scenario")
            cells = ev.get("cells")
        elif kind == "retry":
            retries += 1
        elif kind == "done":
            done += 1
            if ev.get("cached"):
                cached += 1
            else:
                walls.append(ev.get("wall", 0.0))
                cpu_total += ev.get("cpu", 0.0) or 0.0
                worker = ev.get("worker")
                if worker is not None:
                    slot = workers.setdefault(worker, {"cells": 0, "busy": 0.0})
                    slot["cells"] += 1
                    slot["busy"] += ev.get("wall", 0.0)
        elif kind == "failed":
            failed += 1
    for slot in workers.values():
        slot["utilization"] = slot["busy"] / duration if duration > 0 else 0.0
    return {
        "scenario": scenario,
        "cells": cells if cells is not None else done + failed,
        "done": done,
        "failed": failed,
        "cached": cached,
        "retries": retries,
        "wall_total": sum(walls),
        "wall_mean": sum(walls) / len(walls) if walls else 0.0,
        "wall_max": max(walls) if walls else 0.0,
        "cpu_total": cpu_total,
        "duration": duration,
        "workers": {pid: dict(slot) for pid, slot in sorted(workers.items())},
    }


def format_span_summary(events: Iterable[Dict[str, Any]]) -> str:
    """Render the ``--trace-summary`` table for one sweep's spans."""
    s = span_summary(events)
    lines = [
        f"trace summary: {s['scenario'] or '<sweep>'} "
        f"({s['cells']} cells, {s['duration']:.2f}s)",
        f"  done={s['done']} failed={s['failed']} cached={s['cached']} "
        f"retries={s['retries']}",
        f"  fresh cell wall: total={s['wall_total']:.3f}s "
        f"mean={s['wall_mean']:.3f}s max={s['wall_max']:.3f}s "
        f"cpu_total={s['cpu_total']:.3f}s",
    ]
    if s["workers"]:
        lines.append("  worker     cells  busy(s)  utilization")
        for pid, slot in s["workers"].items():
            lines.append(
                f"  {pid:<9} {slot['cells']:>6} {slot['busy']:>8.3f} "
                f"{slot['utilization']:>10.0%}"
            )
    return "\n".join(lines)
