"""Durable, atomic file writes shared across the repo.

Every derived artifact the repo persists (perf records, ResultSet
exports, campaign artifacts, memo-cache entries) goes through one of
these helpers instead of a bare ``Path.write_text``.  The contract:

* readers never observe a half-written file — the payload lands in a
  same-directory temp file and is published with ``os.replace``, which
  POSIX guarantees to be atomic;
* with ``fsync=True`` (the default) the payload is flushed to stable
  storage *before* the rename, and the directory entry itself is
  fsynced after it, so a crash straddling the write leaves either the
  complete old file or the complete new file — never a truncated one.

``fsync=False`` keeps the atomicity (rename) but skips the durability
barrier; it is for high-rate writers like the sweep memo cache where a
lost-on-power-cut entry is merely a cache miss.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Union

__all__ = ["atomic_write_bytes", "atomic_write_text", "atomic_write_json"]

PathLike = Union[str, Path]


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry so a rename survives power loss.

    Best-effort: some platforms/filesystems refuse to open or fsync a
    directory, and losing that barrier only risks the *rename* (not a
    torn file), so errors are swallowed.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, data: bytes, *, fsync: bool = True) -> Path:
    """Atomically publish ``data`` at ``path``; return the final path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # same-directory temp file: os.replace must not cross filesystems
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with tmp.open("wb") as fh:
            fh.write(data)
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        try:
            tmp.unlink()
        except OSError:
            pass
    if fsync:
        _fsync_directory(path.parent)
    return path


def atomic_write_text(
    path: PathLike,
    text: str,
    *,
    encoding: str = "utf-8",
    fsync: bool = True,
) -> Path:
    """Atomically publish ``text`` at ``path``; return the final path."""
    return atomic_write_bytes(path, text.encode(encoding), fsync=fsync)


def atomic_write_json(
    path: PathLike,
    payload: Any,
    *,
    indent: int = 2,
    sort_keys: bool = True,
    fsync: bool = True,
) -> Path:
    """Atomically publish ``payload`` as canonical JSON (newline-terminated)."""
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    return atomic_write_text(path, text, fsync=fsync)
