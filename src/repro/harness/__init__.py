"""Experiment harness: scenario registry, sweep runner and tables.

Three layers:

* :mod:`repro.harness.experiments` — one module per canonical
  experiment (DESIGN.md's index); each scenario builder is registered
  with :mod:`repro.harness.registry` under a stable name, with a
  parameter schema and the paper's default sweep grid.
* :mod:`repro.harness.runner` — :func:`run_matrix` fans a parameter
  grid out across multiprocessing workers with deterministic per-run
  seeds and memoizes completed runs on disk, so benchmarks declare
  sweeps instead of hand-rolling loops and re-runs are free.
* the CLI — ``python -m repro.harness run <scenario> --sweep ...``
  (see :mod:`repro.harness.cli`).
* :mod:`repro.harness.bench` — the pinned perf suite behind
  ``python -m repro.harness bench`` / ``bench --check`` and the
  golden trace probes that pin the engine's exact behavior.

The historical flat imports (``from repro.harness.scenarios import
af_dumbbell_scenario``) keep working via the re-export shim.
"""

from repro.harness.registry import (
    ScenarioSpec,
    get_scenario,
    list_scenarios,
    register,
)
from repro.harness.runner import RunRecord, code_version, expand_grid, run_matrix
from repro.harness.scenarios import (
    AfResult,
    LossyPathResult,
    af_dumbbell_scenario,
    convergence_scenario,
    estimation_accuracy_scenario,
    friendliness_scenario,
    gtfrc_ablation_scenario,
    lossy_path_scenario,
    negotiation_scenario,
    receiver_load_scenario,
    reliability_scenario,
    selfish_receiver_scenario,
    smoothness_scenario,
)
from repro.harness.tables import format_table

__all__ = [
    "af_dumbbell_scenario",
    "convergence_scenario",
    "gtfrc_ablation_scenario",
    "lossy_path_scenario",
    "negotiation_scenario",
    "smoothness_scenario",
    "friendliness_scenario",
    "receiver_load_scenario",
    "estimation_accuracy_scenario",
    "selfish_receiver_scenario",
    "reliability_scenario",
    "AfResult",
    "LossyPathResult",
    "format_table",
    "ScenarioSpec",
    "register",
    "get_scenario",
    "list_scenarios",
    "RunRecord",
    "run_matrix",
    "expand_grid",
    "code_version",
]
