"""Experiment harness: scenario registry, sweep runner and tables.

The layers:

* :mod:`repro.harness.experiments` — one module per canonical
  experiment (DESIGN.md's index); each scenario builder is registered
  with :mod:`repro.harness.registry` under a stable name, with a
  parameter schema, the paper's default sweep grid and a declared
  :class:`~repro.harness.result.ScenarioResult` return type.
* :mod:`repro.harness.runner` — :func:`run_matrix` fans a parameter
  grid out across multiprocessing workers with deterministic per-run
  seeds and memoizes completed runs on disk, so benchmarks declare
  sweeps instead of hand-rolling loops and re-runs are free.
* the CLI — ``python -m repro.harness run <scenario> --sweep ...
  --format table|csv|json`` (see :mod:`repro.harness.cli`).
* :mod:`repro.harness.bench` — the pinned perf suite behind
  ``python -m repro.harness bench`` / ``bench --check`` and the
  golden trace probes that pin the engine's exact behavior.

:mod:`repro.api` (``Experiment`` / ``ResultSet``) is the public front
door over all of this; prefer it for new code.  The historical flat
imports (``from repro.harness.scenarios import af_dumbbell_scenario``)
keep working via the deprecated re-export shim.
"""

from repro.harness.experiments.ablation import gtfrc_ablation_scenario
from repro.harness.experiments.af_assurance import AfResult, af_dumbbell_scenario
from repro.harness.experiments.convergence import convergence_scenario
from repro.harness.experiments.estimation import estimation_accuracy_scenario
from repro.harness.experiments.friendliness import friendliness_scenario
from repro.harness.experiments.lossy_path import (
    LossyPathResult,
    lossy_path_scenario,
)
from repro.harness.experiments.negotiation_matrix import negotiation_scenario
from repro.harness.experiments.receiver_load import receiver_load_scenario
from repro.harness.experiments.reliability import reliability_scenario
from repro.harness.experiments.selfish import selfish_receiver_scenario
from repro.harness.experiments.smoothness import smoothness_scenario
from repro.harness.registry import (
    ScenarioSpec,
    get_scenario,
    list_scenarios,
    register,
)
from repro.harness.result import MappingResult, ScenarioResult, coerce_result
from repro.harness.runner import RunRecord, code_version, expand_grid, run_matrix
from repro.harness.tables import format_table

__all__ = [
    "MappingResult",
    "ScenarioResult",
    "coerce_result",
    "af_dumbbell_scenario",
    "convergence_scenario",
    "gtfrc_ablation_scenario",
    "lossy_path_scenario",
    "negotiation_scenario",
    "smoothness_scenario",
    "friendliness_scenario",
    "receiver_load_scenario",
    "estimation_accuracy_scenario",
    "selfish_receiver_scenario",
    "reliability_scenario",
    "AfResult",
    "LossyPathResult",
    "format_table",
    "ScenarioSpec",
    "register",
    "get_scenario",
    "list_scenarios",
    "RunRecord",
    "run_matrix",
    "expand_grid",
    "code_version",
]
