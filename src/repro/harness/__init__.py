"""Experiment harness: scenario builders, sweeps and table formatting.

Each function in :mod:`repro.harness.scenarios` builds, runs and
summarizes one canonical experiment setup from DESIGN.md's experiment
index; the benchmarks call them with the paper's parameter ranges and
print the resulting tables, and the integration tests assert the
claim *shapes* on smaller configurations.
"""

from repro.harness.scenarios import (
    AfResult,
    LossyPathResult,
    af_dumbbell_scenario,
    lossy_path_scenario,
    smoothness_scenario,
    friendliness_scenario,
    receiver_load_scenario,
    estimation_accuracy_scenario,
    selfish_receiver_scenario,
    reliability_scenario,
)
from repro.harness.tables import format_table

__all__ = [
    "af_dumbbell_scenario",
    "lossy_path_scenario",
    "smoothness_scenario",
    "friendliness_scenario",
    "receiver_load_scenario",
    "estimation_accuracy_scenario",
    "selfish_receiver_scenario",
    "reliability_scenario",
    "AfResult",
    "LossyPathResult",
    "format_table",
]
