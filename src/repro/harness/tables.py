"""Plain-text table formatting for benchmark output.

The benchmarks regenerate the paper's (implied) tables as fixed-width
text so ``pytest benchmarks/ --benchmark-only -s`` reads like the
evaluation section of a paper.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as a fixed-width text table.

    Numbers are formatted to a sensible precision; everything else via
    ``str``.
    """
    rendered: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.4f}"
    return str(value)
