"""Canonical experiment scenarios (one per DESIGN.md experiment).

Every function builds a network, runs it for a configurable duration
and returns a small result record.  All randomness flows from the
``seed`` argument, so results are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.apps.playout import PlayoutBuffer
from repro.apps.sources import MediaSource
from repro.core.instances import (
    QTPAF,
    QTPLIGHT,
    TFRC_MEDIA,
    build_transport_pair,
)
from repro.core.profile import (
    CongestionControl,
    LossEstimationSite,
    ReliabilityMode,
    TransportProfile,
)
from repro.core.qtplight import LyingFeedbackFilter
from repro.core.receiver import QtpReceiver
from repro.metrics.cost import CostMeter
from repro.metrics.recorder import FlowRecorder
from repro.metrics.stats import coefficient_of_variation, jain_index
from repro.netem.channels import BernoulliLossChannel, GilbertElliottChannel
from repro.qos.marking import ProfileMarker
from repro.qos.sla import ServiceLevelAgreement
from repro.sim.engine import Simulator
from repro.sim.packet import Color
from repro.sim.queues import DropTailQueue, RedQueue, RioQueue
from repro.sim.topology import chain, dumbbell
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender
from repro.tfrc.loss_history import LossEventEstimator

#: Protocol labels accepted by the scenarios.
AF_PROTOCOLS = ("tcp", "tfrc", "gtfrc", "qtpaf")


# ----------------------------------------------------------------------
# T1 / T2 — AF bandwidth assurance
# ----------------------------------------------------------------------
@dataclass
class AfResult:
    """Outcome of one AF-assurance run."""

    protocol: str
    target_bps: float
    achieved_bps: float
    green_drop_ratio: float
    out_drop_ratio: float
    cross_total_bps: float

    @property
    def ratio(self) -> float:
        """Achieved / negotiated — 1.0 means the assurance held."""
        return self.achieved_bps / self.target_bps if self.target_bps else 0.0


def _assured_profile(protocol: str, target_bps: float) -> Optional[TransportProfile]:
    if protocol == "qtpaf":
        return QTPAF(target_bps)
    if protocol == "gtfrc":
        return QTPAF(target_bps, name="gTFRC", reliability=ReliabilityMode.NONE)
    if protocol == "tfrc":
        return TFRC_MEDIA
    return None  # tcp


def af_dumbbell_scenario(
    protocol: str,
    target_bps: float,
    n_cross: int = 4,
    bottleneck_bps: float = 10e6,
    bottleneck_delay: float = 0.02,
    access_delay: float = 0.002,
    duration: float = 60.0,
    warmup: float = 10.0,
    seed: int = 0,
    assured_access_delay: Optional[float] = None,
) -> AfResult:
    """The paper's §4 experiment: an assured flow against TCP cross traffic.

    One flow holds an AF reservation of ``target_bps`` (srTCM edge
    marker + RIO bottleneck); ``n_cross`` greedy best-effort TCP flows
    congest the same bottleneck.  Returns the assured flow's achieved
    goodput and the bottleneck drop ratios per precedence.

    ``protocol`` selects the assured flow's transport: "tcp" (the
    Seddigh failure case), "tfrc" (no QoS-awareness), "gtfrc"
    (QoS-aware rate control only) or "qtpaf" (gTFRC + full
    reliability — the paper's instance).
    """
    if protocol not in AF_PROTOCOLS:
        raise ValueError(f"unknown protocol {protocol!r}")
    sim = Simulator(seed=seed)
    sla = ServiceLevelAgreement(
        flow_id="assured", committed_rate_bps=target_bps, burst_bytes=30_000
    )
    markers: List[Optional[ProfileMarker]] = [
        ProfileMarker(sla.build_meter(), flow_id="assured")
    ] + [None] * n_cross
    delays = [assured_access_delay or access_delay] + [access_delay] * n_cross
    rio_rng = sim.rng("rio")
    mean_pkt_time = 1000 * 8 / bottleneck_bps
    d = dumbbell(
        sim,
        n_pairs=1 + n_cross,
        bottleneck_rate=bottleneck_bps,
        bottleneck_delay=bottleneck_delay,
        bottleneck_queue_factory=lambda: RioQueue(
            rng=rio_rng, mean_pkt_time=mean_pkt_time
        ),
        access_delays=delays,
        access_markers=markers,
    )
    assured_rec = FlowRecorder("assured")
    profile = _assured_profile(protocol, target_bps)
    if profile is None:
        sender = TcpSender(sim, dst="d0", sack=True)
        receiver = TcpReceiver(sim, recorder=assured_rec, sack=True)
        sender.attach(d.net.node("s0"), "assured")
        receiver.attach(d.net.node("d0"), "assured")
        sender.start()
    else:
        sender, receiver = build_transport_pair(
            sim,
            d.net.node("s0"),
            d.net.node("d0"),
            "assured",
            profile,
            recorder=assured_rec,
            start=True,
        )
    cross_recs = []
    for i in range(1, 1 + n_cross):
        rec = FlowRecorder(f"cross{i}")
        cross_recs.append(rec)
        tcp_snd = TcpSender(sim, dst=f"d{i}", sack=True)
        tcp_rcv = TcpReceiver(sim, recorder=rec, sack=True)
        tcp_snd.attach(d.net.node(f"s{i}"), f"x{i}")
        tcp_rcv.attach(d.net.node(f"d{i}"), f"x{i}")
        tcp_snd.start()
    sim.run(until=duration)
    stats = d.bottleneck.queue.stats
    green_offered = (
        stats.accepts_by_color[Color.GREEN] + stats.drops_by_color[Color.GREEN]
    )
    out_offered = stats.offered - green_offered
    out_drops = stats.dropped - stats.drops_by_color[Color.GREEN]
    return AfResult(
        protocol=protocol,
        target_bps=target_bps,
        achieved_bps=assured_rec.mean_rate_bps(warmup, duration),
        green_drop_ratio=(
            stats.drops_by_color[Color.GREEN] / green_offered if green_offered else 0.0
        ),
        out_drop_ratio=out_drops / out_offered if out_offered else 0.0,
        cross_total_bps=sum(r.mean_rate_bps(warmup, duration) for r in cross_recs),
    )


# ----------------------------------------------------------------------
# F1 — smoothness
# ----------------------------------------------------------------------
@dataclass
class SmoothnessResult:
    """Throughput series and its coefficient of variation."""

    protocol: str
    mean_bps: float
    cov: float
    series_bps: List[float] = field(repr=False, default_factory=list)


def smoothness_scenario(
    protocol: str,
    bottleneck_bps: float = 4e6,
    duration: float = 120.0,
    warmup: float = 20.0,
    bin_width: float = 0.2,
    seed: int = 0,
) -> SmoothnessResult:
    """One measured flow + one TCP competitor over a RED bottleneck.

    The paper's motivation (§2/§3): TFRC's equation-driven rate is much
    smoother than TCP's AIMD sawtooth under identical conditions.  A
    RED queue keeps the bottleneck buffer short so the receiver-side
    throughput actually exposes the sender's sawtooth (a deep DropTail
    buffer would smooth it away).
    """
    sim = Simulator(seed=seed)
    mean_pkt_time = 1000 * 8 / bottleneck_bps
    d = dumbbell(
        sim,
        n_pairs=2,
        bottleneck_rate=bottleneck_bps,
        bottleneck_delay=0.02,
        bottleneck_queue_factory=lambda: RedQueue(
            min_th=5, max_th=20, max_p=0.1, capacity_packets=60,
            rng=sim.rng("red"), mean_pkt_time=mean_pkt_time,
        ),
    )
    rec = FlowRecorder(protocol)
    if protocol == "tcp":
        snd = TcpSender(sim, dst="d0", sack=True)
        rcv = TcpReceiver(sim, recorder=rec, sack=True)
        snd.attach(d.net.node("s0"), "probe")
        rcv.attach(d.net.node("d0"), "probe")
        snd.start()
    elif protocol == "tfrc":
        build_transport_pair(
            sim, d.net.node("s0"), d.net.node("d0"), "probe", TFRC_MEDIA,
            recorder=rec, start=True,
        )
    else:
        raise ValueError(f"unknown protocol {protocol!r}")
    competitor = FlowRecorder("cross")
    tcp_snd = TcpSender(sim, dst="d1", sack=True)
    tcp_rcv = TcpReceiver(sim, recorder=competitor, sack=True)
    tcp_snd.attach(d.net.node("s1"), "cross")
    tcp_rcv.attach(d.net.node("d1"), "cross")
    tcp_snd.start()
    sim.run(until=duration)
    series = rec.series(bin_width, end=duration)
    steady = series[int(warmup / bin_width):]
    return SmoothnessResult(
        protocol=protocol,
        mean_bps=rec.mean_rate_bps(warmup, duration),
        cov=coefficient_of_variation(steady),
        series_bps=[8 * v for v in steady],
    )


# ----------------------------------------------------------------------
# F2 — lossy / multi-hop paths
# ----------------------------------------------------------------------
@dataclass
class LossyPathResult:
    """Goodput over a lossy multi-hop path."""

    protocol: str
    loss_rate: float
    observed_loss_rate: float
    goodput_bps: float


def lossy_path_scenario(
    protocol: str,
    loss_rate: float,
    n_hops: int = 3,
    hop_rate_bps: float = 2e6,
    hop_delay: float = 0.005,
    bursty: bool = False,
    duration: float = 60.0,
    warmup: float = 10.0,
    seed: int = 0,
) -> LossyPathResult:
    """TCP vs TFRC over a chain with per-hop random loss (paper §2 claim 1).

    ``bursty=True`` uses a Gilbert–Elliott channel tuned to the same
    steady-state loss rate; otherwise losses are Bernoulli.
    """
    sim = Simulator(seed=seed)
    rng = sim.rng("wireless")

    def channel_factory():
        if loss_rate <= 0:
            return None
        if bursty:
            # fix the bad-state dynamics, solve p_g2b for the target rate
            p_bad, p_b2g = 0.5, 0.25
            p_g2b = loss_rate * p_b2g / max(1e-9, (p_bad - loss_rate))
            return GilbertElliottChannel(
                p_g2b=min(0.9, p_g2b), p_b2g=p_b2g, p_bad=p_bad, rng=rng
            )
        return BernoulliLossChannel(loss_rate, rng=rng)

    topo = chain(
        sim,
        n_hops=n_hops,
        rate=hop_rate_bps,
        delay=hop_delay,
        channel_factory=channel_factory,
    )
    rec = FlowRecorder(protocol)
    src, dst = topo.first, topo.last
    if protocol == "tcp":
        snd = TcpSender(sim, dst=dst.name, sack=True)
        rcv = TcpReceiver(sim, recorder=rec, sack=True)
        snd.attach(src, "flow")
        rcv.attach(dst, "flow")
        snd.start()
    elif protocol == "tfrc":
        build_transport_pair(
            sim, src, dst, "flow", TFRC_MEDIA, recorder=rec, start=True
        )
    else:
        raise ValueError(f"unknown protocol {protocol!r}")
    sim.run(until=duration)
    observed = [
        link.channel.observed_loss_rate()
        for link in topo.hops
        if link.channel is not None
    ]
    return LossyPathResult(
        protocol=protocol,
        loss_rate=loss_rate,
        observed_loss_rate=sum(observed) / len(observed) if observed else 0.0,
        goodput_bps=rec.mean_rate_bps(warmup, duration),
    )


# ----------------------------------------------------------------------
# F4 — TCP friendliness
# ----------------------------------------------------------------------
@dataclass
class FriendlinessResult:
    """Bandwidth sharing of one TFRC against N TCP flows."""

    n_tcp: int
    tfrc_bps: float
    tcp_mean_bps: float
    normalized: float
    jain: float


def friendliness_scenario(
    n_tcp: int,
    bottleneck_bps: float = 8e6,
    duration: float = 100.0,
    warmup: float = 20.0,
    seed: int = 0,
) -> FriendlinessResult:
    """One TFRC flow sharing a RED bottleneck with ``n_tcp`` TCP flows."""
    sim = Simulator(seed=seed)
    red_rng = sim.rng("red")
    mean_pkt_time = 1000 * 8 / bottleneck_bps
    d = dumbbell(
        sim,
        n_pairs=1 + n_tcp,
        bottleneck_rate=bottleneck_bps,
        bottleneck_delay=0.02,
        bottleneck_queue_factory=lambda: RedQueue(
            min_th=10, max_th=30, capacity_packets=80,
            rng=red_rng, mean_pkt_time=mean_pkt_time,
        ),
    )
    tfrc_rec = FlowRecorder("tfrc")
    build_transport_pair(
        sim, d.net.node("s0"), d.net.node("d0"), "tfrc", TFRC_MEDIA,
        recorder=tfrc_rec, start=True,
    )
    tcp_recs = []
    for i in range(1, 1 + n_tcp):
        rec = FlowRecorder(f"tcp{i}")
        tcp_recs.append(rec)
        snd = TcpSender(sim, dst=f"d{i}", sack=True)
        rcv = TcpReceiver(sim, recorder=rec, sack=True)
        snd.attach(d.net.node(f"s{i}"), f"tcp{i}")
        rcv.attach(d.net.node(f"d{i}"), f"tcp{i}")
        snd.start()
    sim.run(until=duration)
    tfrc_bps = tfrc_rec.mean_rate_bps(warmup, duration)
    tcp_rates = [r.mean_rate_bps(warmup, duration) for r in tcp_recs]
    tcp_mean = sum(tcp_rates) / len(tcp_rates)
    return FriendlinessResult(
        n_tcp=n_tcp,
        tfrc_bps=tfrc_bps,
        tcp_mean_bps=tcp_mean,
        normalized=tfrc_bps / tcp_mean if tcp_mean > 0 else float("inf"),
        jain=jain_index([tfrc_bps] + tcp_rates),
    )


# ----------------------------------------------------------------------
# T3 — receiver processing load
# ----------------------------------------------------------------------
@dataclass
class ReceiverLoadResult:
    """Cost-meter comparison of receiver compositions."""

    profile_name: str
    loss_rate: float
    packets: int
    rx_ops_per_packet: float
    rx_peak_bytes: int
    tx_estimator_ops_per_packet: float
    feedback_sent: int


def receiver_load_scenario(
    profile: TransportProfile,
    loss_rate: float = 0.02,
    rate_bps: float = 2e6,
    duration: float = 40.0,
    warmup: float = 10.0,
    seed: int = 0,
) -> ReceiverLoadResult:
    """Measure per-packet receiver work for one composition (paper §3).

    A single lossy link; the sender streams at up to ``rate_bps``.  The
    receiver's cost meter captures the RFC 3448 machinery (heavy) or
    the QTPlight SACK bookkeeping (light); the sender meter shows where
    QTPlight moved the work.  Meters are reset after ``warmup`` so the
    slow-start overshoot transient (a loss burst every composition
    shares) does not dominate the peak-memory column.
    """
    sim = Simulator(seed=seed)
    topo = chain(
        sim,
        n_hops=1,
        rate=rate_bps,
        delay=0.02,
        channel_factory=lambda: (
            BernoulliLossChannel(loss_rate, rng=sim.rng("loss"))
            if loss_rate > 0
            else None
        ),
    )
    rx_meter = CostMeter("receiver")
    tx_meter = CostMeter("sender-estimator")
    rec = FlowRecorder()
    snd, rcv = build_transport_pair(
        sim, topo.first, topo.last, "flow", profile,
        recorder=rec, rx_meter=rx_meter, tx_meter=tx_meter, start=True,
    )
    packets_at_warmup = [0]

    def reset_meters() -> None:
        rx_meter.reset()
        tx_meter.reset()
        packets_at_warmup[0] = getattr(rcv, "received_packets", 0)

    sim.schedule(warmup, reset_meters)
    sim.run(until=duration)
    packets = getattr(rcv, "received_packets", 1) - packets_at_warmup[0]
    return ReceiverLoadResult(
        profile_name=profile.name,
        loss_rate=loss_rate,
        packets=packets,
        rx_ops_per_packet=rx_meter.ops / max(1, packets),
        rx_peak_bytes=rx_meter.peak_bytes,
        tx_estimator_ops_per_packet=tx_meter.ops / max(1, packets),
        feedback_sent=getattr(rcv, "feedback_sent", 0),
    )


# ----------------------------------------------------------------------
# F3 — sender-side estimation accuracy
# ----------------------------------------------------------------------
class _ShadowReceiver(QtpReceiver):
    """QTPlight receiver that *also* runs a silent RFC 3448 estimator.

    The shadow estimator sees exactly the packet stream the receiver
    sees, providing the ground-truth receiver-side loss event rate that
    the sender-side estimate is compared against.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.shadow = LossEventEstimator()

    def receive(self, packet) -> None:  # noqa: D102 - see base class
        header = packet.header
        from repro.sim.packet import TfrcDataHeader  # local to avoid cycle noise

        if isinstance(header, TfrcDataHeader):
            self.shadow.on_packet(
                header.seq, self.sim.now, max(header.rtt_estimate, 1e-6)
            )
        super().receive(packet)


@dataclass
class EstimationAccuracyResult:
    """Sender-side vs receiver-side loss event rate on one stream."""

    loss_rate: float
    samples: List[Tuple[float, float, float]]  # (time, p_sender, p_shadow)
    mean_p_sender: float
    mean_p_shadow: float
    mean_abs_rel_error: float
    goodput_bps: float


def estimation_accuracy_scenario(
    loss_rate: float,
    rate_bps: float = 2e6,
    duration: float = 60.0,
    warmup: float = 10.0,
    sample_period: float = 0.5,
    seed: int = 0,
) -> EstimationAccuracyResult:
    """Run QTPlight with a shadow receiver-side estimator (paper §3).

    Samples both loss-event-rate estimates every ``sample_period``
    seconds and reports their agreement over the post-warmup window.
    """
    sim = Simulator(seed=seed)
    topo = chain(
        sim,
        n_hops=1,
        rate=rate_bps,
        delay=0.02,
        channel_factory=lambda: (
            BernoulliLossChannel(loss_rate, rng=sim.rng("loss"))
            if loss_rate > 0
            else None
        ),
    )
    rec = FlowRecorder()
    from dataclasses import replace

    from repro.core.sender import QtpSender

    # audit skips would register as losses at the shadow estimator but
    # not at the sender, biasing the very comparison we are making
    profile = replace(QTPLIGHT, audit_skip_interval=0)
    sender = QtpSender(sim, dst=topo.last.name, profile=profile)
    receiver = _ShadowReceiver(sim, profile=profile, recorder=rec)
    sender.attach(topo.first, "flow")
    receiver.attach(topo.last, "flow")
    sender.start()
    samples: List[Tuple[float, float, float]] = []

    def sample() -> None:
        assert sender.estimator is not None
        samples.append(
            (
                sim.now,
                sender.estimator.loss_event_rate(),
                receiver.shadow.loss_event_rate(),
            )
        )
        if sim.now + sample_period <= duration:
            sim.schedule(sample_period, sample)

    sim.schedule(sample_period, sample)
    sim.run(until=duration)
    steady = [s for s in samples if s[0] >= warmup and s[2] > 0]
    mean_s = sum(s[1] for s in steady) / len(steady) if steady else 0.0
    mean_r = sum(s[2] for s in steady) / len(steady) if steady else 0.0
    errors = [abs(s[1] - s[2]) / s[2] for s in steady]
    return EstimationAccuracyResult(
        loss_rate=loss_rate,
        samples=samples,
        mean_p_sender=mean_s,
        mean_p_shadow=mean_r,
        mean_abs_rel_error=sum(errors) / len(errors) if errors else 0.0,
        goodput_bps=rec.mean_rate_bps(warmup, duration),
    )


# ----------------------------------------------------------------------
# T4 — selfish receivers
# ----------------------------------------------------------------------
@dataclass
class SelfishResult:
    """Goodput split between a (possibly cheating) flow and its victim."""

    mode: str
    lying: bool
    cheater_bps: float
    victim_bps: float


def selfish_receiver_scenario(
    mode: str,
    lying: bool,
    bottleneck_bps: float = 4e6,
    duration: float = 80.0,
    warmup: float = 20.0,
    seed: int = 0,
) -> SelfishResult:
    """A (possibly lying) receiver shares a bottleneck with an honest TFRC.

    ``mode`` is "tfrc" (standard, receiver-computed p — vulnerable) or
    "qtplight" (sender-computed p — the paper's protection).  With
    ``lying=True`` the first flow's receiver mangles its reports per
    :class:`~repro.core.qtplight.LyingFeedbackFilter`.
    """
    if mode not in ("tfrc", "qtplight"):
        raise ValueError(f"unknown mode {mode!r}")
    sim = Simulator(seed=seed)
    d = dumbbell(
        sim,
        n_pairs=2,
        bottleneck_rate=bottleneck_bps,
        bottleneck_delay=0.02,
        bottleneck_queue_factory=lambda: DropTailQueue(capacity_packets=40),
    )
    cheater_rec = FlowRecorder("cheater")
    victim_rec = FlowRecorder("victim")
    profile = TFRC_MEDIA if mode == "tfrc" else QTPLIGHT
    flt = LyingFeedbackFilter(p_scale=0.0, x_scale=4.0) if lying else None
    build_transport_pair(
        sim, d.net.node("s0"), d.net.node("d0"), "cheat", profile,
        recorder=cheater_rec, feedback_filter=flt, start=True,
    )
    build_transport_pair(
        sim, d.net.node("s1"), d.net.node("d1"), "victim", TFRC_MEDIA,
        recorder=victim_rec, start=True,
    )
    sim.run(until=duration)
    return SelfishResult(
        mode=mode,
        lying=lying,
        cheater_bps=cheater_rec.mean_rate_bps(warmup, duration),
        victim_bps=victim_rec.mean_rate_bps(warmup, duration),
    )


# ----------------------------------------------------------------------
# T5 — reliability modes over media
# ----------------------------------------------------------------------
@dataclass
class ReliabilityResult:
    """Media delivery under one reliability mode."""

    mode: str
    sent: int
    delivered: int
    skipped: int
    retransmissions: int
    abandoned: int
    on_time_ratio: float
    mean_latency: float
    p95_latency: float

    @property
    def useful_ratio(self) -> float:
        """Fraction of *sent* messages that arrived before their deadline.

        The decisive media metric: NONE loses frames outright, FULL
        delivers them late; time-bounded partial reliability maximizes
        this ratio (the paper's §1 motivation for negotiable
        reliability).
        """
        if self.sent == 0:
            return 1.0
        return self.on_time_ratio * self.delivered / self.sent


def reliability_scenario(
    mode: ReliabilityMode,
    loss_rate: float = 0.03,
    rate_bps: float = 3e6,
    duration: float = 60.0,
    playout_delay: float = 0.28,
    seed: int = 0,
) -> ReliabilityResult:
    """An MPEG-like stream over a lossy link under one reliability mode.

    Shows the trade-off the paper's negotiable reliability exposes:
    NONE loses frames, FULL delivers everything but late, the partial
    modes repair what the playout deadline still allows.
    """
    sim = Simulator(seed=seed)
    topo = chain(
        sim,
        n_hops=1,
        rate=rate_bps,
        delay=0.03,
        channel_factory=lambda: (
            BernoulliLossChannel(loss_rate, rng=sim.rng("loss"))
            if loss_rate > 0
            else None
        ),
    )
    profile = TransportProfile(
        name=f"media-{mode.value}",
        congestion_control=CongestionControl.TFRC,
        reliability=mode,
        loss_estimation=LossEstimationSite.RECEIVER,
        partial_deadline=playout_delay,
        partial_max_retx=2,
    )
    playout = PlayoutBuffer()
    rec = FlowRecorder()
    snd, rcv = build_transport_pair(
        sim, topo.first, topo.last, "media", profile,
        recorder=rec,
        on_deliver=lambda pkt: playout.deliver(pkt, sim.now),
        bulk=False,
    )
    source = MediaSource(
        sim, snd, fps=25.0, playout_delay=playout_delay
    )
    source.start()
    sim.run(until=duration)
    latencies = rcv.app_latencies
    latencies_sorted = sorted(latencies)
    p95 = (
        latencies_sorted[int(0.95 * (len(latencies_sorted) - 1))]
        if latencies_sorted
        else 0.0
    )
    return ReliabilityResult(
        mode=mode.value,
        sent=source.messages,
        delivered=rcv.app_delivered,
        skipped=rcv.skipped_messages,
        retransmissions=snd.retransmissions,
        abandoned=snd.abandoned,
        on_time_ratio=playout.on_time_ratio(),
        mean_latency=sum(latencies) / len(latencies) if latencies else 0.0,
        p95_latency=p95,
    )
