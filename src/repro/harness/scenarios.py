"""Deprecated flat re-exports of the canonical experiment scenarios.

The scenario builders live in per-experiment modules under
:mod:`repro.harness.experiments` (one module per DESIGN.md experiment),
where each is registered with :mod:`repro.harness.registry`; the
public front door for running and analyzing them is :mod:`repro.api`
(``Experiment`` / ``ResultSet``).  This module keeps the historical
flat namespace importable for old call sites and warns once per
process; import from ``repro.harness.experiments.*`` (or drive
scenarios through ``repro.api``) instead.
"""

from __future__ import annotations

import warnings as _warnings

_warnings.warn(
    "repro.harness.scenarios is deprecated; import from "
    "repro.harness.experiments.* or use repro.api (Experiment/ResultSet)",
    DeprecationWarning,
    stacklevel=2,
)

from repro.harness.experiments.ablation import (  # noqa: F401,E402
    ABLATION_VARIANTS,
    AblationResult,
    gtfrc_ablation_scenario,
)
from repro.harness.experiments.af_assurance import (  # noqa: F401,E402
    AF_PROTOCOLS,
    AfResult,
    af_dumbbell_scenario,
)
from repro.harness.experiments.convergence import (  # noqa: F401,E402
    ConvergenceResult,
    convergence_scenario,
)
from repro.harness.experiments.estimation import (  # noqa: F401,E402
    EstimationAccuracyResult,
    _ShadowReceiver,
    estimation_accuracy_scenario,
)
from repro.harness.experiments.friendliness import (  # noqa: F401,E402
    FriendlinessResult,
    friendliness_scenario,
)
from repro.harness.experiments.lossy_path import (  # noqa: F401,E402
    LossyPathResult,
    lossy_path_scenario,
)
from repro.harness.experiments.negotiation_matrix import (  # noqa: F401,E402
    NEGOTIATION_PAIRS,
    NegotiationMatrixResult,
    negotiation_scenario,
)
from repro.harness.experiments.receiver_load import (  # noqa: F401,E402
    ReceiverLoadResult,
    receiver_load_scenario,
)
from repro.harness.experiments.reliability import (  # noqa: F401,E402
    ReliabilityResult,
    reliability_scenario,
)
from repro.harness.experiments.selfish import (  # noqa: F401,E402
    SelfishResult,
    selfish_receiver_scenario,
)
from repro.harness.experiments.smoothness import (  # noqa: F401,E402
    SmoothnessResult,
    smoothness_scenario,
)

__all__ = [
    "ABLATION_VARIANTS",
    "AF_PROTOCOLS",
    "AblationResult",
    "AfResult",
    "ConvergenceResult",
    "EstimationAccuracyResult",
    "FriendlinessResult",
    "LossyPathResult",
    "NEGOTIATION_PAIRS",
    "NegotiationMatrixResult",
    "ReceiverLoadResult",
    "ReliabilityResult",
    "SelfishResult",
    "SmoothnessResult",
    "af_dumbbell_scenario",
    "convergence_scenario",
    "estimation_accuracy_scenario",
    "friendliness_scenario",
    "gtfrc_ablation_scenario",
    "lossy_path_scenario",
    "negotiation_scenario",
    "receiver_load_scenario",
    "reliability_scenario",
    "selfish_receiver_scenario",
    "smoothness_scenario",
]
