"""A1 — gTFRC design ablation (DESIGN.md §6).

Compares the guaranteed-rate mechanisms on the T1 configuration:

* ``floor``      — the draft's hard ``X = max(g, X_tfrc)`` (default);
* ``p-scaling``  — scale the loss event rate by the out-of-profile
  share before the equation (smoother variant);
* ``none``       — plain TFRC (no QoS awareness).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instances import QTPAF, TFRC_MEDIA
from repro.core.profile import ReliabilityMode
from repro.harness.registry import register
from repro.metrics.recorder import FlowRecorder
from repro.qos.marking import ProfileMarker
from repro.qos.sla import ServiceLevelAgreement
from repro.sim.engine import Simulator
from repro.sim.queues import RioQueue
from repro.sim.topology import dumbbell
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender
from repro.tfrc.gtfrc import GtfrcRateController

#: Mechanism variants accepted by the scenario.
ABLATION_VARIANTS = ("floor", "p-scaling", "none")


@dataclass
class AblationResult:
    """Outcome of one gTFRC-mechanism ablation run."""

    variant: str
    target_bps: float
    achieved_bps: float
    floor_hits: int

    @property
    def ratio(self) -> float:
        """Achieved / negotiated — 1.0 means the reservation held."""
        return self.achieved_bps / self.target_bps if self.target_bps else 0.0


@register(
    "gtfrc_ablation",
    grid={"variant": ABLATION_VARIANTS},
)
def gtfrc_ablation_scenario(
    variant: str,
    target_bps: float = 6e6,
    n_cross: int = 8,
    duration: float = 40.0,
    warmup: float = 10.0,
    seed: int = 3,
) -> AblationResult:
    """One guaranteed-rate mechanism under T1 conditions (g = 6 Mb/s).

    Expected: both QoS-aware variants hold the reservation where plain
    TFRC undershoots; the hard floor is the most exact.
    """
    if variant not in ABLATION_VARIANTS:
        raise ValueError(f"unknown variant {variant!r}")
    from repro.core.receiver import QtpReceiver
    from repro.core.sender import QtpSender

    sim = Simulator(seed=seed)
    sla = ServiceLevelAgreement("assured", target_bps, burst_bytes=30_000)
    markers = [ProfileMarker(sla.build_meter(), flow_id="assured")] + [None] * n_cross
    d = dumbbell(
        sim,
        n_pairs=1 + n_cross,
        bottleneck_rate=10e6,
        bottleneck_delay=0.02,
        bottleneck_queue_factory=lambda: RioQueue(
            rng=sim.rng("rio"), mean_pkt_time=0.0008
        ),
        access_delays=[0.1] + [0.002] * n_cross,
        access_markers=markers,
    )
    rec = FlowRecorder()
    if variant == "none":
        profile, controller = TFRC_MEDIA, None
    else:
        profile = QTPAF(target_bps, name=f"gTFRC-{variant}",
                        reliability=ReliabilityMode.NONE)
        controller = GtfrcRateController(
            target_bps / 8, profile.segment_size, p_scaling=(variant == "p-scaling")
        )
    sender = QtpSender(sim, dst="d0", profile=profile, controller=controller)
    receiver = QtpReceiver(sim, profile=profile, recorder=rec)
    sender.attach(d.net.node("s0"), "assured")
    receiver.attach(d.net.node("d0"), "assured")
    sender.start()
    for i in range(1, 1 + n_cross):
        TcpSender(sim, dst=f"d{i}", sack=True).attach(
            d.net.node(f"s{i}"), f"x{i}"
        ).start()
        TcpReceiver(sim, sack=True).attach(d.net.node(f"d{i}"), f"x{i}")
    sim.run(until=duration)
    return AblationResult(
        variant=variant,
        target_bps=target_bps,
        achieved_bps=rec.mean_rate_bps(warmup, duration),
        floor_hits=getattr(sender.controller, "floor_activations", 0),
    )
