"""A1 — gTFRC design ablation (DESIGN.md §6).

Compares the guaranteed-rate mechanisms on the T1 configuration (the
shared :func:`repro.topo.presets.t1_dumbbell_spec`):

* ``floor``      — the draft's hard ``X = max(g, X_tfrc)`` (default);
* ``p-scaling``  — scale the loss event rate by the out-of-profile
  share before the equation (smoother variant);
* ``none``       — plain TFRC (no QoS awareness).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.registry import register
from repro.harness.result import ScenarioResult
from repro.sim.engine import Simulator
from repro.topo import build, t1_dumbbell_spec

#: Mechanism variants accepted by the scenario.
ABLATION_VARIANTS = ("floor", "p-scaling", "none")


@dataclass
class AblationResult(ScenarioResult):
    """Outcome of one gTFRC-mechanism ablation run."""

    __computed_metrics__ = ("ratio",)

    variant: str
    target_bps: float
    achieved_bps: float
    floor_hits: int

    @property
    def ratio(self) -> float:
        """Achieved / negotiated — 1.0 means the reservation held."""
        return self.achieved_bps / self.target_bps if self.target_bps else 0.0


@register(
    "gtfrc_ablation",
    grid={"variant": ABLATION_VARIANTS},
)
def gtfrc_ablation_scenario(
    variant: str,
    target_bps: float = 6e6,
    n_cross: int = 8,
    duration: float = 40.0,
    warmup: float = 10.0,
    seed: int = 3,
) -> AblationResult:
    """One guaranteed-rate mechanism under T1 conditions (g = 6 Mb/s).

    Expected: both QoS-aware variants hold the reservation where plain
    TFRC undershoots; the hard floor is the most exact.
    """
    if variant not in ABLATION_VARIANTS:
        raise ValueError(f"unknown variant {variant!r}")
    sim = Simulator(seed=seed)
    built = build(
        sim,
        t1_dumbbell_spec(
            "tfrc" if variant == "none" else "gtfrc",
            target_bps,
            n_cross=n_cross,
            assured_access_delay=0.1,
            p_scaling=(variant == "p-scaling"),
        ),
    )
    sim.run(until=duration)
    sender = built.senders["assured"]
    return AblationResult(
        variant=variant,
        target_bps=target_bps,
        achieved_bps=built.recorder("assured").mean_rate_bps(warmup, duration),
        floor_hits=getattr(sender.controller, "floor_activations", 0),
    )
