"""P1 — parking-lot / multi-bottleneck AF assurance (PR 3).

The T1 question over *two* RIO bottlenecks in series: the assured flow
crosses both hops, each hop has its own SLA conditioning and its own
greedy TCP cross burst (:func:`repro.topo.presets.parking_lot_spec`).
A guarantee that survives one conditioned bottleneck can still be
eroded multiplicatively across domains — this measures by how much.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.harness.registry import register
from repro.harness.result import ScenarioResult
from repro.sim.engine import Simulator
from repro.sim.packet import Color
from repro.topo import build, parking_lot_spec

#: Transports accepted by the scenario.
PARKING_LOT_PROTOCOLS = ("tcp", "tfrc", "gtfrc", "qtpaf")


@dataclass
class ParkingLotResult(ScenarioResult):
    """Outcome of one multi-bottleneck AF run."""

    __computed_metrics__ = ("ratio",)

    protocol: str
    target_bps: float
    achieved_bps: float
    hop1_green_drop_ratio: float
    hop2_green_drop_ratio: float
    cross_a_bps: float
    cross_b_bps: float

    @property
    def ratio(self) -> float:
        """Achieved / negotiated — 1.0 means the end-to-end assurance held."""
        return self.achieved_bps / self.target_bps if self.target_bps else 0.0


@register(
    "parking_lot",
    grid={"protocol": ("tfrc", "gtfrc", "qtpaf"), "target_bps": (2e6, 4e6)},
)
def parking_lot_scenario(
    protocol: str,
    target_bps: float,
    n_cross_a: int = 3,
    n_cross_b: int = 3,
    bottleneck_bps: float = 10e6,
    hop2_target_bps: Optional[float] = None,
    duration: float = 40.0,
    warmup: float = 10.0,
    seed: int = 0,
) -> ParkingLotResult:
    """An assured flow across two conditioned RIO bottlenecks.

    ``n_cross_a`` TCP flows congest the first hop only, ``n_cross_b``
    the second only; the assured flow is metered at the edge and
    re-conditioned (fresh srTCM, ``hop2_target_bps``) before the second
    hop.  Returns end-to-end goodput plus per-hop green drop ratios —
    gTFRC should hold ``g`` end to end, TFRC/TCP should lose ground at
    every hop.
    """
    if protocol not in PARKING_LOT_PROTOCOLS:
        raise ValueError(f"unknown protocol {protocol!r}")
    sim = Simulator(seed=seed)
    built = build(
        sim,
        parking_lot_spec(
            protocol,
            target_bps,
            n_cross_a=n_cross_a,
            n_cross_b=n_cross_b,
            bottleneck_bps=bottleneck_bps,
            hop2_target_bps=hop2_target_bps,
            cross_record=True,
        ),
    )
    sim.run(until=duration)
    return ParkingLotResult(
        protocol=protocol,
        target_bps=target_bps,
        achieved_bps=built.recorder("assured").mean_rate_bps(warmup, duration),
        hop1_green_drop_ratio=built.queue("r0", "r1").stats.color_drop_ratio(
            Color.GREEN
        ),
        hop2_green_drop_ratio=built.queue("r1", "r2").stats.color_drop_ratio(
            Color.GREEN
        ),
        cross_a_bps=sum(
            built.recorder(f"a{i}").mean_rate_bps(warmup, duration)
            for i in range(1, 1 + n_cross_a)
        ),
        cross_b_bps=sum(
            built.recorder(f"b{i}").mean_rate_bps(warmup, duration)
            for i in range(1, 1 + n_cross_b)
        ),
    )
