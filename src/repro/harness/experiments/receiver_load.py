"""T3 — receiver processing load (paper §3)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instances import (
    QTPAF,
    QTPLIGHT,
    QTPLIGHT_RELIABLE,
    TFRC_MEDIA,
    build_transport_pair,
)
from repro.core.profile import TransportProfile
from repro.harness.registry import register
from repro.harness.result import ScenarioResult
from repro.metrics.cost import CostMeter
from repro.metrics.recorder import FlowRecorder
from repro.netem.channels import BernoulliLossChannel
from repro.sim.engine import Simulator
from repro.sim.topology import chain

#: Named receiver compositions available to the registered sweep entry
#: (the raw scenario takes a full :class:`TransportProfile`, which is
#: not expressible in a JSON parameter grid).
RECEIVER_PROFILES = {
    "tfrc": TFRC_MEDIA,
    "qtplight": QTPLIGHT,
    "qtplight-retx": QTPLIGHT_RELIABLE,
}


@dataclass
class ReceiverLoadResult(ScenarioResult):
    """Cost-meter comparison of receiver compositions."""

    profile_name: str
    loss_rate: float
    packets: int
    rx_ops_per_packet: float
    rx_peak_bytes: int
    tx_estimator_ops_per_packet: float
    feedback_sent: int


def receiver_load_scenario(
    profile: TransportProfile,
    loss_rate: float = 0.02,
    rate_bps: float = 2e6,
    duration: float = 40.0,
    warmup: float = 10.0,
    seed: int = 0,
) -> ReceiverLoadResult:
    """Measure per-packet receiver work for one composition (paper §3).

    A single lossy link; the sender streams at up to ``rate_bps``.  The
    receiver's cost meter captures the RFC 3448 machinery (heavy) or
    the QTPlight SACK bookkeeping (light); the sender meter shows where
    QTPlight moved the work.  Meters are reset after ``warmup`` so the
    slow-start overshoot transient (a loss burst every composition
    shares) does not dominate the peak-memory column.
    """
    sim = Simulator(seed=seed)
    topo = chain(
        sim,
        n_hops=1,
        rate=rate_bps,
        delay=0.02,
        channel_factory=lambda: (
            BernoulliLossChannel(loss_rate, rng=sim.rng("loss"))
            if loss_rate > 0
            else None
        ),
    )
    rx_meter = CostMeter("receiver")
    tx_meter = CostMeter("sender-estimator")
    rec = FlowRecorder()
    snd, rcv = build_transport_pair(
        sim, topo.first, topo.last, "flow", profile,
        recorder=rec, rx_meter=rx_meter, tx_meter=tx_meter, start=True,
    )
    packets_at_warmup = [0]

    def reset_meters() -> None:
        rx_meter.reset()
        tx_meter.reset()
        packets_at_warmup[0] = getattr(rcv, "received_packets", 0)

    sim.schedule(warmup, reset_meters)
    sim.run(until=duration)
    packets = getattr(rcv, "received_packets", 1) - packets_at_warmup[0]
    return ReceiverLoadResult(
        profile_name=profile.name,
        loss_rate=loss_rate,
        packets=packets,
        rx_ops_per_packet=rx_meter.ops / max(1, packets),
        rx_peak_bytes=rx_meter.peak_bytes,
        tx_estimator_ops_per_packet=tx_meter.ops / max(1, packets),
        feedback_sent=getattr(rcv, "feedback_sent", 0),
    )


@register(
    "receiver_load",
    grid={
        "profile": tuple(RECEIVER_PROFILES) + ("qtpaf",),
        "loss_rate": (0.0, 0.02, 0.08),
    },
    description="Per-packet receiver cost by composition name (paper §3).",
)
def receiver_load_by_name(
    profile: str = "qtplight",
    loss_rate: float = 0.02,
    rate_bps: float = 2e6,
    duration: float = 40.0,
    warmup: float = 10.0,
    seed: int = 0,
    qos_target_bps: float = 1e6,
) -> ReceiverLoadResult:
    """Sweepable adapter: resolve ``profile`` by name and run the scenario.

    ``"qtpaf"`` composes the full QoS-aware reliable instance bound to
    ``qos_target_bps`` (the factory takes the guarantee, so it cannot
    live in the static name → profile table).
    """
    if profile == "qtpaf":
        resolved = QTPAF(qos_target_bps)
    elif profile in RECEIVER_PROFILES:
        resolved = RECEIVER_PROFILES[profile]
    else:
        raise ValueError(
            f"unknown profile {profile!r}; known: "
            f"{sorted([*RECEIVER_PROFILES, 'qtpaf'])}"
        )
    return receiver_load_scenario(
        resolved,
        loss_rate=loss_rate,
        rate_bps=rate_bps,
        duration=duration,
        warmup=warmup,
        seed=seed,
    )
