"""F3 — sender-side loss estimation accuracy (paper §3)."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

from repro.core.instances import QTPLIGHT
from repro.core.receiver import QtpReceiver
from repro.core.sender import QtpSender
from repro.harness.registry import register
from repro.harness.result import ScenarioResult
from repro.metrics.recorder import FlowRecorder
from repro.netem.channels import BernoulliLossChannel
from repro.sim.engine import Simulator
from repro.sim.topology import chain
from repro.tfrc.loss_history import LossEventEstimator


class _ShadowReceiver(QtpReceiver):
    """QTPlight receiver that *also* runs a silent RFC 3448 estimator.

    The shadow estimator sees exactly the packet stream the receiver
    sees, providing the ground-truth receiver-side loss event rate that
    the sender-side estimate is compared against.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.shadow = LossEventEstimator()

    def receive(self, packet) -> None:  # noqa: D102 - see base class
        header = packet.header
        from repro.sim.packet import TfrcDataHeader  # local to avoid cycle noise

        if isinstance(header, TfrcDataHeader):
            self.shadow.on_packet(
                header.seq, self.sim.now, max(header.rtt_estimate, 1e-6)
            )
        super().receive(packet)


@dataclass
class EstimationAccuracyResult(ScenarioResult):
    """Sender-side vs receiver-side loss event rate on one stream."""

    loss_rate: float
    samples: List[Tuple[float, float, float]]  # (time, p_sender, p_shadow)
    mean_p_sender: float
    mean_p_shadow: float
    mean_abs_rel_error: float
    goodput_bps: float


@register(
    "estimation_accuracy",
    grid={"loss_rate": (0.005, 0.02, 0.05, 0.1)},
)
def estimation_accuracy_scenario(
    loss_rate: float,
    rate_bps: float = 2e6,
    duration: float = 60.0,
    warmup: float = 10.0,
    sample_period: float = 0.5,
    seed: int = 0,
) -> EstimationAccuracyResult:
    """Run QTPlight with a shadow receiver-side estimator (paper §3).

    Samples both loss-event-rate estimates every ``sample_period``
    seconds and reports their agreement over the post-warmup window.
    """
    sim = Simulator(seed=seed)
    topo = chain(
        sim,
        n_hops=1,
        rate=rate_bps,
        delay=0.02,
        channel_factory=lambda: (
            BernoulliLossChannel(loss_rate, rng=sim.rng("loss"))
            if loss_rate > 0
            else None
        ),
    )
    rec = FlowRecorder()
    # audit skips would register as losses at the shadow estimator but
    # not at the sender, biasing the very comparison we are making
    profile = replace(QTPLIGHT, audit_skip_interval=0)
    sender = QtpSender(sim, dst=topo.last.name, profile=profile)
    receiver = _ShadowReceiver(sim, profile=profile, recorder=rec)
    sender.attach(topo.first, "flow")
    receiver.attach(topo.last, "flow")
    sender.start()
    samples: List[Tuple[float, float, float]] = []

    def sample() -> None:
        assert sender.estimator is not None
        samples.append(
            (
                sim.now,
                sender.estimator.loss_event_rate(),
                receiver.shadow.loss_event_rate(),
            )
        )
        if sim.now + sample_period <= duration:
            sim.schedule(sample_period, sample)

    sim.schedule(sample_period, sample)
    sim.run(until=duration)
    steady = [s for s in samples if s[0] >= warmup and s[2] > 0]
    mean_s = sum(s[1] for s in steady) / len(steady) if steady else 0.0
    mean_r = sum(s[2] for s in steady) / len(steady) if steady else 0.0
    errors = [abs(s[1] - s[2]) / s[2] for s in steady]
    return EstimationAccuracyResult(
        loss_rate=loss_rate,
        samples=samples,
        mean_p_sender=mean_s,
        mean_p_shadow=mean_r,
        mean_abs_rel_error=sum(errors) / len(errors) if errors else 0.0,
        goodput_bps=rec.mean_rate_bps(warmup, duration),
    )
