"""F4 — TCP friendliness of TFRC (paper §2)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instances import TFRC_MEDIA, build_transport_pair
from repro.harness.registry import register
from repro.harness.result import ScenarioResult
from repro.metrics.recorder import FlowRecorder
from repro.metrics.stats import jain_index
from repro.sim.engine import Simulator
from repro.sim.queues import RedQueue
from repro.sim.topology import dumbbell
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender


@dataclass
class FriendlinessResult(ScenarioResult):
    """Bandwidth sharing of one TFRC against N TCP flows."""

    n_tcp: int
    tfrc_bps: float
    tcp_mean_bps: float
    normalized: float
    jain: float


@register("friendliness", grid={"n_tcp": (1, 2, 4, 8, 16)})
def friendliness_scenario(
    n_tcp: int,
    bottleneck_bps: float = 8e6,
    duration: float = 100.0,
    warmup: float = 20.0,
    seed: int = 0,
) -> FriendlinessResult:
    """One TFRC flow sharing a RED bottleneck with ``n_tcp`` TCP flows."""
    sim = Simulator(seed=seed)
    red_rng = sim.rng("red")
    mean_pkt_time = 1000 * 8 / bottleneck_bps
    d = dumbbell(
        sim,
        n_pairs=1 + n_tcp,
        bottleneck_rate=bottleneck_bps,
        bottleneck_delay=0.02,
        bottleneck_queue_factory=lambda: RedQueue(
            min_th=10, max_th=30, capacity_packets=80,
            rng=red_rng, mean_pkt_time=mean_pkt_time,
        ),
    )
    tfrc_rec = FlowRecorder("tfrc")
    build_transport_pair(
        sim, d.net.node("s0"), d.net.node("d0"), "tfrc", TFRC_MEDIA,
        recorder=tfrc_rec, start=True,
    )
    tcp_recs = []
    for i in range(1, 1 + n_tcp):
        rec = FlowRecorder(f"tcp{i}")
        tcp_recs.append(rec)
        snd = TcpSender(sim, dst=f"d{i}", sack=True)
        rcv = TcpReceiver(sim, recorder=rec, sack=True)
        snd.attach(d.net.node(f"s{i}"), f"tcp{i}")
        rcv.attach(d.net.node(f"d{i}"), f"tcp{i}")
        snd.start()
    sim.run(until=duration)
    tfrc_bps = tfrc_rec.mean_rate_bps(warmup, duration)
    tcp_rates = [r.mean_rate_bps(warmup, duration) for r in tcp_recs]
    tcp_mean = sum(tcp_rates) / len(tcp_rates)
    return FriendlinessResult(
        n_tcp=n_tcp,
        tfrc_bps=tfrc_bps,
        tcp_mean_bps=tcp_mean,
        normalized=tfrc_bps / tcp_mean if tcp_mean > 0 else float("inf"),
        jain=jain_index([tfrc_bps] + tcp_rates),
    )
