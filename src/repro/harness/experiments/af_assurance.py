"""T1/T2 — AF bandwidth assurance (paper §4).

An assured flow holding an AF reservation (srTCM edge marker + RIO
bottleneck) against greedy best-effort TCP cross traffic; the paper's
central experiment.  The dumbbell itself is the shared
:func:`repro.topo.presets.t1_dumbbell_spec` compiled by
:func:`repro.topo.build` (goldens pin the construction order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.harness.registry import register
from repro.harness.result import ScenarioResult
from repro.sim.engine import Simulator
from repro.sim.packet import Color
from repro.topo import build, t1_dumbbell_spec

#: Protocol labels accepted by the scenarios.
AF_PROTOCOLS = ("tcp", "tfrc", "gtfrc", "qtpaf")


@dataclass
class AfResult(ScenarioResult):
    """Outcome of one AF-assurance run."""

    __computed_metrics__ = ("ratio",)

    protocol: str
    target_bps: float
    achieved_bps: float
    green_drop_ratio: float
    out_drop_ratio: float
    cross_total_bps: float

    @property
    def ratio(self) -> float:
        """Achieved / negotiated — 1.0 means the assurance held."""
        return self.achieved_bps / self.target_bps if self.target_bps else 0.0


@register(
    "af_assurance",
    grid={"protocol": AF_PROTOCOLS, "target_bps": (2e6, 4e6, 6e6, 8e6)},
)
def af_dumbbell_scenario(
    protocol: str,
    target_bps: float,
    n_cross: int = 4,
    bottleneck_bps: float = 10e6,
    bottleneck_delay: float = 0.02,
    access_delay: float = 0.002,
    duration: float = 60.0,
    warmup: float = 10.0,
    seed: int = 0,
    assured_access_delay: Optional[float] = None,
) -> AfResult:
    """The paper's §4 experiment: an assured flow against TCP cross traffic.

    One flow holds an AF reservation of ``target_bps`` (srTCM edge
    marker + RIO bottleneck); ``n_cross`` greedy best-effort TCP flows
    congest the same bottleneck.  Returns the assured flow's achieved
    goodput and the bottleneck drop ratios per precedence.

    ``protocol`` selects the assured flow's transport: "tcp" (the
    Seddigh failure case), "tfrc" (no QoS-awareness), "gtfrc"
    (QoS-aware rate control only) or "qtpaf" (gTFRC + full
    reliability — the paper's instance).
    """
    if protocol not in AF_PROTOCOLS:
        raise ValueError(f"unknown protocol {protocol!r}")
    sim = Simulator(seed=seed)
    built = build(
        sim,
        t1_dumbbell_spec(
            protocol,
            target_bps,
            n_cross=n_cross,
            bottleneck_bps=bottleneck_bps,
            bottleneck_delay=bottleneck_delay,
            access_delay=access_delay,
            assured_access_delay=assured_access_delay,
            cross_record=True,
        ),
    )
    sim.run(until=duration)
    stats = built.queue("left", "right").stats
    green_offered = (
        stats.accepts_by_color[Color.GREEN] + stats.drops_by_color[Color.GREEN]
    )
    out_offered = stats.offered - green_offered
    out_drops = stats.dropped - stats.drops_by_color[Color.GREEN]
    return AfResult(
        protocol=protocol,
        target_bps=target_bps,
        achieved_bps=built.recorder("assured").mean_rate_bps(warmup, duration),
        green_drop_ratio=stats.color_drop_ratio(Color.GREEN),
        out_drop_ratio=out_drops / out_offered if out_offered else 0.0,
        cross_total_bps=sum(
            built.recorder(f"x{i}").mean_rate_bps(warmup, duration)
            for i in range(1, 1 + n_cross)
        ),
    )
