"""T1/T2 — AF bandwidth assurance (paper §4).

An assured flow holding an AF reservation (srTCM edge marker + RIO
bottleneck) against greedy best-effort TCP cross traffic; the paper's
central experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.instances import QTPAF, TFRC_MEDIA, build_transport_pair
from repro.core.profile import ReliabilityMode, TransportProfile
from repro.harness.registry import register
from repro.metrics.recorder import FlowRecorder
from repro.qos.marking import ProfileMarker
from repro.qos.sla import ServiceLevelAgreement
from repro.sim.engine import Simulator
from repro.sim.packet import Color
from repro.sim.queues import RioQueue
from repro.sim.topology import dumbbell
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender

#: Protocol labels accepted by the scenarios.
AF_PROTOCOLS = ("tcp", "tfrc", "gtfrc", "qtpaf")


@dataclass
class AfResult:
    """Outcome of one AF-assurance run."""

    protocol: str
    target_bps: float
    achieved_bps: float
    green_drop_ratio: float
    out_drop_ratio: float
    cross_total_bps: float

    @property
    def ratio(self) -> float:
        """Achieved / negotiated — 1.0 means the assurance held."""
        return self.achieved_bps / self.target_bps if self.target_bps else 0.0


def _assured_profile(protocol: str, target_bps: float) -> Optional[TransportProfile]:
    if protocol == "qtpaf":
        return QTPAF(target_bps)
    if protocol == "gtfrc":
        return QTPAF(target_bps, name="gTFRC", reliability=ReliabilityMode.NONE)
    if protocol == "tfrc":
        return TFRC_MEDIA
    return None  # tcp


@register(
    "af_assurance",
    grid={"protocol": AF_PROTOCOLS, "target_bps": (2e6, 4e6, 6e6, 8e6)},
)
def af_dumbbell_scenario(
    protocol: str,
    target_bps: float,
    n_cross: int = 4,
    bottleneck_bps: float = 10e6,
    bottleneck_delay: float = 0.02,
    access_delay: float = 0.002,
    duration: float = 60.0,
    warmup: float = 10.0,
    seed: int = 0,
    assured_access_delay: Optional[float] = None,
) -> AfResult:
    """The paper's §4 experiment: an assured flow against TCP cross traffic.

    One flow holds an AF reservation of ``target_bps`` (srTCM edge
    marker + RIO bottleneck); ``n_cross`` greedy best-effort TCP flows
    congest the same bottleneck.  Returns the assured flow's achieved
    goodput and the bottleneck drop ratios per precedence.

    ``protocol`` selects the assured flow's transport: "tcp" (the
    Seddigh failure case), "tfrc" (no QoS-awareness), "gtfrc"
    (QoS-aware rate control only) or "qtpaf" (gTFRC + full
    reliability — the paper's instance).
    """
    if protocol not in AF_PROTOCOLS:
        raise ValueError(f"unknown protocol {protocol!r}")
    sim = Simulator(seed=seed)
    sla = ServiceLevelAgreement(
        flow_id="assured", committed_rate_bps=target_bps, burst_bytes=30_000
    )
    markers: List[Optional[ProfileMarker]] = [
        ProfileMarker(sla.build_meter(), flow_id="assured")
    ] + [None] * n_cross
    delays = [assured_access_delay or access_delay] + [access_delay] * n_cross
    rio_rng = sim.rng("rio")
    mean_pkt_time = 1000 * 8 / bottleneck_bps
    d = dumbbell(
        sim,
        n_pairs=1 + n_cross,
        bottleneck_rate=bottleneck_bps,
        bottleneck_delay=bottleneck_delay,
        bottleneck_queue_factory=lambda: RioQueue(
            rng=rio_rng, mean_pkt_time=mean_pkt_time
        ),
        access_delays=delays,
        access_markers=markers,
    )
    assured_rec = FlowRecorder("assured")
    profile = _assured_profile(protocol, target_bps)
    if profile is None:
        sender = TcpSender(sim, dst="d0", sack=True)
        receiver = TcpReceiver(sim, recorder=assured_rec, sack=True)
        sender.attach(d.net.node("s0"), "assured")
        receiver.attach(d.net.node("d0"), "assured")
        sender.start()
    else:
        sender, receiver = build_transport_pair(
            sim,
            d.net.node("s0"),
            d.net.node("d0"),
            "assured",
            profile,
            recorder=assured_rec,
            start=True,
        )
    cross_recs = []
    for i in range(1, 1 + n_cross):
        rec = FlowRecorder(f"cross{i}")
        cross_recs.append(rec)
        tcp_snd = TcpSender(sim, dst=f"d{i}", sack=True)
        tcp_rcv = TcpReceiver(sim, recorder=rec, sack=True)
        tcp_snd.attach(d.net.node(f"s{i}"), f"x{i}")
        tcp_rcv.attach(d.net.node(f"d{i}"), f"x{i}")
        tcp_snd.start()
    sim.run(until=duration)
    stats = d.bottleneck.queue.stats
    green_offered = (
        stats.accepts_by_color[Color.GREEN] + stats.drops_by_color[Color.GREEN]
    )
    out_offered = stats.offered - green_offered
    out_drops = stats.dropped - stats.drops_by_color[Color.GREEN]
    return AfResult(
        protocol=protocol,
        target_bps=target_bps,
        achieved_bps=assured_rec.mean_rate_bps(warmup, duration),
        green_drop_ratio=(
            stats.drops_by_color[Color.GREEN] / green_offered if green_offered else 0.0
        ),
        out_drop_ratio=out_drops / out_offered if out_offered else 0.0,
        cross_total_bps=sum(r.mean_rate_bps(warmup, duration) for r in cross_recs),
    )
