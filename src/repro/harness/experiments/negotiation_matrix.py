"""T6 — versatility: one stack, many negotiated instances (paper §1).

Each named ``pair`` is a canonical (initiator, responder) capability
combination; the scenario runs the negotiation and reports which
composed instance it produces.  Capability sets are built fresh per run
from the pair name, keeping the registered parameter space pure JSON
scalars (the sweep-cache/CLI contract).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.negotiation import CapabilitySet, NegotiationError, negotiate
from repro.core.profile import CongestionControl, ReliabilityMode
from repro.harness.registry import register
from repro.harness.result import ScenarioResult


def _capability_pairs() -> Dict[str, Tuple[CapabilitySet, CapabilitySet]]:
    """The canonical capability pairs, rebuilt per call (sets are mutable)."""
    return {
        "default/default": (CapabilitySet(), CapabilitySet()),
        "server/mobile": (CapabilitySet(), CapabilitySet(light_receiver=True)),
        "qos streaming": (
            CapabilitySet(
                qos_target_bps=4e6,
                reliability_modes=(ReliabilityMode.FULL,),
                congestion_controls=(
                    CongestionControl.GTFRC,
                    CongestionControl.TFRC,
                ),
            ),
            CapabilitySet(
                congestion_controls=(
                    CongestionControl.GTFRC,
                    CongestionControl.TFRC,
                ),
                reliability_modes=(ReliabilityMode.FULL, ReliabilityMode.NONE),
            ),
        ),
        "media/partial": (
            CapabilitySet(
                reliability_modes=(ReliabilityMode.PARTIAL_TIME, ReliabilityMode.NONE)
            ),
            CapabilitySet(),
        ),
        "mobile+qos": (
            CapabilitySet(
                qos_target_bps=2e6,
                congestion_controls=(
                    CongestionControl.GTFRC,
                    CongestionControl.TFRC,
                ),
            ),
            CapabilitySet(
                light_receiver=True,
                congestion_controls=(
                    CongestionControl.GTFRC,
                    CongestionControl.TFRC,
                ),
            ),
        ),
    }


#: Stable pair names, in the paper-table order.
NEGOTIATION_PAIRS = tuple(_capability_pairs())


@dataclass
class NegotiationMatrixResult(ScenarioResult):
    """Instance produced by one capability pair (or the failure text)."""

    pair: str
    instance: str
    congestion_control: str
    reliability: str
    estimation: str


@register(
    "negotiation",
    grid={"pair": NEGOTIATION_PAIRS},
)
def negotiation_scenario(pair: str) -> NegotiationMatrixResult:
    """Negotiate one named capability pair and report the instance."""
    pairs = _capability_pairs()
    if pair not in pairs:
        raise ValueError(f"unknown pair {pair!r}; known: {sorted(pairs)}")
    initiator, responder = pairs[pair]
    try:
        profile = negotiate(initiator, responder)
    except NegotiationError as exc:  # pragma: no cover - none expected
        return NegotiationMatrixResult(
            pair=pair,
            instance="FAILED",
            congestion_control=str(exc),
            reliability="",
            estimation="",
        )
    return NegotiationMatrixResult(
        pair=pair,
        instance=profile.name,
        congestion_control=profile.congestion_control.value,
        reliability=profile.reliability.value,
        estimation=profile.loss_estimation.value,
    )
