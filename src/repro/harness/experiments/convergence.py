"""F5 — recovery of the guaranteed rate after a congestion step (paper §4).

At ``step_time`` a burst of greedy TCP flows joins the AF bottleneck
(the shared :func:`repro.topo.presets.t1_dumbbell_spec`, with the cross
flows' start deferred).  Plain TFRC reacts to the resulting
(out-of-profile) losses and dips far below the reservation, taking
seconds to crawl back; gTFRC's floor keeps the assured flow at ``g``
throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.harness.registry import register
from repro.harness.result import ScenarioResult
from repro.sim.engine import Simulator
from repro.topo import build, t1_dumbbell_spec


@dataclass
class ConvergenceResult(ScenarioResult):
    """Assured-flow throughput around a congestion step."""

    protocol: str
    target_bps: float
    min_after_step: float
    time_below_90pct: float  # seconds spent below 0.9 g (1 s bins)
    mean_after_step: float
    series_bps: List[float] = field(repr=False, default_factory=list)


@register(
    "convergence",
    grid={"protocol": ("tfrc", "gtfrc")},
)
def convergence_scenario(
    protocol: str,
    target_bps: float = 5e6,
    step_time: float = 20.0,
    duration: float = 60.0,
    n_cross: int = 8,
    seed: int = 3,
) -> ConvergenceResult:
    """One assured flow; ``n_cross`` TCP flows join at ``step_time``."""
    # a zero step would degenerate into plain af_assurance with an
    # ill-defined start interleaving; the spec layer starts flows with
    # start == 0 during the build, so require a real post-start step
    if step_time <= 0:
        raise ValueError("step_time must be positive")
    if int(step_time) + 1 >= duration:
        raise ValueError(
            f"step_time={step_time!r} leaves no measurement window before "
            f"duration={duration!r}; need step_time + 1 s < duration"
        )
    sim = Simulator(seed=seed)
    built = build(
        sim,
        t1_dumbbell_spec(
            protocol,
            target_bps,
            n_cross=n_cross,
            assured_access_delay=0.1,
            cross_start=step_time,
        ),
    )
    sim.run(until=duration)
    series = built.recorder("assured").series(1.0, end=duration)  # bytes/s per bin
    series_bps = [8 * v for v in series]
    after = series_bps[int(step_time) + 1:]
    if not after:
        # nothing delivered at all (series() returns [] with no events):
        # the post-step rate is identically zero, not a crash
        after = [0.0]
    below = [v for v in after if v < 0.9 * target_bps]
    return ConvergenceResult(
        protocol=protocol,
        target_bps=target_bps,
        min_after_step=min(after),
        time_below_90pct=float(len(below)),  # 1 s bins
        mean_after_step=sum(after) / len(after),
        series_bps=series_bps,
    )
