"""F5 — recovery of the guaranteed rate after a congestion step (paper §4).

At ``step_time`` a burst of greedy TCP flows joins the AF bottleneck.
Plain TFRC reacts to the resulting (out-of-profile) losses and dips far
below the reservation, taking seconds to crawl back; gTFRC's floor
keeps the assured flow at ``g`` throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.instances import QTPAF, TFRC_MEDIA, build_transport_pair
from repro.core.profile import ReliabilityMode
from repro.harness.registry import register
from repro.metrics.recorder import FlowRecorder
from repro.qos.marking import ProfileMarker
from repro.qos.sla import ServiceLevelAgreement
from repro.sim.engine import Simulator
from repro.sim.queues import RioQueue
from repro.sim.topology import dumbbell
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender


@dataclass
class ConvergenceResult:
    """Assured-flow throughput around a congestion step."""

    protocol: str
    target_bps: float
    min_after_step: float
    time_below_90pct: float  # seconds spent below 0.9 g (1 s bins)
    mean_after_step: float
    series_bps: List[float] = field(repr=False, default_factory=list)


@register(
    "convergence",
    grid={"protocol": ("tfrc", "gtfrc")},
)
def convergence_scenario(
    protocol: str,
    target_bps: float = 5e6,
    step_time: float = 20.0,
    duration: float = 60.0,
    n_cross: int = 8,
    seed: int = 3,
) -> ConvergenceResult:
    """One assured flow; ``n_cross`` TCP flows join at ``step_time``."""
    if step_time < 0:
        raise ValueError("step_time must be non-negative")
    if int(step_time) + 1 >= duration:
        raise ValueError(
            f"step_time={step_time!r} leaves no measurement window before "
            f"duration={duration!r}; need step_time + 1 s < duration"
        )
    sim = Simulator(seed=seed)
    sla = ServiceLevelAgreement("assured", target_bps, burst_bytes=30_000)
    markers = [ProfileMarker(sla.build_meter(), flow_id="assured")] + [None] * n_cross
    d = dumbbell(
        sim,
        n_pairs=1 + n_cross,
        bottleneck_rate=10e6,
        bottleneck_delay=0.02,
        bottleneck_queue_factory=lambda: RioQueue(
            rng=sim.rng("rio"), mean_pkt_time=0.0008
        ),
        access_delays=[0.1] + [0.002] * n_cross,
        access_markers=markers,
    )
    rec = FlowRecorder("assured")
    profile = (
        QTPAF(target_bps, name="gTFRC", reliability=ReliabilityMode.NONE)
        if protocol == "gtfrc"
        else TFRC_MEDIA
    )
    build_transport_pair(
        sim, d.net.node("s0"), d.net.node("d0"), "assured", profile,
        recorder=rec, start=True,
    )
    for i in range(1, 1 + n_cross):
        snd = TcpSender(sim, dst=f"d{i}", sack=True)
        rcv = TcpReceiver(sim, sack=True)
        snd.attach(d.net.node(f"s{i}"), f"x{i}")
        rcv.attach(d.net.node(f"d{i}"), f"x{i}")
        sim.schedule(step_time, snd.start)
    sim.run(until=duration)
    series = rec.series(1.0, end=duration)  # bytes/s per 1 s bin
    series_bps = [8 * v for v in series]
    after = series_bps[int(step_time) + 1:]
    if not after:
        # nothing delivered at all (series() returns [] with no events):
        # the post-step rate is identically zero, not a crash
        after = [0.0]
    below = [v for v in after if v < 0.9 * target_bps]
    return ConvergenceResult(
        protocol=protocol,
        target_bps=target_bps,
        min_after_step=min(after),
        time_below_90pct=float(len(below)),  # 1 s bins
        mean_after_step=sum(after) / len(after),
        series_bps=series_bps,
    )
