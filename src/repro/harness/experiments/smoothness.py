"""F1 — throughput smoothness: TFRC vs TCP (paper §2/§3 motivation)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.instances import TFRC_MEDIA, build_transport_pair
from repro.harness.registry import register
from repro.harness.result import ScenarioResult
from repro.metrics.recorder import FlowRecorder
from repro.metrics.stats import coefficient_of_variation
from repro.sim.engine import Simulator
from repro.sim.queues import RedQueue
from repro.sim.topology import dumbbell
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender


@dataclass
class SmoothnessResult(ScenarioResult):
    """Throughput series and its coefficient of variation."""

    protocol: str
    mean_bps: float
    cov: float
    series_bps: List[float] = field(repr=False, default_factory=list)


@register(
    "smoothness",
    grid={"protocol": ("tfrc", "tcp"), "seed": (0, 1, 2)},
)
def smoothness_scenario(
    protocol: str,
    bottleneck_bps: float = 4e6,
    duration: float = 120.0,
    warmup: float = 20.0,
    bin_width: float = 0.2,
    seed: int = 0,
) -> SmoothnessResult:
    """One measured flow + one TCP competitor over a RED bottleneck.

    The paper's motivation (§2/§3): TFRC's equation-driven rate is much
    smoother than TCP's AIMD sawtooth under identical conditions.  A
    RED queue keeps the bottleneck buffer short so the receiver-side
    throughput actually exposes the sender's sawtooth (a deep DropTail
    buffer would smooth it away).
    """
    sim = Simulator(seed=seed)
    mean_pkt_time = 1000 * 8 / bottleneck_bps
    d = dumbbell(
        sim,
        n_pairs=2,
        bottleneck_rate=bottleneck_bps,
        bottleneck_delay=0.02,
        bottleneck_queue_factory=lambda: RedQueue(
            min_th=5, max_th=20, max_p=0.1, capacity_packets=60,
            rng=sim.rng("red"), mean_pkt_time=mean_pkt_time,
        ),
    )
    rec = FlowRecorder(protocol)
    if protocol == "tcp":
        snd = TcpSender(sim, dst="d0", sack=True)
        rcv = TcpReceiver(sim, recorder=rec, sack=True)
        snd.attach(d.net.node("s0"), "probe")
        rcv.attach(d.net.node("d0"), "probe")
        snd.start()
    elif protocol == "tfrc":
        build_transport_pair(
            sim, d.net.node("s0"), d.net.node("d0"), "probe", TFRC_MEDIA,
            recorder=rec, start=True,
        )
    else:
        raise ValueError(f"unknown protocol {protocol!r}")
    competitor = FlowRecorder("cross")
    tcp_snd = TcpSender(sim, dst="d1", sack=True)
    tcp_rcv = TcpReceiver(sim, recorder=competitor, sack=True)
    tcp_snd.attach(d.net.node("s1"), "cross")
    tcp_rcv.attach(d.net.node("d1"), "cross")
    tcp_snd.start()
    sim.run(until=duration)
    series = rec.series(bin_width, end=duration)
    steady = series[int(warmup / bin_width):]
    return SmoothnessResult(
        protocol=protocol,
        mean_bps=rec.mean_rate_bps(warmup, duration),
        cov=coefficient_of_variation(steady),
        series_bps=[8 * v for v in steady],
    )
