"""W1 — flash crowd vs an assured elephant (PR 6).

The first *generated-population* scenario: one long-lived assured
gTFRC/QTPAF flow shares an access-star RIO uplink with a flash crowd
of short TCP mice whose arrival rate ramps from a trickle to a spike
(:class:`repro.traffic.specs.ArrivalSpec` ``flash_crowd``).  The paper
question at population scale: does the DiffServ guarantee hold through
a synchronized arrival surge, and what completion times do the mice
see around it?
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.harness.registry import register
from repro.harness.result import ScenarioResult
from repro.metrics.fct import fct_summary
from repro.sim.engine import Simulator
from repro.topo import ScenarioSpec, build
from repro.topo.generators import access_star_endpoints, access_star_spec
from repro.topo.specs import FlowSpec, MarkerSpec, SlaSpec, TopologySpec
from repro.traffic import (
    ArrivalSpec,
    FlowClassSpec,
    PopulationSpec,
    SizeSpec,
    expand_population,
)

#: Transports accepted for the assured flow.
FLASH_CROWD_PROTOCOLS = ("tfrc", "gtfrc", "qtpaf")


def flash_crowd_population(
    *,
    n_hosts: int = 24,
    n_flows: int = 80,
    base_rate_per_s: float = 2.0,
    peak_rate_per_s: float = 40.0,
    ramp_start: float = 2.0,
    ramp_duration: float = 2.0,
    mouse_min_kbytes: float = 8.0,
    mouse_max_kbytes: float = 200.0,
    duration: float = 12.0,
) -> PopulationSpec:
    """The crowd population, shared by the packet-level spec and the
    hybrid scenario (``repro.fluid.hybridize`` needs the same spec the
    expansion came from)."""
    return PopulationSpec(
        name="crowd",
        arrival=ArrivalSpec(
            kind="flash_crowd",
            base_rate_per_s=base_rate_per_s,
            peak_rate_per_s=peak_rate_per_s,
            ramp_start=ramp_start,
            ramp_duration=ramp_duration,
        ),
        classes=(
            FlowClassSpec(
                "mouse",
                1.0,
                "tcp",
                SizeSpec(
                    kind="pareto",
                    alpha=1.3,
                    min_bytes=int(mouse_min_kbytes * 1000),
                    max_bytes=int(mouse_max_kbytes * 1000),
                ),
            ),
        ),
        endpoints=access_star_endpoints(n_hosts)[1:],  # h0 is the elephant's
        n_flows=n_flows,
        horizon=duration,
    )


def flash_crowd_spec(
    protocol: str,
    target_bps: float,
    *,
    n_hosts: int = 24,
    n_flows: int = 80,
    base_rate_per_s: float = 2.0,
    peak_rate_per_s: float = 40.0,
    ramp_start: float = 2.0,
    ramp_duration: float = 2.0,
    mouse_min_kbytes: float = 8.0,
    mouse_max_kbytes: float = 200.0,
    bottleneck_bps: float = 20e6,
    duration: float = 12.0,
    seed: int = 0,
) -> ScenarioSpec:
    """Compose the flash-crowd scenario spec (topology + flows).

    Host ``h0`` carries the assured flow; the crowd population draws
    its endpoints from the remaining hosts.  The expansion is a pure
    function of ``(parameters, seed)`` — the traffic goldens pin it.
    """
    if protocol not in FLASH_CROWD_PROTOCOLS:
        raise ValueError(f"unknown protocol {protocol!r}")
    topology = access_star_spec(n_hosts, bottleneck_bps=bottleneck_bps)
    # Condition the assured flow at its access link regardless of
    # protocol — the T1 convention: stock TFRC holds the same SLA, it
    # just cannot exploit it (the crowd is all best-effort TCP, so
    # there is nothing else to condition).
    links = list(topology.links)
    for idx, link in enumerate(links):
        if link.src == "h0":
            links[idx] = replace(
                link,
                marker=MarkerSpec(
                    sla=SlaSpec("assured", target_bps, burst_bytes=30_000.0)
                ),
            )
            break
    topology = TopologySpec(links=tuple(links), nodes=topology.nodes)
    assured = FlowSpec(
        "assured", "h0", "srv", transport=protocol, target_bps=target_bps
    )
    population = flash_crowd_population(
        n_hosts=n_hosts,
        n_flows=n_flows,
        base_rate_per_s=base_rate_per_s,
        peak_rate_per_s=peak_rate_per_s,
        ramp_start=ramp_start,
        ramp_duration=ramp_duration,
        mouse_min_kbytes=mouse_min_kbytes,
        mouse_max_kbytes=mouse_max_kbytes,
        duration=duration,
    )
    flows = (assured,) + expand_population(population, seed)
    return ScenarioSpec(
        name="flash_crowd",
        topology=topology,
        flows=flows,
        description="assured flow vs a generated TCP flash crowd",
    )


@dataclass
class FlashCrowdResult(ScenarioResult):
    """Outcome of one flash-crowd run."""

    __computed_metrics__ = ("ratio",)

    protocol: str
    target_bps: float
    achieved_bps: float
    crowd_flows: int
    crowd_completed: int
    fct_mean_s: float
    fct_p95_s: float
    bottleneck_drops: int

    @property
    def ratio(self) -> float:
        """Achieved / negotiated — 1.0 means the assurance survived."""
        return self.achieved_bps / self.target_bps if self.target_bps else 0.0


@register(
    "flash_crowd",
    grid={"protocol": ("gtfrc", "qtpaf"), "peak_rate_per_s": (20.0, 40.0)},
)
def flash_crowd_scenario(
    protocol: str = "gtfrc",
    target_bps: float = 4e6,
    n_hosts: int = 24,
    n_flows: int = 80,
    base_rate_per_s: float = 2.0,
    peak_rate_per_s: float = 40.0,
    ramp_start: float = 2.0,
    ramp_duration: float = 2.0,
    bottleneck_bps: float = 20e6,
    duration: float = 12.0,
    warmup: float = 2.0,
    seed: int = 0,
) -> FlashCrowdResult:
    """One assured elephant vs a generated TCP flash crowd.

    The crowd's arrival rate ramps ``base_rate_per_s ->
    peak_rate_per_s`` starting at ``ramp_start``; every mouse is a
    finite truncated-Pareto-sized TCP flow that departs when its bytes
    are acknowledged.  Reports the elephant's achieved rate (and the
    assurance ratio), the crowd's completion statistics and the
    bottleneck drop count.
    """
    sim = Simulator(seed=seed)
    spec = flash_crowd_spec(
        protocol,
        target_bps,
        n_hosts=n_hosts,
        n_flows=n_flows,
        base_rate_per_s=base_rate_per_s,
        peak_rate_per_s=peak_rate_per_s,
        ramp_start=ramp_start,
        ramp_duration=ramp_duration,
        bottleneck_bps=bottleneck_bps,
        duration=duration,
        seed=seed,
    )
    built = build(sim, spec)
    sim.run(until=duration)
    fct = fct_summary(built.completions())
    return FlashCrowdResult(
        protocol=protocol,
        target_bps=target_bps,
        achieved_bps=built.recorder("assured").mean_rate_bps(warmup, duration),
        crowd_flows=len(spec.flows) - 1,
        crowd_completed=fct.completed,
        fct_mean_s=fct.mean,
        fct_p95_s=fct.p95,
        bottleneck_drops=built.queue("gw", "srv").stats.dropped,
    )
