"""T4 — selfish receivers (paper §3)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instances import QTPLIGHT, TFRC_MEDIA, build_transport_pair
from repro.core.qtplight import LyingFeedbackFilter
from repro.harness.registry import register
from repro.harness.result import ScenarioResult
from repro.metrics.recorder import FlowRecorder
from repro.sim.engine import Simulator
from repro.sim.queues import DropTailQueue
from repro.sim.topology import dumbbell


@dataclass
class SelfishResult(ScenarioResult):
    """Goodput split between a (possibly cheating) flow and its victim."""

    mode: str
    lying: bool
    cheater_bps: float
    victim_bps: float


@register(
    "selfish_receiver",
    grid={"mode": ("tfrc", "qtplight"), "lying": (False, True)},
)
def selfish_receiver_scenario(
    mode: str,
    lying: bool,
    bottleneck_bps: float = 4e6,
    duration: float = 80.0,
    warmup: float = 20.0,
    seed: int = 0,
) -> SelfishResult:
    """A (possibly lying) receiver shares a bottleneck with an honest TFRC.

    ``mode`` is "tfrc" (standard, receiver-computed p — vulnerable) or
    "qtplight" (sender-computed p — the paper's protection).  With
    ``lying=True`` the first flow's receiver mangles its reports per
    :class:`~repro.core.qtplight.LyingFeedbackFilter`.
    """
    if mode not in ("tfrc", "qtplight"):
        raise ValueError(f"unknown mode {mode!r}")
    sim = Simulator(seed=seed)
    d = dumbbell(
        sim,
        n_pairs=2,
        bottleneck_rate=bottleneck_bps,
        bottleneck_delay=0.02,
        bottleneck_queue_factory=lambda: DropTailQueue(capacity_packets=40),
    )
    cheater_rec = FlowRecorder("cheater")
    victim_rec = FlowRecorder("victim")
    profile = TFRC_MEDIA if mode == "tfrc" else QTPLIGHT
    flt = LyingFeedbackFilter(p_scale=0.0, x_scale=4.0) if lying else None
    build_transport_pair(
        sim, d.net.node("s0"), d.net.node("d0"), "cheat", profile,
        recorder=cheater_rec, feedback_filter=flt, start=True,
    )
    build_transport_pair(
        sim, d.net.node("s1"), d.net.node("d1"), "victim", TFRC_MEDIA,
        recorder=victim_rec, start=True,
    )
    sim.run(until=duration)
    return SelfishResult(
        mode=mode,
        lying=lying,
        cheater_bps=cheater_rec.mean_rate_bps(warmup, duration),
        victim_bps=victim_rec.mean_rate_bps(warmup, duration),
    )
