"""P3 — heterogeneous SLAs inside one AF class (PR 3).

Several assured flows with *different* committed rates share one RIO
bottleneck (:func:`repro.topo.presets.hetero_sla_dumbbell_spec`),
alongside best-effort TCP.  RIO only distinguishes in/out of profile,
not *whose* profile — so the question is whether a small guarantee is
as safe as a large one, or whether the out-of-profile scramble favours
the big reservations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.registry import register
from repro.harness.result import ScenarioResult
from repro.metrics.stats import jain_index
from repro.sim.engine import Simulator
from repro.topo import build, hetero_sla_dumbbell_spec

#: Transports accepted by the scenario.
HETERO_SLA_PROTOCOLS = ("tfrc", "gtfrc", "qtpaf")


@dataclass
class HeteroSlaResult(ScenarioResult):
    """Outcome of one mixed-guarantee run (ratios are achieved/target)."""

    protocol: str
    targets_mbps: str
    total_target_bps: float
    total_assured_bps: float
    min_ratio: float
    max_ratio: float
    mean_ratio: float
    jain_fairness: float  # of the per-flow assurance ratios
    cross_total_bps: float


def _parse_targets(targets_mbps: str) -> tuple:
    try:
        targets = tuple(
            float(tok) * 1e6 for tok in targets_mbps.split(",") if tok.strip()
        )
    except ValueError:
        raise ValueError(
            f"targets_mbps must be comma-separated numbers, got {targets_mbps!r}"
        ) from None
    if not targets or any(t <= 0 for t in targets):
        raise ValueError(f"need positive targets, got {targets_mbps!r}")
    return targets


@register(
    "hetero_sla",
    grid={
        "protocol": ("gtfrc", "qtpaf"),
        "targets_mbps": ("1,2,4", "2,2,2", "1,1,6"),
    },
)
def hetero_sla_scenario(
    protocol: str,
    targets_mbps: str = "1,2,4",
    n_cross: int = 2,
    bottleneck_bps: float = 10e6,
    duration: float = 40.0,
    warmup: float = 10.0,
    seed: int = 0,
) -> HeteroSlaResult:
    """Mixed committed rates competing for one AF class.

    ``targets_mbps`` is a comma list (the registry needs JSON-scalar
    parameters): flow ``af{i}`` gets an SLA of ``targets[i]`` Mbit/s
    and its own edge meter.  Returns per-flow assurance ratios
    summarized as min/max/mean plus Jain's fairness index over the
    ratios — 1.0 means every guarantee held equally well regardless of
    its size.
    """
    if protocol not in HETERO_SLA_PROTOCOLS:
        raise ValueError(f"unknown protocol {protocol!r}")
    targets = _parse_targets(targets_mbps)
    sim = Simulator(seed=seed)
    built = build(
        sim,
        hetero_sla_dumbbell_spec(
            protocol, targets, n_cross=n_cross, bottleneck_bps=bottleneck_bps
        ),
    )
    sim.run(until=duration)
    achieved = [
        built.recorder(f"af{i}").mean_rate_bps(warmup, duration)
        for i in range(len(targets))
    ]
    ratios = [a / target for a, target in zip(achieved, targets)]
    return HeteroSlaResult(
        protocol=protocol,
        targets_mbps=targets_mbps,
        total_target_bps=sum(targets),
        total_assured_bps=sum(achieved),
        min_ratio=min(ratios),
        max_ratio=max(ratios),
        mean_ratio=sum(ratios) / len(ratios),
        jain_fairness=jain_index(ratios),
        cross_total_bps=sum(
            built.recorder(f"x{j}").mean_rate_bps(warmup, duration)
            for j in range(1, 1 + n_cross)
        ),
    )
