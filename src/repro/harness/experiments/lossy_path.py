"""F2 — lossy / multi-hop paths: TCP vs TFRC (paper §2, claim 1)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instances import TFRC_MEDIA, build_transport_pair
from repro.harness.registry import register
from repro.metrics.recorder import FlowRecorder
from repro.netem.channels import BernoulliLossChannel, GilbertElliottChannel
from repro.sim.engine import Simulator
from repro.sim.topology import chain
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender


@dataclass
class LossyPathResult:
    """Goodput over a lossy multi-hop path."""

    protocol: str
    loss_rate: float
    observed_loss_rate: float
    goodput_bps: float


@register(
    "lossy_path",
    grid={
        "protocol": ("tcp", "tfrc"),
        "loss_rate": (0.005, 0.01, 0.02, 0.05, 0.08),
        "bursty": (True, False),
    },
)
def lossy_path_scenario(
    protocol: str,
    loss_rate: float,
    n_hops: int = 3,
    hop_rate_bps: float = 2e6,
    hop_delay: float = 0.005,
    bursty: bool = False,
    duration: float = 60.0,
    warmup: float = 10.0,
    seed: int = 0,
) -> LossyPathResult:
    """TCP vs TFRC over a chain with per-hop random loss (paper §2 claim 1).

    ``bursty=True`` uses a Gilbert–Elliott channel tuned to the same
    steady-state loss rate; otherwise losses are Bernoulli.
    """
    sim = Simulator(seed=seed)
    rng = sim.rng("wireless")

    def channel_factory():
        if loss_rate <= 0:
            return None
        if bursty:
            # fix the bad-state dynamics, solve p_g2b for the target rate
            p_bad, p_b2g = 0.5, 0.25
            p_g2b = loss_rate * p_b2g / max(1e-9, (p_bad - loss_rate))
            return GilbertElliottChannel(
                p_g2b=min(0.9, p_g2b), p_b2g=p_b2g, p_bad=p_bad, rng=rng
            )
        return BernoulliLossChannel(loss_rate, rng=rng)

    topo = chain(
        sim,
        n_hops=n_hops,
        rate=hop_rate_bps,
        delay=hop_delay,
        channel_factory=channel_factory,
    )
    rec = FlowRecorder(protocol)
    src, dst = topo.first, topo.last
    if protocol == "tcp":
        snd = TcpSender(sim, dst=dst.name, sack=True)
        rcv = TcpReceiver(sim, recorder=rec, sack=True)
        snd.attach(src, "flow")
        rcv.attach(dst, "flow")
        snd.start()
    elif protocol == "tfrc":
        build_transport_pair(
            sim, src, dst, "flow", TFRC_MEDIA, recorder=rec, start=True
        )
    else:
        raise ValueError(f"unknown protocol {protocol!r}")
    sim.run(until=duration)
    observed = [
        link.channel.observed_loss_rate()
        for link in topo.hops
        if link.channel is not None
    ]
    return LossyPathResult(
        protocol=protocol,
        loss_rate=loss_rate,
        observed_loss_rate=sum(observed) / len(observed) if observed else 0.0,
        goodput_bps=rec.mean_rate_bps(warmup, duration),
    )
