"""F2 — lossy / multi-hop paths: TCP vs TFRC (paper §2, claim 1).

The chain is the declarative
:func:`repro.topo.presets.lossy_chain_spec` compiled by
:func:`repro.topo.build` — per-hop loss channels are spec data
(:class:`repro.topo.specs.ChannelSpec`), not hand-wired factories; the
regenerated F2 table is byte-identical to the hand-built version this
replaced.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.registry import register
from repro.harness.result import ScenarioResult
from repro.sim.engine import Simulator
from repro.topo import build, lossy_chain_spec


@dataclass
class LossyPathResult(ScenarioResult):
    """Goodput over a lossy multi-hop path."""

    protocol: str
    loss_rate: float
    observed_loss_rate: float
    goodput_bps: float


@register(
    "lossy_path",
    grid={
        "protocol": ("tcp", "tfrc"),
        "loss_rate": (0.005, 0.01, 0.02, 0.05, 0.08),
        "bursty": (True, False),
    },
)
def lossy_path_scenario(
    protocol: str,
    loss_rate: float,
    n_hops: int = 3,
    hop_rate_bps: float = 2e6,
    hop_delay: float = 0.005,
    bursty: bool = False,
    duration: float = 60.0,
    warmup: float = 10.0,
    seed: int = 0,
) -> LossyPathResult:
    """TCP vs TFRC over a chain with per-hop random loss (paper §2 claim 1).

    ``bursty=True`` uses a Gilbert–Elliott channel tuned to the same
    steady-state loss rate (see :func:`lossy_chain_spec`); otherwise
    losses are Bernoulli.
    """
    sim = Simulator(seed=seed)
    built = build(
        sim,
        lossy_chain_spec(
            protocol,
            loss_rate,
            n_hops=n_hops,
            hop_rate_bps=hop_rate_bps,
            hop_delay=hop_delay,
            bursty=bursty,
        ),
    )
    sim.run(until=duration)
    observed = [
        channel.observed_loss_rate()
        for channel in (
            built.link(f"h{i}", f"h{i + 1}").channel for i in range(n_hops)
        )
        if channel is not None
    ]
    return LossyPathResult(
        protocol=protocol,
        loss_rate=loss_rate,
        observed_loss_rate=sum(observed) / len(observed) if observed else 0.0,
        goodput_bps=built.recorder("flow").mean_rate_bps(warmup, duration),
    )
