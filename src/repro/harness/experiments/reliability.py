"""T5 — reliability modes over media (paper §1/§3)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.playout import PlayoutBuffer
from repro.apps.sources import MediaSource
from repro.core.instances import build_transport_pair
from repro.core.profile import (
    CongestionControl,
    LossEstimationSite,
    ReliabilityMode,
    TransportProfile,
)
from repro.harness.registry import register
from repro.harness.result import ScenarioResult
from repro.metrics.recorder import FlowRecorder
from repro.netem.channels import BernoulliLossChannel
from repro.sim.engine import Simulator
from repro.sim.topology import chain


@dataclass
class ReliabilityResult(ScenarioResult):
    """Media delivery under one reliability mode."""

    __computed_metrics__ = ("useful_ratio",)

    mode: str
    sent: int
    delivered: int
    skipped: int
    retransmissions: int
    abandoned: int
    on_time_ratio: float
    mean_latency: float
    p95_latency: float

    @property
    def useful_ratio(self) -> float:
        """Fraction of *sent* messages that arrived before their deadline.

        The decisive media metric: NONE loses frames outright, FULL
        delivers them late; time-bounded partial reliability maximizes
        this ratio (the paper's §1 motivation for negotiable
        reliability).
        """
        if self.sent == 0:
            return 1.0
        return self.on_time_ratio * self.delivered / self.sent


def reliability_scenario(
    mode: ReliabilityMode,
    loss_rate: float = 0.03,
    rate_bps: float = 3e6,
    duration: float = 60.0,
    playout_delay: float = 0.28,
    seed: int = 0,
) -> ReliabilityResult:
    """An MPEG-like stream over a lossy link under one reliability mode.

    Shows the trade-off the paper's negotiable reliability exposes:
    NONE loses frames, FULL delivers everything but late, the partial
    modes repair what the playout deadline still allows.
    """
    sim = Simulator(seed=seed)
    topo = chain(
        sim,
        n_hops=1,
        rate=rate_bps,
        delay=0.03,
        channel_factory=lambda: (
            BernoulliLossChannel(loss_rate, rng=sim.rng("loss"))
            if loss_rate > 0
            else None
        ),
    )
    profile = TransportProfile(
        name=f"media-{mode.value}",
        congestion_control=CongestionControl.TFRC,
        reliability=mode,
        loss_estimation=LossEstimationSite.RECEIVER,
        partial_deadline=playout_delay,
        partial_max_retx=2,
    )
    playout = PlayoutBuffer()
    rec = FlowRecorder()
    snd, rcv = build_transport_pair(
        sim, topo.first, topo.last, "media", profile,
        recorder=rec,
        on_deliver=lambda pkt: playout.deliver(pkt, sim.now),
        bulk=False,
    )
    source = MediaSource(
        sim, snd, fps=25.0, playout_delay=playout_delay
    )
    source.start()
    sim.run(until=duration)
    latencies = rcv.app_latencies
    latencies_sorted = sorted(latencies)
    p95 = (
        latencies_sorted[int(0.95 * (len(latencies_sorted) - 1))]
        if latencies_sorted
        else 0.0
    )
    return ReliabilityResult(
        mode=mode.value,
        sent=source.messages,
        delivered=rcv.app_delivered,
        skipped=rcv.skipped_messages,
        retransmissions=snd.retransmissions,
        abandoned=snd.abandoned,
        on_time_ratio=playout.on_time_ratio(),
        mean_latency=sum(latencies) / len(latencies) if latencies else 0.0,
        p95_latency=p95,
    )


@register(
    "reliability_modes",
    grid={"mode": tuple(m.value for m in ReliabilityMode)},
    description="Media delivery per reliability mode, by mode name (paper §1).",
)
def reliability_by_name(
    mode: str = "full",
    loss_rate: float = 0.03,
    rate_bps: float = 3e6,
    duration: float = 60.0,
    playout_delay: float = 0.28,
    seed: int = 0,
) -> ReliabilityResult:
    """Sweepable adapter: resolve ``mode`` to a :class:`ReliabilityMode`."""
    return reliability_scenario(
        ReliabilityMode(mode),
        loss_rate=loss_rate,
        rate_bps=rate_bps,
        duration=duration,
        playout_delay=playout_delay,
        seed=seed,
    )
