"""Per-experiment scenario modules (one per DESIGN.md experiment).

Importing this package registers every canonical scenario with
:mod:`repro.harness.registry`.  Each module keeps one experiment's
result dataclass and builder function together, replacing the old
monolithic ``repro.harness.scenarios`` (which remains as a re-export
shim for backward compatibility).
"""

from repro.harness.experiments.ablation import (  # noqa: F401
    ABLATION_VARIANTS,
    AblationResult,
    gtfrc_ablation_scenario,
)
from repro.harness.experiments.af_assurance import (  # noqa: F401
    AF_PROTOCOLS,
    AfResult,
    af_dumbbell_scenario,
)
from repro.harness.experiments.convergence import (  # noqa: F401
    ConvergenceResult,
    convergence_scenario,
)
from repro.harness.experiments.estimation import (  # noqa: F401
    EstimationAccuracyResult,
    estimation_accuracy_scenario,
)
from repro.harness.experiments.flash_crowd import (  # noqa: F401
    FLASH_CROWD_PROTOCOLS,
    FlashCrowdResult,
    flash_crowd_population,
    flash_crowd_scenario,
    flash_crowd_spec,
)
from repro.harness.experiments.hybrid import (  # noqa: F401
    FIDELITIES,
    HybridFlashCrowdResult,
    HybridMiceElephantsResult,
    hybrid_flash_crowd_scenario,
    hybrid_mice_elephants_scenario,
)
from repro.harness.experiments.friendliness import (  # noqa: F401
    FriendlinessResult,
    friendliness_scenario,
)
from repro.harness.experiments.hetero_sla import (  # noqa: F401
    HETERO_SLA_PROTOCOLS,
    HeteroSlaResult,
    hetero_sla_scenario,
)
from repro.harness.experiments.lossy_path import (  # noqa: F401
    LossyPathResult,
    lossy_path_scenario,
)
from repro.harness.experiments.mice_elephants import (  # noqa: F401
    MICE_ELEPHANTS_PROTOCOLS,
    MiceElephantsResult,
    mice_elephants_population,
    mice_elephants_scenario,
    mice_elephants_spec,
)
from repro.harness.experiments.negotiation_matrix import (  # noqa: F401
    NEGOTIATION_PAIRS,
    NegotiationMatrixResult,
    negotiation_scenario,
)
from repro.harness.experiments.parking_lot import (  # noqa: F401
    PARKING_LOT_PROTOCOLS,
    ParkingLotResult,
    parking_lot_scenario,
)
from repro.harness.experiments.receiver_load import (  # noqa: F401
    ReceiverLoadResult,
    receiver_load_scenario,
)
from repro.harness.experiments.reverse_path import (  # noqa: F401
    REVERSE_PATH_PROTOCOLS,
    ReversePathResult,
    reverse_path_scenario,
)
from repro.harness.experiments.reliability import (  # noqa: F401
    ReliabilityResult,
    reliability_scenario,
)
from repro.harness.experiments.selfish import (  # noqa: F401
    SelfishResult,
    selfish_receiver_scenario,
)
from repro.harness.experiments.smoothness import (  # noqa: F401
    SmoothnessResult,
    smoothness_scenario,
)
