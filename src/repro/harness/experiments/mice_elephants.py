"""W2 — mice vs elephants under DiffServ (PR 6).

A whole generated population on one access-star RIO bottleneck: a
Poisson stream of flows where most arrivals are short TCP *mice*
(truncated-Pareto sizes — the classic heavy-tailed web mix) and a
small fraction are large assured *elephants* carried by gTFRC/QTPAF
with per-flow srTCM conditioning (:func:`repro.traffic.apply_slas`).
The question the fixed T1 scaffolds cannot ask: do per-flow AF
guarantees survive population churn, and what do the guarantees cost
the best-effort mice in completion time?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.registry import register
from repro.harness.result import ScenarioResult
from repro.metrics.fct import fct_summary
from repro.sim.engine import Simulator
from repro.topo import ScenarioSpec, build
from repro.topo.generators import access_star_endpoints, access_star_spec
from repro.traffic import (
    ArrivalSpec,
    FlowClassSpec,
    PopulationSpec,
    SizeSpec,
    apply_slas,
    expand_population,
)

#: Transports accepted for the elephant class.
MICE_ELEPHANTS_PROTOCOLS = ("gtfrc", "qtpaf")


def mice_elephants_population(
    protocol: str,
    target_bps: float,
    *,
    n_hosts: int = 32,
    n_flows: int = 150,
    arrival_rate_per_s: float = 20.0,
    elephant_share: float = 0.1,
    mouse_alpha: float = 1.3,
    mouse_min_kbytes: float = 4.0,
    mouse_max_kbytes: float = 120.0,
    elephant_kbytes: float = 1500.0,
    duration: float = 15.0,
) -> PopulationSpec:
    """The two-class population, shared by the packet-level spec and the
    hybrid scenario (``repro.fluid.hybridize`` needs the same spec the
    expansion came from)."""
    return PopulationSpec(
        name="mix",
        arrival=ArrivalSpec(kind="poisson", rate_per_s=arrival_rate_per_s),
        classes=(
            FlowClassSpec(
                "mice",
                1.0 - elephant_share,
                "tcp",
                SizeSpec(
                    kind="pareto",
                    alpha=mouse_alpha,
                    min_bytes=int(mouse_min_kbytes * 1000),
                    max_bytes=int(mouse_max_kbytes * 1000),
                ),
            ),
            FlowClassSpec(
                "elephant",
                elephant_share,
                protocol,
                SizeSpec(kind="fixed", size_bytes=int(elephant_kbytes * 1000)),
                target_bps=target_bps,
            ),
        ),
        endpoints=access_star_endpoints(n_hosts),
        n_flows=n_flows,
        horizon=duration,
    )


def mice_elephants_spec(
    protocol: str,
    target_bps: float,
    *,
    n_hosts: int = 32,
    n_flows: int = 150,
    arrival_rate_per_s: float = 20.0,
    elephant_share: float = 0.1,
    mouse_alpha: float = 1.3,
    mouse_min_kbytes: float = 4.0,
    mouse_max_kbytes: float = 120.0,
    elephant_kbytes: float = 1500.0,
    bottleneck_bps: float = 20e6,
    duration: float = 15.0,
    seed: int = 0,
) -> ScenarioSpec:
    """Compose the mice/elephants scenario spec (topology + flows).

    Expands one Poisson population with two weighted classes, then
    rewrites the topology so every assured elephant gets its own srTCM
    edge meter (elephants draw endpoints without replacement, so each
    lands on its own access link).  Pure function of
    ``(parameters, seed)`` — the traffic goldens pin it.
    """
    if protocol not in MICE_ELEPHANTS_PROTOCOLS:
        raise ValueError(f"unknown protocol {protocol!r}")
    topology = access_star_spec(n_hosts, bottleneck_bps=bottleneck_bps)
    population = mice_elephants_population(
        protocol,
        target_bps,
        n_hosts=n_hosts,
        n_flows=n_flows,
        arrival_rate_per_s=arrival_rate_per_s,
        elephant_share=elephant_share,
        mouse_alpha=mouse_alpha,
        mouse_min_kbytes=mouse_min_kbytes,
        mouse_max_kbytes=mouse_max_kbytes,
        elephant_kbytes=elephant_kbytes,
        duration=duration,
    )
    flows = expand_population(population, seed)
    return ScenarioSpec(
        name="mice_elephants",
        topology=apply_slas(topology, flows),
        flows=flows,
        description="heavy-tailed TCP mice vs assured elephants",
    )


@dataclass
class MiceElephantsResult(ScenarioResult):
    """Outcome of one mice/elephants population run."""

    protocol: str
    target_bps: float
    n_mice: int
    n_elephants: int
    mice_completed: int
    elephants_completed: int
    mice_fct_mean_s: float
    mice_fct_p95_s: float
    elephant_fct_mean_s: float
    bottleneck_drops: int


@register(
    "mice_elephants",
    grid={"protocol": ("gtfrc", "qtpaf"), "elephant_share": (0.05, 0.1)},
)
def mice_elephants_scenario(
    protocol: str = "gtfrc",
    target_bps: float = 2e6,
    n_hosts: int = 32,
    n_flows: int = 150,
    arrival_rate_per_s: float = 20.0,
    elephant_share: float = 0.1,
    bottleneck_bps: float = 20e6,
    duration: float = 15.0,
    seed: int = 0,
) -> MiceElephantsResult:
    """A Poisson population of TCP mice and assured elephants.

    Every flow is finite (truncated-Pareto mice, fixed-size assured
    elephants) and departs when its byte budget is acknowledged, so
    the offered load is pure churn.  Reports per-class completion
    counts and completion-time statistics plus the shared bottleneck's
    drop count.
    """
    sim = Simulator(seed=seed)
    spec = mice_elephants_spec(
        protocol,
        target_bps,
        n_hosts=n_hosts,
        n_flows=n_flows,
        arrival_rate_per_s=arrival_rate_per_s,
        elephant_share=elephant_share,
        bottleneck_bps=bottleneck_bps,
        duration=duration,
        seed=seed,
    )
    built = build(sim, spec)
    sim.run(until=duration)
    done = built.completions()
    mice_fct = fct_summary([c for c in done if c.flow_id.startswith("mice")])
    elephant_fct = fct_summary(
        [c for c in done if c.flow_id.startswith("elephant")]
    )
    return MiceElephantsResult(
        protocol=protocol,
        target_bps=target_bps,
        n_mice=sum(1 for f in spec.flows if f.transport == "tcp"),
        n_elephants=sum(1 for f in spec.flows if f.transport == protocol),
        mice_completed=mice_fct.completed,
        elephants_completed=elephant_fct.completed,
        mice_fct_mean_s=mice_fct.mean,
        mice_fct_p95_s=mice_fct.p95,
        elephant_fct_mean_s=elephant_fct.mean,
        bottleneck_drops=built.queue("gw", "srv").stats.dropped,
    )
