"""Hybrid-fidelity population scenarios (PR 10).

The same composed population scenarios as W1/W2, runnable at two
fidelities through one parameter:

``fidelity="packet"``
    every flow is simulated packet-level — exactly the spec
    :func:`~repro.harness.experiments.flash_crowd.flash_crowd_spec` /
    :func:`~repro.harness.experiments.mice_elephants.mice_elephants_spec`
    builds;

``fidelity="hybrid"``
    the population's best-effort flows are removed and replayed as an
    aggregate fluid background (:func:`repro.fluid.hybridize`) at the
    RIO bottleneck, while the *assured* foreground stays packet-level.

Both fidelities share one result contract: foreground metrics are
comparable across fidelities (the paired equivalence tests in
``tests/test_fluid_equivalence.py`` compare exactly these numbers),
and the ``bg_*`` background-aggregate metrics are zero for packet runs
(there is no fluid source to account).  ``events`` makes the point of
hybrid fidelity measurable — the same population, a fraction of the
event count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fluid import hybridize
from repro.harness.experiments.flash_crowd import (
    FLASH_CROWD_PROTOCOLS,
    flash_crowd_population,
    flash_crowd_spec,
)
from repro.harness.experiments.mice_elephants import (
    MICE_ELEPHANTS_PROTOCOLS,
    mice_elephants_population,
    mice_elephants_spec,
)
from repro.harness.registry import register
from repro.harness.result import ScenarioResult
from repro.metrics.fct import fct_summary
from repro.metrics.fluid import background_summary
from repro.sim.engine import Simulator
from repro.topo import build

#: The fidelities a hybrid scenario accepts.
FIDELITIES = ("hybrid", "packet")


def _check_fidelity(fidelity: str) -> None:
    if fidelity not in FIDELITIES:
        raise ValueError(
            f"unknown fidelity {fidelity!r}; expected one of {FIDELITIES}"
        )


@dataclass
class HybridFlashCrowdResult(ScenarioResult):
    """Outcome of one flash-crowd run at either fidelity."""

    __computed_metrics__ = ("ratio",)

    protocol: str
    fidelity: str
    target_bps: float
    achieved_bps: float
    events: int
    bg_offered_bytes: float
    bg_served_bytes: float
    bg_loss_ratio: float

    @property
    def ratio(self) -> float:
        """Achieved / negotiated — 1.0 means the assurance survived."""
        return self.achieved_bps / self.target_bps if self.target_bps else 0.0


@register(
    "hybrid_flash_crowd",
    grid={"protocol": ("gtfrc", "qtpaf"), "fidelity": ("hybrid", "packet")},
)
def hybrid_flash_crowd_scenario(
    protocol: str = "gtfrc",
    target_bps: float = 4e6,
    fidelity: str = "hybrid",
    n_hosts: int = 24,
    n_flows: int = 80,
    base_rate_per_s: float = 2.0,
    peak_rate_per_s: float = 40.0,
    ramp_start: float = 2.0,
    ramp_duration: float = 2.0,
    bottleneck_bps: float = 20e6,
    epoch: float = 0.05,
    bg_flow_rate_bps: float = 500e3,
    duration: float = 12.0,
    warmup: float = 2.0,
    seed: int = 0,
) -> HybridFlashCrowdResult:
    """W1 at selectable fidelity: assured elephant vs a TCP flash crowd.

    ``fidelity="hybrid"`` replays the whole crowd population as a fluid
    offered-load profile at the RIO bottleneck (the assured flow stays
    packet-level); ``fidelity="packet"`` runs the identical spec with
    every mouse as a real TCP flow.  The achieved rate / assurance
    ratio are directly comparable between the two.
    """
    _check_fidelity(fidelity)
    if protocol not in FLASH_CROWD_PROTOCOLS:
        raise ValueError(f"unknown protocol {protocol!r}")
    spec = flash_crowd_spec(
        protocol,
        target_bps,
        n_hosts=n_hosts,
        n_flows=n_flows,
        base_rate_per_s=base_rate_per_s,
        peak_rate_per_s=peak_rate_per_s,
        ramp_start=ramp_start,
        ramp_duration=ramp_duration,
        bottleneck_bps=bottleneck_bps,
        duration=duration,
        seed=seed,
    )
    if fidelity == "hybrid":
        population = flash_crowd_population(
            n_hosts=n_hosts,
            n_flows=n_flows,
            base_rate_per_s=base_rate_per_s,
            peak_rate_per_s=peak_rate_per_s,
            ramp_start=ramp_start,
            ramp_duration=ramp_duration,
            duration=duration,
        )
        spec = hybridize(
            spec,
            population,
            seed=seed,
            epoch=epoch,
            per_flow_rate_bps=bg_flow_rate_bps,
        )
    sim = Simulator(seed=seed)
    built = build(sim, spec)
    sim.run(until=duration)
    bg = background_summary(built.fluid_sources.values())
    return HybridFlashCrowdResult(
        protocol=protocol,
        fidelity=fidelity,
        target_bps=target_bps,
        achieved_bps=built.recorder("assured").mean_rate_bps(warmup, duration),
        events=sim.events_processed,
        bg_offered_bytes=bg.offered_bytes,
        bg_served_bytes=bg.served_bytes,
        bg_loss_ratio=bg.loss_ratio,
    )


@dataclass
class HybridMiceElephantsResult(ScenarioResult):
    """Outcome of one mice/elephants run at either fidelity."""

    protocol: str
    fidelity: str
    target_bps: float
    n_elephants: int
    elephants_completed: int
    elephant_fct_mean_s: float
    elephant_fct_p95_s: float
    events: int
    bg_offered_bytes: float
    bg_served_bytes: float
    bg_loss_ratio: float


@register(
    "hybrid_mice_elephants",
    grid={"protocol": ("gtfrc", "qtpaf"), "fidelity": ("hybrid", "packet")},
)
def hybrid_mice_elephants_scenario(
    protocol: str = "gtfrc",
    target_bps: float = 2e6,
    fidelity: str = "hybrid",
    n_hosts: int = 32,
    n_flows: int = 150,
    arrival_rate_per_s: float = 20.0,
    elephant_share: float = 0.1,
    bottleneck_bps: float = 20e6,
    epoch: float = 0.05,
    bg_flow_rate_bps: float = 500e3,
    duration: float = 15.0,
    seed: int = 0,
) -> HybridMiceElephantsResult:
    """W2 at selectable fidelity: assured elephants amid churning mice.

    Only the best-effort ``mice`` class is fluidized
    (``background_classes=("mice",)``) — every assured elephant keeps
    its packet-level transport, srTCM meter and completion record, so
    elephant completion times are directly comparable between
    fidelities.
    """
    _check_fidelity(fidelity)
    if protocol not in MICE_ELEPHANTS_PROTOCOLS:
        raise ValueError(f"unknown protocol {protocol!r}")
    spec = mice_elephants_spec(
        protocol,
        target_bps,
        n_hosts=n_hosts,
        n_flows=n_flows,
        arrival_rate_per_s=arrival_rate_per_s,
        elephant_share=elephant_share,
        bottleneck_bps=bottleneck_bps,
        duration=duration,
        seed=seed,
    )
    if fidelity == "hybrid":
        population = mice_elephants_population(
            protocol,
            target_bps,
            n_hosts=n_hosts,
            n_flows=n_flows,
            arrival_rate_per_s=arrival_rate_per_s,
            elephant_share=elephant_share,
            duration=duration,
        )
        spec = hybridize(
            spec,
            population,
            seed=seed,
            background_classes=("mice",),
            epoch=epoch,
            per_flow_rate_bps=bg_flow_rate_bps,
        )
    sim = Simulator(seed=seed)
    built = build(sim, spec)
    sim.run(until=duration)
    done = built.completions()
    elephant_fct = fct_summary(
        [c for c in done if c.flow_id.startswith("elephant")]
    )
    bg = background_summary(built.fluid_sources.values())
    return HybridMiceElephantsResult(
        protocol=protocol,
        fidelity=fidelity,
        target_bps=target_bps,
        n_elephants=sum(
            1 for f in spec.flows if f.flow_id.startswith("elephant")
        ),
        elephants_completed=elephant_fct.completed,
        elephant_fct_mean_s=elephant_fct.mean,
        elephant_fct_p95_s=elephant_fct.p95,
        events=sim.events_processed,
        bg_offered_bytes=bg.offered_bytes,
        bg_served_bytes=bg.served_bytes,
        bg_loss_ratio=bg.loss_ratio,
    )
