"""P2 — reverse-path (ACK/feedback) congestion on an AF chain (PR 3).

TFRC-family control loops live on the feedback path: the receiver's
loss-event reports ride the reverse links.  Here greedy TCP flows run
*against* the assured flow over the same duplex RIO chain
(:func:`repro.topo.presets.reverse_path_chain_spec`), congesting the
queues its feedback traverses — delayed/dropped reports inflate the
no-feedback timer risk and stale the rate computation.  The experiment
asks whether gTFRC's floor still holds ``g`` when the control channel
itself is under attack.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.registry import register
from repro.harness.result import ScenarioResult
from repro.sim.engine import Simulator
from repro.topo import build, reverse_path_chain_spec

#: Transports accepted by the scenario.
REVERSE_PATH_PROTOCOLS = ("tfrc", "gtfrc", "qtpaf")


@dataclass
class ReversePathResult(ScenarioResult):
    """Outcome of one reverse-path congestion run."""

    __computed_metrics__ = ("ratio",)

    protocol: str
    target_bps: float
    achieved_bps: float
    reverse_total_bps: float
    feedback_received: int
    reverse_drop_ratio: float  # drops on the last reverse hop's queue

    @property
    def ratio(self) -> float:
        """Achieved / negotiated — 1.0 means the assurance held."""
        return self.achieved_bps / self.target_bps if self.target_bps else 0.0


@register(
    "reverse_path_chain",
    grid={"protocol": ("tfrc", "gtfrc"), "n_reverse": (2, 6)},
)
def reverse_path_scenario(
    protocol: str,
    target_bps: float = 4e6,
    n_hops: int = 3,
    n_reverse: int = 4,
    rate_bps: float = 10e6,
    reverse_start: float = 0.0,
    duration: float = 40.0,
    warmup: float = 10.0,
    seed: int = 0,
) -> ReversePathResult:
    """One assured flow forward, ``n_reverse`` greedy TCP flows backward.

    The assured flow runs ``h0 -> h{n_hops}`` with AF conditioning on
    the first hop; the TCP flows run the other way, sharing the duplex
    RIO hops with the assured flow's feedback packets (which, being
    unmarked, are out-of-profile on the reverse queues — the worst
    case).  Returns the assured goodput, the aggregate reverse
    throughput and feedback-delivery counters.
    """
    if protocol not in REVERSE_PATH_PROTOCOLS:
        raise ValueError(f"unknown protocol {protocol!r}")
    sim = Simulator(seed=seed)
    built = build(
        sim,
        reverse_path_chain_spec(
            protocol,
            target_bps,
            n_hops=n_hops,
            n_reverse=n_reverse,
            rate_bps=rate_bps,
            reverse_start=reverse_start,
        ),
    )
    sim.run(until=duration)
    # congestion concentrates on the *first* reverse hop: the TCP
    # senders and the assured receiver's feedback both inject at
    # h{n_hops}, so its outbound queue is where reverse drops happen
    # (downstream reverse hops see traffic already shaped to line rate)
    reverse_stats = built.queue(f"h{n_hops}", f"h{n_hops - 1}").stats
    return ReversePathResult(
        protocol=protocol,
        target_bps=target_bps,
        achieved_bps=built.recorder("assured").mean_rate_bps(warmup, duration),
        reverse_total_bps=sum(
            built.recorder(f"rev{j}").mean_rate_bps(warmup, duration)
            for j in range(1, 1 + n_reverse)
        ),
        feedback_received=built.senders["assured"].feedback_received,
        reverse_drop_ratio=reverse_stats.drop_ratio(),
    )
