"""Perf benchmark subsystem: pinned micro+macro suite and trace probes.

Single-run speed is a first-class, continuously measured property of
this repository (ROADMAP north star: "runs as fast as the hardware
allows").  This module provides

* a **pinned benchmark suite** (:data:`BENCHMARKS`) covering the hot
  layers of the simulation core — the engine event loop, the
  packet/queue forwarding path (both the construction and the pooled
  lifecycle, plus a saturated-link end-to-end micro), an end-to-end T1
  scenario run and warm-pool sweep dispatch — each reported as a rate
  (higher is better);
* the ``python -m repro.harness bench`` command (see
  :mod:`repro.harness.cli`) which runs the suite, prints a table and
  writes ``BENCH_core.json``; ``bench --check`` instead compares a
  fresh run against the committed numbers and fails on a >20%
  slowdown, guarding future PRs against perf regressions;
* **trace probes** (:func:`engine_trace_probe`,
  :func:`network_trace_probe`) — deterministic workloads that distill a
  run into exact, comparable fingerprints (event sequence digest,
  ``events_processed``, final ``sim.now``, per-flow delivered bytes).
  The golden tests pin their output to values captured from the seed
  engine, proving that perf work never changes simulation results.

Wall-clock numbers are machine-dependent; the JSON file records both
the frozen pre-optimization ``baseline`` and the ``current`` numbers
measured on the same machine, so the committed speedup ratios are
apples-to-apples even though absolute rates vary across hosts.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.ioutil import atomic_write_text
from repro.sim.engine import Simulator

#: Default location of the committed benchmark record (repo root).
BENCH_FILE = "BENCH_core.json"

#: ``bench --check`` fails when any metric is slower than committed
#: current numbers by more than this factor.
REGRESSION_TOLERANCE = 0.20


# ----------------------------------------------------------------------
# micro benchmarks (each returns "work units done"; the driver times it)
# ----------------------------------------------------------------------
def _bench_engine_events(n_events: int = 150_000, n_timers: int = 16) -> float:
    """Engine micro: self-rescheduling timer churn through the heap.

    Mirrors the protocol workload: a handful of interleaved periodic
    callbacks, each pop followed by a push, with the occasional cancel.
    """
    sim = Simulator(seed=1)
    count = [0]

    def tick(interval: float) -> None:
        count[0] += 1
        if count[0] < n_events:
            ev = sim.schedule(interval, tick, interval)
            if count[0] % 97 == 0:  # light cancellation churn
                ev.cancel()
                sim.schedule(interval, tick, interval)

    for i in range(n_timers):
        sim.schedule(0.001 * (i + 1), tick, 0.001 * (i + 1))
    sim.run()
    return float(sim.events_processed)


def _bench_packet_alloc(n_packets: int = 120_000) -> float:
    """Packet-layer micro: allocation + header construction rate."""
    from repro.sim.packet import Packet, PacketKind, TfrcDataHeader

    for seq in range(n_packets):
        Packet(
            src="s0",
            dst="d0",
            flow_id="f",
            size=1000,
            kind=PacketKind.DATA,
            header=TfrcDataHeader(seq=seq, timestamp=0.001 * seq, rtt_estimate=0.05),
            created_at=0.001 * seq,
        )
    return float(n_packets)


def _bench_packet_pool(n_packets: int = 120_000) -> float:
    """Packet-layer micro: pooled acquire/refill/release lifecycle rate.

    The ``packet_alloc`` successor: the same logical work — one data
    packet with a filled TFRC header per iteration — through the
    :class:`~repro.sim.packet.PacketPool` fast path agents use.  With
    ``REPRO_NO_POOL=1`` it degrades to the construction path, so the
    kill-switch shows up in the numbers instead of breaking the suite.
    """
    from repro.sim.engine import Simulator
    from repro.sim.packet import Packet, PacketKind, PacketPool, TfrcDataHeader

    sim = Simulator(seed=1)
    pool = PacketPool.of(sim)
    data = PacketKind.DATA
    for seq in range(n_packets):
        t = 0.001 * seq
        packet = (
            pool.acquire(TfrcDataHeader, "s0", "d0", "f", 1000, data, t)
            if pool is not None
            else None
        )
        if packet is None:
            packet = Packet(
                src="s0",
                dst="d0",
                flow_id="f",
                size=1000,
                kind=data,
                header=TfrcDataHeader(seq=seq, timestamp=t, rtt_estimate=0.05),
                created_at=t,
            )
            if pool is not None:
                packet.pooled = True
        else:
            header = packet.header
            header.seq = seq
            header.timestamp = t
            header.rtt_estimate = 0.05
            header.forward_ack = 0
        if pool is not None:
            pool.release(packet)
    return float(n_packets)


def _bench_link_saturation(n_packets: int = 40_000) -> float:
    """Forwarding micro: a saturated link end to end through the engine.

    A 32-packet self-clocked window over one 100 Mbit/s DropTail link:
    every delivery recycles the packet and injects the next, so the
    serialization pipeline never idles.  Exercises exactly the pooled
    hot path — packet acquire/release, ``schedule_pooled`` transmission
    and delivery events, queue admission — with none of the transport
    arithmetic on top.
    """
    from repro.sim.engine import Simulator
    from repro.sim.link import Link
    from repro.sim.node import Agent, Node
    from repro.sim.packet import Packet, PacketKind, PacketPool, TfrcDataHeader
    from repro.sim.queues import DropTailQueue

    sim = Simulator(seed=1)
    a, b = Node(sim, "a"), Node(sim, "b")
    Link(sim, a, b, rate_bps=100e6, delay=0.0005,
         queue=DropTailQueue(capacity_packets=64))
    pool = PacketPool.of(sim)
    data = PacketKind.DATA
    sent = [0]

    def send_one() -> None:
        seq = sent[0]
        sent[0] = seq + 1
        now = sim.now
        packet = (
            pool.acquire(TfrcDataHeader, "a", "b", "f", 1000, data, now)
            if pool is not None
            else None
        )
        if packet is None:
            packet = Packet(
                src="a", dst="b", flow_id="f", size=1000, kind=data,
                header=TfrcDataHeader(seq=seq, timestamp=now, rtt_estimate=0.0),
                created_at=now,
            )
            if pool is not None:
                packet.pooled = True
        else:
            header = packet.header
            header.seq = seq
            header.timestamp = now
            header.rtt_estimate = 0.0
            header.forward_ack = 0
        a.send(packet)

    class _Sink(Agent):
        def receive(self, packet):  # noqa: D102 - bench sink
            if pool is not None:
                pool.release(packet)
            if sent[0] < n_packets:
                send_one()

    _Sink(sim).attach(b, "f")
    for _ in range(32):
        send_one()
    sim.run()
    return float(n_packets)


def _bench_sweep_warm(n_runs: int = 4) -> float:
    """Sweep-dispatch macro: a small sweep through the warm worker pool.

    ``run_matrix`` with two workers and no cache, deliberately *small*
    runs: per-call overhead (pool spawn, worker warmup, IPC setup) is
    the quantity under test, and a short sweep is where it shows.  The
    first repetition pays the spawn, later repetitions reuse the pool —
    best-of-repeats therefore reports the *warm* dispatch rate that
    back-to-back sweeps (bench tables, CI loops) experience.  The
    frozen baseline for this metric was measured with the pool torn
    down between calls (cold spawn every time).
    """
    from repro.harness.runner import run_matrix

    records = run_matrix(
        "af_assurance",
        {"protocol": ("qtpaf",)},
        base=dict(
            target_bps=4e6, n_cross=1, duration=0.5, warmup=0.1,
            bottleneck_bps=4e6,
        ),
        seeds=range(n_runs),
        workers=2,
        cache_dir=None,
    )
    return float(len(records))


def _bench_sweep_fault_overhead(n_runs: int = 4) -> float:
    """Fault-plumbing micro: the warm sweep with retries+timeout armed.

    Identical workload to ``sweep_warm``, but with the full PR 7
    fault-tolerance plumbing engaged on the fault-free path:
    ``strict=False``, ``max_retries=2`` and a generous ``run_timeout``
    (so every dispatch carries an attempt number and a deadline, every
    response passes validation, and the deadline reaper runs).  No
    fault ever fires, so the rate difference against ``sweep_warm`` is
    pure fabric overhead — the slow-tier guard test pins it under 5%.
    """
    from repro.harness.runner import run_matrix

    records = run_matrix(
        "af_assurance",
        {"protocol": ("qtpaf",)},
        base=dict(
            target_bps=4e6, n_cross=1, duration=0.5, warmup=0.1,
            bottleneck_bps=4e6,
        ),
        seeds=range(n_runs),
        workers=2,
        cache_dir=None,
        strict=False,
        max_retries=2,
        run_timeout=300.0,
    )
    return float(len(records))


def _bench_obs_overhead(n_runs: int = 4) -> float:
    """Observability micro: the warm sweep with the full obs plane armed.

    Identical workload to ``sweep_warm`` run through the
    :class:`~repro.api.experiment.Experiment` facade with every PR 8
    hook engaged at once — metrics registry enabled (engine run hook +
    per-link queue tracking in-process, sweep harvest parent-side),
    span tracing on (every cell emits queued/dispatched/done events),
    and a live observer consuming the event stream.  The rate
    difference against ``sweep_warm`` bounds the *enabled* cost of
    observability; the slow-tier guard test pins the disabled cost
    under 2% and this enabled cost under 10%.
    """
    from repro.api.experiment import Experiment
    from repro.obs.metrics import disable_metrics, enable_metrics, reset_metrics

    events: list = []
    enable_metrics()
    try:
        reset_metrics()
        results = (
            Experiment("af_assurance")
            .sweep(protocol=("qtpaf",))
            .configure(
                target_bps=4e6, n_cross=1, duration=0.5, warmup=0.1,
                bottleneck_bps=4e6,
            )
            .seeds(range(n_runs))
            .workers(2)
            .cache(None)
            .trace(True)
            .run(observer=events.append)
        )
    finally:
        disable_metrics()
    return float(len(results))


def _bench_rio_queue(n_packets: int = 120_000) -> float:
    """Queue micro: packets/s through a RIO queue (enqueue+dequeue)."""
    import random

    from repro.sim.packet import Color, Packet
    from repro.sim.queues import RioQueue

    rng = random.Random(42)
    queue = RioQueue(rng=random.Random(7))
    colors = (Color.GREEN, Color.YELLOW, Color.RED)
    packets = [
        Packet(src="s", dst="d", flow_id="f", size=1000, color=colors[rng.randrange(3)])
        for _ in range(64)
    ]
    now = 0.0
    for i in range(n_packets):
        now += 0.0005
        queue.enqueue(packets[i & 63], now)
        if i & 1:
            queue.dequeue(now)
    while queue.dequeue(now) is not None:
        pass
    return float(n_packets)


def _bench_loss_estimator(n_packets: int = 60_000) -> float:
    """Receiver-bookkeeping micro: RFC 3448 loss machinery arrival rate."""
    import random

    from repro.tfrc.loss_history import LossEventEstimator

    rng = random.Random(7)
    seqs = [seq for seq in range(n_packets) if rng.random() >= 0.02]
    est = LossEventEstimator()
    t = 0.0
    for seq in seqs:
        t += 0.001
        est.on_packet(seq, t, 0.05)
    est.loss_event_rate()
    return float(len(seqs))


def _bench_t1_scenario() -> float:
    """Macro: one end-to-end T1 run (QTPAF + 4 TCP cross on RIO).

    The exact configuration timed by ``benchmarks/test_t1_af_assurance``;
    the unit of work is one full scenario run, so the reported rate is
    runs/s and its reciprocal is the t1 wall clock.
    """
    from repro.harness.registry import get_scenario

    spec = get_scenario("af_assurance")
    spec.fn("qtpaf", target_bps=4e6, n_cross=4, duration=10.0, warmup=2.0, seed=3)
    return 1.0


def _bench_population_1000() -> float:
    """Macro: a 1000-flow generated population end to end (PR 6).

    The ``mice_elephants`` scenario at population scale — a Poisson
    storm of heavy-tailed TCP mice plus 2% assured elephants on a
    64-host access star, every flow finite so the run is pure churn.
    Times spec expansion, per-flow SLA conditioning, construction and
    the full lifecycle (start → byte budget → departure) for a
    thousand transports; the unit of work is one run, so the rate is
    runs/s.
    """
    from repro.harness.registry import get_scenario

    spec = get_scenario("mice_elephants")
    spec.fn(
        "gtfrc",
        n_hosts=64,
        n_flows=1000,
        arrival_rate_per_s=250.0,
        elephant_share=0.02,
        duration=6.0,
        seed=1,
    )
    return 1.0


def _bench_population_100k_hybrid() -> float:
    """Macro: a 100,000-flow crowd at hybrid fidelity (PR 10).

    The ``hybrid_flash_crowd`` scenario with the crowd fluidized: the
    population is still expanded flow by flow (100k arrival/size/endpoint
    draws), but its bytes run through one :class:`repro.fluid.FluidSource`
    per bottleneck instead of 100k packet transports, so the event count
    stays bounded by the foreground plus the epoch clock.  Paired with
    ``population_1000`` (full packet fidelity) this pins the scale
    argument for hybrid runs: 100x the population for a few times the
    wall clock.  ``benchmarks/test_p3_hybrid_scale`` records the
    comparison as a table.
    """
    from repro.harness.registry import get_scenario

    spec = get_scenario("hybrid_flash_crowd")
    spec.fn(
        fidelity="hybrid",
        n_flows=100_000,
        n_hosts=64,
        base_rate_per_s=2000.0,
        peak_rate_per_s=30000.0,
        ramp_start=1.0,
        ramp_duration=2.0,
        bottleneck_bps=2e9,
        target_bps=40e6,
        duration=6.0,
        seed=1,
    )
    return 1.0


@dataclass(frozen=True)
class BenchSpec:
    """One pinned benchmark: a callable returning work units done."""

    name: str
    fn: Callable[[], float]
    unit: str
    repeats: int = 3


#: The pinned suite.  Names are stable: they key the JSON record and the
#: regression check, so renaming one orphans its committed baseline.
BENCHMARKS: List[BenchSpec] = [
    BenchSpec("engine_events", _bench_engine_events, "events/s"),
    BenchSpec("packet_alloc", _bench_packet_alloc, "packets/s"),
    BenchSpec("packet_pool", _bench_packet_pool, "packets/s"),
    BenchSpec("link_saturation", _bench_link_saturation, "packets/s"),
    BenchSpec("rio_queue", _bench_rio_queue, "packets/s"),
    BenchSpec("loss_estimator", _bench_loss_estimator, "packets/s"),
    BenchSpec("t1_scenario", _bench_t1_scenario, "runs/s"),
    BenchSpec("sweep_warm", _bench_sweep_warm, "runs/s"),
    BenchSpec("sweep_fault_overhead", _bench_sweep_fault_overhead, "runs/s"),
    BenchSpec("obs_overhead", _bench_obs_overhead, "runs/s"),
    BenchSpec("population_1000", _bench_population_1000, "runs/s", repeats=1),
    BenchSpec(
        "population_100k_hybrid",
        _bench_population_100k_hybrid,
        "runs/s",
        repeats=1,
    ),
]


def run_suite(repeats: Optional[int] = None) -> Dict[str, Dict[str, float]]:
    """Run every benchmark, best-of-``repeats``, returning name → metrics.

    Each metric dict has ``rate`` (work units per second, higher is
    better) and ``seconds`` (best wall clock of one repetition).
    """
    results: Dict[str, Dict[str, float]] = {}
    for spec in BENCHMARKS:
        best = float("inf")
        units = 0.0
        for _ in range(repeats if repeats is not None else spec.repeats):
            start = time.perf_counter()
            units = spec.fn()
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
        results[spec.name] = {
            "rate": units / best if best > 0 else 0.0,
            "seconds": best,
        }
    return results


# ----------------------------------------------------------------------
# record file handling
# ----------------------------------------------------------------------
def load_record(path: Path) -> Optional[dict]:
    """Load a BENCH_core.json record, or None when absent/unreadable."""
    try:
        return json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None


def write_record(
    path: Path,
    current: Dict[str, Dict[str, float]],
    baseline: Optional[Dict[str, Dict[str, float]]] = None,
) -> dict:
    """Write the benchmark record, preserving any existing baseline.

    The ``baseline`` section is frozen at the pre-optimization numbers:
    it is only taken from the argument (or an existing file) and never
    overwritten by a plain re-run, so the committed speedup ratios stay
    anchored to the seed engine.
    """
    path = Path(path)
    if baseline is None:
        existing = load_record(path)
        # a record written before any baseline existed stores
        # "baseline": null — treat that the same as no record
        baseline = ((existing or {}).get("baseline") or {}).get("metrics")
    record = {
        "schema": 1,
        "suite": [spec.name for spec in BENCHMARKS],
        "baseline": {"metrics": baseline} if baseline else None,
        "current": {"metrics": current},
        "speedup": {
            name: current[name]["rate"] / baseline[name]["rate"]
            for name in current
            if baseline and name in baseline and baseline[name]["rate"] > 0
        },
    }
    atomic_write_text(path, json.dumps(record, indent=2, sort_keys=True) + "\n")
    return record


def append_history(directory: Path, record: dict) -> Path:
    """Write a timestamped snapshot of ``record`` under ``directory``.

    ``bench --history <dir>`` calls this after every record write, so a
    directory of ``BENCH_<UTC timestamp>.json`` files accumulates the
    perf trajectory across runs (nightly CI uploads it as an artifact).
    Snapshots are never overwritten: a same-second collision gets a
    numeric suffix.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
    path = directory / f"BENCH_{stamp}.json"
    suffix = 1
    while path.exists():
        path = directory / f"BENCH_{stamp}_{suffix}.json"
        suffix += 1
    atomic_write_text(path, json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def check_regression(
    committed: dict,
    fresh: Dict[str, Dict[str, float]],
    tolerance: float = REGRESSION_TOLERANCE,
) -> List[str]:
    """Compare a fresh run against the committed record.

    Returns a list of human-readable failures (empty = pass): any
    benchmark whose fresh rate falls more than ``tolerance`` below the
    committed ``current`` rate is a regression.
    """
    failures: List[str] = []
    committed_metrics = (committed.get("current") or {}).get("metrics") or {}
    for name, metrics in committed_metrics.items():
        if name not in fresh:
            failures.append(f"{name}: missing from fresh run")
            continue
        # a hand-edited or truncated record must fail loudly, not with
        # an AttributeError deep in the comparison
        if not isinstance(metrics, dict) or "rate" not in metrics:
            failures.append(
                f"{name}: committed record entry is malformed "
                f"(expected a metrics object with a 'rate'); "
                f"re-run `bench` to rewrite the record"
            )
            continue
        committed_rate = metrics.get("rate", 0.0)
        fresh_rate = fresh[name]["rate"]
        if committed_rate > 0 and fresh_rate < (1.0 - tolerance) * committed_rate:
            failures.append(
                f"{name}: {fresh_rate:,.0f}/s is "
                f"{(1 - fresh_rate / committed_rate) * 100:.0f}% below the "
                f"committed {committed_rate:,.0f}/s (tolerance {tolerance:.0%})"
            )
    return failures


# ----------------------------------------------------------------------
# trace probes: exact fingerprints of deterministic runs
# ----------------------------------------------------------------------
def engine_trace_probe(seed: int = 0, n_events: int = 4000) -> Dict[str, object]:
    """Churn the raw engine and fingerprint the exact firing sequence.

    Schedules a seeded random mix of one-shot and rescheduling events
    with cancellation churn, then digests every ``(time, tag)`` firing
    in order.  Any change to event ordering, tie-breaking or
    cancellation semantics changes the digest.
    """
    sim = Simulator(seed=seed)
    rng = sim.rng("probe")
    digest = hashlib.sha256()
    fired = [0]
    handles: List[object] = []

    def fire(tag: int) -> None:
        fired[0] += 1
        digest.update(f"{sim.now!r}:{tag}".encode())
        if fired[0] < n_events:
            handles.append(sim.schedule(rng.uniform(0.0, 0.01), fire, fired[0]))
            if rng.random() < 0.25 and handles:
                handles.pop(rng.randrange(len(handles))).cancel()

    for tag in range(8):
        handles.append(sim.schedule(rng.uniform(0.0, 0.01), fire, tag))
    sim.run()
    return {
        "digest": digest.hexdigest(),
        "events_processed": sim.events_processed,
        "final_now": repr(sim.now),
    }


def network_trace_probe(
    seed: int = 0, protocol: str = "qtpaf", duration: float = 5.0
) -> Dict[str, object]:
    """Run a miniature T1-style network and fingerprint the outcome.

    A QTPAF/TFRC/TCP assured flow plus two TCP cross flows on a RIO
    bottleneck — every hot layer (engine, packets, links, RIO, TFRC
    loss machinery, recorders) participates.  The scenario is the
    shared :func:`repro.topo.presets.t1_dumbbell_spec` (the golden
    values pin the spec compiler to the seed engine's construction
    order).  Returns exact integers and ``repr``-precision floats:
    ``events_processed``, final ``sim.now`` and per-flow delivered
    byte counts.
    """
    from repro.topo import build, t1_dumbbell_spec

    sim = Simulator(seed=seed)
    built = build(
        sim,
        t1_dumbbell_spec(
            protocol,
            4e6,
            n_cross=2,
            assured_access_delay=0.05,
            cross_record=True,
        ),
    )
    sim.run(until=duration)
    return _network_fingerprint(sim, built, [("left", "right")])


def _network_fingerprint(sim, built, bottlenecks) -> Dict[str, object]:
    """Exact fingerprint of a built scenario run: counters + repr floats.

    With one bottleneck the stats appear under the historical
    ``"bottleneck"`` key; with several, under ``"bottlenecks"`` keyed
    ``"src->dst"``.
    """
    per_queue = {}
    for src, dst in bottlenecks:
        stats = built.queue(src, dst).stats
        per_queue[f"{src}->{dst}"] = {
            "enqueued": stats.enqueued,
            "dropped": stats.dropped,
            "dequeued": stats.dequeued,
        }
    fingerprint: Dict[str, object] = {
        "events_processed": sim.events_processed,
        "final_now": repr(sim.now),
        "delivered_bytes": {
            name: rec.delivered_bytes
            for name, rec in sorted(built.recorders.items())
        },
        "delivered_packets": {
            name: rec.delivered_packets
            for name, rec in sorted(built.recorders.items())
        },
    }
    if len(per_queue) == 1:
        fingerprint["bottleneck"] = next(iter(per_queue.values()))
    else:
        fingerprint["bottlenecks"] = per_queue
    return fingerprint


def topo_trace_probe(
    scenario: str, seed: int = 0, duration: float = 4.0
) -> Dict[str, object]:
    """Fingerprint one of the PR 3 spec-built scenarios, miniaturized.

    Small fixed parameterizations of the three PR 3 workloads
    (``parking_lot``, ``reverse_path_chain``, ``hetero_sla``) plus the
    PR 10 seeded ``random_star`` generator, each distilled to the exact
    counters of :func:`_network_fingerprint` — the goldens pin them so
    later PRs can refactor the specs and the compiler safely.
    """
    from repro.topo import (
        FlowSpec,
        ScenarioSpec,
        build,
        hetero_sla_dumbbell_spec,
        parking_lot_spec,
        random_access_star_spec,
        reverse_path_chain_spec,
    )

    sim = Simulator(seed=seed)
    if scenario == "random_star":
        # the PR 10 seeded generator: heterogeneous sampled access
        # links; pinning the run pins the sampled rates/delays too
        spec = ScenarioSpec(
            name="random_star_probe",
            topology=random_access_star_spec(6, seed=3),
            flows=tuple(
                FlowSpec(f"f{i}", f"h{i}", "srv", transport="tcp")
                for i in range(3)
            ),
        )
        bottlenecks = [("gw", "srv")]
    elif scenario == "parking_lot":
        spec = parking_lot_spec("qtpaf", 4e6, n_cross_a=2, n_cross_b=2,
                                cross_record=True)
        bottlenecks = [("r0", "r1"), ("r1", "r2")]
    elif scenario == "reverse_path_chain":
        spec = reverse_path_chain_spec("gtfrc", 4e6, n_hops=2, n_reverse=2)
        bottlenecks = [("h0", "h1"), ("h2", "h1")]
    elif scenario == "hetero_sla":
        spec = hetero_sla_dumbbell_spec("gtfrc", (1e6, 2e6, 4e6), n_cross=1)
        bottlenecks = [("left", "right")]
    else:
        raise ValueError(f"unknown topo probe scenario {scenario!r}")
    built = build(sim, spec)
    sim.run(until=duration)
    return _network_fingerprint(sim, built, bottlenecks)


def traffic_trace_probe(
    scenario: str, seed: int = 0, duration: float = 6.0
) -> Dict[str, object]:
    """Fingerprint one of the PR 6 generated-population scenarios.

    Miniaturized fixed parameterizations of the two population
    workloads (``flash_crowd``, ``mice_elephants``), distilled to the
    :func:`_network_fingerprint` counters plus the population shape:
    expanded flow count, completed-flow count and the exact sum of
    completion times.  Pins the whole generation pipeline — samplers,
    class mix, endpoint draws, ``apply_slas`` and the byte-budget flow
    lifecycle — to the seed engine.
    """
    from repro.harness.experiments.flash_crowd import flash_crowd_spec
    from repro.harness.experiments.mice_elephants import mice_elephants_spec
    from repro.topo import build

    sim = Simulator(seed=seed)
    if scenario == "flash_crowd":
        spec = flash_crowd_spec(
            "gtfrc", 4e6, n_hosts=10, n_flows=24, duration=duration, seed=seed
        )
    elif scenario == "mice_elephants":
        spec = mice_elephants_spec(
            "qtpaf",
            2e6,
            n_hosts=12,
            n_flows=30,
            arrival_rate_per_s=8.0,
            duration=duration,
            seed=seed,
        )
    else:
        raise ValueError(f"unknown traffic probe scenario {scenario!r}")
    built = build(sim, spec)
    sim.run(until=duration)
    fingerprint = _network_fingerprint(sim, built, [("gw", "srv")])
    done = built.completions()
    fingerprint["flows"] = len(built.spec.flows)
    fingerprint["completed"] = len(done)
    fingerprint["fct_sum"] = repr(sum(c.duration for c in done))
    return fingerprint


def fluid_trace_probe(
    scenario: str, seed: int = 0, duration: float = 6.0
) -> Dict[str, object]:
    """Fingerprint one of the PR 10 hybrid-fidelity scenarios.

    The two ``hybrid_*`` probes run the miniature traffic-probe
    parameterizations through :func:`repro.fluid.hybridize` — the
    foreground counters pin the packet side, the background counters
    (exact ``repr`` floats) pin the fluid epoch model, admission curve
    and elastic retry accounting.  ``mmpp_dumbbell`` pins the
    Markov-modulated kind and its one-draw-per-epoch RNG-stream
    discipline on the shared T1 dumbbell.
    """
    from dataclasses import replace

    from repro.fluid import BackgroundLoadSpec, hybridize
    from repro.harness.experiments.flash_crowd import (
        flash_crowd_population,
        flash_crowd_spec,
    )
    from repro.harness.experiments.mice_elephants import (
        mice_elephants_population,
        mice_elephants_spec,
    )
    from repro.metrics.fluid import background_summary
    from repro.topo import build, t1_dumbbell_spec

    sim = Simulator(seed=seed)
    if scenario == "hybrid_flash_crowd":
        spec = flash_crowd_spec(
            "gtfrc", 4e6, n_hosts=10, n_flows=24, duration=duration, seed=seed
        )
        population = flash_crowd_population(
            n_hosts=10, n_flows=24, duration=duration
        )
        spec = hybridize(
            spec, population, seed=seed, per_flow_rate_bps=500e3
        )
        bottlenecks = [("gw", "srv")]
    elif scenario == "hybrid_mice_elephants":
        spec = mice_elephants_spec(
            "qtpaf",
            2e6,
            n_hosts=12,
            n_flows=30,
            arrival_rate_per_s=8.0,
            duration=duration,
            seed=seed,
        )
        population = mice_elephants_population(
            "qtpaf",
            2e6,
            n_hosts=12,
            n_flows=30,
            arrival_rate_per_s=8.0,
            duration=duration,
        )
        spec = hybridize(
            spec,
            population,
            seed=seed,
            background_classes=("mice",),
            per_flow_rate_bps=500e3,
        )
        bottlenecks = [("gw", "srv")]
    elif scenario == "mmpp_dumbbell":
        spec = t1_dumbbell_spec("gtfrc", 4e6, n_cross=2)
        background = BackgroundLoadSpec(
            kind="mmpp",
            rate_low_bps=1e6,
            rate_high_bps=8e6,
            mean_low_s=0.5,
            mean_high_s=0.3,
            min_foreground_share=0.4,
        )
        links = tuple(
            replace(ls, background=background) if ls.queue.kind == "rio" else ls
            for ls in spec.topology.links
        )
        spec = replace(spec, topology=replace(spec.topology, links=links))
        bottlenecks = [("left", "right")]
    else:
        raise ValueError(f"unknown fluid probe scenario {scenario!r}")
    built = build(sim, spec)
    sim.run(until=duration)
    fingerprint = _network_fingerprint(sim, built, bottlenecks)
    fingerprint["flows"] = len(built.spec.flows)
    bg = background_summary(built.fluid_sources.values())
    fingerprint["background"] = {
        "sources": bg.sources,
        "epochs": bg.epochs,
        "offered_bytes": repr(bg.offered_bytes),
        "served_bytes": repr(bg.served_bytes),
        "dropped_bytes": repr(bg.dropped_bytes),
        "backlog_bytes": repr(bg.backlog_bytes),
        "pending_bytes": repr(bg.pending_bytes),
        "peak_backlog_bytes": repr(bg.peak_backlog_bytes),
    }
    return fingerprint


#: The (seed, protocol) grid fingerprinted by the golden tests.
TRACE_PROBE_GRID = (
    ("qtpaf", 0),
    ("qtpaf", 1),
    ("tfrc", 0),
    ("tcp", 0),
)

#: The PR 3 spec-built scenarios fingerprinted by the golden tests.
TOPO_PROBE_SCENARIOS = (
    "parking_lot",
    "reverse_path_chain",
    "hetero_sla",
    "random_star",
)

#: The PR 6 generated-population scenarios fingerprinted by the goldens.
TRAFFIC_PROBE_SCENARIOS = ("flash_crowd", "mice_elephants")

#: The PR 10 hybrid-fidelity scenarios fingerprinted by the goldens.
FLUID_PROBE_SCENARIOS = (
    "hybrid_flash_crowd",
    "hybrid_mice_elephants",
    "mmpp_dumbbell",
)


def capture_goldens() -> Dict[str, object]:
    """Run every trace probe and return the full golden fingerprint set."""
    return {
        "engine": {
            str(seed): engine_trace_probe(seed=seed) for seed in (0, 1, 2)
        },
        "network": {
            f"{protocol}:{seed}": network_trace_probe(seed=seed, protocol=protocol)
            for protocol, seed in TRACE_PROBE_GRID
        },
        "topo": {
            name: topo_trace_probe(name) for name in TOPO_PROBE_SCENARIOS
        },
        "traffic": {
            name: traffic_trace_probe(name) for name in TRAFFIC_PROBE_SCENARIOS
        },
        "fluid": {
            name: fluid_trace_probe(name) for name in FLUID_PROBE_SCENARIOS
        },
    }
