"""``python -m repro.harness`` — sweep-runner CLI entry point."""

import sys

from repro.harness.cli import main

sys.exit(main())
