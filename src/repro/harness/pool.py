"""A crash-tolerant, repairable worker pool for the sweep fabric.

``multiprocessing.Pool`` cannot give :func:`~repro.harness.runner.run_matrix`
the failure semantics a production sweep service needs: a worker that
dies hard (SIGKILL, ``os._exit``, OOM) strands its in-flight task
forever, a hung run cannot be reaped without terminating the whole
pool, and the parent never knows *which* worker holds *which* task.
:class:`ResilientPool` is a small, purpose-built replacement that does
exactly what the fabric needs and nothing more:

* one dedicated ``Process`` per worker with a private duplex ``Pipe`` —
  the parent always knows which task each worker is executing and when
  it was dispatched;
* **crash detection**: a worker death surfaces as pipe EOF; the task is
  reported as a ``crash`` outcome and the worker is respawned in place
  (*repair*), never discarding the rest of the warm pool;
* **per-task wall-clock deadlines**: a task past its deadline gets its
  worker killed and respawned, and reports a ``timeout`` outcome;
* **bounded retry with exponential backoff + deterministic jitter**:
  failed attempts (error/crash/timeout/invalid response) are re-queued
  until ``max_attempts`` is exhausted, then reported as terminal;
* **response validation**: every payload a worker returns is checked by
  a caller-supplied validator before it counts as success, so a
  corrupted record is a retryable failure, not a poisoned result;
* **clean abandonment**: if the caller aborts mid-section (strict-mode
  error, ``KeyboardInterrupt``), workers still holding tasks are killed
  and respawned so the pool's request/response protocol stays in sync —
  the pool itself remains warm and reusable.

The pool is deliberately *not* a general executor: tasks are submitted
in one batch per section (:meth:`run_tasks`), sections are serialized
per pool by an internal lock (concurrent same-key sweeps queue up), and
results are delivered through a callback in completion order — the
runner owns grid ordering.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import multiprocessing
import multiprocessing.connection
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["ResilientPool", "TaskOutcome"]

#: Failure kinds a :class:`TaskOutcome` may carry (``None`` = success).
FAILURE_KINDS = ("error", "crash", "timeout", "invalid")


@dataclass
class TaskOutcome:
    """The terminal outcome of one task (success or exhausted retries)."""

    task_id: int
    payload: Any = None  # the worker's return value (success only)
    failure: Optional[str] = None  # one of FAILURE_KINDS, or None
    error_type: str = ""
    message: str = ""
    traceback_text: str = ""
    exception: Optional[BaseException] = None  # original, when picklable
    attempts: int = 1
    elapsed: float = 0.0  # wall clock across every attempt

    @property
    def ok(self) -> bool:
        return self.failure is None


def _worker_main(conn, fn) -> None:
    """Worker process loop: ``(task_id, task)`` in, ``(task_id, tag, ...)`` out.

    Replies ``(task_id, "ok", result)`` or ``(task_id, "error",
    (type_name, message, traceback, exception_or_None))``.  The
    exception object rides along when picklable so strict callers can
    re-raise the original; the string triple always survives.
    """
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if msg is None:
            break
        task_id, task = msg
        try:
            result = fn(task)
            reply = (task_id, "ok", result)
        except BaseException as exc:  # noqa: BLE001 - reported, not hidden
            info = (type(exc).__name__, str(exc), traceback.format_exc(), exc)
            reply = (task_id, "error", info)
        try:
            conn.send(reply)
        except Exception:
            if reply[1] == "error":
                # the exception itself would not pickle; strip it
                try:
                    conn.send((task_id, "error", reply[2][:3] + (None,)))
                    continue
                except Exception:
                    break
            break
    try:
        conn.close()
    except Exception:
        pass


@dataclass
class _Worker:
    proc: Any
    conn: Any
    task_id: Optional[int] = None  # in-flight task, if any
    task: Any = None
    attempt: int = 0
    started: float = 0.0
    deadline: float = float("inf")

    @property
    def busy(self) -> bool:
        return self.task_id is not None


@dataclass
class _TaskState:
    task: Any
    attempts: int = 0
    elapsed: float = 0.0
    last_failure: Tuple[str, str, str, str, Optional[BaseException]] = (
        "", "", "", "", None,
    )  # (kind, error_type, message, traceback, exception)


def _jitter(task_id: int, attempt: int) -> float:
    """Deterministic backoff jitter factor in [0.5, 1.5)."""
    digest = hashlib.sha256(f"{task_id}:{attempt}".encode()).digest()
    return 0.5 + int.from_bytes(digest[:8], "big") / 2**64


class ResilientPool:
    """A fixed-size pool of repairable workers (see module docstring)."""

    def __init__(
        self,
        n_workers: int,
        fn: Callable[[Any], Any],
        on_repair: Optional[Callable[[], None]] = None,
    ):
        if n_workers < 1:
            raise ValueError(f"need at least one worker, got {n_workers}")
        self._ctx = multiprocessing.get_context()
        self._fn = fn
        self._on_repair = on_repair
        self._lock = threading.Lock()  # one section at a time per pool
        self._closed = False
        self.repairs = 0  # workers respawned over this pool's lifetime
        self._workers: List[_Worker] = [
            self._spawn() for _ in range(n_workers)
        ]

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    def worker_pids(self) -> List[int]:
        """PIDs of the current worker processes (repairs change these)."""
        return [w.proc.pid for w in self._workers]

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._fn),
            daemon=True,
            name="repro-sweep-worker",
        )
        proc.start()
        child_conn.close()
        return _Worker(proc=proc, conn=parent_conn)

    def _retire(self, worker: _Worker) -> None:
        """Kill one worker process and close its pipe (no respawn)."""
        try:
            worker.proc.kill()
        except Exception:
            pass
        worker.proc.join(timeout=5.0)
        try:
            worker.conn.close()
        except Exception:
            pass

    def _repair(self, worker: _Worker) -> _Worker:
        """Replace a dead/wedged worker with a fresh one, in place."""
        self._retire(worker)
        fresh = self._spawn()
        self._workers[self._workers.index(worker)] = fresh
        self.repairs += 1
        if self._on_repair is not None:
            self._on_repair()
        return fresh

    def _ensure_alive(self, worker: _Worker) -> _Worker:
        if not worker.proc.is_alive():
            return self._repair(worker)
        return worker

    def shutdown(self) -> None:
        """Terminate every worker (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for worker in self._workers:
                if not worker.busy and worker.proc.is_alive():
                    try:
                        worker.conn.send(None)  # polite: let it exit cleanly
                    except Exception:
                        pass
            for worker in self._workers:
                self._retire(worker)
            self._workers = []

    # backwards-compatible aliases mirroring multiprocessing.Pool
    terminate = shutdown

    def join(self) -> None:
        """No-op alias (shutdown already joins); kept for Pool symmetry."""

    # ------------------------------------------------------------------
    # the parallel section
    # ------------------------------------------------------------------
    def run_tasks(
        self,
        tasks: Sequence[Tuple[int, Any]],
        *,
        on_outcome: Callable[[TaskOutcome], None],
        make_task: Optional[Callable[[Any, int], Any]] = None,
        validate: Optional[Callable[[Any, Any], bool]] = None,
        run_timeout: Optional[float] = None,
        max_attempts: int = 1,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        observer: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        """Execute ``tasks`` (``(task_id, task)`` pairs) to completion.

        ``make_task(task, attempt)`` builds the per-attempt message sent
        to the worker (defaults to the task itself); ``validate(task,
        payload)`` accepts or rejects a worker response (a rejection is
        an ``invalid`` failure and retries like any other).  Each
        terminal result — success or exhausted retries — is delivered
        to ``on_outcome`` in completion order.  An exception from
        ``on_outcome`` (e.g. strict mode re-raising a run error)
        abandons the section: in-flight workers are killed and
        respawned so the pool stays protocol-clean and warm.

        ``observer``, when given, receives span-trace events for the
        section's scheduling decisions: ``{"event": "dispatched", "i",
        "attempt", "worker"}`` after each task is sent to a worker and
        ``{"event": "retry", "i", "attempt", "kind", "delay"}`` when a
        failed attempt is re-queued.  Terminal events (done/failed) are
        the caller's job — it already sees every ``TaskOutcome``.
        """
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        with self._lock:
            if self._closed:
                raise RuntimeError("pool is shut down")
            self._run_tasks_locked(
                tasks,
                on_outcome=on_outcome,
                make_task=make_task,
                validate=validate,
                run_timeout=run_timeout,
                max_attempts=max_attempts,
                backoff_base=backoff_base,
                backoff_cap=backoff_cap,
                observer=observer,
            )

    def _run_tasks_locked(
        self,
        tasks: Sequence[Tuple[int, Any]],
        *,
        on_outcome,
        make_task,
        validate,
        run_timeout,
        max_attempts,
        backoff_base,
        backoff_cap,
        observer=None,
    ) -> None:
        states: Dict[int, _TaskState] = {
            task_id: _TaskState(task=task) for task_id, task in tasks
        }
        # ready heap entries: (not_before, tiebreak, task_id)
        tiebreak = itertools.count()
        ready: List[Tuple[float, int, int]] = [
            (0.0, next(tiebreak), task_id) for task_id, _ in tasks
        ]
        heapq.heapify(ready)
        remaining = len(states)
        try:
            while remaining > 0:
                now = time.monotonic()
                self._dispatch_ready(
                    ready, states, now, make_task, run_timeout, observer
                )
                busy = [w for w in self._workers if w.busy]
                if not busy:
                    if not ready:  # pragma: no cover - defensive
                        raise RuntimeError("no busy workers and no ready tasks")
                    time.sleep(min(max(ready[0][0] - now, 0.0), 0.05))
                    continue
                wait_timeout = self._wait_timeout(ready, busy, now)
                ready_conns = multiprocessing.connection.wait(
                    [w.conn for w in busy], timeout=wait_timeout
                )
                now = time.monotonic()
                for conn in ready_conns:
                    worker = next(w for w in busy if w.conn is conn)
                    if not worker.busy:  # already handled this iteration
                        continue
                    remaining -= self._collect(
                        worker, states, ready, tiebreak, now,
                        on_outcome, validate, max_attempts,
                        backoff_base, backoff_cap, observer,
                    )
                # reap deadline overruns (hung runs)
                for worker in list(self._workers):
                    if worker.busy and now >= worker.deadline:
                        remaining -= self._fail_attempt(
                            worker, states, ready, tiebreak, now,
                            on_outcome, max_attempts,
                            backoff_base, backoff_cap, observer,
                            kind="timeout",
                            error_type="SweepTimeout",
                            message=(
                                f"run exceeded {run_timeout}s wall-clock "
                                "timeout; worker killed"
                            ),
                            repair=True,
                        )
        finally:
            # abandoned section (strict raise, KeyboardInterrupt): the
            # workers still holding tasks would otherwise reply into the
            # next section's protocol — kill and respawn just those.
            for worker in list(self._workers):
                if worker.busy:
                    self._repair(worker)

    def _dispatch_ready(self, ready, states, now, make_task, run_timeout,
                        observer=None):
        while ready and ready[0][0] <= now:
            idle = next((w for w in self._workers if not w.busy), None)
            if idle is None:
                return
            _, _, task_id = heapq.heappop(ready)
            state = states[task_id]
            state.attempts += 1
            worker = self._ensure_alive(idle)
            message = (
                make_task(state.task, state.attempts)
                if make_task is not None
                else state.task
            )
            try:
                worker.conn.send((task_id, message))
            except Exception:
                # broken pipe: repair once and retry on the fresh worker
                worker = self._repair(worker)
                worker.conn.send((task_id, message))
            worker.task_id = task_id
            worker.task = state.task
            worker.attempt = state.attempts
            worker.started = now
            worker.deadline = (
                now + run_timeout if run_timeout is not None else float("inf")
            )
            if observer is not None:
                observer({
                    "event": "dispatched",
                    "i": task_id,
                    "attempt": state.attempts,
                    "worker": worker.proc.pid,
                })

    @staticmethod
    def _wait_timeout(ready, busy, now) -> Optional[float]:
        bounds = [w.deadline for w in busy]
        if ready:
            bounds.append(ready[0][0])
        tightest = min(bounds)
        if tightest == float("inf"):
            return None
        return min(max(tightest - now, 0.0), 1.0)

    def _collect(
        self, worker, states, ready, tiebreak, now,
        on_outcome, validate, max_attempts, backoff_base, backoff_cap,
        observer=None,
    ) -> int:
        """Receive one worker reply; returns 1 if its task went terminal."""
        try:
            msg = worker.conn.recv()
        except Exception:
            # pipe EOF / unpicklable reply: the worker is gone or insane
            return self._fail_attempt(
                worker, states, ready, tiebreak, now,
                on_outcome, max_attempts, backoff_base, backoff_cap, observer,
                kind="crash",
                error_type="WorkerCrash",
                message="worker process died mid-run (killed, OOM or hard exit)",
                repair=True,
            )
        task_id = worker.task_id
        state = states[task_id]
        state.elapsed += now - worker.started
        reply_id, tag, payload = msg
        if reply_id != task_id:  # pragma: no cover - protocol desync guard
            return self._fail_attempt(
                worker, states, ready, tiebreak, now,
                on_outcome, max_attempts, backoff_base, backoff_cap, observer,
                kind="invalid",
                error_type="ProtocolError",
                message=f"worker answered task {reply_id}, expected {task_id}",
                repair=True,
            )
        if tag == "ok" and (
            validate is None or validate(state.task, payload)
        ):
            worker.task_id = None
            worker.task = None
            worker.deadline = float("inf")
            on_outcome(TaskOutcome(
                task_id=task_id,
                payload=payload,
                attempts=state.attempts,
                elapsed=state.elapsed,
            ))
            return 1
        if tag == "ok":  # failed validation: a corrupted response
            return self._fail_attempt(
                worker, states, ready, tiebreak, now,
                on_outcome, max_attempts, backoff_base, backoff_cap, observer,
                kind="invalid",
                error_type="CorruptRecordError",
                message=(
                    "worker returned a payload that failed response "
                    f"validation: {payload!r:.200}"
                ),
                repair=False,
            )
        error_type, message, tb_text, exc = payload
        return self._fail_attempt(
            worker, states, ready, tiebreak, now,
            on_outcome, max_attempts, backoff_base, backoff_cap, observer,
            kind="error",
            error_type=error_type,
            message=message,
            traceback_text=tb_text,
            exception=exc,
            repair=False,
        )

    def _fail_attempt(
        self, worker, states, ready, tiebreak, now,
        on_outcome, max_attempts, backoff_base, backoff_cap, observer=None,
        *, kind, error_type, message, traceback_text="", exception=None,
        repair,
    ) -> int:
        """Handle one failed attempt; returns 1 if the task went terminal."""
        task_id = worker.task_id
        state = states[task_id]
        if kind in ("crash", "timeout"):
            state.elapsed += now - worker.started
        state.last_failure = (kind, error_type, message, traceback_text,
                              exception)
        # clear the (possibly about-to-be-retired) worker object first so
        # a stale reference in this event-loop iteration reads idle
        worker.task_id = None
        worker.task = None
        worker.deadline = float("inf")
        if repair:
            self._repair(worker)
        if state.attempts < max_attempts:
            delay = min(
                backoff_base * (2 ** (state.attempts - 1)),
                backoff_cap,
            ) * _jitter(task_id, state.attempts)
            heapq.heappush(ready, (now + delay, next(tiebreak), task_id))
            if observer is not None:
                observer({
                    "event": "retry",
                    "i": task_id,
                    "attempt": state.attempts,
                    "kind": kind,
                    "delay": round(delay, 6),
                })
            return 0
        on_outcome(TaskOutcome(
            task_id=task_id,
            failure=kind,
            error_type=error_type,
            message=message,
            traceback_text=traceback_text,
            exception=exception,
            attempts=state.attempts,
            elapsed=state.elapsed,
        ))
        return 1
