"""Parallel sweep runner with an on-disk result cache and warm workers.

:func:`run_matrix` fans a parameter grid for one registered scenario
out across ``multiprocessing`` workers, collects structured
:class:`RunRecord` results *in deterministic grid order* (regardless of
worker completion order), and memoizes every completed run on disk
keyed by ``(scenario, params, seed, code_version)`` — re-running an
unchanged sweep is free.

The worker pool is **warm** (PR 4): one process-global pool, keyed by
``(worker count, code_version)``, persists across ``run_matrix`` calls,
so back-to-back sweeps (benchmark tables, CI loops) pay pool spawn and
interpreter/package import once per process instead of once per call.
:func:`warm_pool_stats` exposes created/reused counters (tests assert
reuse), :func:`shutdown_warm_pool` tears the pool down (also registered
``atexit``), and any exception escaping a parallel section discards the
pool so a broken worker set is never reused.  Records cross the IPC
boundary with compact positional pickling (``RunRecord.__reduce__``).

Determinism guarantees:

* the grid expands in parameter-insertion order (``itertools.product``
  over the given value sequences), so the same grid always yields the
  same run list;
* every run's seed is explicit in its parameter dict (either from the
  grid/base or from the crossed ``seeds`` argument), and each scenario
  derives all its randomness from that seed — the same grid run twice,
  serially or with any worker count, produces identical records;
* records come back ordered by grid position, never by completion.

The cache key includes a hash of the ``repro`` package sources
(``code_version``), so editing any simulator code transparently
invalidates stale results.
"""

from __future__ import annotations

import atexit
import contextlib
import hashlib
import itertools
import json
import multiprocessing
import os
import pickle
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.harness.registry import get_scenario

__all__ = [
    "CACHE_ENV",
    "RunRecord",
    "SqliteSweepCache",
    "SweepCache",
    "code_version",
    "expand_grid",
    "make_cache",
    "run_matrix",
    "shutdown_warm_pool",
    "warm_pool_stats",
]

#: Environment variable selecting an alternate cache backend for
#: :func:`run_matrix`.  ``REPRO_CACHE=sqlite:/path/to/results.db``
#: stores every memoized run in one sqlite file — a single shareable
#: artifact for CI reuse — instead of the default per-machine
#: pickle-per-run directory.  Explicitly disabled caching
#: (``cache_dir=None`` / ``--no-cache``) always wins over the variable.
CACHE_ENV = "REPRO_CACHE"


@dataclass
class RunRecord:
    """One completed scenario run.

    ``elapsed``/``cached``/``worker_pid`` are execution metadata and do
    not participate in equality: two records are equal when the same
    scenario with the same parameters produced the same result.
    """

    scenario: str
    params: Dict[str, Any]
    result: Any
    elapsed: float = field(compare=False, default=0.0)
    cached: bool = field(compare=False, default=False)
    worker_pid: int = field(compare=False, default=0)

    @property
    def seed(self) -> Optional[int]:
        """The run's seed, when one was part of its parameters."""
        return self.params.get("seed")

    def __reduce__(self):
        # positional tuple instead of the default class+__dict__ form:
        # no field-name strings per record, so results ship back from
        # workers (and into the caches) with a smaller, faster pickle
        return (
            _rebuild_run_record,
            (
                self.scenario,
                self.params,
                self.result,
                self.elapsed,
                self.cached,
                self.worker_pid,
            ),
        )


def _rebuild_run_record(
    scenario: str,
    params: Dict[str, Any],
    result: Any,
    elapsed: float,
    cached: bool,
    worker_pid: int,
) -> RunRecord:
    """Unpickle helper for :meth:`RunRecord.__reduce__` (top-level)."""
    return RunRecord(scenario, params, result, elapsed, cached, worker_pid)


# ----------------------------------------------------------------------
# grid expansion
# ----------------------------------------------------------------------
def expand_grid(grid: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Expand ``{param: values}`` into the full cross product.

    Points are ordered with the *first* grid key varying slowest — the
    natural reading order of nested for-loops over the grid — and the
    expansion is deterministic for a given grid.
    """
    if not grid:
        return [{}]
    keys = list(grid)
    value_lists = [list(grid[k]) for k in keys]
    for key, values in zip(keys, value_lists):
        if not values:
            raise ValueError(f"grid parameter {key!r} has no values")
    return [dict(zip(keys, combo)) for combo in itertools.product(*value_lists)]


# ----------------------------------------------------------------------
# code-version hashing and the on-disk cache
# ----------------------------------------------------------------------
_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Hex digest of every ``repro`` source file (cache-key component).

    Computed once per process; editing any file under ``src/repro``
    changes the digest and thereby invalidates all cached results.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def cache_key(scenario: str, params: Mapping[str, Any]) -> str:
    """The canonical memo key: sha256 of the JSON-canonicalized contract.

    Parameters are JSON-canonicalized (sorted keys) before hashing so
    dict ordering never matters; both cache backends share this key.
    """
    payload = json.dumps(
        {
            "scenario": scenario,
            "params": params,
            # the seed also lives in params; it is keyed explicitly
            # as well so the cache contract (scenario, params, seed,
            # code_version) holds even for scenarios without one
            "seed": params.get("seed"),
            "code_version": code_version(),
        },
        sort_keys=True,
        default=repr,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class SweepCache:
    """Pickle-per-run result store under one directory.

    Filenames are ``<scenario>-<sha256 of (scenario, params, seed,
    code_version)>.pkl`` (see :func:`cache_key`).
    """

    def __init__(self, directory: Path):
        self.directory = Path(directory)

    def key(self, scenario: str, params: Mapping[str, Any]) -> str:
        return cache_key(scenario, params)

    def _path(self, scenario: str, params: Mapping[str, Any]) -> Path:
        return self.directory / f"{scenario}-{self.key(scenario, params)}.pkl"

    def load(self, scenario: str, params: Mapping[str, Any]) -> Optional[RunRecord]:
        path = self._path(scenario, params)
        try:
            with path.open("rb") as fh:
                record: RunRecord = pickle.load(fh)
        except Exception:
            # any unreadable/corrupt entry is a miss to recompute —
            # garbage bytes can raise far more than UnpicklingError
            # (OverflowError from a bogus frame length, MemoryError, ...)
            return None
        record.cached = True
        return record

    def store(self, record: RunRecord) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(record.scenario, record.params)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("wb") as fh:
            pickle.dump(record, fh)
        tmp.replace(path)  # atomic even with concurrent sweeps


class SqliteSweepCache:
    """Single-file sqlite result store (``REPRO_CACHE=sqlite:path``).

    Same contract and :func:`cache_key` as :class:`SweepCache`, but all
    runs live in one ``results`` table keyed by the memo digest — the
    whole sweep history is one file that CI jobs can upload, download
    and share across hosts.  Writes go through short-lived connections
    with ``INSERT OR REPLACE``, so concurrent sweeps at worst redo a
    run, never corrupt the store.
    """

    _SCHEMA = (
        "CREATE TABLE IF NOT EXISTS results ("
        " key TEXT PRIMARY KEY,"
        " scenario TEXT NOT NULL,"
        " params_json TEXT NOT NULL,"
        " created REAL NOT NULL,"
        " payload BLOB NOT NULL)"
    )

    def __init__(self, path: Path):
        self.path = Path(path)
        self._schema_ready = False

    @contextlib.contextmanager
    def _connect(self):
        """A short-lived, always-closed connection with the schema ready.

        (``sqlite3``'s own context manager only commits/rolls back — it
        does not close, so handles would pile up over a large sweep.)
        """
        if not self._schema_ready and self.path.parent:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        with contextlib.closing(
            sqlite3.connect(self.path, timeout=30.0)
        ) as conn:
            if not self._schema_ready:
                conn.execute(self._SCHEMA)
                # WAL keeps concurrent sweep processes from tripping
                # over each other's locks (writers don't block readers,
                # and busy-waits resolve fast); sqlite silently falls
                # back where the filesystem cannot support it
                conn.execute("PRAGMA journal_mode=WAL").fetchone()
                self._schema_ready = True
            with conn:  # one transaction per cache operation
                yield conn

    def key(self, scenario: str, params: Mapping[str, Any]) -> str:
        return cache_key(scenario, params)

    def load(self, scenario: str, params: Mapping[str, Any]) -> Optional[RunRecord]:
        try:
            with self._connect() as conn:
                row = conn.execute(
                    "SELECT payload FROM results WHERE key = ?",
                    (cache_key(scenario, params),),
                ).fetchone()
            if row is None:
                return None
            record: RunRecord = pickle.loads(row[0])
        except Exception:
            # unreadable file/row (locked db, truncated blob, foreign
            # pickle) is a miss to recompute, same policy as SweepCache
            return None
        record.cached = True
        return record

    def store(self, record: RunRecord) -> None:
        with self._connect() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO results "
                "(key, scenario, params_json, created, payload) "
                "VALUES (?, ?, ?, ?, ?)",
                (
                    cache_key(record.scenario, record.params),
                    record.scenario,
                    json.dumps(record.params, sort_keys=True, default=repr),
                    time.time(),
                    pickle.dumps(record),
                ),
            )


def make_cache(cache_dir: Optional[Path]):
    """Resolve the cache backend for one :func:`run_matrix` call.

    ``cache_dir=None`` (caching explicitly disabled) always returns
    ``None``.  Otherwise the :data:`CACHE_ENV` variable may redirect
    the memo to an alternate backend — currently
    ``sqlite:<path>`` — and the default is the pickle-per-run
    :class:`SweepCache` under ``cache_dir``.
    """
    if cache_dir is None:
        return None
    spec = os.environ.get(CACHE_ENV, "").strip()
    if not spec:
        return SweepCache(cache_dir)
    backend, _, arg = spec.partition(":")
    if backend == "sqlite":
        if not arg:
            raise ValueError(
                f"{CACHE_ENV}=sqlite needs a path: sqlite:/path/to/results.db"
            )
        return SqliteSweepCache(Path(arg))
    raise ValueError(
        f"unknown {CACHE_ENV} backend {backend!r} (known: sqlite:<path>)"
    )


# ----------------------------------------------------------------------
# warm worker pool
# ----------------------------------------------------------------------
#: The process-global warm pool:
#: ``{"key": (n_workers, code_version, scenario names), "pool": Pool,
#: "leases": int}``.  ``leases`` counts callers currently consuming the
#: pool, so a concurrent ``run_matrix`` with a different key never
#: terminates a pool another thread is iterating — it gets a transient
#: per-call pool instead (the pre-warm-pool behaviour).
_WARM_POOL: Optional[Dict[str, Any]] = None
_WARM_LOCK = threading.Lock()
_WARM_POOL_STATS = {"created": 0, "reused": 0, "transient": 0}


def warm_pool_stats() -> Dict[str, int]:
    """Warm-pool lifecycle counters.

    ``created``: warm pools forked; ``reused``: calls served by an
    existing warm pool (the observable contract the warm-worker tests
    pin); ``transient``: per-call pools handed to concurrent callers
    whose key mismatched a warm pool that was in use.
    """
    return dict(_WARM_POOL_STATS)


def shutdown_warm_pool() -> None:
    """Terminate and forget the warm pool (idempotent; ``atexit`` hook)."""
    global _WARM_POOL
    with _WARM_LOCK:
        state, _WARM_POOL = _WARM_POOL, None
    if state is not None:
        state["pool"].terminate()
        state["pool"].join()


atexit.register(shutdown_warm_pool)


def _lease_pool(n_workers: int) -> Tuple[Dict[str, Any], bool]:
    """Lease a pool for one parallel section: ``(state, transient)``.

    The warm pool is keyed by ``(n_workers, code_version(), registered
    scenario names)``: a different worker count, an edited ``repro``
    source tree or a scenario registered since the pool was forked
    retires the old pool — workers carry the interpreter image of their
    fork moment, and a stale image must never serve runs for new code
    or resolve a scenario it has never seen.  A retirement only happens
    when no other caller holds a lease; otherwise this call gets a
    ``transient`` pool that :func:`_release_pool` tears down.

    The pool is deliberately sized to ``n_workers`` even when the
    current miss set is smaller: a task-count-dependent size would
    change the key between calls and defeat the warm reuse that is the
    point of keeping the pool alive.
    """
    from repro.harness.registry import list_scenarios

    global _WARM_POOL
    key = (
        n_workers,
        code_version(),
        tuple(spec.name for spec in list_scenarios()),
    )
    ctx = multiprocessing.get_context()
    retired = None
    with _WARM_LOCK:
        state = _WARM_POOL
        if state is not None and state["key"] == key:
            state["leases"] += 1
            _WARM_POOL_STATS["reused"] += 1
            return state, False
        if state is not None and state["leases"] > 0:
            # another thread is mid-sweep on a differently-keyed pool:
            # never terminate it from under them
            _WARM_POOL_STATS["transient"] += 1
            return {"key": key, "pool": ctx.Pool(processes=n_workers),
                    "leases": 1}, True
        _WARM_POOL = None
        retired = state
        fresh = {"key": key, "pool": ctx.Pool(processes=n_workers),
                 "leases": 1}
        _WARM_POOL = fresh
        _WARM_POOL_STATS["created"] += 1
    if retired is not None:
        retired["pool"].terminate()
        retired["pool"].join()
    return fresh, False


def _release_pool(state: Dict[str, Any], transient: bool, broken: bool) -> None:
    """Return a leased pool; tear it down if transient or ``broken``.

    A failed/interrupted section may leave queued tasks or dead workers
    behind, so a ``broken`` warm pool is retired instead of being
    handed to the next sweep.
    """
    global _WARM_POOL
    if transient:
        state["pool"].terminate()
        state["pool"].join()
        return
    with _WARM_LOCK:
        state["leases"] -= 1
        if broken and _WARM_POOL is state:
            _WARM_POOL = None
        # terminate once a pool no longer registered as THE warm pool
        # (broken here, or orphaned by a concurrent retirement) is
        # fully released
        terminate = state["leases"] <= 0 and _WARM_POOL is not state
    if terminate:
        state["pool"].terminate()
        state["pool"].join()


def _chunksize(n_tasks: int, n_workers: int) -> int:
    """Submission chunk for one parallel section.

    Small grids keep chunk 1 (best load balancing for long runs); large
    grids batch so a sweep of many short runs does not pay one IPC
    round-trip per task.  The divisor keeps at least ~4 chunks per
    worker, so imbalance stays bounded.
    """
    return max(1, n_tasks // (n_workers * 4))


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def _execute_run(task: Tuple[str, Dict[str, Any]]) -> RunRecord:
    """Worker entry point: run one scenario invocation.

    Top-level (picklable) and self-contained: it re-resolves the
    scenario by name so it works identically in-process, in forked
    workers and in spawned workers (where the registry starts empty).
    """
    scenario, params = task
    spec = get_scenario(scenario)
    start = time.perf_counter()
    result = spec.fn(**spec.bind(params))
    return RunRecord(
        scenario=scenario,
        params=params,
        result=result,
        elapsed=time.perf_counter() - start,
        worker_pid=os.getpid(),
    )


def run_matrix(
    scenario: str,
    grid: Optional[Mapping[str, Sequence[Any]]] = None,
    *,
    base: Optional[Mapping[str, Any]] = None,
    seeds: Optional[Iterable[int]] = None,
    workers: Optional[int] = 1,
    cache_dir: Optional[Path] = None,
    progress: Optional[Callable[[RunRecord], None]] = None,
) -> List[RunRecord]:
    """Run ``scenario`` over a parameter grid, optionally in parallel.

    Parameters
    ----------
    scenario:
        Registered scenario name (see :func:`repro.harness.registry.list_scenarios`).
    grid:
        ``{param: sequence of values}`` to cross; defaults to the
        scenario's registered default sweep grid.
    base:
        Fixed keyword overrides applied to every grid point (a grid
        value wins over a ``base`` value for the same key).
    seeds:
        Optional seeds crossed with every grid point (fastest-varying
        axis).  Each becomes the run's explicit ``seed`` parameter —
        the deterministic per-run seed the cache key and the scenario's
        random streams derive from.
    workers:
        Process count; ``None`` means ``os.cpu_count()``.  ``1`` (the
        default) runs in-process with no pool overhead.  Results are
        identical for every worker count.
    cache_dir:
        Directory for the on-disk memo; ``None`` disables caching.
        When caching is enabled, ``REPRO_CACHE=sqlite:<path>`` in the
        environment redirects the memo to a single shareable sqlite
        file instead (see :func:`make_cache`).
    progress:
        Optional callback invoked with each finished/loaded record.

    Returns
    -------
    list of RunRecord, in deterministic grid order.
    """
    spec = get_scenario(scenario)
    if grid is None:
        grid = spec.default_grid
    points = expand_grid(grid)
    if seeds is not None:
        if "seed" in grid:
            raise ValueError(
                "the grid already sweeps 'seed'; drop the seeds argument "
                "or the grid axis"
            )
        seed_list = list(seeds)  # tolerate one-shot iterables
        points = [
            {**point, "seed": seed} for point in points for seed in seed_list
        ]
    run_params: List[Dict[str, Any]] = []
    for point in points:
        params = {**(base or {}), **point}
        spec.bind(params)  # validate names early, before any work
        run_params.append(params)

    cache = make_cache(cache_dir)
    records: List[Optional[RunRecord]] = [None] * len(run_params)
    misses: List[int] = []
    for i, params in enumerate(run_params):
        cached = cache.load(scenario, params) if cache is not None else None
        if cached is not None:
            records[i] = cached
            if progress is not None:
                progress(cached)
        else:
            misses.append(i)

    if misses:
        tasks = [(scenario, run_params[i]) for i in misses]
        n_workers = workers if workers is not None else (os.cpu_count() or 1)
        if n_workers <= 1 or len(tasks) == 1:
            fresh = map(_execute_run, tasks)
            for i, record in zip(misses, fresh):
                _finish(record, records, i, cache, progress)
        else:
            state, transient = _lease_pool(n_workers)
            broken = True
            try:
                # imap preserves task order while letting workers finish
                # out of order; the chunk heuristic batches large grids
                chunk = _chunksize(len(tasks), n_workers)
                for i, record in zip(
                    misses, state["pool"].imap(_execute_run, tasks, chunk)
                ):
                    _finish(record, records, i, cache, progress)
                broken = False
            finally:
                _release_pool(state, transient, broken)
    assert all(r is not None for r in records)
    return records  # type: ignore[return-value]


def _finish(
    record: RunRecord,
    records: List[Optional[RunRecord]],
    index: int,
    cache: Optional[SweepCache],
    progress: Optional[Callable[[RunRecord], None]],
) -> None:
    records[index] = record
    if cache is not None:
        cache.store(record)
    if progress is not None:
        progress(record)
