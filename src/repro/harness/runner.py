"""Fault-tolerant parallel sweep runner with an on-disk result cache.

:func:`run_matrix` fans a parameter grid for one registered scenario
out across worker processes, collects structured :class:`RunRecord`
results *in deterministic grid order* (regardless of worker completion
order), and memoizes every completed run on disk keyed by
``(scenario, params, seed, code_version)`` — re-running an unchanged
sweep is free.

The worker pool is **warm** (PR 4) and **self-repairing** (PR 7): one
process-global :class:`~repro.harness.pool.ResilientPool`, keyed by
``(worker count, code_version, scenario names)``, persists across
``run_matrix`` calls; a worker that crashes, hangs past the per-run
deadline or returns garbage is killed and respawned *in place* instead
of discarding the pool, so back-to-back sweeps keep their warm workers
even through failures.  :func:`warm_pool_stats` exposes
created/reused/transient/repaired counters (tests assert both reuse
and repair), and :func:`shutdown_warm_pool` tears the pool down (also
registered ``atexit``).  Records cross the IPC boundary with compact
positional pickling (``RunRecord.__reduce__``).

Failure semantics (PR 7):

* every run may be retried (``max_retries``) with exponential backoff
  plus deterministic jitter; a per-run wall-clock ``run_timeout`` reaps
  hung runs (parallel sections only — a single in-process run cannot
  preempt itself, so a ``run_timeout`` forces pool execution even for
  ``workers=1``);
* with ``strict=True`` (the default, and the seed behaviour) the first
  terminal failure raises — the original exception where it survives
  pickling, :class:`SweepRunError` for crashes/timeouts;
* with ``strict=False`` a cell that exhausts its retries yields a
  :class:`RunRecord` whose result is a structured
  :class:`~repro.harness.result.RunFailure` (kind, error class,
  message, attempts, elapsed, traceback) — the sweep completes and
  the caller decides;
* failed records are **never cached**; successful records are
  byte-identical to a fault-free run (pinned by the chaos suite
  against the existing goldens);
* a corrupt cache entry (truncated pickle, undecodable sqlite blob) is
  quarantined — renamed ``*.corrupt`` / moved to a ``quarantine``
  table — and treated as a miss with one :class:`CorruptCacheWarning`
  per process, never an exception;
* deterministic chaos for all of the above comes from
  :mod:`repro.harness.faults` (``REPRO_FAULTS`` or the ``faults=``
  argument): plans travel with each task into the workers.

Sweep manifest and resume: when caching is enabled, every sweep
journals per-cell status (``ok``/``failed``) to a
``<scenario>.manifest.jsonl`` file next to the memo cache (header:
grid hash over the exact run list + code version), flushed
line-by-line so even a SIGKILLed sweep leaves a valid journal.
``resume=True`` re-opens a matching manifest instead of starting a
fresh one — a header mismatch (changed grid or code) is an error
rather than a silent restart — an interrupted or partially failed sweep re-runs only the
missing/failed cells (completed cells load from the memo) and produces
the same records as an uninterrupted run.  ``KeyboardInterrupt`` and
(in the main thread) ``SIGTERM`` shut the parallel section down
cleanly: wedged workers are repaired, the manifest keeps every
completed cell, and the warm pool survives for the resuming call.

Determinism guarantees (unchanged from the seed):

* the grid expands in parameter-insertion order (``itertools.product``
  over the given value sequences), so the same grid always yields the
  same run list;
* every run's seed is explicit in its parameter dict (either from the
  grid/base or from the crossed ``seeds`` argument), and each scenario
  derives all its randomness from that seed — the same grid run twice,
  serially or with any worker count, produces identical records;
* records come back ordered by grid position, never by completion.

The cache key includes a hash of the ``repro`` package sources
(``code_version``), so editing any simulator code transparently
invalidates stale results.
"""

from __future__ import annotations

import atexit
import contextlib
import hashlib
import itertools
import json
import os
import pickle
import signal
import sqlite3
import threading
import time
import traceback as traceback_mod
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.ioutil import atomic_write_bytes

from repro.harness import faults as faults_mod
from repro.harness.pool import ResilientPool, TaskOutcome
from repro.harness.registry import get_scenario
from repro.harness.result import RunFailure

__all__ = [
    "CACHE_ENV",
    "CorruptCacheWarning",
    "RunRecord",
    "SqliteSweepCache",
    "SweepCache",
    "SweepManifest",
    "SweepRunError",
    "code_version",
    "expand_grid",
    "make_cache",
    "quarantine_count",
    "run_matrix",
    "shutdown_warm_pool",
    "spans_path",
    "warm_pool_stats",
]

#: Environment variable selecting an alternate cache backend for
#: :func:`run_matrix`.  ``REPRO_CACHE=sqlite:/path/to/results.db``
#: stores every memoized run in one sqlite file — a single shareable
#: artifact for CI reuse — instead of the default per-machine
#: pickle-per-run directory.  Explicitly disabled caching
#: (``cache_dir=None`` / ``--no-cache``) always wins over the variable.
CACHE_ENV = "REPRO_CACHE"

#: Base delay (seconds) for the exponential retry backoff; attempt N
#: waits ``base * 2**(N-1) * jitter`` with deterministic jitter in
#: [0.5, 1.5), capped at :data:`BACKOFF_CAP`.
BACKOFF_BASE = 0.05
BACKOFF_CAP = 2.0


class CorruptCacheWarning(UserWarning):
    """A corrupt sweep-cache entry was quarantined and treated as a miss."""


class SweepRunError(RuntimeError):
    """A sweep cell failed terminally in ``strict`` mode.

    Raised when the underlying failure has no original exception to
    re-raise (worker crash, wall-clock timeout, corrupted response) or
    the original did not survive pickling.
    """

    def __init__(self, scenario: str, params: Mapping[str, Any],
                 failure_kind: str, error: str, message: str, attempts: int):
        self.scenario = scenario
        self.params = dict(params)
        self.failure_kind = failure_kind
        self.error = error
        self.attempts = attempts
        super().__init__(
            f"{scenario} {self.params!r} failed terminally "
            f"({failure_kind}: {error}) after {attempts} attempt(s): {message}"
        )


@dataclass
class RunRecord:
    """One completed scenario run.

    ``elapsed``/``cached``/``worker_pid``/``attempts``/``cpu``/
    ``profile`` are execution metadata and do not participate in
    equality: two records are equal when the same scenario with the
    same parameters produced the same result.  A record whose result is
    a :class:`~repro.harness.result.RunFailure` represents a terminally
    failed cell (``record.ok`` is False).

    ``cpu`` is the successful attempt's ``time.process_time`` delta;
    ``profile`` carries the compact cProfile stats captured when
    profiling was requested (``REPRO_PROFILE=1`` /
    ``run_matrix(profile=True)``) and is stripped before a record is
    stored in the memo cache.
    """

    scenario: str
    params: Dict[str, Any]
    result: Any
    elapsed: float = field(compare=False, default=0.0)
    cached: bool = field(compare=False, default=False)
    worker_pid: int = field(compare=False, default=0)
    attempts: int = field(compare=False, default=1)
    cpu: float = field(compare=False, default=0.0)
    profile: Optional[Dict[Any, Any]] = field(
        compare=False, default=None, repr=False
    )

    @property
    def seed(self) -> Optional[int]:
        """The run's seed, when one was part of its parameters."""
        return self.params.get("seed")

    @property
    def ok(self) -> bool:
        """False when this cell failed terminally (result is a RunFailure)."""
        return not isinstance(self.result, RunFailure)

    def __reduce__(self):
        # positional tuple instead of the default class+__dict__ form:
        # no field-name strings per record, so results ship back from
        # workers (and into the caches) with a smaller, faster pickle
        return (
            _rebuild_run_record,
            (
                self.scenario,
                self.params,
                self.result,
                self.elapsed,
                self.cached,
                self.worker_pid,
                self.attempts,
                self.cpu,
                self.profile,
            ),
        )


def _rebuild_run_record(
    scenario: str,
    params: Dict[str, Any],
    result: Any,
    elapsed: float,
    cached: bool,
    worker_pid: int,
    attempts: int = 1,
    cpu: float = 0.0,
    profile: Optional[Dict[Any, Any]] = None,
) -> RunRecord:
    """Unpickle helper for :meth:`RunRecord.__reduce__` (top-level).

    The trailing arguments default so pickles written by older code
    versions still load (the ``code_version`` cache key retires them
    anyway, but a partially upgraded fleet must not hard-fail).
    """
    return RunRecord(
        scenario, params, result, elapsed, cached, worker_pid, attempts,
        cpu, profile,
    )


# ----------------------------------------------------------------------
# grid expansion
# ----------------------------------------------------------------------
def expand_grid(grid: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Expand ``{param: values}`` into the full cross product.

    Points are ordered with the *first* grid key varying slowest — the
    natural reading order of nested for-loops over the grid — and the
    expansion is deterministic for a given grid.
    """
    if not grid:
        return [{}]
    keys = list(grid)
    value_lists = [list(grid[k]) for k in keys]
    for key, values in zip(keys, value_lists):
        if not values:
            raise ValueError(f"grid parameter {key!r} has no values")
    return [dict(zip(keys, combo)) for combo in itertools.product(*value_lists)]


# ----------------------------------------------------------------------
# code-version hashing and the on-disk cache
# ----------------------------------------------------------------------
_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Hex digest of every ``repro`` source file (cache-key component).

    Computed once per process; editing any file under ``src/repro``
    changes the digest and thereby invalidates all cached results.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def cache_key(scenario: str, params: Mapping[str, Any]) -> str:
    """The canonical memo key: sha256 of the JSON-canonicalized contract.

    Parameters are JSON-canonicalized (sorted keys) before hashing so
    dict ordering never matters; both cache backends share this key.
    """
    payload = json.dumps(
        {
            "scenario": scenario,
            "params": params,
            # the seed also lives in params; it is keyed explicitly
            # as well so the cache contract (scenario, params, seed,
            # code_version) holds even for scenarios without one
            "seed": params.get("seed"),
            "code_version": code_version(),
        },
        sort_keys=True,
        default=repr,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


#: One :class:`CorruptCacheWarning` per process, not one per entry: a
#: wiped cache directory would otherwise emit hundreds.
_QUARANTINE_WARNED = False

#: Total corrupt cache entries quarantined this process (every
#: quarantine counts, even though only the first one warns) — the
#: metrics plane harvests this at sweep end.
_QUARANTINE_COUNT = 0


def quarantine_count() -> int:
    """Corrupt cache entries quarantined by this process so far."""
    return _QUARANTINE_COUNT


def _warn_quarantine(what: str, exc: Exception) -> None:
    global _QUARANTINE_WARNED, _QUARANTINE_COUNT
    _QUARANTINE_COUNT += 1
    if _QUARANTINE_WARNED:
        return
    _QUARANTINE_WARNED = True
    warnings.warn(
        f"corrupt sweep-cache entry quarantined ({what}: "
        f"{type(exc).__name__}: {exc}); treated as a cache miss — further "
        "quarantines this process will be silent",
        CorruptCacheWarning,
        stacklevel=4,
    )


class SweepCache:
    """Pickle-per-run result store under one directory.

    Filenames are ``<scenario>-<sha256 of (scenario, params, seed,
    code_version)>.pkl`` (see :func:`cache_key`).  A corrupt entry is
    quarantined in place (renamed ``<name>.pkl.corrupt``) and treated
    as a miss, with one :class:`CorruptCacheWarning` per process.
    """

    def __init__(self, directory: Path):
        self.directory = Path(directory)

    def key(self, scenario: str, params: Mapping[str, Any]) -> str:
        return cache_key(scenario, params)

    def _path(self, scenario: str, params: Mapping[str, Any]) -> Path:
        return self.directory / f"{scenario}-{self.key(scenario, params)}.pkl"

    def _quarantine(self, path: Path, exc: Exception) -> None:
        try:
            path.replace(path.with_name(path.name + ".corrupt"))
        except OSError:
            return  # cannot move it aside; stay a silent miss
        _warn_quarantine(str(path), exc)

    def load(self, scenario: str, params: Mapping[str, Any]) -> Optional[RunRecord]:
        path = self._path(scenario, params)
        try:
            with path.open("rb") as fh:
                record = pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception as exc:
            # garbage bytes can raise far more than UnpicklingError
            # (OverflowError from a bogus frame length, MemoryError, ...);
            # move the entry aside so it never trips another sweep
            self._quarantine(path, exc)
            return None
        if not isinstance(record, RunRecord):
            self._quarantine(path, TypeError(
                f"cache entry holds {type(record).__name__}, not RunRecord"
            ))
            return None
        record.cached = True
        return record

    def store(self, record: RunRecord) -> None:
        path = self._path(record.scenario, record.params)
        # atomic even with concurrent sweeps; fsync=False because a
        # power-cut-lost entry is merely a cache miss, and the memo is
        # written once per cell on the sweep hot path
        atomic_write_bytes(path, pickle.dumps(record), fsync=False)


class SqliteSweepCache:
    """Single-file sqlite result store (``REPRO_CACHE=sqlite:path``).

    Same contract and :func:`cache_key` as :class:`SweepCache`, but all
    runs live in one ``results`` table keyed by the memo digest — the
    whole sweep history is one file that CI jobs can upload, download
    and share across hosts.  Writes go through short-lived connections
    with ``INSERT OR REPLACE``, so concurrent sweeps at worst redo a
    run, never corrupt the store.  A row whose payload fails to decode
    is quarantined (moved to a ``quarantine`` table) and treated as a
    miss, with one :class:`CorruptCacheWarning` per process.

    Under heavy multi-process contention sqlite can still surface
    ``OperationalError: database is locked`` past its own busy wait;
    every cache operation retries those with bounded exponential
    backoff (:data:`LOCK_RETRIES` attempts) before giving up.
    """

    _SCHEMA = (
        "CREATE TABLE IF NOT EXISTS results ("
        " key TEXT PRIMARY KEY,"
        " scenario TEXT NOT NULL,"
        " params_json TEXT NOT NULL,"
        " created REAL NOT NULL,"
        " payload BLOB NOT NULL)"
    )

    _QUARANTINE_SCHEMA = (
        "CREATE TABLE IF NOT EXISTS quarantine ("
        " key TEXT,"
        " scenario TEXT,"
        " params_json TEXT,"
        " created REAL,"
        " payload BLOB,"
        " quarantined REAL NOT NULL)"
    )

    #: Attempts per cache operation when sqlite reports the database
    #: locked/busy; backoff doubles from LOCK_BACKOFF up to LOCK_BACKOFF_MAX.
    LOCK_RETRIES = 6
    LOCK_BACKOFF = 0.025
    LOCK_BACKOFF_MAX = 0.4

    def __init__(self, path: Path, *, timeout: float = 30.0):
        self.path = Path(path)
        self.timeout = float(timeout)
        self._schema_ready = False

    @staticmethod
    def _is_locked(exc: BaseException) -> bool:
        text = str(exc).lower()
        return "locked" in text or "busy" in text

    def _with_lock_retry(self, operation: Callable[[], Any]) -> Any:
        """Run one cache operation, retrying transient lock errors.

        Only ``sqlite3.OperationalError`` whose message names a
        locked/busy database is retried; anything else (corrupt file,
        bad schema, missing permissions) propagates immediately.
        """
        delay = self.LOCK_BACKOFF
        for attempt in range(self.LOCK_RETRIES):
            try:
                return operation()
            except sqlite3.OperationalError as exc:
                if not self._is_locked(exc) or attempt == self.LOCK_RETRIES - 1:
                    raise
                time.sleep(delay)
                delay = min(delay * 2, self.LOCK_BACKOFF_MAX)

    @contextlib.contextmanager
    def _connect(self):
        """A short-lived, always-closed connection with the schema ready.

        (``sqlite3``'s own context manager only commits/rolls back — it
        does not close, so handles would pile up over a large sweep.)
        """
        if not self._schema_ready and self.path.parent:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        with contextlib.closing(
            sqlite3.connect(self.path, timeout=self.timeout)
        ) as conn:
            if not self._schema_ready:
                conn.execute(self._SCHEMA)
                # WAL keeps concurrent sweep processes from tripping
                # over each other's locks (writers don't block readers,
                # and busy-waits resolve fast); sqlite silently falls
                # back where the filesystem cannot support it
                conn.execute("PRAGMA journal_mode=WAL").fetchone()
                self._schema_ready = True
            with conn:  # one transaction per cache operation
                yield conn

    def key(self, scenario: str, params: Mapping[str, Any]) -> str:
        return cache_key(scenario, params)

    def _quarantine(self, key: str, exc: Exception) -> None:
        def _move_aside() -> None:
            with self._connect() as conn:
                conn.execute(self._QUARANTINE_SCHEMA)
                conn.execute(
                    "INSERT INTO quarantine "
                    "SELECT key, scenario, params_json, created, payload, ? "
                    "FROM results WHERE key = ?",
                    (time.time(), key),
                )
                conn.execute("DELETE FROM results WHERE key = ?", (key,))

        try:
            self._with_lock_retry(_move_aside)
        except Exception:
            return  # cannot move it aside; stay a silent miss
        _warn_quarantine(f"{self.path} key {key[:12]}…", exc)

    def load(self, scenario: str, params: Mapping[str, Any]) -> Optional[RunRecord]:
        key = cache_key(scenario, params)

        def _select():
            with self._connect() as conn:
                return conn.execute(
                    "SELECT payload FROM results WHERE key = ?", (key,)
                ).fetchone()

        try:
            row = self._with_lock_retry(_select)
        except Exception:
            # still unreadable after the lock retries (bad permissions,
            # persistent lock) is a plain miss to recompute — nothing
            # to quarantine
            return None
        if row is None:
            return None
        try:
            record = pickle.loads(row[0])
            if not isinstance(record, RunRecord):
                raise TypeError(
                    f"payload holds {type(record).__name__}, not RunRecord"
                )
        except Exception as exc:
            # truncated blob or foreign pickle: move the row aside so it
            # never trips another sweep, then recompute
            self._quarantine(key, exc)
            return None
        record.cached = True
        return record

    def store(self, record: RunRecord) -> None:
        row = (
            cache_key(record.scenario, record.params),
            record.scenario,
            json.dumps(record.params, sort_keys=True, default=repr),
            time.time(),
            pickle.dumps(record),
        )

        def _insert() -> None:
            with self._connect() as conn:
                conn.execute(
                    "INSERT OR REPLACE INTO results "
                    "(key, scenario, params_json, created, payload) "
                    "VALUES (?, ?, ?, ?, ?)",
                    row,
                )

        self._with_lock_retry(_insert)


def make_cache(cache_dir: Optional[Path]):
    """Resolve the cache backend for one :func:`run_matrix` call.

    ``cache_dir=None`` (caching explicitly disabled) always returns
    ``None``.  Otherwise the :data:`CACHE_ENV` variable may redirect
    the memo to an alternate backend — currently
    ``sqlite:<path>`` — and the default is the pickle-per-run
    :class:`SweepCache` under ``cache_dir``.
    """
    if cache_dir is None:
        return None
    spec = os.environ.get(CACHE_ENV, "").strip()
    if not spec:
        return SweepCache(cache_dir)
    backend, _, arg = spec.partition(":")
    if backend == "sqlite":
        if not arg:
            raise ValueError(
                f"{CACHE_ENV}=sqlite needs a path: sqlite:/path/to/results.db"
            )
        return SqliteSweepCache(Path(arg))
    raise ValueError(
        f"unknown {CACHE_ENV} backend {backend!r} (known: sqlite:<path>)"
    )


# ----------------------------------------------------------------------
# sweep manifest: the journaled per-cell status ledger
# ----------------------------------------------------------------------
class SweepManifest:
    """A journaled per-cell status ledger for one sweep invocation.

    One JSONL file next to the memo cache: a header line pinning the
    sweep identity (scenario, grid hash over the exact run-parameter
    list and ``code_version``, cell count), then one line per completed
    cell — ``{"i": index, "status": "ok"|"failed", ...}`` — appended
    and flushed as cells finish, so even a hard-killed sweep leaves a
    valid journal of everything that completed.

    ``resume=True`` re-opens an existing journal whose header matches
    and appends to it; a header mismatch (different grid, edited code)
    is an error rather than a silent restart.  Without ``resume`` the
    journal is started fresh.
    """

    VERSION = 1

    def __init__(self, path: Path, scenario: str, grid_hash: str,
                 n_cells: int, *, resume: bool = False):
        self.path = Path(path)
        self.scenario = scenario
        self.grid_hash = grid_hash
        self.n_cells = n_cells
        self.statuses: Dict[int, str] = {}
        self.resumed = False
        if resume and self.path.exists():
            self._load_existing()
            self._fh = self.path.open("a", encoding="utf-8")
            self.resumed = True
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("w", encoding="utf-8")
            self._append({
                "manifest": self.VERSION,
                "scenario": scenario,
                "grid_hash": grid_hash,
                "cells": n_cells,
            })

    @staticmethod
    def grid_hash_of(scenario: str, run_params: Sequence[Mapping[str, Any]]) -> str:
        """Identity of one sweep: scenario + exact run list + code version."""
        payload = json.dumps(
            [scenario, list(run_params), code_version()],
            sort_keys=True,
            default=repr,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def _load_existing(self) -> None:
        lines = self.path.read_text(encoding="utf-8").splitlines()
        header: Dict[str, Any] = {}
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn final line from a hard kill
            if "manifest" in entry and not header:
                header = entry
                continue
            if "i" in entry and "status" in entry:
                self.statuses[int(entry["i"])] = entry["status"]
        mismatch = (
            header.get("scenario") != self.scenario
            or header.get("grid_hash") != self.grid_hash
            or header.get("cells") != self.n_cells
        )
        if mismatch:
            raise ValueError(
                f"cannot resume: manifest {self.path} was written for "
                f"scenario {header.get('scenario')!r} grid "
                f"{header.get('grid_hash')!r} ({header.get('cells')} cells), "
                f"but this sweep is {self.scenario!r} grid "
                f"{self.grid_hash!r} ({self.n_cells} cells) — the grid or "
                "the code changed; drop --resume to start fresh"
            )

    def _append(self, entry: Mapping[str, Any]) -> None:
        self._fh.write(json.dumps(entry, sort_keys=True, default=repr) + "\n")
        self._fh.flush()
        # fsync per entry: a hard-killed (or power-cut) orchestrator
        # loses at most the in-flight line, which the resume loader
        # already tolerates as a torn final line
        try:
            os.fsync(self._fh.fileno())
        except OSError:
            pass

    def record(self, index: int, status: str, error: str = "") -> None:
        """Journal one completed cell (flushed immediately)."""
        entry: Dict[str, Any] = {"i": index, "status": status}
        if error:
            entry["error"] = error
        self._append(entry)
        self.statuses[index] = status

    def counts(self) -> Dict[str, int]:
        """``{"ok": N, "failed": M, "pending": K}`` summary."""
        ok = sum(1 for s in self.statuses.values() if s == "ok")
        failed = sum(1 for s in self.statuses.values() if s == "failed")
        return {
            "ok": ok,
            "failed": failed,
            "pending": self.n_cells - ok - failed,
        }

    def close(self) -> None:
        try:
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except Exception:
            pass
        try:
            self._fh.close()
        except Exception:
            pass


def _manifest_path(cache: Any, scenario: str) -> Path:
    """Where the manifest for one sweep lives (next to its memo cache).

    One journal per scenario per cache location — deliberately *not*
    keyed by grid hash, so ``resume=True`` can find the previous
    sweep's journal and *validate* its header against this sweep's
    grid hash (a silent fresh start on a changed grid would defeat the
    point of asking to resume).
    """
    name = f"{scenario}.manifest.jsonl"
    if isinstance(cache, SqliteSweepCache):
        return cache.path.parent / f"{cache.path.name}.{name}"
    return cache.directory / name


def spans_path(cache: Any, scenario: str) -> Path:
    """Where a traced sweep's span JSONL lives (next to its manifest)."""
    name = f"{scenario}.spans.jsonl"
    if isinstance(cache, SqliteSweepCache):
        return cache.path.parent / f"{cache.path.name}.{name}"
    return cache.directory / name


# ----------------------------------------------------------------------
# warm worker pool
# ----------------------------------------------------------------------
#: The process-global warm pool:
#: ``{"key": (n_workers, code_version, scenario names),
#: "pool": ResilientPool, "leases": int}``.  ``leases`` counts callers
#: currently consuming the pool, so a concurrent ``run_matrix`` with a
#: different key never terminates a pool another thread is using — it
#: gets a transient per-call pool instead (the pre-warm-pool behaviour).
_WARM_POOL: Optional[Dict[str, Any]] = None
_WARM_LOCK = threading.Lock()
_WARM_POOL_STATS = {"created": 0, "reused": 0, "transient": 0, "repaired": 0}


def warm_pool_stats() -> Dict[str, int]:
    """Warm-pool lifecycle counters.

    ``created``: warm pools forked; ``reused``: calls served by an
    existing warm pool (the observable contract the warm-worker tests
    pin); ``transient``: per-call pools handed to concurrent callers
    whose key mismatched a warm pool that was in use; ``repaired``:
    individual workers respawned in place after a crash, hang or
    abandoned section — repairs keep the pool warm where the seed
    runner discarded it.
    """
    return dict(_WARM_POOL_STATS)


def _count_repair() -> None:
    _WARM_POOL_STATS["repaired"] += 1


def shutdown_warm_pool() -> None:
    """Terminate and forget the warm pool (idempotent; ``atexit`` hook)."""
    global _WARM_POOL
    with _WARM_LOCK:
        state, _WARM_POOL = _WARM_POOL, None
    if state is not None:
        state["pool"].shutdown()


atexit.register(shutdown_warm_pool)


def _lease_pool(n_workers: int) -> Tuple[Dict[str, Any], bool]:
    """Lease a pool for one parallel section: ``(state, transient)``.

    The warm pool is keyed by ``(n_workers, code_version(), registered
    scenario names)``: a different worker count, an edited ``repro``
    source tree or a scenario registered since the pool was forked
    retires the old pool — workers carry the interpreter image of their
    fork moment, and a stale image must never serve runs for new code
    or resolve a scenario it has never seen.  A retirement only happens
    when no other caller holds a lease; otherwise this call gets a
    ``transient`` pool that :func:`_release_pool` tears down.

    The pool is deliberately sized to ``n_workers`` even when the
    current miss set is smaller: a task-count-dependent size would
    change the key between calls and defeat the warm reuse that is the
    point of keeping the pool alive.
    """
    from repro.harness.registry import list_scenarios

    global _WARM_POOL
    key = (
        n_workers,
        code_version(),
        tuple(spec.name for spec in list_scenarios()),
    )
    retired = None
    with _WARM_LOCK:
        state = _WARM_POOL
        if state is not None and state["key"] == key:
            state["leases"] += 1
            _WARM_POOL_STATS["reused"] += 1
            return state, False
        if state is not None and state["leases"] > 0:
            # another thread is mid-sweep on a differently-keyed pool:
            # never terminate it from under them
            _WARM_POOL_STATS["transient"] += 1
            return {
                "key": key,
                "pool": ResilientPool(n_workers, _execute_run,
                                      on_repair=_count_repair),
                "leases": 1,
            }, True
        _WARM_POOL = None
        retired = state
        fresh = {
            "key": key,
            "pool": ResilientPool(n_workers, _execute_run,
                                  on_repair=_count_repair),
            "leases": 1,
        }
        _WARM_POOL = fresh
        _WARM_POOL_STATS["created"] += 1
    if retired is not None:
        retired["pool"].shutdown()
    return fresh, False


def _release_pool(state: Dict[str, Any], transient: bool) -> None:
    """Return a leased pool.

    A transient pool dies with its section.  A warm pool survives even
    a failed or interrupted section — the
    :class:`~repro.harness.pool.ResilientPool` has already repaired any
    worker left wedged — unless a concurrent retirement orphaned it
    while this caller held the last lease.
    """
    global _WARM_POOL
    if transient:
        state["pool"].shutdown()
        return
    with _WARM_LOCK:
        state["leases"] -= 1
        # terminate once a pool no longer registered as THE warm pool
        # (orphaned by a concurrent retirement) is fully released
        terminate = state["leases"] <= 0 and _WARM_POOL is not state
    if terminate:
        state["pool"].shutdown()


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def _execute_run(task: Tuple[str, Dict[str, Any], int, Any, bool]) -> Any:
    """Worker entry point: run one scenario attempt.

    ``task`` is ``(scenario, params, attempt, fault_plan, profile)``.
    Top-level (picklable) and self-contained: it re-resolves the
    scenario by name so it works identically in-process, in forked
    workers and in spawned workers (where the registry starts empty).
    The fault plan and the profile flag ride with the task — never read
    from the worker's environment — so a warm pool forked under one
    configuration can serve a sweep under another.  Returns the
    :class:`RunRecord`, or the injected
    :class:`~repro.harness.faults.CorruptRecord` garbage that response
    validation must reject.
    """
    scenario, params, attempt, plan, profile = task
    if plan is not None:
        corrupt = plan.apply(scenario, params, attempt)
        if corrupt is not None:
            return corrupt
    spec = get_scenario(scenario)
    kwargs = spec.bind(params)
    start = time.perf_counter()
    cpu_start = time.process_time()
    stats = None
    if profile:
        from repro.obs.profiling import profile_call

        result, stats = profile_call(spec.fn, **kwargs)
    else:
        result = spec.fn(**kwargs)
    return RunRecord(
        scenario=scenario,
        params=params,
        result=result,
        elapsed=time.perf_counter() - start,
        worker_pid=os.getpid(),
        attempts=attempt,
        cpu=time.process_time() - cpu_start,
        profile=stats,
    )


def _valid_response(task: Tuple[str, Dict[str, Any]], payload: Any) -> bool:
    """Response validation: the payload must be the record we asked for."""
    return (
        isinstance(payload, RunRecord)
        and payload.scenario == task[0]
        and payload.params == task[1]
    )


def _failure_record(
    scenario: str,
    params: Dict[str, Any],
    outcome: TaskOutcome,
) -> RunRecord:
    """Build the terminal :class:`RunFailure` record for one dead cell."""
    return RunRecord(
        scenario=scenario,
        params=params,
        result=RunFailure(
            failure_kind=outcome.failure or "error",
            error=outcome.error_type,
            message=outcome.message,
            attempts=outcome.attempts,
            elapsed=outcome.elapsed,
            traceback_lines=tuple(outcome.traceback_text.splitlines()),
        ),
        elapsed=outcome.elapsed,
        attempts=outcome.attempts,
    )


def _raise_strict(
    scenario: str, params: Dict[str, Any], outcome: TaskOutcome
) -> None:
    """Strict mode: re-raise the original exception where possible."""
    if outcome.exception is not None:
        raise outcome.exception
    raise SweepRunError(
        scenario,
        params,
        outcome.failure or "error",
        outcome.error_type,
        outcome.message,
        outcome.attempts,
    )


@contextlib.contextmanager
def _sigterm_as_interrupt():
    """Convert SIGTERM into KeyboardInterrupt for one sweep (main thread).

    Gives a terminated sweep the same clean shutdown path as Ctrl-C:
    wedged workers are repaired, the manifest journal stays valid, and
    a follow-up ``--resume`` completes the remaining cells.  A no-op
    off the main thread (signal handlers cannot be installed there).
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    def _handler(signum, frame):  # noqa: ARG001 - signal signature
        raise KeyboardInterrupt("SIGTERM")
    try:
        previous = signal.signal(signal.SIGTERM, _handler)
    except (ValueError, OSError):  # exotic embedding; run unprotected
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def run_matrix(
    scenario: str,
    grid: Optional[Mapping[str, Sequence[Any]]] = None,
    *,
    base: Optional[Mapping[str, Any]] = None,
    seeds: Optional[Iterable[int]] = None,
    workers: Optional[int] = 1,
    cache_dir: Optional[Path] = None,
    progress: Optional[Callable[[RunRecord], None]] = None,
    max_retries: int = 0,
    run_timeout: Optional[float] = None,
    strict: bool = True,
    resume: bool = False,
    faults: Optional[faults_mod.FaultPlan] = None,
    observer: Optional[Callable[[Dict[str, Any]], None]] = None,
    profile: bool = False,
) -> List[RunRecord]:
    """Run ``scenario`` over a parameter grid, optionally in parallel.

    Parameters
    ----------
    scenario:
        Registered scenario name (see :func:`repro.harness.registry.list_scenarios`).
    grid:
        ``{param: sequence of values}`` to cross; defaults to the
        scenario's registered default sweep grid.
    base:
        Fixed keyword overrides applied to every grid point (a grid
        value wins over a ``base`` value for the same key).
    seeds:
        Optional seeds crossed with every grid point (fastest-varying
        axis).  Each becomes the run's explicit ``seed`` parameter —
        the deterministic per-run seed the cache key and the scenario's
        random streams derive from.
    workers:
        Process count; ``None`` means ``os.cpu_count()``.  ``1`` (the
        default) runs in-process with no pool overhead.  Results are
        identical for every worker count.
    cache_dir:
        Directory for the on-disk memo; ``None`` disables caching.
        When caching is enabled, ``REPRO_CACHE=sqlite:<path>`` in the
        environment redirects the memo to a single shareable sqlite
        file instead (see :func:`make_cache`).
    progress:
        Optional callback invoked with each finished/loaded record
        (including terminal-failure records when ``strict=False``).
    max_retries:
        Extra attempts per run after the first (so a cell executes at
        most ``max_retries + 1`` times) for crashed, timed-out, faulted
        or corrupted runs, with exponential backoff and deterministic
        jitter.  ``0`` (the default) never retries.
    run_timeout:
        Per-run wall-clock deadline in seconds.  A run past it has its
        worker killed (and repaired) and counts as a failed attempt.
        Enforced by the parallel section: setting it forces pool
        execution even for ``workers=1``, because an in-process run
        cannot preempt itself.
    strict:
        ``True`` (the default, the seed behaviour): the first terminal
        failure raises — the original exception where it survives
        pickling, :class:`SweepRunError` otherwise.  ``False``: a
        terminally failed cell becomes a :class:`RunRecord` carrying a
        :class:`~repro.harness.result.RunFailure` and the sweep
        completes.
    resume:
        Re-open this sweep's manifest journal instead of starting it
        fresh, re-running only missing/failed cells (completed cells
        load from the memo cache).  Requires caching; a manifest whose
        grid hash does not match is an error.
    faults:
        Explicit :class:`~repro.harness.faults.FaultPlan` for chaos
        testing; defaults to the ``REPRO_FAULTS`` environment hook.
        The plan travels with each task into the workers.
    observer:
        Optional span-trace callback (see :mod:`repro.obs.spans`)
        receiving flat event dicts for every cell transition — queued,
        dispatched, retry, done, failed.  ``None`` (the default) keeps
        the sweep structurally unobserved: no event construction
        happens anywhere.
    profile:
        Wrap every fresh cell's scenario function in cProfile and
        attach the compact stats to ``RunRecord.profile``.  Defaults to
        the ``REPRO_PROFILE`` environment hook; the resolved flag
        travels with each task, never through worker environments.

    Returns
    -------
    list of RunRecord, in deterministic grid order.
    """
    spec = get_scenario(scenario)
    if grid is None:
        grid = spec.default_grid
    points = expand_grid(grid)
    if seeds is not None:
        if "seed" in grid:
            raise ValueError(
                "the grid already sweeps 'seed'; drop the seeds argument "
                "or the grid axis"
            )
        seed_list = list(seeds)  # tolerate one-shot iterables
        points = [
            {**point, "seed": seed} for point in points for seed in seed_list
        ]
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    if run_timeout is not None and run_timeout <= 0:
        raise ValueError(f"run_timeout must be > 0 seconds, got {run_timeout}")
    run_params: List[Dict[str, Any]] = []
    for point in points:
        params = {**(base or {}), **point}
        spec.bind(params)  # validate names early, before any work
        run_params.append(params)

    if faults is None:
        faults = faults_mod.plan_from_env()
    if not profile:
        from repro.obs.profiling import profiling_requested

        profile = profiling_requested()

    cache = make_cache(cache_dir)
    if resume and cache is None:
        raise ValueError(
            "resume=True needs the memo cache (it is what completed cells "
            "are restored from); do not disable caching for a resumed sweep"
        )
    manifest: Optional[SweepManifest] = None
    if cache is not None:
        grid_hash = SweepManifest.grid_hash_of(scenario, run_params)
        manifest = SweepManifest(
            _manifest_path(cache, scenario),
            scenario,
            grid_hash,
            len(run_params),
            resume=resume,
        )

    records: List[Optional[RunRecord]] = [None] * len(run_params)
    try:
        with _sigterm_as_interrupt():
            _run_cells(
                scenario, run_params, records,
                cache=cache,
                manifest=manifest,
                progress=progress,
                workers=workers,
                max_retries=max_retries,
                run_timeout=run_timeout,
                strict=strict,
                faults=faults,
                observer=observer,
                profile=profile,
            )
    finally:
        if manifest is not None:
            manifest.close()
    assert all(r is not None for r in records)
    return records  # type: ignore[return-value]


def _run_cells(
    scenario: str,
    run_params: List[Dict[str, Any]],
    records: List[Optional[RunRecord]],
    *,
    cache,
    manifest: Optional[SweepManifest],
    progress,
    workers: Optional[int],
    max_retries: int,
    run_timeout: Optional[float],
    strict: bool,
    faults,
    observer=None,
    profile: bool = False,
) -> None:
    misses: List[int] = []
    for i, params in enumerate(run_params):
        cached = cache.load(scenario, params) if cache is not None else None
        if cached is not None:
            _finish(cached, records, i, cache=None, manifest=manifest,
                    progress=progress, observer=observer)
        else:
            misses.append(i)
    if observer is not None:
        for i in misses:
            observer({"event": "queued", "i": i})
    if not misses:
        return

    n_workers = workers if workers is not None else (os.cpu_count() or 1)
    # a wall-clock deadline needs a killable worker process, so it
    # forces pool execution even for a single worker / single task
    in_process = run_timeout is None and (n_workers <= 1 or len(misses) == 1)
    if in_process:
        _run_serial(
            scenario, run_params, records, misses,
            cache=cache, manifest=manifest, progress=progress,
            max_retries=max_retries, strict=strict, faults=faults,
            observer=observer, profile=profile,
        )
        return

    state, transient = _lease_pool(max(n_workers, 1))

    def on_outcome(outcome: TaskOutcome) -> None:
        index = outcome.task_id
        params = run_params[index]
        if outcome.ok:
            _finish(outcome.payload, records, index, cache=cache,
                    manifest=manifest, progress=progress, observer=observer)
            return
        if strict:
            if manifest is not None:
                manifest.record(index, "failed", error=outcome.error_type)
            _raise_strict(scenario, params, outcome)
        _finish(_failure_record(scenario, params, outcome), records, index,
                cache=cache, manifest=manifest, progress=progress,
                observer=observer)

    try:
        state["pool"].run_tasks(
            [(i, (scenario, run_params[i])) for i in misses],
            on_outcome=on_outcome,
            make_task=lambda task, attempt: (
                task[0], task[1], attempt, faults, profile
            ),
            validate=_valid_response,
            run_timeout=run_timeout,
            max_attempts=max_retries + 1,
            backoff_base=BACKOFF_BASE,
            backoff_cap=BACKOFF_CAP,
            observer=observer,
        )
    finally:
        _release_pool(state, transient)


def _run_serial(
    scenario: str,
    run_params: List[Dict[str, Any]],
    records: List[Optional[RunRecord]],
    misses: List[int],
    *,
    cache,
    manifest: Optional[SweepManifest],
    progress,
    max_retries: int,
    strict: bool,
    faults,
    observer=None,
    profile: bool = False,
) -> None:
    """The in-process path: same retry semantics, no pool, no deadlines.

    Note that an ``exit`` fault here terminates the *calling* process —
    crash/hang isolation is exactly what worker processes buy.
    """
    for index in misses:
        params = run_params[index]
        elapsed = 0.0
        attempt = 0
        while True:
            attempt += 1
            if observer is not None:
                observer({
                    "event": "dispatched",
                    "i": index,
                    "attempt": attempt,
                    "worker": os.getpid(),
                })
            started = time.perf_counter()
            failure: Optional[TaskOutcome] = None
            try:
                payload = _execute_run(
                    (scenario, params, attempt, faults, profile)
                )
                if _valid_response((scenario, params), payload):
                    _finish(payload, records, index, cache=cache,
                            manifest=manifest, progress=progress,
                            observer=observer)
                    break
                failure = TaskOutcome(
                    task_id=index,
                    failure="invalid",
                    error_type="CorruptRecordError",
                    message=(
                        "run returned a payload that failed response "
                        f"validation: {payload!r:.200}"
                    ),
                )
            except KeyboardInterrupt:
                raise
            except BaseException as exc:  # noqa: BLE001 - classified below
                failure = TaskOutcome(
                    task_id=index,
                    failure="error",
                    error_type=type(exc).__name__,
                    message=str(exc),
                    traceback_text=traceback_mod.format_exc(),
                    exception=exc,
                )
            elapsed += time.perf_counter() - started
            if attempt <= max_retries:
                delay = min(
                    BACKOFF_BASE * (2 ** (attempt - 1)), BACKOFF_CAP
                ) * 0.5
                if observer is not None:
                    observer({
                        "event": "retry",
                        "i": index,
                        "attempt": attempt,
                        "kind": failure.failure,
                        "delay": round(delay, 6),
                    })
                time.sleep(delay)
                continue
            failure.attempts = attempt
            failure.elapsed = elapsed
            if strict:
                if manifest is not None:
                    manifest.record(index, "failed",
                                    error=failure.error_type)
                _raise_strict(scenario, params, failure)
            _finish(_failure_record(scenario, params, failure), records,
                    index, cache=cache, manifest=manifest, progress=progress,
                    observer=observer)
            break


def _finish(
    record: RunRecord,
    records: List[Optional[RunRecord]],
    index: int,
    *,
    cache,
    manifest: Optional[SweepManifest],
    progress: Optional[Callable[[RunRecord], None]],
    observer: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> None:
    records[index] = record
    if cache is not None and record.ok:
        # terminal failures are never cached: a resumed or re-run sweep
        # must retry them, and the memo must only ever replay successes.
        # profile payloads are execution metadata of THIS run — strip
        # them so a cache hit never replays a stale profile
        stats = record.profile
        if stats is not None:
            record.profile = None
        cache.store(record)
        if stats is not None:
            record.profile = stats
    if manifest is not None:
        if record.ok:
            manifest.record(index, "ok")
        else:
            manifest.record(index, "failed", error=record.result.error)
    if observer is not None:
        if record.ok:
            observer({
                "event": "done",
                "i": index,
                "wall": round(record.elapsed, 6),
                "cpu": round(record.cpu, 6),
                "worker": record.worker_pid,
                "attempts": record.attempts,
                "cached": record.cached,
            })
        else:
            observer({
                "event": "failed",
                "i": index,
                "kind": record.result.failure_kind,
                "error": record.result.error,
                "attempts": record.attempts,
                "wall": round(record.elapsed, 6),
            })
    if progress is not None:
        progress(record)
