"""The :class:`ScenarioResult` contract for scenario return values.

PRs 1–4 let every scenario return whatever dataclass (or raw dict) it
liked; callers dug metrics out by attribute name and the CLI guessed
which fields were scalar.  ``ScenarioResult`` standardizes the
contract: a scenario's result **declares** its metric names, and
:meth:`ScenarioResult.metrics` returns them as an ordered
``{name: scalar}`` mapping that :class:`repro.api.ResultSet`, the CLI
table/CSV/JSON exports and the benchmark suites all consume.

The contract is deliberately thin:

* every scalar dataclass field (``str``/``int``/``float``/``bool``,
  optionally ``Optional``) is a metric, in declaration order;
* non-scalar fields (sample lists, time series) are *payload* —
  reachable through :meth:`payload` and normal attribute access but
  excluded from tables and exports;
* computed metrics (``@property`` values such as the AF ``ratio``) are
  opted in per class via ``__computed_metrics__`` and appended after
  the field metrics.

Scenarios registered with a non-``ScenarioResult`` return type keep
working through :func:`coerce_result` — raw dicts are adapted into
:class:`MappingResult` with a one-time :class:`DeprecationWarning` per
scenario (the shim the migration documentation promises).
"""

from __future__ import annotations

import dataclasses
import types
import typing
import warnings
from typing import Any, ClassVar, Dict, Mapping, Optional, Tuple

__all__ = [
    "MappingResult",
    "RunFailure",
    "ScenarioResult",
    "coerce_result",
    "is_scalar",
]

#: The JSON-representable scalar types a metric value may take.
SCALARS = (str, int, float, bool)


def is_scalar(value: Any) -> bool:
    """True when ``value`` is a metric-compatible scalar (or ``None``)."""
    return value is None or isinstance(value, SCALARS)


def _is_scalar_annotation(annotation: Any) -> bool:
    """True when a resolved type annotation declares a scalar metric.

    ``Optional[float]`` / ``float | None`` count (the value may be
    ``None``); containers (``List[float]``, tuples, dicts) do not —
    those fields are payload.
    """
    if annotation in SCALARS:
        return True
    if typing.get_origin(annotation) in (typing.Union, types.UnionType):
        args = [a for a in typing.get_args(annotation) if a is not type(None)]
        return len(args) == 1 and args[0] in SCALARS
    return False


class ScenarioResult:
    """Base class for scenario result records (subclass + ``@dataclass``).

    Subclasses are ordinary dataclasses; the base contributes the
    metric contract only (no fields, no behavior change to equality,
    repr or pickling).  Example::

        @dataclass
        class AfResult(ScenarioResult):
            __computed_metrics__ = ("ratio",)
            protocol: str
            achieved_bps: float
            @property
            def ratio(self) -> float: ...

        AfResult(...).metrics()
        # {"protocol": "qtpaf", "achieved_bps": ..., "ratio": ...}
    """

    #: Property names to append to the metric set, in this order.
    __computed_metrics__: ClassVar[Tuple[str, ...]] = ()

    @classmethod
    def metric_names(cls) -> Tuple[str, ...]:
        """Declared metric names: scalar fields, then computed metrics."""
        cached = cls.__dict__.get("_metric_names_cache")
        if cached is None:
            if not dataclasses.is_dataclass(cls):
                raise TypeError(
                    f"{cls.__name__} must be a dataclass to declare metrics"
                )
            hints = typing.get_type_hints(cls)
            names = [
                f.name
                for f in dataclasses.fields(cls)
                if _is_scalar_annotation(hints.get(f.name, str))
            ]
            for name in cls.__computed_metrics__:
                attr = getattr(cls, name, None)
                if not isinstance(attr, property):
                    raise TypeError(
                        f"{cls.__name__}.__computed_metrics__ names "
                        f"{name!r}, which is not a property"
                    )
                names.append(name)
            cached = tuple(names)
            cls._metric_names_cache = cached
        return cached

    def metrics(self) -> Dict[str, Any]:
        """The declared metrics as an ordered ``{name: scalar}`` dict."""
        return {name: getattr(self, name) for name in self.metric_names()}

    def payload(self) -> Dict[str, Any]:
        """The non-metric dataclass fields (series, samples, ...)."""
        metric_fields = set(self.metric_names())
        return {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
            if f.name not in metric_fields
        }


@dataclasses.dataclass
class MappingResult(ScenarioResult):
    """Adapter wrapping a legacy raw-``dict`` (or aggregate) result.

    Scalar items become the metrics, in mapping insertion order;
    non-scalar items are payload.  Item access (``result["key"]``) is
    the authoritative way to read a value; attribute access is a
    best-effort convenience that cannot reach keys shadowed by the
    wrapper's own attributes (``data``, ``metrics``, ``payload``).
    """

    data: Dict[str, Any]

    def metrics(self) -> Dict[str, Any]:
        return {k: v for k, v in self.data.items() if is_scalar(v)}

    def payload(self) -> Dict[str, Any]:
        return {k: v for k, v in self.data.items() if not is_scalar(v)}

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    def __contains__(self, key: str) -> bool:
        return key in self.data

    def __getattr__(self, name: str) -> Any:
        # attribute-style metric access, matching dataclass results
        try:
            return self.__dict__["data"][name]
        except KeyError:
            raise AttributeError(name) from None


@dataclasses.dataclass
class RunFailure(ScenarioResult):
    """The terminal result of a sweep cell that exhausted its retries.

    Stored in :attr:`~repro.harness.runner.RunRecord.result` when
    ``run_matrix(strict=False)`` gives up on a cell: the record keeps
    its place in the grid (parameters intact, deterministic order) but
    carries a structured failure instead of a scenario result.  The
    scalar fields are the failure's queryable metrics; the traceback is
    payload (``traceback_lines`` / :attr:`traceback`), so it never
    floods a table.

    ``failure_kind`` is the fabric's classification — ``error`` (the
    scenario raised), ``crash`` (the worker died hard), ``timeout``
    (the run exceeded its wall-clock deadline) or ``invalid`` (the
    worker's response failed validation, e.g. a corrupted record) —
    while ``error`` names the underlying exception class when there is
    one.
    """

    failure_kind: str  # error | crash | timeout | invalid
    error: str  # exception class name (or fabric classification)
    message: str
    attempts: int
    elapsed: float  # wall clock across every attempt, seconds
    traceback_lines: Tuple[str, ...] = ()  # payload, not a metric

    @property
    def traceback(self) -> str:
        """The final attempt's formatted traceback ('' when unavailable)."""
        return "\n".join(self.traceback_lines)


#: Scenario names already warned about returning legacy results.
_WARNED_LEGACY: set = set()


def coerce_result(result: Any, scenario: str = "") -> ScenarioResult:
    """Adapt any scenario return value to the :class:`ScenarioResult` contract.

    Contract-abiding results pass through untouched.  Raw mappings and
    legacy (non-contract) dataclasses are wrapped in a
    :class:`MappingResult`, with one :class:`DeprecationWarning` per
    scenario name; bare scalars become a single ``result`` metric.
    """
    if isinstance(result, ScenarioResult):
        return result
    if scenario not in _WARNED_LEGACY:
        _WARNED_LEGACY.add(scenario)
        warnings.warn(
            f"scenario {scenario or '<anonymous>'!r} returned a "
            f"{type(result).__name__} instead of a ScenarioResult; "
            "raw results are deprecated — declare a ScenarioResult "
            "subclass as the return type",
            DeprecationWarning,
            stacklevel=3,
        )
    if isinstance(result, Mapping):
        return MappingResult(dict(result))
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        return MappingResult(
            {
                f.name: getattr(result, f.name)
                for f in dataclasses.fields(result)
            }
        )
    return MappingResult({"result": result})


def result_type_of(fn: Any) -> Optional[type]:
    """The declared :class:`ScenarioResult` return type of ``fn``, if any."""
    try:
        hints = typing.get_type_hints(fn)
    except Exception:
        # unresolvable annotations; for registered scenarios this is
        # unreachable (the registry's schema derivation resolves the
        # same hints first and fails registration loudly)
        return None
    annotation = hints.get("return")
    if isinstance(annotation, type) and issubclass(annotation, ScenarioResult):
        return annotation
    return None
