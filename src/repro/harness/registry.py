"""Scenario registry: named, schema'd, sweepable experiment builders.

Every canonical experiment function (one per DESIGN.md experiment) is
registered here with

* a stable **name** (``af_assurance``, ``smoothness``, ...) used by the
  sweep runner, the CLI and the on-disk result cache;
* a **parameter schema** derived from the function signature (names,
  types and defaults), used to validate sweep grids and to coerce
  command-line strings;
* a **default sweep grid** — the paper's parameter ranges — so
  ``python -m repro.harness run <name>`` with no arguments regenerates
  a meaningful table.

Registered functions must accept only JSON-representable parameters
(str/int/float/bool/None): that is what makes runs hashable for the
cache and expressible on a command line.  Scenarios whose natural API
takes richer objects (profiles, enum modes) register a thin adapter
that maps names to objects (see ``experiments/receiver_load.py``).
"""

from __future__ import annotations

import inspect
import types
import typing
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.harness.result import SCALARS, result_type_of

#: One shared notion of "JSON-representable scalar" with the result
#: contract (repro.harness.result.SCALARS), plus None for Optionals.
_JSON_SCALARS = SCALARS + (type(None),)


@dataclass(frozen=True)
class ScenarioSpec:
    """A registered scenario: callable plus its sweepable parameter space."""

    name: str
    fn: Callable[..., Any]
    description: str
    params: Mapping[str, type]
    defaults: Mapping[str, Any]
    default_grid: Mapping[str, Tuple[Any, ...]] = field(default_factory=dict)
    optional: frozenset = frozenset()  # params typed Optional[...]
    #: Declared :class:`~repro.harness.result.ScenarioResult` subclass
    #: returned by ``fn`` (``None`` for legacy raw-dict scenarios, which
    #: are adapted — with a deprecation warning — at query time).
    result_type: Optional[type] = None

    def bind(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """Validate ``params`` against the schema and return call kwargs."""
        unknown = sorted(set(params) - set(self.params))
        if unknown:
            raise ValueError(
                f"scenario {self.name!r} has no parameter(s) {unknown}; "
                f"known: {sorted(self.params)}"
            )
        missing = sorted(set(self.params) - set(self.defaults) - set(params))
        if missing:
            raise ValueError(
                f"scenario {self.name!r} is missing required parameter(s) {missing}"
            )
        return dict(params)

    def coerce(self, name: str, text: str) -> Any:
        """Coerce a command-line string to the parameter's declared type."""
        if name not in self.params:
            raise ValueError(
                f"scenario {self.name!r} has no parameter {name!r}; "
                f"known: {sorted(self.params)}"
            )
        # "none" only means None for Optional parameters; for a plain
        # str parameter it is a legitimate value (e.g. reliability
        # mode "none"), and for int/float it must be a parse error
        if name in self.optional and text.lower() in ("none", "null"):
            return None
        return _coerce(text, self.params[name])


_REGISTRY: Dict[str, ScenarioSpec] = {}


def register(
    name: str,
    *,
    grid: Optional[Mapping[str, Sequence[Any]]] = None,
    description: str = "",
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register the decorated function as the scenario ``name``.

    ``grid`` is the default sweep (parameter name → sequence of values)
    used when a caller does not supply one.  The parameter schema is
    derived from the function's signature and type hints.
    """

    def decorator(fn: Callable[..., Any]) -> Callable[..., Any]:
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} already registered")
        params, defaults, optional = _schema_of(fn)
        frozen_grid = {k: tuple(v) for k, v in (grid or {}).items()}
        for key in frozen_grid:
            if key not in params:
                raise ValueError(
                    f"default grid for {name!r} names unknown parameter {key!r}"
                )
        result_type = result_type_of(fn)
        if result_type is None:
            # the contract every in-tree scenario follows; out-of-tree
            # raw-dict scenarios keep working through the coerce_result
            # shim but are nudged toward the typed contract
            warnings.warn(
                f"scenario {name!r} does not declare a ScenarioResult "
                "return type; raw results are deprecated (they are "
                "adapted via repro.harness.result.coerce_result)",
                DeprecationWarning,
                stacklevel=2,
            )
        _REGISTRY[name] = ScenarioSpec(
            name=name,
            fn=fn,
            description=description or _first_line(fn.__doc__),
            params=params,
            defaults=defaults,
            default_grid=frozen_grid,
            optional=optional,
            result_type=result_type,
        )
        return fn

    return decorator


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario, loading the experiment modules."""
    load_experiments()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def list_scenarios() -> List[ScenarioSpec]:
    """All registered scenarios, sorted by name."""
    load_experiments()
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def load_experiments() -> None:
    """Import the experiment modules so their ``@register`` calls run.

    Idempotent; safe to call from worker processes (the registry in a
    spawned child starts empty and is populated on first use).
    """
    import repro.harness.experiments  # noqa: F401  (import side effect)


# ----------------------------------------------------------------------
# schema derivation and CLI coercion
# ----------------------------------------------------------------------
def _schema_of(
    fn: Callable[..., Any]
) -> Tuple[Dict[str, type], Dict[str, Any], frozenset]:
    hints = typing.get_type_hints(fn)
    params: Dict[str, type] = {}
    defaults: Dict[str, Any] = {}
    optional = set()
    for pname, p in inspect.signature(fn).parameters.items():
        if p.kind in (p.VAR_POSITIONAL, p.VAR_KEYWORD):
            raise ValueError(
                f"scenario function {fn.__name__} may not use *args/**kwargs"
            )
        annotation = hints.get(pname, str)
        params[pname] = _scalar_type(annotation)
        if _is_optional(annotation):
            optional.add(pname)
        if p.default is not inspect.Parameter.empty:
            defaults[pname] = p.default
    return params, defaults, frozenset(optional)


def _is_union(annotation: Any) -> bool:
    # typing.Union[...] and PEP 604 `X | Y` have different origins
    return typing.get_origin(annotation) in (typing.Union, types.UnionType)


def _is_optional(annotation: Any) -> bool:
    return _is_union(annotation) and type(None) in typing.get_args(annotation)


def _scalar_type(annotation: Any) -> type:
    """Reduce an annotation to the scalar type used for CLI coercion."""
    if _is_union(annotation):  # Optional[X] / X | None → X
        args = [a for a in typing.get_args(annotation) if a is not type(None)]
        if len(args) == 1:
            return _scalar_type(args[0])
    if annotation in _JSON_SCALARS:
        return annotation
    return str


def _coerce(text: str, target: type) -> Any:
    if target is bool:
        if text.lower() in ("1", "true", "yes", "on"):
            return True
        if text.lower() in ("0", "false", "no", "off"):
            return False
        raise ValueError(f"cannot parse {text!r} as bool")
    if target is int:
        value = float(text)  # accept scientific notation like 1e3
        if not value.is_integer():
            raise ValueError(f"cannot parse {text!r} as int")
        return int(value)
    if target is float:
        return float(text)
    return text


def _first_line(doc: Optional[str]) -> str:
    return (doc or "").strip().splitlines()[0] if doc else ""
