"""Deterministic, seedable fault injection for the sweep fabric.

This module is the chaos plane behind the fault-tolerant
:func:`~repro.harness.runner.run_matrix` (PR 7): it lets a test, a CI
smoke step or a curious user make chosen sweep cells misbehave in
controlled, *reproducible* ways, so every resilience guarantee the
runner makes — per-run timeouts, bounded retry, crash repair, terminal
:class:`~repro.harness.result.RunFailure` records — is provable with
ordinary assertions instead of hope.

A :class:`FaultPlan` is a seed plus an ordered tuple of
:class:`FaultSpec` rules.  Each rule selects cells (by scenario name
and/or a parameter subset), an attempt window (``times`` — fire only on
the first N attempts, so retries eventually succeed; ``None`` fires
forever, producing terminal failures) and a ``rate`` (probability per
matching ``(cell, attempt)``).  Four fault kinds cover the failure
modes a production experiment fabric must survive:

``raise``
    the worker raises :class:`InjectedFault` — an ordinary in-run
    exception (a scenario bug);
``hang``
    the worker sleeps ``seconds`` before running — a wedged run, which
    a per-run timeout must reap;
``exit``
    the worker dies hard via ``os._exit`` (indistinguishable from
    SIGKILL/OOM from the parent's side) — a crashed worker the pool
    must detect and respawn;
``corrupt``
    the worker returns :class:`CorruptRecord` garbage instead of its
    :class:`~repro.harness.runner.RunRecord` — a poisoned IPC payload
    the runner's response validation must reject.

Determinism: whether a rule fires for ``(scenario, params, attempt)``
is a pure function of the plan seed, the rule index and the
JSON-canonicalized cell — the same plan over the same grid injects the
same faults in the same places, in any process, with any worker count
and in any completion order.  That is what lets the chaos suite assert
byte-identical surviving records.

Plans travel *with the task* into worker processes (they are small
frozen dataclasses), never via worker-side environment reads — a warm
pool forked before ``REPRO_FAULTS`` changed must not serve stale chaos.
The environment hook is read once per ``run_matrix`` call in the
parent::

    REPRO_FAULTS='{"seed": 1, "faults": [
        {"kind": "raise", "rate": 0.2},
        {"kind": "hang", "rate": 0.1, "seconds": 30}
    ]}' python -m repro.harness run ... --max-retries 3 --run-timeout 5
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = [
    "CAMPAIGN_CHECKPOINT_SCOPE",
    "CorruptRecord",
    "FAULTS_ENV",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "parse_fault_plan",
    "plan_from_env",
]

#: Environment variable carrying a JSON :class:`FaultPlan` for
#: :func:`~repro.harness.runner.run_matrix` (read in the parent at call
#: time; an explicit ``faults=`` argument wins over the variable).
FAULTS_ENV = "REPRO_FAULTS"

#: The fault kinds :meth:`FaultSpec.__post_init__` accepts.
KINDS = ("raise", "hang", "exit", "corrupt")

#: Pseudo-scenario name under which the campaign runner consults the
#: fault plan before every journal checkpoint.  A chaos plan that sets
#: ``"scenario": "campaign.checkpoint"`` targets the *orchestrator*
#: (params: ``{"name": <job or "report">, "seq": <checkpoint number>}``)
#: instead of sweep cells: ``exit`` hard-kills the campaign process at
#: that checkpoint, ``raise`` surfaces :class:`InjectedFault` from
#: ``Campaign.run``, ``hang`` stalls it, and ``corrupt`` makes the
#: journal write a torn garbage line before the real entry.  Rules
#: without a scenario selector match both planes — scope chaos plans
#: explicitly when that is not intended.
CAMPAIGN_CHECKPOINT_SCOPE = "campaign.checkpoint"


class InjectedFault(RuntimeError):
    """The exception a ``raise`` fault throws inside a run."""


@dataclass(frozen=True)
class CorruptRecord:
    """The garbage payload a ``corrupt`` fault returns instead of a record.

    Deliberately *not* a :class:`~repro.harness.runner.RunRecord`: the
    runner's response validation must reject it, proving that a worker
    returning nonsense surfaces as a retryable failure rather than
    poisoning the result list or the cache.
    """

    scenario: str
    note: str = "injected corrupt record"


@dataclass(frozen=True)
class FaultSpec:
    """One fault-injection rule (see the module docstring for kinds)."""

    kind: str
    scenario: Optional[str] = None  # None = any scenario
    match: Mapping[str, Any] = field(default_factory=dict)  # params subset
    rate: float = 1.0  # probability per matching (cell, attempt)
    times: Optional[int] = 1  # fire on the first N attempts; None = always
    seconds: float = 30.0  # hang duration
    exit_code: int = 13  # os._exit status for ``exit`` faults

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"fault times must be >= 1 or None, got {self.times}")
        if self.seconds < 0:
            raise ValueError(f"hang seconds must be >= 0, got {self.seconds}")

    def matches_cell(self, scenario: str, params: Mapping[str, Any]) -> bool:
        """True when this rule selects the given sweep cell."""
        if self.scenario is not None and self.scenario != scenario:
            return False
        return all(params.get(k) == v for k, v in self.match.items())


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered tuple of :class:`FaultSpec` rules.

    The first rule that matches a ``(cell, attempt)`` and wins its
    probability roll decides; later rules are not consulted.  An empty
    plan never fires.
    """

    seed: int = 0
    faults: Tuple[FaultSpec, ...] = ()

    def decide(
        self, scenario: str, params: Mapping[str, Any], attempt: int
    ) -> Optional[FaultSpec]:
        """The fault to inject for this ``(cell, attempt)``, if any.

        A pure function of the plan and its arguments: the decision is
        identical in every process and for every worker count.
        """
        for index, spec in enumerate(self.faults):
            if not spec.matches_cell(scenario, params):
                continue
            if spec.times is not None and attempt > spec.times:
                continue
            if spec.rate < 1.0 and self._roll(index, scenario, params, attempt) >= spec.rate:
                continue
            return spec
        return None

    def _roll(
        self, index: int, scenario: str, params: Mapping[str, Any], attempt: int
    ) -> float:
        """Deterministic uniform [0, 1) draw for one (rule, cell, attempt)."""
        payload = json.dumps(
            [self.seed, index, scenario, dict(params), attempt],
            sort_keys=True,
            default=repr,
        )
        digest = hashlib.sha256(payload.encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def apply(
        self, scenario: str, params: Mapping[str, Any], attempt: int
    ) -> Optional[CorruptRecord]:
        """Inject the decided fault (if any) for this run attempt.

        Called inside the worker just before the scenario executes:
        ``raise`` throws, ``hang`` sleeps then lets the run proceed,
        ``exit`` never returns, ``corrupt`` short-circuits the run by
        returning the garbage payload for the worker to send back.
        Returns ``None`` when no fault fires (the normal path).
        """
        spec = self.decide(scenario, params, attempt)
        if spec is None:
            return None
        if spec.kind == "raise":
            raise InjectedFault(
                f"injected fault for {scenario} {dict(params)!r} "
                f"(attempt {attempt})"
            )
        if spec.kind == "hang":
            time.sleep(spec.seconds)
            return None
        if spec.kind == "exit":
            os._exit(spec.exit_code)
        return CorruptRecord(scenario=scenario)


def parse_fault_plan(text: str) -> FaultPlan:
    """Parse the JSON :class:`FaultPlan` form used by :data:`FAULTS_ENV`.

    Accepts either the full object form ``{"seed": N, "faults": [...]}``
    or a bare rule list ``[...]`` (seed 0).  Unknown rule keys are
    rejected so a typo (``"rte"``) fails loudly instead of injecting
    nothing.
    """
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ValueError(f"unparseable fault plan JSON: {exc}") from None
    if isinstance(payload, list):
        payload = {"faults": payload}
    if not isinstance(payload, dict):
        raise ValueError(
            "fault plan must be a JSON object or list, got "
            f"{type(payload).__name__}"
        )
    unknown = sorted(set(payload) - {"seed", "faults"})
    if unknown:
        raise ValueError(f"unknown fault plan key(s) {unknown}")
    rules = []
    known_fields = {
        "kind", "scenario", "match", "rate", "times", "seconds", "exit_code",
    }
    for i, entry in enumerate(payload.get("faults", ())):
        if not isinstance(entry, dict):
            raise ValueError(f"fault rule #{i} must be an object")
        bad = sorted(set(entry) - known_fields)
        if bad:
            raise ValueError(
                f"fault rule #{i} has unknown key(s) {bad}; "
                f"known: {sorted(known_fields)}"
            )
        entry = dict(entry)
        if "match" in entry:
            entry["match"] = dict(entry["match"])
        rules.append(FaultSpec(**entry))
    return FaultPlan(seed=int(payload.get("seed", 0)), faults=tuple(rules))


def plan_from_env(environ: Optional[Mapping[str, str]] = None) -> Optional[FaultPlan]:
    """The :data:`FAULTS_ENV` plan, or ``None`` when unset/empty."""
    text = (environ if environ is not None else os.environ).get(
        FAULTS_ENV, ""
    ).strip()
    if not text:
        return None
    return parse_fault_plan(text)
