"""Command-line front end for the sweep runner and perf benchmarks.

Usage::

    python -m repro.harness list
    python -m repro.harness run af_assurance
    python -m repro.harness run af_assurance \
        --sweep protocol=tcp,gtfrc --sweep target_bps=2e6,6e6 \
        --set duration=20 --seeds 0,1 --workers 4 --format csv
    python -m repro.harness bench
    python -m repro.harness bench --check
    python -m repro.harness bench --update-current
    python -m repro.harness bench --update-current --history bench-history/

``run`` builds a :class:`repro.api.Experiment` over the scenario's
sweep grid (the registered default when no ``--sweep`` is given),
memoizing results under ``--cache-dir`` (default ``.sweep-cache/``;
``--no-cache`` disables; ``REPRO_CACHE=sqlite:<path>`` redirects the
memo to one shareable sqlite file), and emits the
:class:`repro.api.ResultSet` in the requested ``--format``: the
fixed-width ``table`` (one row per run: swept parameters followed by
the result's declared metrics, plus a run-count summary), or the
machine-readable ``csv`` / ``json`` exports (data only, no summary
line, so output pipes cleanly).

``run`` is fault-tolerant by default (PR 7): a crashed, hung or
erroring run is retried up to ``--max-retries`` times (with
``--run-timeout`` reaping hung runs), a cell that exhausts its
retries becomes a terminal failure *kept in the output* (a ``status``
column appears, aggregates skip the cell), and a failure summary
footer goes to stderr with exit status 1 — stdout stays pipeable
data either way.  ``--resume`` re-runs only the missing/failed cells
of an interrupted sweep (journaled manifest next to the memo cache);
``--strict`` restores abort-on-first-error.

``bench`` runs the pinned perf suite (:mod:`repro.harness.bench`) and
writes ``BENCH_core.json`` (preserving the frozen pre-optimization
baseline section).  ``bench --check`` instead compares a fresh run
against the committed numbers and exits non-zero on a >20% slowdown;
``bench --update-current`` refreshes only the ``current`` section —
rates are machine-relative, so a new host refreshes locally before
checking.  ``bench --history <dir>`` additionally appends a
timestamped ``BENCH_<utc>.json`` snapshot of every written record, so
a perf trajectory accumulates (the nightly workflow uploads it).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.api import Experiment
from repro.harness.registry import ScenarioSpec, get_scenario, list_scenarios
from repro.harness.runner import RunRecord
from repro.harness.tables import format_table

#: Environment default for ``--workers`` (CLI only; the library default
#: stays the serial ``workers=1``).
SWEEP_WORKERS_ENV = "REPRO_SWEEP_WORKERS"


def _default_workers() -> int:
    value = os.environ.get(SWEEP_WORKERS_ENV, "").strip()
    if not value:
        return 1
    try:
        return int(value)
    except ValueError:
        raise ValueError(
            f"{SWEEP_WORKERS_ENV} must be an integer, got {value!r}"
        ) from None


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.harness``."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "campaign":
        return _cmd_campaign(parser, args)
    parser.print_help()
    return 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Run registered experiment scenarios over parameter sweeps.",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list registered scenarios and their grids")
    run = sub.add_parser("run", help="sweep one scenario and print a table")
    _add_sweep_arguments(run)
    run.add_argument(
        "--resume",
        action="store_true",
        help="resume this sweep from its journaled manifest: re-run "
        "only missing/failed cells (requires caching; the grid and "
        "code must be unchanged)",
    )
    run.add_argument(
        "--strict",
        action="store_true",
        help="abort on the first terminal failure instead of keeping "
        "partial results (the pre-PR-7 behaviour)",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress per-run progress lines"
    )
    run.add_argument(
        "--format",
        choices=("table", "csv", "json"),
        default="table",
        dest="output_format",
        help="result rendering: fixed-width table (default) or the "
        "ResultSet csv/json export (data only — the summary line is "
        "omitted so output pipes cleanly)",
    )
    run.add_argument(
        "-v", "--verbose",
        action="store_true",
        help="print sweep internals to stderr after the run: cache "
        "hit/miss counts and the warm worker-pool lifecycle counters "
        "(created/reused/transient/repaired)",
    )
    run.add_argument(
        "--progress",
        action="store_true",
        help="render live progress on stderr (done/failed/retried, ETA, "
        "per-worker utilization) — stdout stays pure data",
    )
    run.add_argument(
        "--trace-summary",
        action="store_true",
        help="record structured span traces for every cell (JSONL next "
        "to the sweep manifest when caching is on) and print the span "
        "summary table to stderr",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="wrap each fresh run in cProfile (REPRO_PROFILE=1 twin) "
        "and print the aggregated hotspot table to stderr",
    )
    metrics = sub.add_parser(
        "metrics",
        help="sweep one scenario with the metrics plane on; export the "
        "registry",
        description=(
            "Run a sweep exactly like `run` but with the process-wide "
            "metrics registry enabled (REPRO_METRICS=1 equivalent), then "
            "print the harvested series — engine events, queue "
            "accept/drop counters per color, sweep cell/retry/failure "
            "counts, cache and warm-pool statistics — to stdout as JSON "
            "or Prometheus text exposition format."
        ),
    )
    _add_sweep_arguments(metrics)
    metrics.add_argument(
        "--format",
        choices=("json", "prometheus"),
        default="json",
        dest="output_format",
        help="export format for the registry snapshot (default: json)",
    )
    bench = sub.add_parser(
        "bench",
        help="run the pinned perf suite; write/check BENCH_core.json",
        description="Run the pinned perf suite and write/check BENCH_core.json.",
        epilog=(
            "Caveat: the recorded rates are machine-relative. The committed "
            "numbers were measured on one host; a different machine (e.g. a "
            "CI runner) should refresh the `current` section locally with "
            "--update-current before relying on --check, while the frozen "
            "pre-optimization `baseline` section stays untouched so the "
            "committed speedup ratios remain apples-to-apples."
        ),
    )
    bench.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="FILE",
        help="benchmark record file (default: BENCH_core.json in the cwd)",
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="compare a fresh run against the committed record; "
        "exit 1 on a >20%% slowdown (writes nothing)",
    )
    bench.add_argument(
        "--rebaseline",
        action="store_true",
        help="freeze this run as the new baseline section "
        "(normally the baseline is preserved across runs)",
    )
    bench.add_argument(
        "--update-current",
        action="store_true",
        help="refresh only the `current` section of an existing record "
        "(requires one; never touches the frozen baseline) — use on a "
        "new machine before --check, since rates are machine-relative",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=None,
        metavar="N",
        help="repetitions per benchmark (default: per-benchmark setting)",
    )
    bench.add_argument(
        "--history",
        type=Path,
        default=None,
        metavar="DIR",
        help="also append a timestamped BENCH_<utc>.json snapshot of the "
        "written record under DIR, accumulating a perf trajectory "
        "(write runs only; incompatible with the read-only --check)",
    )
    campaign = sub.add_parser(
        "campaign",
        help="run multi-scenario campaigns with durable, resumable results",
        description=(
            "Run many scenario sweeps as one named unit into a durable "
            "directory (spec + provenance, per-scenario exports, integrity "
            "manifest, fsync'd checkpoint journal, generated report). "
            "A killed campaign resumes from its journal; verify re-checks "
            "every artifact hash. See docs/campaigns.md."
        ),
    )
    camp_sub = campaign.add_subparsers(dest="campaign_command")
    camp_run = camp_sub.add_parser(
        "run", help="execute a campaign spec file into a directory"
    )
    camp_run.add_argument(
        "spec", type=Path, metavar="SPEC.json",
        help="campaign spec file (name + jobs; see docs/campaigns.md)",
    )
    camp_run.add_argument(
        "--dir", type=Path, required=True, dest="directory", metavar="DIR",
        help="campaign directory (created; re-running over the same "
        "directory requires an unchanged spec)",
    )
    camp_run.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="override every job's worker count for this invocation",
    )
    camp_resume = camp_sub.add_parser(
        "resume",
        help="complete the missing/failed scenarios of a killed campaign",
    )
    camp_resume.add_argument("directory", type=Path, metavar="DIR")
    camp_resume.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="override every job's worker count for this invocation",
    )
    camp_verify = camp_sub.add_parser(
        "verify",
        help="re-check every tracked artifact hash; quarantine corruption",
    )
    camp_verify.add_argument("directory", type=Path, metavar="DIR")
    camp_verify.add_argument(
        "--no-quarantine", action="store_true",
        help="report corruption without moving files aside",
    )
    camp_report = camp_sub.add_parser(
        "report", help="regenerate report.md from the on-disk state and print it"
    )
    camp_report.add_argument("directory", type=Path, metavar="DIR")
    return parser


def _add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    """The sweep-definition arguments shared by ``run`` and ``metrics``."""
    parser.add_argument(
        "scenario", help="registered scenario name (see `list`)"
    )
    parser.add_argument(
        "--sweep",
        action="append",
        default=[],
        metavar="PARAM=V1,V2,...",
        help="sweep axis; repeatable; replaces the default grid",
    )
    parser.add_argument(
        "--set",
        action="append",
        default=[],
        dest="fixed",
        metavar="PARAM=VALUE",
        help="fixed parameter override applied to every run; repeatable",
    )
    parser.add_argument(
        "--seeds",
        default=None,
        metavar="S1,S2,...",
        help="seeds crossed with every grid point",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (0 = one per CPU; default 1 = serial, or "
        "the REPRO_SWEEP_WORKERS environment variable when set)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=Path(".sweep-cache"),
        help="result memo directory (default: ./.sweep-cache); "
        "REPRO_CACHE=sqlite:<path> in the environment redirects the "
        "memo to one shareable sqlite file instead (--no-cache still "
        "disables everything)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every run; do not read or write the cache",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=0,
        metavar="N",
        help="retry each crashed/timed-out/failed run up to N extra "
        "times with exponential backoff before recording it as a "
        "terminal failure (default 0: no retries)",
    )
    parser.add_argument(
        "--run-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-run wall-clock deadline; a run past it has its worker "
        "killed and counts as a failed attempt (forces pool execution "
        "even with --workers 1)",
    )


def _build_experiment(
    spec: ScenarioSpec, args: argparse.Namespace
) -> Experiment:
    """Build the :class:`Experiment` from the shared sweep arguments."""
    workers = args.workers if args.workers is not None else _default_workers()
    experiment = Experiment(spec).workers(workers or None).cache(
        None if args.no_cache else args.cache_dir
    )
    experiment.retries(args.max_retries).timeout(args.run_timeout)
    if args.sweep:
        experiment.sweep(_parse_grid(spec, args.sweep))
    if args.fixed:
        experiment.configure(
            **dict(_parse_pair(spec, pair) for pair in args.fixed)
        )
    if args.seeds:
        experiment.seeds(int(s) for s in args.seeds.split(",") if s)
    return experiment


def _cmd_list() -> int:
    rows = []
    for spec in list_scenarios():
        grid = " ".join(
            f"{k}={','.join(str(v) for v in vs)}"
            for k, vs in spec.default_grid.items()
        )
        rows.append([spec.name, grid or "-", spec.description])
    print(format_table(["scenario", "default grid", "description"], rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        spec = get_scenario(args.scenario)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    try:
        if args.resume and args.no_cache:
            raise ValueError(
                "--resume needs the memo cache; drop --no-cache"
            )
        experiment = _build_experiment(spec, args)
        if args.trace_summary:
            experiment.trace(True)
        if args.profile:
            experiment.profile(True)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    # machine-readable formats keep stdout pure data; progress moves
    # to stderr there so `... --format csv > out.csv` stays clean
    progress_stream = sys.stdout if args.output_format == "table" else sys.stderr

    def progress(record: RunRecord) -> None:
        if not args.quiet:
            if not record.ok:
                state = f"FAILED:{record.result.failure_kind}"
            elif record.cached:
                state = "cached"
            else:
                state = f"{record.elapsed:.2f}s"
            print(
                f"  [{state}] {record.scenario} {record.params}",
                file=progress_stream,
                flush=True,
            )

    renderer = None
    if args.progress:
        from repro.obs.progress import ProgressRenderer

        renderer = ProgressRenderer(
            total=experiment.n_cells(), stream=sys.stderr
        )

    started = time.perf_counter()
    try:
        results = experiment.run(
            progress=progress,
            on_failure="raise" if args.strict else "keep",
            resume=args.resume,
            observer=renderer,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if renderer is not None:
            renderer.close()
    wall = time.perf_counter() - started
    if args.output_format == "csv":
        print(results.to_csv(), end="")
    elif args.output_format == "json":
        print(results.to_json())
    else:
        print(results.table(title=f"sweep: {spec.name}"))
        fresh = sum(1 for r in results if not r.cached)
        print(
            f"\n{len(results)} runs ({fresh} computed, "
            f"{len(results) - fresh} cached) in {wall:.2f}s wall"
        )
    if args.verbose:
        from repro.harness.runner import warm_pool_stats

        hits = sum(1 for r in results if r.cached)
        print(
            f"cache: {hits} hits, {len(results) - hits} misses",
            file=sys.stderr,
        )
        pool_stats = warm_pool_stats()
        print(
            "warm pool: " + ", ".join(
                f"{name}={count}"
                for name, count in sorted(pool_stats.items())
            ),
            file=sys.stderr,
        )
    if args.trace_summary and results.spans is not None:
        from repro.obs.spans import format_span_summary

        print(format_span_summary(results.spans), file=sys.stderr)
    if args.profile:
        from repro.obs.profiling import hotspot_table, merge_profiles

        merged = merge_profiles(r.profile for r in results)
        print(hotspot_table(merged), file=sys.stderr)
    failures = results.failures()
    if len(failures):
        # the failure summary goes to stderr so csv/json stdout stays
        # pure data even for a partial sweep
        print(
            f"\n{len(failures)} of {len(results)} runs failed terminally "
            f"(coverage {results.coverage():.0%}):",
            file=sys.stderr,
        )
        for record in failures:
            failure = record.result
            print(
                f"  {record.params} -> {failure.failure_kind} "
                f"({failure.error}: {failure.message}) "
                f"after {failure.attempts} attempt(s)",
                file=sys.stderr,
            )
        print(
            "re-run with --resume to retry only the failed cells",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Run a sweep with the metrics plane on; export the registry."""
    try:
        spec = get_scenario(args.scenario)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    from repro.obs.metrics import enable_metrics, registry

    # enable BEFORE any simulator is built so engine/link harvesting is
    # armed for the in-process runs; worker processes publish through
    # the sweep-level harvest either way
    enable_metrics()
    try:
        experiment = _build_experiment(spec, args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        results = experiment.run(on_failure="keep")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.output_format == "prometheus":
        print(registry().to_prometheus(), end="")
    else:
        print(registry().to_json_text())
    if results.has_failures:
        failed = results.failures()
        print(
            f"{len(failed)} of {len(results)} runs failed terminally "
            f"(coverage {results.coverage():.0%})",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness import bench as bench_mod

    path = args.output if args.output is not None else Path(bench_mod.BENCH_FILE)
    committed = bench_mod.load_record(path)
    # fail argument/record problems before the (slow) measurement run
    if args.update_current and args.rebaseline:
        print("error: --update-current and --rebaseline are mutually "
              "exclusive", file=sys.stderr)
        return 2
    if args.update_current and args.check:
        print("error: --update-current writes and --check is read-only; "
              "run them as two invocations (update, then check)",
              file=sys.stderr)
        return 2
    if args.rebaseline and args.check:
        print("error: --rebaseline writes and --check is read-only; "
              "run them as two invocations", file=sys.stderr)
        return 2
    if args.history is not None and args.check:
        print("error: --history snapshots written records and --check is "
              "read-only; run them as two invocations", file=sys.stderr)
        return 2
    if args.update_current and committed is None:
        print(f"error: no committed record at {path} to update; run a plain "
              "`bench` first", file=sys.stderr)
        return 2
    if args.check and committed is None:
        print(f"error: no committed record at {path} to check against",
              file=sys.stderr)
        return 2
    if args.check:
        current = (committed.get("current") or {}).get("metrics")
        if not isinstance(current, dict) or not current:
            print(f"error: record at {path} has no current-metrics section "
                  "to check against (malformed or truncated record); "
                  "re-run `bench` to rewrite it", file=sys.stderr)
            return 2
    print(f"running pinned perf suite ({len(bench_mod.BENCHMARKS)} benchmarks)...")
    fresh = bench_mod.run_suite(repeats=args.repeats)
    baseline = (
        ((committed or {}).get("baseline") or {}).get("metrics")
        if not args.rebaseline
        else fresh
    )
    rows = []
    for spec in bench_mod.BENCHMARKS:
        metrics = fresh[spec.name]
        base_rate = (baseline or {}).get(spec.name, {}).get("rate")
        rows.append(
            [
                spec.name,
                spec.unit,
                f"{metrics['rate']:,.0f}",
                f"{metrics['seconds']:.3f}",
                f"{metrics['rate'] / base_rate:.2f}x" if base_rate else "-",
            ]
        )
    print(
        format_table(
            ["benchmark", "unit", "rate", "best (s)", "vs baseline"],
            rows,
            title="perf suite",
        )
    )
    if args.check:
        failures = bench_mod.check_regression(committed, fresh)
        if failures:
            # transient host load can depress one sample; a genuine
            # regression reproduces on an immediate re-measure
            print("possible regression; re-measuring once...", flush=True)
            failures = bench_mod.check_regression(
                committed, bench_mod.run_suite(repeats=args.repeats)
            )
        if failures:
            print("PERF REGRESSION:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"perf check passed (within {bench_mod.REGRESSION_TOLERANCE:.0%} "
              f"of {path})")
        return 0
    record = bench_mod.write_record(path, fresh, baseline=baseline)
    if args.update_current:
        print(f"[current section refreshed in {path}; baseline untouched]")
    else:
        print(f"[saved to {path}]")
    if args.history is not None:
        snapshot = bench_mod.append_history(args.history, record)
        print(f"[history snapshot: {snapshot}]")
    return 0


def _cmd_campaign(parser: argparse.ArgumentParser,
                  args: argparse.Namespace) -> int:
    from repro.campaign import (
        Campaign,
        CampaignError,
        load_spec,
        resume_campaign,
        verify_campaign,
        write_report,
    )

    command = getattr(args, "campaign_command", None)
    if command is None:
        parser.parse_args(["campaign", "--help"])
        return 2

    try:
        if command == "run":
            spec = load_spec(args.spec)
            run = Campaign.from_spec(spec).run(
                args.directory, workers=args.workers,
            )
        elif command == "resume":
            run = resume_campaign(args.directory, workers=args.workers)
        elif command == "verify":
            report = verify_campaign(
                args.directory, quarantine=not args.no_quarantine,
            )
            print(report.summary())
            return 0 if report.ok else 1
        else:  # report
            print(write_report(args.directory), end="")
            return 0
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(run.summary())
    degraded = [o for o in run.outcomes.values() if o.status != "ok"]
    if degraded:
        print(
            f"{len(degraded)} of {len(run.outcomes)} jobs degraded "
            f"(see {run.report_path}); "
            f"`campaign resume {run.directory}` retries failed jobs",
            file=sys.stderr,
        )
        return 1
    return 0


def _parse_grid(
    spec: ScenarioSpec, sweeps: Sequence[str]
) -> Dict[str, List[Any]]:
    grid: Dict[str, List[Any]] = {}
    for sweep in sweeps:
        name, _, values = sweep.partition("=")
        if name in grid:
            raise ValueError(
                f"--sweep {name} given twice; use one comma-separated list"
            )
        parsed = [spec.coerce(name, v) for v in values.split(",") if v]
        if not parsed:
            raise ValueError(f"--sweep needs PARAM=V1,V2,... (got {sweep!r})")
        grid[name] = parsed
    return grid


def _parse_pair(spec: ScenarioSpec, pair: str) -> tuple:
    name, _, value = pair.partition("=")
    if not _ or value == "":
        raise ValueError(f"--set needs PARAM=VALUE (got {pair!r})")
    return name, spec.coerce(name, value)
