"""Nodes and transport agents.

A :class:`Node` forwards packets along static next-hop routes (filled in
by :meth:`repro.sim.topology.Network.compute_routes`) and delivers
packets addressed to itself to the :class:`Agent` bound to the packet's
flow id.

An :class:`Agent` is one endpoint of a transport connection (a TFRC
sender, a TCP receiver, ...).  Agents send by handing packets to their
node and receive via :meth:`Agent.receive`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, TYPE_CHECKING

from repro.sim.engine import Simulator
from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.link import Link


class RoutingError(Exception):
    """No route or no bound agent for a packet."""


class Node:
    """A network node: forwarding plus local agent delivery.

    Attributes
    ----------
    links: outgoing links keyed by neighbour node name.
    next_hop: static routing table, destination name -> neighbour name.
    """

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.links: Dict[str, "Link"] = {}
        self.next_hop: Dict[str, str] = {}
        self._agents: Dict[str, "Agent"] = {}
        self.rx_packets = 0
        self.forwarded_packets = 0
        self.on_unroutable: Optional[Callable[[Packet], None]] = None

    # ------------------------------------------------------------------
    def bind(self, flow_id: str, agent: "Agent") -> None:
        """Register ``agent`` to receive packets of ``flow_id`` here."""
        if flow_id in self._agents and self._agents[flow_id] is not agent:
            raise RoutingError(f"flow {flow_id!r} already bound on {self.name}")
        self._agents[flow_id] = agent

    def unbind(self, flow_id: str) -> None:
        """Remove a flow binding; silently ignores unknown flows."""
        self._agents.pop(flow_id, None)

    def agent_for(self, flow_id: str) -> Optional["Agent"]:
        """The agent bound to ``flow_id``, or None."""
        return self._agents.get(flow_id)

    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Inject a locally generated packet into the network."""
        return self._forward(packet)

    def receive(self, packet: Packet) -> None:
        """Entry point for packets arriving from a link."""
        packet.hops += 1
        if packet.dst == self.name:
            self.rx_packets += 1
            agent = self._agents.get(packet.flow_id)
            if agent is None:
                raise RoutingError(
                    f"{self.name}: no agent for flow {packet.flow_id!r}"
                )
            agent.receive(packet)
            return
        self.forwarded_packets += 1
        self._forward(packet)

    def _forward(self, packet: Packet) -> bool:
        hop = self.next_hop.get(packet.dst)
        if hop is None:
            if packet.dst in self.links:  # directly connected
                hop = packet.dst
            else:
                if self.on_unroutable is not None:
                    self.on_unroutable(packet)
                    return False
                raise RoutingError(f"{self.name}: no route to {packet.dst!r}")
        link = self.links.get(hop)
        if link is None:
            raise RoutingError(f"{self.name}: next hop {hop!r} not connected")
        return link.send(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.name}, links={sorted(self.links)})"


class Agent:
    """Base class for transport endpoints.

    Subclasses implement :meth:`receive`; :meth:`attach` wires the agent
    to a node under a flow id, and :meth:`send` injects packets.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.node: Optional[Node] = None
        self.flow_id: str = ""

    def attach(self, node: Node, flow_id: str) -> "Agent":
        """Bind this agent to ``node`` for ``flow_id``; returns self."""
        node.bind(flow_id, self)
        self.node = node
        self.flow_id = flow_id
        return self

    def send(self, packet: Packet) -> bool:
        """Send a packet through the attached node."""
        if self.node is None:
            raise RoutingError("agent is not attached to a node")
        return self.node.send(packet)

    def receive(self, packet: Packet) -> None:
        """Handle a packet addressed to this agent.  Subclasses override."""
        raise NotImplementedError

    # Lifecycle hooks -----------------------------------------------------
    def start(self) -> None:
        """Begin operation (e.g. start sending).  Default: no-op."""

    def stop(self) -> None:
        """Cease operation and cancel timers.  Default: no-op."""
