"""Queue disciplines for links: DropTail, RED and RIO.

All queues implement the same small interface used by
:class:`repro.sim.link.Link`:

* ``enqueue(packet, now) -> bool`` — True if accepted, False if dropped;
* ``dequeue(now) -> Optional[Packet]``;
* ``__len__`` and ``byte_count``.

Every queue keeps drop/accept counters (overall and per
:class:`~repro.sim.packet.Color`), which the DiffServ experiments read.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Dict, Optional

from repro.sim.packet import Color, Packet


class QueueStats:
    """Counters shared by all queue disciplines.

    Per-color counters are flat lists indexed by ``Color.value`` (the
    record methods run once per packet per hop, where the seed's
    enum-keyed dict paid a hash per packet); the historical
    ``drops_by_color`` / ``accepts_by_color`` dict views are preserved
    as read-only properties for reports and tests.
    """

    __slots__ = (
        "enqueued",
        "dequeued",
        "dropped",
        "enqueued_bytes",
        "dropped_bytes",
        "_drops_by_color",
        "_accepts_by_color",
    )

    def __init__(self) -> None:
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0
        self.enqueued_bytes = 0
        self.dropped_bytes = 0
        self._drops_by_color = [0] * len(Color)
        self._accepts_by_color = [0] * len(Color)

    def record_accept(self, packet: Packet) -> None:
        self.enqueued += 1
        self.enqueued_bytes += packet.size
        self._accepts_by_color[packet.color.value] += 1

    def record_drop(self, packet: Packet) -> None:
        self.dropped += 1
        self.dropped_bytes += packet.size
        self._drops_by_color[packet.color.value] += 1

    @property
    def drops_by_color(self) -> Dict[Color, int]:
        """Per-precedence drop counts (read-only snapshot)."""
        return {c: self._drops_by_color[c.value] for c in Color}

    @property
    def accepts_by_color(self) -> Dict[Color, int]:
        """Per-precedence accept counts (read-only snapshot)."""
        return {c: self._accepts_by_color[c.value] for c in Color}

    @property
    def offered(self) -> int:
        """Packets offered to the queue (accepted + dropped)."""
        return self.enqueued + self.dropped

    def drop_ratio(self) -> float:
        """Fraction of offered packets dropped; 0.0 when nothing offered."""
        if self.offered == 0:
            return 0.0
        return self.dropped / self.offered

    def color_drop_ratio(self, color: Color) -> float:
        """Fraction of offered ``color`` packets dropped; 0.0 when none.

        The per-precedence ratio every DiffServ experiment reports
        (green = in-profile protection, the AF assurance's core metric).
        """
        index = color.value
        offered = self._accepts_by_color[index] + self._drops_by_color[index]
        return self._drops_by_color[index] / offered if offered else 0.0


class DropTailQueue:
    """FIFO queue with a packet-count and/or byte capacity.

    Parameters
    ----------
    capacity_packets:
        Maximum number of queued packets (``None`` = unlimited).
    capacity_bytes:
        Maximum queued bytes (``None`` = unlimited).
    """

    def __init__(
        self,
        capacity_packets: Optional[int] = 100,
        capacity_bytes: Optional[int] = None,
    ):
        if capacity_packets is None and capacity_bytes is None:
            raise ValueError("queue must bound packets or bytes")
        self.capacity_packets = capacity_packets
        self.capacity_bytes = capacity_bytes
        self._items: Deque[Packet] = deque()
        self._bytes = 0
        self.fluid_pkts = 0  # virtual backlog (repro.fluid), 0 = none
        self.stats = QueueStats()

    def enqueue(self, packet: Packet, now: float) -> bool:
        """Accept or tail-drop ``packet``.

        The admission test is inlined (no helper call) — this runs
        once per packet per access link, so an extra call frame showed
        up in the T1 profile.  ``fluid_pkts`` is the virtual occupancy
        a :class:`repro.fluid.source.FluidSource` maintains; it stays
        ``0`` unless a background spec is compiled, in which case the
        fluid backlog competes for buffer space exactly like queued
        packets (adding 0 keeps the arithmetic bit-identical).
        """
        if (
            self.capacity_packets is not None
            and len(self._items) + self.fluid_pkts >= self.capacity_packets
        ) or (
            self.capacity_bytes is not None
            and self._bytes + packet.size > self.capacity_bytes
        ):
            self.stats.record_drop(packet)
            return False
        self._items.append(packet)
        self._bytes += packet.size
        self.stats.record_accept(packet)
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        """Pop the head-of-line packet, or None when empty."""
        if not self._items:
            return None
        packet = self._items.popleft()
        self._bytes -= packet.size
        self.stats.dequeued += 1
        return packet

    def __len__(self) -> int:
        return len(self._items)

    @property
    def byte_count(self) -> int:
        """Bytes currently queued."""
        return self._bytes


class RedQueue:
    """Random Early Detection (Floyd & Jacobson 1993 / RFC 2309 defaults).

    The average queue length is an EWMA updated on every arrival; during
    idle periods it decays as if small packets had been draining at line
    rate.  Between ``min_th`` and ``max_th`` packets are dropped with a
    probability that rises linearly to ``max_p`` (with the standard
    ``count`` correction that spreads drops uniformly); above ``max_th``
    every arrival is dropped.

    Parameters
    ----------
    min_th, max_th:
        Thresholds in packets.
    max_p:
        Drop probability at ``max_th``.
    weight:
        EWMA weight ``w_q``.
    capacity_packets:
        Hard tail-drop limit.
    rng:
        Random stream for drop decisions (injected by the link for
        determinism).
    mean_pkt_time:
        Estimated transmission time of an average packet, used to decay
        the average during idle periods.
    """

    def __init__(
        self,
        min_th: float = 5,
        max_th: float = 15,
        max_p: float = 0.1,
        weight: float = 0.002,
        capacity_packets: int = 60,
        rng: Optional[random.Random] = None,
        mean_pkt_time: float = 0.001,
    ):
        if not 0 < min_th < max_th:
            raise ValueError("need 0 < min_th < max_th")
        self.min_th = float(min_th)
        self.max_th = float(max_th)
        self.max_p = float(max_p)
        self.weight = float(weight)
        self.capacity_packets = capacity_packets
        self.mean_pkt_time = mean_pkt_time
        self._rng = rng or random.Random(0xDECAF)
        self._items: Deque[Packet] = deque()
        self._bytes = 0
        self.fluid_pkts = 0  # virtual backlog (repro.fluid), 0 = none
        self.avg = 0.0
        self._count = -1  # packets since last drop, RED "count" variable
        self._idle_since: Optional[float] = 0.0
        self.stats = QueueStats()

    # -- queue interface ---------------------------------------------------
    def enqueue(self, packet: Packet, now: float) -> bool:
        """RED admission: early-drop probabilistically, tail-drop at capacity.

        The average update, drop curve and count-corrected coin flip
        are the ``_update_avg``/``_drop_probability``/``_early_drop``
        helpers inlined (identical arithmetic and RNG draw order): this
        method runs once per bottleneck arrival, where three extra call
        frames per packet are measurable.  ``fluid_pkts`` (virtual
        background occupancy, :mod:`repro.fluid`) rides on the physical
        length so average, curve and tail-drop all see the aggregate;
        adding 0 keeps the arithmetic bit-identical without background.
        """
        q = len(self._items) + self.fluid_pkts
        weight = self.weight
        if q == 0 and self._idle_since is not None:
            # decay over the idle period
            m = max(0.0, (now - self._idle_since) / self.mean_pkt_time)
            self.avg *= (1.0 - weight) ** m
            self._idle_since = now
        else:
            self.avg += weight * (q - self.avg)
        avg = self.avg
        if avg < self.min_th:
            p_b = 0.0
        elif avg >= self.max_th:
            p_b = 1.0
        else:
            p_b = self.max_p * (avg - self.min_th) / (self.max_th - self.min_th)
        drop = True
        if q >= self.capacity_packets:
            pass  # tail drop; the RED count state is not touched
        elif p_b <= 0.0:
            self._count = -1
            drop = False
        elif p_b >= 1.0:
            self._count = 0
        else:
            count = self._count + 1
            denom = 1.0 - count * p_b
            p_a = p_b / denom if denom > 0 else 1.0
            if self._rng.random() < p_a:
                count = 0
            else:
                drop = False
            self._count = count
        if drop:
            self.stats.record_drop(packet)
            return False
        self._items.append(packet)
        self._bytes += packet.size
        self._idle_since = None
        self.stats.record_accept(packet)
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._items:
            return None
        packet = self._items.popleft()
        self._bytes -= packet.size
        self.stats.dequeued += 1
        if not self._items and not self.fluid_pkts:
            self._idle_since = now
        return packet

    def __len__(self) -> int:
        return len(self._items)

    @property
    def byte_count(self) -> int:
        return self._bytes


class RioQueue:
    """RIO — RED with In/Out drop-precedence coupling (Clark & Fang 1998).

    The AF PHB substrate of the paper's §4: in-profile (``GREEN``)
    packets see a RED curve driven by the *in-profile* average queue
    only, with generous thresholds; out-of-profile (``YELLOW``/``RED``)
    packets see an aggressive curve driven by the *total* average.
    Under congestion, out-profile traffic is therefore dropped first,
    which is exactly the protection gTFRC's guaranteed rate relies on.

    Parameters mirror :class:`RedQueue`, once per precedence level.
    """

    def __init__(
        self,
        in_min_th: float = 40,
        in_max_th: float = 70,
        in_max_p: float = 0.02,
        out_min_th: float = 10,
        out_max_th: float = 30,
        out_max_p: float = 0.10,
        weight: float = 0.002,
        capacity_packets: int = 100,
        rng: Optional[random.Random] = None,
        mean_pkt_time: float = 0.001,
    ):
        self.in_min_th, self.in_max_th, self.in_max_p = in_min_th, in_max_th, in_max_p
        self.out_min_th, self.out_max_th, self.out_max_p = (
            out_min_th,
            out_max_th,
            out_max_p,
        )
        self.weight = weight
        self.capacity_packets = capacity_packets
        self.mean_pkt_time = mean_pkt_time
        self._rng = rng or random.Random(0x510)
        self._items: Deque[Packet] = deque()
        self._bytes = 0
        self.fluid_pkts = 0  # virtual backlog (repro.fluid), 0 = none
        self._in_count_q = 0  # in-profile packets currently queued
        self.avg_in = 0.0
        self.avg_total = 0.0
        self._count_in = -1
        self._count_out = -1
        self._idle_since: Optional[float] = 0.0
        self.stats = QueueStats()

    def enqueue(self, packet: Packet, now: float) -> bool:
        """Admit with the precedence-appropriate RED curve.

        Average update, curve and count-corrected coin flip are
        inlined (identical arithmetic and RNG draw order to the
        reference helper formulation): this method runs once per
        bottleneck arrival in every AF experiment, where the helper
        call frames were a measurable share of the T1 profile.

        ``fluid_pkts`` (virtual background occupancy,
        :mod:`repro.fluid`) joins the *total* queue length only:
        aggregate background is out-of-profile cross traffic, so it
        inflates ``avg_total`` (the aggressive out-curve) and the
        tail-drop test while ``avg_in`` — the in-profile GREEN
        protection the AF assurance rests on — stays driven purely by
        physically queued in-profile packets.  Adding 0 keeps the
        arithmetic bit-identical when no background is compiled.
        """
        in_profile = packet.color is Color.GREEN
        q_total = len(self._items) + self.fluid_pkts
        weight = self.weight
        # -- averages: idle decay or per-precedence EWMA
        if q_total == 0 and self._idle_since is not None:
            m = max(0.0, (now - self._idle_since) / self.mean_pkt_time)
            decay = (1.0 - weight) ** m
            self.avg_in *= decay
            self.avg_total *= decay
            self._idle_since = now
        else:
            self.avg_total += weight * (q_total - self.avg_total)
            if in_profile:
                self.avg_in += weight * (self._in_count_q - self.avg_in)
        # -- drop curve for this packet's precedence
        if in_profile:
            avg, min_th, max_th, max_p = (
                self.avg_in, self.in_min_th, self.in_max_th, self.in_max_p
            )
        else:
            avg, min_th, max_th, max_p = (
                self.avg_total, self.out_min_th, self.out_max_th, self.out_max_p
            )
        if avg < min_th:
            p_b = 0.0
        elif avg >= max_th:
            p_b = 1.0
        else:
            p_b = max_p * (avg - min_th) / (max_th - min_th)
        # -- admission (tail drop leaves the RED count state untouched)
        drop = True
        if q_total >= self.capacity_packets:
            pass
        elif p_b <= 0.0:
            drop = False
            if in_profile:
                self._count_in = -1
            else:
                self._count_out = -1
        elif p_b >= 1.0:
            if in_profile:
                self._count_in = 0
            else:
                self._count_out = 0
        else:
            count = (self._count_in if in_profile else self._count_out) + 1
            denom = 1.0 - count * p_b
            p_a = p_b / denom if denom > 0 else 1.0
            if self._rng.random() < p_a:
                count = 0
            else:
                drop = False
            if in_profile:
                self._count_in = count
            else:
                self._count_out = count
        if drop:
            self.stats.record_drop(packet)
            return False
        self._items.append(packet)
        self._bytes += packet.size
        if in_profile:
            self._in_count_q += 1
        self._idle_since = None
        self.stats.record_accept(packet)
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        items = self._items
        if not items:
            return None
        packet = items.popleft()
        self._bytes -= packet.size
        if packet.color is Color.GREEN:
            self._in_count_q -= 1
        self.stats.dequeued += 1
        if not items and not self.fluid_pkts:
            self._idle_since = now
        return packet

    def __len__(self) -> int:
        return len(self._items)

    @property
    def byte_count(self) -> int:
        return self._bytes
