"""Packet-level event tracing.

A :class:`PacketTracer` hooks one or more links and records a compact
event log — ``(time, event, link, flow_id, seq-or-uid, size, color)`` —
that experiments and debugging sessions can filter and summarize.  The
hooks are the links' public callbacks plus light wrappers, so tracing
can be enabled per link with no global switches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from repro.sim.link import Link
from repro.sim.packet import Packet


class TraceEvent(enum.Enum):
    """Kind of a traced occurrence."""

    ENQUEUE = "enq"
    DROP = "drop"
    TRANSMIT = "tx"
    DELIVER = "rx"
    CHANNEL_LOSS = "chloss"


@dataclass(frozen=True)
class TraceRecord:
    """One traced packet event."""

    time: float
    event: TraceEvent
    link: str
    flow_id: str
    uid: int
    size: int
    color: str


class PacketTracer:
    """Records packet events on instrumented links.

    Parameters
    ----------
    flow_filter:
        When given, only packets of these flow ids are recorded.
    max_records:
        Ring-buffer bound; oldest records are discarded beyond it.
    """

    def __init__(
        self,
        flow_filter: Optional[Iterable[str]] = None,
        max_records: int = 100_000,
    ):
        self.flow_filter = set(flow_filter) if flow_filter is not None else None
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        self.dropped_records = 0

    # ------------------------------------------------------------------
    def attach(self, link: Link) -> None:
        """Instrument one link (stackable with existing callbacks)."""
        self._chain_drop(link)
        self._wrap_transmission(link)

    def _record(self, link: Link, packet: Packet, event: TraceEvent) -> None:
        if self.flow_filter is not None and packet.flow_id not in self.flow_filter:
            return
        if len(self.records) >= self.max_records:
            self.records.pop(0)
            self.dropped_records += 1
        self.records.append(
            TraceRecord(
                time=link.sim.now,
                event=event,
                link=link.name,
                flow_id=packet.flow_id,
                uid=packet.uid,
                size=packet.size,
                color=packet.color.name,
            )
        )

    def _chain_drop(self, link: Link) -> None:
        previous: Optional[Callable[[Packet], None]] = link.on_drop

        def on_drop(packet: Packet) -> None:
            self._record(link, packet, TraceEvent.DROP)
            if previous is not None:
                previous(packet)

        link.on_drop = on_drop

    def _wrap_transmission(self, link: Link) -> None:
        original_send = link.send
        original_finish = link._finish_transmission
        original_deliver = link._deliver

        def send(packet: Packet) -> bool:
            accepted = original_send(packet)
            if accepted:
                self._record(link, packet, TraceEvent.ENQUEUE)
            return accepted

        def finish(packet: Packet) -> None:
            self._record(link, packet, TraceEvent.TRANSMIT)
            losses_before = link.stats.channel_losses
            original_finish(packet)
            if link.stats.channel_losses > losses_before:
                self._record(link, packet, TraceEvent.CHANNEL_LOSS)

        def deliver(packet: Packet) -> None:
            self._record(link, packet, TraceEvent.DELIVER)
            original_deliver(packet)

        link.send = send  # type: ignore[method-assign]
        link._finish_transmission = finish  # type: ignore[method-assign]
        link._deliver = deliver  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    def events_of(self, kind: TraceEvent) -> List[TraceRecord]:
        """All records of one event kind, in time order."""
        return [r for r in self.records if r.event is kind]

    def count(self, kind: TraceEvent) -> int:
        """Number of records of one kind."""
        return sum(1 for r in self.records if r.event is kind)

    def per_flow_counts(self, kind: TraceEvent) -> dict:
        """``{flow_id: count}`` for one event kind."""
        counts: dict = {}
        for r in self.records:
            if r.event is kind:
                counts[r.flow_id] = counts.get(r.flow_id, 0) + 1
        return counts

    def one_way_delays(self, flow_id: str) -> List[float]:
        """Enqueue-to-deliver delays per packet uid for one flow."""
        enqueued = {}
        delays = []
        for r in self.records:
            if r.flow_id != flow_id:
                continue
            if r.event is TraceEvent.ENQUEUE and r.uid not in enqueued:
                enqueued[r.uid] = r.time
            elif r.event is TraceEvent.DELIVER and r.uid in enqueued:
                delays.append(r.time - enqueued.pop(r.uid))
        return delays
