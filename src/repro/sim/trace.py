"""Packet-level event tracing.

A :class:`PacketTracer` hooks one or more links and records a compact
event log — ``(time, event, link, flow_id, seq-or-uid, size, color)`` —
that experiments and debugging sessions can filter and summarize.  The
hooks are the links' public callbacks plus light wrappers, so tracing
can be enabled per link with no global switches.

Storage is columnar (PR 4): each record is one append per field into
flat :mod:`array` buffers — times as doubles, uids/sizes as 64-bit
ints, event/link/flow/color as small interned ids — instead of a
``TraceRecord`` object per packet event.  The ring bound is kept with a
head offset and amortized compaction, so exceeding ``max_records``
costs O(1) per record instead of the seed's ``list.pop(0)`` O(n).  The
historical ``records`` list of :class:`TraceRecord` is materialized on
demand; the summary queries run directly over the columns.
"""

from __future__ import annotations

import enum
from array import array
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.sim.link import Link
from repro.sim.packet import Color, Packet

#: Color names indexed by ``Color.value`` (derived, so it cannot drift).
_COLOR_NAMES = tuple(
    c.name for c in sorted(Color, key=lambda color: color.value)
)


class TraceEvent(enum.Enum):
    """Kind of a traced occurrence."""

    ENQUEUE = "enq"
    DROP = "drop"
    TRANSMIT = "tx"
    DELIVER = "rx"
    CHANNEL_LOSS = "chloss"


_EVENTS = tuple(TraceEvent)
_EVENT_INDEX = {event: i for i, event in enumerate(_EVENTS)}


@dataclass(frozen=True)
class TraceRecord:
    """One traced packet event."""

    time: float
    event: TraceEvent
    link: str
    flow_id: str
    uid: int
    size: int
    color: str


class PacketTracer:
    """Records packet events on instrumented links.

    Parameters
    ----------
    flow_filter:
        When given, only packets of these flow ids are recorded.
    max_records:
        Ring-buffer bound; oldest records are discarded beyond it.
    """

    def __init__(
        self,
        flow_filter: Optional[Iterable[str]] = None,
        max_records: int = 100_000,
    ):
        self.flow_filter = set(flow_filter) if flow_filter is not None else None
        self.max_records = max_records
        self.dropped_records = 0
        # columnar storage; _head marks the oldest live row
        self._times = array("d")
        self._events = array("b")
        self._links = array("i")
        self._flows = array("i")
        self._uids = array("q")
        self._sizes = array("q")
        self._colors = array("b")
        self._head = 0
        self._link_ids: Dict[str, int] = {}
        self._link_names: List[str] = []
        self._flow_ids: Dict[str, int] = {}
        self._flow_names: List[str] = []

    # ------------------------------------------------------------------
    def attach(self, link: Link) -> None:
        """Instrument one link (stackable with existing callbacks)."""
        self._chain_drop(link)
        self._wrap_transmission(link)

    def _record(self, link: Link, packet: Packet, event: TraceEvent) -> None:
        flow = packet.flow_id
        if self.flow_filter is not None and flow not in self.flow_filter:
            return
        if len(self._times) - self._head >= self.max_records:
            self._head += 1
            self.dropped_records += 1
            if self._head >= self.max_records:
                self._compact()
        link_id = self._link_ids.get(link.name)
        if link_id is None:
            link_id = self._link_ids[link.name] = len(self._link_names)
            self._link_names.append(link.name)
        flow_id = self._flow_ids.get(flow)
        if flow_id is None:
            flow_id = self._flow_ids[flow] = len(self._flow_names)
            self._flow_names.append(flow)
        self._times.append(link.sim.now)
        self._events.append(_EVENT_INDEX[event])
        self._links.append(link_id)
        self._flows.append(flow_id)
        self._uids.append(packet.uid)
        self._sizes.append(packet.size)
        self._colors.append(packet.color.value)

    def _compact(self) -> None:
        """Drop the dead prefix once it reaches ``max_records`` rows.

        Amortized O(1) per record: each compaction moves at most
        ``max_records`` live rows after ``max_records`` discards.
        """
        head = self._head
        for name in ("_times", "_events", "_links", "_flows", "_uids",
                     "_sizes", "_colors"):
            column = getattr(self, name)
            del column[:head]
        self._head = 0

    def _chain_drop(self, link: Link) -> None:
        previous: Optional[Callable[[Packet], None]] = link.on_drop

        def on_drop(packet: Packet) -> None:
            self._record(link, packet, TraceEvent.DROP)
            if previous is not None:
                previous(packet)

        link.on_drop = on_drop

    def _wrap_transmission(self, link: Link) -> None:
        original_send = link.send
        original_finish = link._finish_transmission
        original_deliver = link._deliver

        def send(packet: Packet) -> bool:
            accepted = original_send(packet)
            if accepted:
                self._record(link, packet, TraceEvent.ENQUEUE)
            return accepted

        def finish(packet: Packet) -> None:
            self._record(link, packet, TraceEvent.TRANSMIT)
            losses_before = link.stats.channel_losses
            # NOTE: a lost pool-managed packet is released inside the
            # original finish, but nothing can re-acquire it before the
            # field reads below (acquires only happen in agent sends)
            original_finish(packet)
            if link.stats.channel_losses > losses_before:
                self._record(link, packet, TraceEvent.CHANNEL_LOSS)

        def deliver(packet: Packet) -> None:
            self._record(link, packet, TraceEvent.DELIVER)
            original_deliver(packet)

        link.send = send  # type: ignore[method-assign]
        link._finish_transmission = finish  # type: ignore[method-assign]
        link._deliver = deliver  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    def _row(self, i: int) -> TraceRecord:
        return TraceRecord(
            time=self._times[i],
            event=_EVENTS[self._events[i]],
            link=self._link_names[self._links[i]],
            flow_id=self._flow_names[self._flows[i]],
            uid=self._uids[i],
            size=self._sizes[i],
            color=_COLOR_NAMES[self._colors[i]],
        )

    @property
    def records(self) -> List[TraceRecord]:
        """All live records, oldest first — materialized view (O(n))."""
        return [self._row(i) for i in range(self._head, len(self._times))]

    def events_of(self, kind: TraceEvent) -> List[TraceRecord]:
        """All records of one event kind, in time order."""
        code = _EVENT_INDEX[kind]
        events = self._events
        return [
            self._row(i)
            for i in range(self._head, len(events))
            if events[i] == code
        ]

    def count(self, kind: TraceEvent) -> int:
        """Number of records of one kind."""
        code = _EVENT_INDEX[kind]
        events = self._events
        return sum(
            1 for i in range(self._head, len(events)) if events[i] == code
        )

    def per_flow_counts(self, kind: TraceEvent) -> dict:
        """``{flow_id: count}`` for one event kind."""
        code = _EVENT_INDEX[kind]
        events = self._events
        flows = self._flows
        counts_by_id: Dict[int, int] = {}
        for i in range(self._head, len(events)):
            if events[i] == code:
                fid = flows[i]
                counts_by_id[fid] = counts_by_id.get(fid, 0) + 1
        return {
            self._flow_names[fid]: n for fid, n in counts_by_id.items()
        }

    def one_way_delays(self, flow_id: str) -> List[float]:
        """Enqueue-to-deliver delays per packet uid for one flow."""
        target = self._flow_ids.get(flow_id)
        if target is None:
            return []
        enq_code = _EVENT_INDEX[TraceEvent.ENQUEUE]
        rx_code = _EVENT_INDEX[TraceEvent.DELIVER]
        events = self._events
        flows = self._flows
        uids = self._uids
        times = self._times
        enqueued: Dict[int, float] = {}
        delays: List[float] = []
        for i in range(self._head, len(events)):
            if flows[i] != target:
                continue
            code = events[i]
            uid = uids[i]
            if code == enq_code and uid not in enqueued:
                enqueued[uid] = times[i]
            elif code == rx_code and uid in enqueued:
                delays.append(times[i] - enqueued.pop(uid))
        return delays
