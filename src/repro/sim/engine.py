"""Discrete-event simulation engine.

The engine is a classic calendar of ``(time, tie-break, callback)``
entries kept in a binary heap.  It is deliberately small and
deterministic:

* events scheduled for the same instant fire in scheduling order;
* every source of randomness is a named :class:`random.Random` stream
  derived from the simulator seed, so adding a new randomized component
  never perturbs the draws seen by existing components;
* cancellation is O(1) (events are tombstoned, not removed).

Typical use::

    sim = Simulator(seed=1)
    sim.schedule(0.5, lambda: print("hello at", sim.now))
    sim.run(until=10.0)
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Dict, List, Optional


class SimulationError(Exception):
    """Raised for invalid uses of the engine (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule`; keep the handle
    if the event may have to be cancelled (timers, retransmissions).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim", "_popped")

    def __init__(self, time: float, seq: int, fn: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim: Optional["Simulator"] = None
        self._popped = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            # keep the owning simulator's live-event count exact; a
            # cancel after the event already fired must not decrement
            if self._sim is not None and not self._popped:
                self._sim._live -= 1

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, fn={getattr(self.fn, '__name__', self.fn)!r}, {state})"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed.  All random streams handed out by :meth:`rng` are
        derived from it.
    """

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self.seed = seed
        self._heap: List[Event] = []
        self._seq = 0
        self._live = 0
        self._rngs: Dict[str, random.Random] = {}
        self._running = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r}s in the past")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time!r} (now t={self.now!r})"
            )
        ev = Event(time, self._seq, fn, args)
        ev._sim = self
        self._seq += 1
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel an event handle previously returned by ``schedule``."""
        if event is not None:
            event.cancel()

    # ------------------------------------------------------------------
    # random streams
    # ------------------------------------------------------------------
    def rng(self, name: str) -> random.Random:
        """Return the named random stream, creating it on first use.

        Streams are independent deterministic functions of
        ``(self.seed, name)``.
        """
        stream = self._rngs.get(name)
        if stream is None:
            stream = random.Random(f"{self.seed}:{name}")
            self._rngs[name] = stream
        return stream

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the next event would be strictly later than this
            time.  ``sim.now`` is advanced to ``until`` on exhaustion.
        max_events:
            Safety valve; stop after this many callbacks.

        Returns
        -------
        int
            Number of events processed by this call.
        """
        processed = 0
        self._running = True
        try:
            while self._heap:
                if max_events is not None and processed >= max_events:
                    break
                ev = self._heap[0]
                if ev.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and ev.time > until:
                    break
                heapq.heappop(self._heap)
                ev._popped = True
                self._live -= 1
                self.now = ev.time
                ev.fn(*ev.args)
                processed += 1
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        self._events_processed += processed
        return processed

    def step(self) -> bool:
        """Process a single event.  Returns False when the calendar is empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            ev._popped = True
            self._live -= 1
            self.now = ev.time
            ev.fn(*ev.args)
            self._events_processed += 1
            return True
        return False

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still in the calendar.

        O(1): a counter maintained on schedule/cancel/pop, instead of a
        scan over the heap (this property sits inside assertion-heavy
        loops in tests and scenarios).
        """
        return self._live

    @property
    def events_processed(self) -> int:
        """Total callbacks executed since construction."""
        return self._events_processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(t={self.now:.6f}, pending={self.pending})"


class Timer:
    """Restartable one-shot timer bound to a simulator.

    Protocols use timers heavily (RTO, TFRC nofeedback, feedback pacing);
    this helper wraps the schedule/cancel bookkeeping::

        t = Timer(sim, self._on_rto)
        t.restart(3.0)   # (re)arm 3 s from now
        t.stop()
    """

    def __init__(self, sim: Simulator, callback: Callable[[], None]):
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None

    def restart(self, delay: float) -> None:
        """Arm the timer ``delay`` seconds from now, cancelling any pending shot."""
        self.stop()
        self._event = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        """Disarm the timer.  Idempotent."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()

    @property
    def armed(self) -> bool:
        """True while a shot is pending."""
        return self._event is not None and not self._event.cancelled

    @property
    def expiry(self) -> Optional[float]:
        """Absolute time of the pending shot, or None when disarmed."""
        if self.armed:
            assert self._event is not None
            return self._event.time
        return None
