"""Discrete-event simulation engine.

The engine is a classic calendar of ``(time, tie-break, event)``
entries kept in a binary heap.  It is deliberately small and
deterministic:

* events scheduled for the same instant fire in scheduling order;
* every source of randomness is a named :class:`random.Random` stream
  derived from the simulator seed, so adding a new randomized component
  never perturbs the draws seen by existing components;
* cancellation is O(1) (events are tombstoned, not removed).

Typical use::

    sim = Simulator(seed=1)
    sim.schedule(0.5, lambda: print("hello at", sim.now))
    sim.run(until=10.0)

Fast-path invariants (PR 2 perf overhaul — future PRs must not break
these; ``benchmarks/test_p1_core_speed.py`` and the golden tests in
``tests/test_determinism_golden.py`` pin both the speed and the exact
event traces):

* **Tuple-backed heap.** ``Simulator._heap`` holds plain
  ``(time, seq, Event)`` tuples, never bare ``Event`` objects: heap
  sift comparisons then run entirely on C-level float/int tuple
  compares instead of calling ``Event.__lt__`` (which dominated the
  seed profile at ~1.3 M calls per 10 s of simulated T1).  ``seq`` is
  unique per simulator, so the ``Event`` element is never compared.
* **Ordering contract.** The pushed key is exactly ``(time, seq)``
  with ``seq`` a monotonically increasing per-simulator counter —
  identical to the seed engine's ``Event.__lt__``; event firing order
  (and therefore every downstream random draw) is bit-identical.
* **O(1) schedule fast path.** :meth:`Simulator.schedule` pushes
  directly (no ``schedule_at`` indirection, no absolute-time
  re-validation — ``delay >= 0`` already implies ``time >= now``).
* **Hoisted run loop.** :meth:`Simulator.run` binds the heap, heappop
  and mutable counters to locals and specializes the common
  ``(until, no max_events)`` case; ``self.now``/``self._live`` are
  written back on every event (callbacks read them) but never re-read
  through attribute lookups inside the loop.
* **Lazy deletion.** Cancelled events stay in the heap as tombstones
  (``Event.cancelled``) and are discarded at pop time; the ``pending``
  property is an O(1) counter maintained on schedule/cancel/pop.

Allocation-reuse invariants (PR 4 — same proof obligations as above;
``REPRO_NO_POOL`` only affects the *packet* pool, the event reuse below
is always on):

* **Pooled no-handle events.** :meth:`Simulator.schedule_pooled` is the
  hot-path variant used where the caller never needs the returned
  handle (link serialization/delivery events): it recycles ``Event``
  objects from a per-simulator free list and returns ``None``.  A
  pooled event is recycled only *after* its callback ran (never while
  in the heap), and because no handle escapes it can never be
  cancelled — so a recycled object can never alias a live tombstone.
  Future PRs must keep both halves of that bargain: never hand out a
  pooled event, and never recycle before the pop-and-fire completes.
* **Seq parity.** ``schedule_pooled`` and :meth:`Timer.restart` consume
  exactly one ``seq`` per call, like ``schedule`` — the ``(time, seq)``
  ordering contract (and therefore every golden digest) is unchanged by
  reuse.
* **Timer re-arm without allocating.** After a :class:`Timer` fires,
  the popped ``Event`` is kept as a spare and re-initialized on the
  next ``restart`` (fresh ``time``/``seq``, flags cleared) instead of
  allocating.  A restart *while armed* tombstones the pending event in
  the heap and then re-arms the spare if one exists (allocating only
  when it does not) — the spare is always an already-fired object, so
  this never touches the tombstone.  The invariant future PRs must
  keep: a tombstoned (cancelled-in-heap) event object is never
  re-armed, or it would fire twice when its stale heap entry pops.
"""

from __future__ import annotations

import heapq
import random
from time import perf_counter as _perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

_heappush = heapq.heappush
_heappop = heapq.heappop
_event_new = object.__new__

# Observability run hook (repro.obs.metrics installs/uninstalls this via
# enable_metrics()/disable_metrics()).  When None — the default — the
# engine is structurally unobserved: run() checks the global once at
# entry and once at exit, never inside the event loop, and simulators
# constructed while it is None do not even track their links.
_obs_run_hook: Optional[Callable[["Simulator", int, float], None]] = None


class SimulationError(Exception):
    """Raised for invalid uses of the engine (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule`; keep the handle
    if the event may have to be cancelled (timers, retransmissions).
    The heap itself stores ``(time, seq, event)`` tuples (see the module
    docstring), so events are never compared during heap sifts.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim", "_popped", "_pooled")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., None],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim
        self._popped = False
        # True for events created by Simulator.schedule_pooled: no
        # handle ever escaped, so the run loop may recycle the object
        # after firing it
        self._pooled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            # keep the owning simulator's live-event count exact; a
            # cancel after the event already fired must not decrement
            if self._sim is not None and not self._popped:
                self._sim._live -= 1

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, fn={getattr(self.fn, '__name__', self.fn)!r}, {state})"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed.  All random streams handed out by :meth:`rng` are
        derived from it.
    """

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self.seed = seed
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._live = 0
        self._rngs: Dict[str, random.Random] = {}
        self._running = False
        self._events_processed = 0
        self._event_pool: List[Event] = []
        # populated by Link.__init__ only while the metrics plane is on
        # at construction time; None means "not tracking" (the default)
        self._obs_links: Optional[List[Any]] = (
            [] if _obs_run_hook is not None else None
        )

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r}s in the past")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        # hottest allocation site in the engine: build the Event with
        # direct slot stores (no __init__ frame), field-for-field the
        # same object Event(...) would produce
        ev = _event_new(Event)
        ev.time = time
        ev.seq = seq
        ev.fn = fn
        ev.args = args
        ev.cancelled = False
        ev._sim = self
        ev._popped = False
        ev._pooled = False
        _heappush(self._heap, (time, seq, ev))
        self._live += 1
        return ev

    def schedule_pooled(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Hot-path schedule for callers that never keep the handle.

        Recycles ``Event`` objects from a per-simulator free list (see
        the module docstring's allocation-reuse invariants) and returns
        ``None`` — the event cannot be cancelled, which is exactly what
        makes the recycling safe.  Ordering is identical to
        :meth:`schedule` (one ``seq`` consumed per call).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r}s in the past")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        pool = self._event_pool
        if pool:
            ev = pool.pop()
            ev.time = time
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev._popped = False
        else:
            ev = Event(time, seq, fn, args, self)
            ev._pooled = True
        _heappush(self._heap, (time, seq, ev))
        self._live += 1

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time!r} (now t={self.now!r})"
            )
        seq = self._seq
        self._seq = seq + 1
        ev = Event(time, seq, fn, args, self)
        _heappush(self._heap, (time, seq, ev))
        self._live += 1
        return ev

    def _rearm(self, ev: Event, delay: float) -> Event:
        """Re-arm a popped, never-shared event object (Timer fast path).

        The caller (only :class:`Timer`) guarantees ``ev`` already fired
        — it is not in the heap and no tombstone references it — so
        re-initializing it in place is indistinguishable from a fresh
        allocation.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r}s in the past")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        ev.time = time
        ev.seq = seq
        ev.cancelled = False
        ev._popped = False
        _heappush(self._heap, (time, seq, ev))
        self._live += 1
        return ev

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel an event handle previously returned by ``schedule``."""
        if event is not None:
            event.cancel()

    # ------------------------------------------------------------------
    # random streams
    # ------------------------------------------------------------------
    def rng(self, name: str) -> random.Random:
        """Return the named random stream, creating it on first use.

        Streams are independent deterministic functions of
        ``(self.seed, name)``.
        """
        stream = self._rngs.get(name)
        if stream is None:
            stream = random.Random(f"{self.seed}:{name}")
            self._rngs[name] = stream
        return stream

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the next event would be strictly later than this
            time.  ``sim.now`` is advanced to ``until`` on exhaustion.
        max_events:
            Safety valve; stop after this many callbacks.

        Returns
        -------
        int
            Number of events processed by this call.
        """
        processed = 0
        self._running = True
        # observability: the hook global is read once per run() call —
        # the event loop below is identical whether or not it is set
        hook = _obs_run_hook
        wall_start = _perf_counter() if hook is not None else 0.0
        heap = self._heap
        pop = _heappop
        pool = self._event_pool
        pool_append = pool.append
        try:
            if max_events is None:
                if until is None:
                    # drain-everything fast path: pop unconditionally
                    while heap:
                        time, _, ev = pop(heap)
                        if ev.cancelled:
                            continue
                        ev._popped = True
                        self._live -= 1
                        self.now = time
                        ev.fn(*ev.args)
                        processed += 1
                        if ev._pooled:
                            # fired, handle never escaped: reusable
                            ev.args = ()
                            pool_append(ev)
                else:
                    # horizon fast path: peek, purge tombstones, stop at
                    # the first live event strictly past ``until``
                    while heap:
                        head = heap[0]
                        ev = head[2]
                        if ev.cancelled:
                            pop(heap)
                            continue
                        time = head[0]
                        if time > until:
                            break
                        pop(heap)
                        ev._popped = True
                        self._live -= 1
                        self.now = time
                        ev.fn(*ev.args)
                        processed += 1
                        if ev._pooled:
                            ev.args = ()
                            pool_append(ev)
            else:
                while heap:
                    if processed >= max_events:
                        break
                    head = heap[0]
                    ev = head[2]
                    if ev.cancelled:
                        pop(heap)
                        continue
                    time = head[0]
                    if until is not None and time > until:
                        break
                    pop(heap)
                    ev._popped = True
                    self._live -= 1
                    self.now = time
                    ev.fn(*ev.args)
                    processed += 1
                    if ev._pooled:
                        ev.args = ()
                        pool_append(ev)
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        self._events_processed += processed
        if hook is not None:
            hook(self, processed, _perf_counter() - wall_start)
        return processed

    def step(self) -> bool:
        """Process a single event.  Returns False when the calendar is empty."""
        heap = self._heap
        while heap:
            time, _, ev = _heappop(heap)
            if ev.cancelled:
                continue
            ev._popped = True
            self._live -= 1
            self.now = time
            ev.fn(*ev.args)
            self._events_processed += 1
            if ev._pooled:
                ev.args = ()
                self._event_pool.append(ev)
            return True
        return False

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still in the calendar.

        O(1): a counter maintained on schedule/cancel/pop, instead of a
        scan over the heap (this property sits inside assertion-heavy
        loops in tests and scenarios).
        """
        return self._live

    @property
    def events_processed(self) -> int:
        """Total callbacks executed since construction."""
        return self._events_processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(t={self.now:.6f}, pending={self.pending})"


class Timer:
    """Restartable one-shot timer bound to a simulator.

    Protocols use timers heavily (RTO, TFRC nofeedback, feedback pacing);
    this helper wraps the schedule/cancel bookkeeping::

        t = Timer(sim, self._on_rto)
        t.restart(3.0)   # (re)arm 3 s from now
        t.stop()
    """

    def __init__(self, sim: Simulator, callback: Callable[[], None]):
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None
        # the last event that *fired* (popped, handle never shared):
        # reused by the next restart so periodic re-arm-after-fire —
        # RTO backoff, TFRC nofeedback/feedback pacing — allocates
        # nothing.  A shot cancelled while armed is NOT reusable (its
        # tombstone is still in the heap): restart() tombstones it and
        # re-arms the spare when one exists (the spare already fired,
        # so it is a different object), allocating only without one.
        self._spare: Optional[Event] = None

    def restart(self, delay: float) -> None:
        """Arm the timer ``delay`` seconds from now, cancelling any pending shot."""
        event = self._event
        if event is not None:
            event.cancel()
            self._event = None
        spare = self._spare
        if spare is not None:
            self._spare = None
            self._event = self._sim._rearm(spare, delay)
        else:
            self._event = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        """Disarm the timer.  Idempotent."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        event = self._event  # just popped by the run loop
        if event is not None:
            self._spare = event
        self._event = None
        self._callback()

    @property
    def armed(self) -> bool:
        """True while a shot is pending."""
        return self._event is not None and not self._event.cancelled

    @property
    def expiry(self) -> Optional[float]:
        """Absolute time of the pending shot, or None when disarmed."""
        if self.armed:
            assert self._event is not None
            return self._event.time
        return None
