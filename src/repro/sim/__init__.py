"""Discrete-event network simulator substrate.

The simulator is packet-level and fully deterministic for a given seed.
It provides:

* :class:`repro.sim.engine.Simulator` — event loop, timers and
  namespaced random streams;
* :class:`repro.sim.packet.Packet` — the unit of transmission with
  typed protocol headers;
* :class:`repro.sim.node.Node` and :class:`repro.sim.link.Link` —
  store-and-forward forwarding with pluggable queues and channels;
* :mod:`repro.sim.queues` — DropTail, RED and RIO queue disciplines;
* :mod:`repro.sim.topology` — dumbbell / chain / star builders with
  static shortest-path routing.
"""

from repro.sim.engine import Event, Simulator, Timer
from repro.sim.packet import Color, Packet, PacketKind, PacketPool
from repro.sim.node import Agent, Node
from repro.sim.link import Link
from repro.sim.topology import Network, chain, dumbbell, star

__all__ = [
    "Simulator",
    "Event",
    "Timer",
    "Packet",
    "PacketKind",
    "PacketPool",
    "Color",
    "Node",
    "Agent",
    "Link",
    "Network",
    "dumbbell",
    "chain",
    "star",
]
