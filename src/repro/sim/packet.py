"""Packet model and protocol headers.

A :class:`Packet` is the unit handled by links, queues and agents.  It
carries addressing (source/destination node names plus a flow id used
for endpoint demultiplexing), a size in bytes, a DiffServ ``color`` and
one typed protocol header.

Headers are plain dataclasses — one per protocol message type — so that
agents can dispatch on ``type(packet.header)`` and tests can construct
messages directly.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple


class Color(enum.Enum):
    """DiffServ drop-precedence color assigned by edge markers.

    ``GREEN`` is in-profile (protected by the AF assurance), ``YELLOW``
    and ``RED`` are increasingly out-of-profile.  Unmarked best-effort
    traffic is treated as ``RED`` by RIO queues configured for AF.
    """

    GREEN = 0
    YELLOW = 1
    RED = 2


class PacketKind(enum.Enum):
    """Coarse traffic class of a packet, used by traces and queues."""

    DATA = 0
    ACK = 1
    FEEDBACK = 2
    CONTROL = 3


#: Module-level uid source.  ``_next_uid`` is the counter's bound
#: ``__next__`` — called directly as the dataclass default factory, it
#: skips the lambda frame the seed code paid on every packet.
_uid_counter = itertools.count(1)
_next_uid = _uid_counter.__next__


# ----------------------------------------------------------------------
# protocol headers
# ----------------------------------------------------------------------
@dataclass(slots=True)
class TfrcDataHeader:
    """TFRC data packet header (RFC 3448 §3.1).

    Attributes
    ----------
    seq: sender packet sequence number.
    timestamp: send time, echoed back for RTT measurement.
    rtt_estimate: sender's current RTT estimate, used by the receiver to
        cluster losses into loss events.
    forward_ack: PR-SCTP-style forward cumulative-ack point — every
        sequence number below it is either delivered or *abandoned* by
        the sender's reliability policy and will never be
        (re)transmitted, so the receiver may advance its cumulative ack
        past those holes.
    """

    seq: int
    timestamp: float
    rtt_estimate: float
    forward_ack: int = 0


@dataclass(slots=True)
class TfrcFeedbackHeader:
    """Standard TFRC receiver report (RFC 3448 §3.2).

    Attributes
    ----------
    timestamp_echo: timestamp of the most recent data packet.
    elapsed: time between receiving that packet and sending this report.
    x_recv: receive rate (bytes/s — transport-layer rates are bytes/s
        throughout this package; link rates are bits/s).
    p: receiver-computed loss event rate.
    last_seq: highest sequence number seen (diagnostic).
    """

    timestamp_echo: float
    elapsed: float
    x_recv: float
    p: float
    last_seq: int


@dataclass(slots=True)
class SackFeedbackHeader:
    """SACK-bearing receiver report (RFC 2018 block rules).

    Used by both paper instances.  A QTPlight receiver does *no*
    loss-rate computation: it reports the cumulative ack, up to N SACK
    blocks (``[start, end)`` ranges received above the cumulative ack)
    and the raw ingredients (``recv_bytes``, timestamps) the sender
    needs to run RFC 3448 estimation itself; ``p`` stays ``None``.  A
    QTPAF receiver additionally fills ``p`` and ``x_recv`` with the
    receiver-side RFC 3448 estimates.
    """

    cum_ack: int
    blocks: Tuple[Tuple[int, int], ...]
    timestamp_echo: float
    elapsed: float
    recv_bytes: int
    last_seq: int
    interval: float = 0.0  # receiver-measured time since previous report
    p: Optional[float] = None
    x_recv: Optional[float] = None


@dataclass(slots=True)
class TcpSegmentHeader:
    """TCP segment header (data and/or ack).

    ``seq`` is a byte offset; ``payload`` the number of payload bytes.
    ``ack`` is cumulative; ``sack_blocks`` optional RFC 2018 blocks.
    """

    seq: int
    payload: int
    ack: int = -1
    syn: bool = False
    fin: bool = False
    sack_blocks: Tuple[Tuple[int, int], ...] = ()
    timestamp: float = 0.0
    timestamp_echo: float = 0.0


@dataclass(slots=True)
class NegotiationHeader:
    """Versatile-transport capability negotiation message (§1 of the paper).

    ``offer`` carries a serialized capability set (dict) during connection
    setup; ``accepted`` the chosen profile on the way back.
    """

    phase: str  # "offer" | "accept" | "reject"
    payload: dict


@dataclass(slots=True)
class AppDataHeader:
    """Opaque application payload rider for reliability/delivery tests.

    Attributes
    ----------
    app_seq: application-level message number.
    frame_type: e.g. "I", "P", "B" for media sources; "" for bulk data.
    deadline: absolute playout deadline (partial-reliability policies),
        ``None`` when the message has no deadline.
    """

    app_seq: int = -1
    frame_type: str = ""
    deadline: Optional[float] = None


# ----------------------------------------------------------------------
# packet
# ----------------------------------------------------------------------
@dataclass(slots=True)
class Packet:
    """A simulated packet.

    Attributes
    ----------
    src, dst: node names of the endpoints.
    flow_id: endpoint demultiplexing key; both directions of one
        connection share it.
    size: total size in bytes (headers included) — what links serialize.
    kind: coarse class for traces and schedulers.
    header: typed protocol header (one of the dataclasses above).
    color: DiffServ drop precedence, set by edge markers.
    created_at: simulation time of creation at the sender.
    app: optional application rider (:class:`AppDataHeader`).
    """

    src: str
    dst: str
    flow_id: str
    size: int
    kind: PacketKind = PacketKind.DATA
    header: object = None
    color: Color = Color.RED
    created_at: float = 0.0
    app: Optional[AppDataHeader] = None
    uid: int = field(default_factory=_next_uid)
    hops: int = 0

    def reply_to(self) -> Tuple[str, str]:
        """Return ``(src, dst)`` for a packet answering this one."""
        return self.dst, self.src

    def copy(self, **changes) -> "Packet":
        """Shallow copy with a fresh uid and optional field overrides.

        Not used on the forwarding fast path: links, queues and nodes
        pass the *same* ``Packet`` object end to end (one allocation per
        transmission), so copies are reserved for genuine duplication
        (retransmission buffers, tests).
        """
        changes.setdefault("uid", _next_uid())
        return replace(self, **changes)

    @property
    def bits(self) -> int:
        """Size in bits, as serialized by links."""
        return self.size * 8

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(#{self.uid} {self.src}->{self.dst} flow={self.flow_id} "
            f"{self.kind.name} {self.size}B {self.color.name})"
        )


def total_bytes(packets: List[Packet]) -> int:
    """Sum of packet sizes; convenience for tests and metrics."""
    return sum(p.size for p in packets)
