"""Packet model, protocol headers and the per-simulator packet pool.

A :class:`Packet` is the unit handled by links, queues and agents.  It
carries addressing (source/destination node names plus a flow id used
for endpoint demultiplexing), a size in bytes, a DiffServ ``color`` and
one typed protocol header.

Headers are plain dataclasses — one per protocol message type — so that
agents can dispatch on ``type(packet.header)`` and tests can construct
messages directly.

Allocation-free fast path (PR 4): every simulated packet used to cost a
fresh ``Packet`` plus a fresh header dataclass.  :class:`PacketPool` is
a per-simulator free list that recycles both together: transport
senders *acquire* a recycled ``(Packet, header)`` pair of the right
header class (falling back to normal construction on a miss), and the
audited terminal sinks — receiver consumption, queue drops, channel
losses — *release* it back.  See the class docstring for the exact
re-init and safety semantics; ``REPRO_NO_POOL=1`` disables pooling
entirely (bit-identical results either way — the goldens prove it).
"""

from __future__ import annotations

import enum
import itertools
import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple


class Color(enum.Enum):
    """DiffServ drop-precedence color assigned by edge markers.

    ``GREEN`` is in-profile (protected by the AF assurance), ``YELLOW``
    and ``RED`` are increasingly out-of-profile.  Unmarked best-effort
    traffic is treated as ``RED`` by RIO queues configured for AF.
    """

    GREEN = 0
    YELLOW = 1
    RED = 2


class PacketKind(enum.Enum):
    """Coarse traffic class of a packet, used by traces and queues."""

    DATA = 0
    ACK = 1
    FEEDBACK = 2
    CONTROL = 3


#: Module-level uid source.  ``_next_uid`` is the counter's bound
#: ``__next__`` — called directly as the dataclass default factory, it
#: skips the lambda frame the seed code paid on every packet.
_uid_counter = itertools.count(1)
_next_uid = _uid_counter.__next__


# ----------------------------------------------------------------------
# protocol headers
# ----------------------------------------------------------------------
@dataclass(slots=True)
class TfrcDataHeader:
    """TFRC data packet header (RFC 3448 §3.1).

    Attributes
    ----------
    seq: sender packet sequence number.
    timestamp: send time, echoed back for RTT measurement.
    rtt_estimate: sender's current RTT estimate, used by the receiver to
        cluster losses into loss events.
    forward_ack: PR-SCTP-style forward cumulative-ack point — every
        sequence number below it is either delivered or *abandoned* by
        the sender's reliability policy and will never be
        (re)transmitted, so the receiver may advance its cumulative ack
        past those holes.
    """

    seq: int
    timestamp: float
    rtt_estimate: float
    forward_ack: int = 0


@dataclass(slots=True)
class TfrcFeedbackHeader:
    """Standard TFRC receiver report (RFC 3448 §3.2).

    Attributes
    ----------
    timestamp_echo: timestamp of the most recent data packet.
    elapsed: time between receiving that packet and sending this report.
    x_recv: receive rate (bytes/s — transport-layer rates are bytes/s
        throughout this package; link rates are bits/s).
    p: receiver-computed loss event rate.
    last_seq: highest sequence number seen (diagnostic).
    """

    timestamp_echo: float
    elapsed: float
    x_recv: float
    p: float
    last_seq: int


@dataclass(slots=True)
class SackFeedbackHeader:
    """SACK-bearing receiver report (RFC 2018 block rules).

    Used by both paper instances.  A QTPlight receiver does *no*
    loss-rate computation: it reports the cumulative ack, up to N SACK
    blocks (``[start, end)`` ranges received above the cumulative ack)
    and the raw ingredients (``recv_bytes``, timestamps) the sender
    needs to run RFC 3448 estimation itself; ``p`` stays ``None``.  A
    QTPAF receiver additionally fills ``p`` and ``x_recv`` with the
    receiver-side RFC 3448 estimates.
    """

    cum_ack: int
    blocks: Tuple[Tuple[int, int], ...]
    timestamp_echo: float
    elapsed: float
    recv_bytes: int
    last_seq: int
    interval: float = 0.0  # receiver-measured time since previous report
    p: Optional[float] = None
    x_recv: Optional[float] = None


@dataclass(slots=True)
class TcpSegmentHeader:
    """TCP segment header (data and/or ack).

    ``seq`` is a byte offset; ``payload`` the number of payload bytes.
    ``ack`` is cumulative; ``sack_blocks`` optional RFC 2018 blocks.
    """

    seq: int
    payload: int
    ack: int = -1
    syn: bool = False
    fin: bool = False
    sack_blocks: Tuple[Tuple[int, int], ...] = ()
    timestamp: float = 0.0
    timestamp_echo: float = 0.0


@dataclass(slots=True)
class NegotiationHeader:
    """Versatile-transport capability negotiation message (§1 of the paper).

    ``offer`` carries a serialized capability set (dict) during connection
    setup; ``accepted`` the chosen profile on the way back.
    """

    phase: str  # "offer" | "accept" | "reject"
    payload: dict


@dataclass(slots=True)
class AppDataHeader:
    """Opaque application payload rider for reliability/delivery tests.

    Attributes
    ----------
    app_seq: application-level message number.
    frame_type: e.g. "I", "P", "B" for media sources; "" for bulk data.
    deadline: absolute playout deadline (partial-reliability policies),
        ``None`` when the message has no deadline.
    """

    app_seq: int = -1
    frame_type: str = ""
    deadline: Optional[float] = None


# ----------------------------------------------------------------------
# packet
# ----------------------------------------------------------------------
@dataclass(slots=True)
class Packet:
    """A simulated packet.

    Attributes
    ----------
    src, dst: node names of the endpoints.
    flow_id: endpoint demultiplexing key; both directions of one
        connection share it.
    size: total size in bytes (headers included) — what links serialize.
    kind: coarse class for traces and schedulers.
    header: typed protocol header (one of the dataclasses above).
    color: DiffServ drop precedence, set by edge markers.
    created_at: simulation time of creation at the sender.
    app: optional application rider (:class:`AppDataHeader`).
    """

    src: str
    dst: str
    flow_id: str
    size: int
    kind: PacketKind = PacketKind.DATA
    header: object = None
    color: Color = Color.RED
    created_at: float = 0.0
    app: Optional[AppDataHeader] = None
    uid: int = field(default_factory=_next_uid)
    hops: int = 0
    #: True only while the packet's lifecycle is managed by a
    #: :class:`PacketPool` (set by ``acquire`` / by the pooled sender on
    #: a miss, cleared by ``release``).  Hand-built packets stay False
    #: and are therefore never recycled, so tests and apps may hold on
    #: to them freely.
    pooled: bool = field(default=False, repr=False, compare=False)

    def reply_to(self) -> Tuple[str, str]:
        """Return ``(src, dst)`` for a packet answering this one."""
        return self.dst, self.src

    def retain(self) -> "Packet":
        """Claim this packet for the application; returns self.

        Detaches the packet from pool management (clears ``pooled``),
        so the receiver's release at the terminal sink becomes a no-op
        and the object is never recycled.  An ``on_deliver`` callback
        that keeps the packet (or its header/app rider) past its own
        return MUST call this; callbacks that only read fields need
        not, and the packet is recycled as usual.  Idempotent, and
        harmless on never-pooled packets.
        """
        self.pooled = False
        return self

    def copy(self, **changes) -> "Packet":
        """Shallow copy with a fresh uid and optional field overrides.

        Not used on the forwarding fast path: links, queues and nodes
        pass the *same* ``Packet`` object end to end (one allocation per
        transmission), so copies are reserved for genuine duplication
        (retransmission buffers, tests).
        """
        changes.setdefault("uid", _next_uid())
        # a copy is a new, unmanaged object: whoever made it may keep
        # it, so it must never be recycled on the original's behalf
        changes.setdefault("pooled", False)
        return replace(self, **changes)

    @property
    def bits(self) -> int:
        """Size in bits, as serialized by links."""
        return self.size * 8

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(#{self.uid} {self.src}->{self.dst} flow={self.flow_id} "
            f"{self.kind.name} {self.size}B {self.color.name})"
        )


def total_bytes(packets: List[Packet]) -> int:
    """Sum of packet sizes; convenience for tests and metrics."""
    return sum(p.size for p in packets)


# ----------------------------------------------------------------------
# packet pool
# ----------------------------------------------------------------------
#: Environment kill-switch: set ``REPRO_NO_POOL=1`` to disable packet
#: pooling for debugging (e.g. to rule the pool out when bisecting a
#: behaviour change).  Read when a pool is first attached to a
#: simulator, so tests can monkeypatch it per-``Simulator``.
NO_POOL_ENV = "REPRO_NO_POOL"


def pooling_enabled() -> bool:
    """False when :data:`NO_POOL_ENV` disables the packet pool."""
    return os.environ.get(NO_POOL_ENV, "").strip() in ("", "0")


class PacketPool:
    """Per-simulator free list recycling ``Packet`` + header pairs.

    **Re-init semantics.**  ``acquire(header_cls, ...)`` pops a recycled
    packet whose header is an instance of ``header_cls`` and re-writes
    *every* ``Packet`` field: addressing, size, kind, color (back to the
    construction default ``Color.RED`` unless overridden — edge markers
    re-color each transmission), ``created_at``, ``app``, ``hops = 0``
    and a **fresh uid** drawn from the same module counter that
    ``Packet()`` construction uses.  One logical packet therefore draws
    exactly one uid whether it was constructed or recycled — uid
    sequences, and with them every trace and golden fingerprint, are
    bit-identical with pooling on or off.  The *header* fields are left
    stale: the caller re-fills them in place (they differ per header
    class, and the type-keyed free lists guarantee the class matches).
    **Adding a field to a pooled header class therefore requires
    updating every acquire site that refills that class** (grep for
    ``pool.acquire``); the guard against a missed refill is the
    pool-off equivalence test (``REPRO_NO_POOL=1`` must reproduce the
    goldens bit-for-bit — a leaked stale field changes results and
    trips it).

    **Safety contract.**  Only packets flagged ``pooled=True`` are ever
    recycled; ``release`` is a no-op for anything else and clears the
    flag (double release is harmless).  The flag is a promise made at
    the acquire site: *nothing retains this packet or its header object
    past its terminal sink*.  The audited sinks that release are
    receiver data/feedback consumption, queue drops and channel
    losses.  Receivers with an ``on_deliver`` app callback invoke the
    callback first and release afterwards: a callback that keeps the
    packet past its return must opt out of recycling by calling
    :meth:`Packet.retain`, which turns that release into a no-op.
    Components that legitimately retain packets — the reordering
    :class:`~repro.reliability.delivery.DeliveryBuffer` — release only
    when they finally hand the packet over.

    Use :meth:`PacketPool.of` to get the simulator's pool (``None``
    when :data:`NO_POOL_ENV` disabled pooling at attach time).
    """

    __slots__ = ("_free", "max_free", "hits", "misses", "recycled")

    #: Free-list bound per header class; in-flight windows are far
    #: smaller, so this only caps pathological release storms.
    MAX_FREE = 256

    def __init__(self, max_free: int = MAX_FREE):
        self._free: Dict[type, List[Packet]] = {}
        self.max_free = max_free
        self.hits = 0
        self.misses = 0
        self.recycled = 0

    @classmethod
    def of(cls, sim) -> Optional["PacketPool"]:
        """The simulator's pool, created lazily; None when disabled.

        The kill-switch is sampled once per simulator (at first
        attach), so a single run is internally consistent even if the
        environment changes mid-process.
        """
        pool = getattr(sim, "_packet_pool", False)
        if pool is False:
            pool = cls() if pooling_enabled() else None
            sim._packet_pool = pool
        return pool

    def acquire(
        self,
        header_cls: type,
        src: str,
        dst: str,
        flow_id: str,
        size: int,
        kind: PacketKind,
        created_at: float,
        color: Color = Color.RED,
        app: Optional[AppDataHeader] = None,
    ) -> Optional[Packet]:
        """Pop and re-init a recycled packet, or None (caller constructs).

        The returned packet's ``header`` is a stale ``header_cls``
        instance the caller must re-fill in place.
        """
        free = self._free.get(header_cls)
        if not free:
            self.misses += 1
            return None
        self.hits += 1
        p = free.pop()
        p.src = src
        p.dst = dst
        p.flow_id = flow_id
        p.size = size
        p.kind = kind
        p.color = color
        p.created_at = created_at
        p.app = app
        p.uid = _next_uid()
        p.hops = 0
        p.pooled = True
        return p

    def release(self, packet: Packet) -> None:
        """Return a pool-managed packet to the free list (else no-op)."""
        if not packet.pooled:
            return
        packet.pooled = False
        header = packet.header
        if header is None:
            return
        cls = header.__class__
        free = self._free.get(cls)
        if free is None:
            free = self._free[cls] = []
        if len(free) < self.max_free:
            free.append(packet)
            self.recycled += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = {c.__name__: len(v) for c, v in self._free.items()}
        return (
            f"PacketPool(hits={self.hits}, misses={self.misses}, "
            f"recycled={self.recycled}, free={sizes})"
        )
