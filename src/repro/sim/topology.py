"""Network container, static routing and canonical topology builders.

:class:`Network` owns nodes and links, and computes static shortest-path
routes (by propagation delay) with :mod:`networkx`.  The builders create
the standard evaluation topologies:

* :func:`dumbbell` — N sources, N sinks, one shared bottleneck;
* :func:`chain` — an H-hop path (multi-hop / ad-hoc experiments);
* :func:`star` — clients around one hub (server-to-mobiles experiments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import networkx as nx

from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.node import Node
from repro.sim.queues import DropTailQueue

QueueFactory = Callable[[], object]


def _default_queue() -> DropTailQueue:
    return DropTailQueue(capacity_packets=100)


class Network:
    """A set of nodes and links with static routing.

    Typical construction::

        net = Network(sim)
        a, b = net.add_node("a"), net.add_node("b")
        net.add_duplex_link("a", "b", rate_bps=10e6, delay=0.01)
        net.compute_routes()
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.nodes: Dict[str, Node] = {}
        self._links: Dict[Tuple[str, str], Link] = {}

    # ------------------------------------------------------------------
    def add_node(self, name: str) -> Node:
        """Create (or return the existing) node called ``name``."""
        node = self.nodes.get(name)
        if node is None:
            node = Node(self.sim, name)
            self.nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        """Look up a node; raises KeyError when absent."""
        return self.nodes[name]

    def add_simplex_link(
        self,
        src: str,
        dst: str,
        rate_bps: float,
        delay: float,
        queue=None,
        channel=None,
        marker=None,
    ) -> Link:
        """Add a one-way link; creates endpoints as needed."""
        a, b = self.add_node(src), self.add_node(dst)
        link = Link(
            self.sim,
            a,
            b,
            rate_bps,
            delay,
            queue=queue if queue is not None else _default_queue(),
            channel=channel,
            marker=marker,
        )
        self._links[(src, dst)] = link
        return link

    def add_duplex_link(
        self,
        a: str,
        b: str,
        rate_bps: float,
        delay: float,
        queue_factory: Optional[QueueFactory] = None,
        channel_factory: Optional[Callable[[], object]] = None,
        marker=None,
    ) -> Tuple[Link, Link]:
        """Add both directions with independent queues/channels.

        ``marker`` (if given) is installed on the ``a -> b`` direction
        only, matching the usual edge-conditioning placement.
        """
        qf = queue_factory or _default_queue
        cf = channel_factory or (lambda: None)
        forward = self.add_simplex_link(
            a, b, rate_bps, delay, queue=qf(), channel=cf(), marker=marker
        )
        backward = self.add_simplex_link(b, a, rate_bps, delay, queue=qf(), channel=cf())
        return forward, backward

    def link(self, src: str, dst: str) -> Link:
        """The directed link ``src -> dst``; raises KeyError when absent."""
        return self._links[(src, dst)]

    @property
    def links(self) -> List[Link]:
        """All directed links."""
        return list(self._links.values())

    # ------------------------------------------------------------------
    def compute_routes(self) -> None:
        """Fill every node's next-hop table with delay-weighted shortest paths."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self.nodes)
        for (src, dst), link in self._links.items():
            graph.add_edge(src, dst, weight=link.delay + 1e-9)
        paths = dict(nx.all_pairs_dijkstra_path(graph, weight="weight"))
        for name, node in self.nodes.items():
            table: Dict[str, str] = {}
            for dst, path in paths.get(name, {}).items():
                if dst == name or len(path) < 2:
                    continue
                table[dst] = path[1]
            node.next_hop = table

    def path_delay(self, src: str, dst: str) -> float:
        """Sum of propagation delays along the routed path src -> dst."""
        total = 0.0
        here = src
        guard = 0
        while here != dst:
            hop = self.nodes[here].next_hop.get(dst)
            if hop is None:
                if dst in self.nodes[here].links:
                    hop = dst
                else:
                    raise KeyError(f"no route {src} -> {dst}")
            total += self._links[(here, hop)].delay
            here = hop
            guard += 1
            if guard > len(self.nodes) + 1:
                raise RuntimeError("routing loop detected")
        return total


# ----------------------------------------------------------------------
# canonical topologies
# ----------------------------------------------------------------------
@dataclass
class Dumbbell:
    """Handles returned by :func:`dumbbell`.

    ``sources[i]`` talks to ``sinks[i]`` across the shared
    ``left -> right`` bottleneck link.
    """

    net: Network
    sources: List[Node]
    sinks: List[Node]
    left: Node
    right: Node
    bottleneck: Link
    reverse_bottleneck: Link


def dumbbell(
    sim: Simulator,
    n_pairs: int = 2,
    access_rate: float = 100e6,
    access_delay: float = 0.001,
    bottleneck_rate: float = 10e6,
    bottleneck_delay: float = 0.02,
    bottleneck_queue_factory: Optional[QueueFactory] = None,
    access_delays: Optional[List[float]] = None,
    access_markers: Optional[List[object]] = None,
) -> Dumbbell:
    """Build the classic dumbbell used by most experiments.

    Parameters
    ----------
    n_pairs: number of source/sink pairs.
    access_rate, access_delay: per-pair access links (non-bottleneck).
    bottleneck_rate, bottleneck_delay: the shared link.
    bottleneck_queue_factory: queue discipline of the bottleneck (both
        directions), e.g. a RIO queue for the AF experiments.
    access_delays: optional per-pair overrides of ``access_delay`` (RTT
        asymmetry experiments).
    access_markers: optional per-pair DiffServ markers installed on the
        ``source -> left`` edge link.
    """
    net = Network(sim)
    left, right = net.add_node("left"), net.add_node("right")
    fwd, back = net.add_duplex_link(
        "left",
        "right",
        bottleneck_rate,
        bottleneck_delay,
        queue_factory=bottleneck_queue_factory,
    )
    sources, sinks = [], []
    for i in range(n_pairs):
        delay = access_delays[i] if access_delays else access_delay
        marker = access_markers[i] if access_markers else None
        src = net.add_node(f"s{i}")
        dst = net.add_node(f"d{i}")
        net.add_duplex_link(f"s{i}", "left", access_rate, delay, marker=marker)
        net.add_duplex_link("right", f"d{i}", access_rate, delay)
        sources.append(src)
        sinks.append(dst)
    net.compute_routes()
    return Dumbbell(net, sources, sinks, left, right, fwd, back)


@dataclass
class Chain:
    """Handles returned by :func:`chain`: end nodes and the hop links."""

    net: Network
    first: Node
    last: Node
    hops: List[Link]


def chain(
    sim: Simulator,
    n_hops: int = 4,
    rate: float = 2e6,
    delay: float = 0.005,
    queue_factory: Optional[QueueFactory] = None,
    channel_factory: Optional[Callable[[], object]] = None,
) -> Chain:
    """Build an ``n_hops``-link path h0 - h1 - ... - hN.

    ``channel_factory`` lets every hop carry an independent loss model —
    the multi-hop wireless scenario of the paper's motivation.
    """
    if n_hops < 1:
        raise ValueError("need at least one hop")
    net = Network(sim)
    hops: List[Link] = []
    for i in range(n_hops):
        fwd, _ = net.add_duplex_link(
            f"h{i}",
            f"h{i + 1}",
            rate,
            delay,
            queue_factory=queue_factory,
            channel_factory=channel_factory,
        )
        hops.append(fwd)
    net.compute_routes()
    return Chain(net, net.node("h0"), net.node(f"h{n_hops}"), hops)


@dataclass
class Star:
    """Handles returned by :func:`star`: the hub and its leaves."""

    net: Network
    hub: Node
    leaves: List[Node]


def star(
    sim: Simulator,
    n_leaves: int = 4,
    rate: float = 2e6,
    delay: float = 0.01,
    queue_factory: Optional[QueueFactory] = None,
    channel_factory: Optional[Callable[[], object]] = None,
) -> Star:
    """Build a hub with ``n_leaves`` spokes (server-to-mobiles scenario)."""
    net = Network(sim)
    net.add_node("hub")
    leaves = []
    for i in range(n_leaves):
        net.add_duplex_link(
            "hub",
            f"m{i}",
            rate,
            delay,
            queue_factory=queue_factory,
            channel_factory=channel_factory,
        )
        leaves.append(net.node(f"m{i}"))
    net.compute_routes()
    return Star(net, net.node("hub"), leaves)
