"""Store-and-forward link model.

A :class:`Link` is unidirectional.  Packets offered by the upstream node
pass through an optional *marker* (DiffServ edge conditioning), are
admitted by the queue discipline, serialized at the link rate, subjected
to an optional *channel* (loss/jitter emulation, :mod:`repro.netem`) and
delivered to the downstream node after the propagation delay.

Duplex connectivity is two independent ``Link`` objects (see
:class:`repro.sim.topology.Network`).
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, TYPE_CHECKING

from repro.sim.engine import Simulator
from repro.sim.packet import Packet, PacketPool
from repro.sim.queues import DropTailQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.node import Node


class Channel(Protocol):
    """Impairment applied after serialization (see :mod:`repro.netem`).

    ``transit(packet, now)`` returns the extra delay to add to the
    propagation delay, or ``None`` when the packet is lost.
    """

    def transit(self, packet: Packet, now: float) -> Optional[float]: ...


class Marker(Protocol):
    """Edge conditioner applied before queueing (see :mod:`repro.qos`)."""

    def mark(self, packet: Packet, now: float) -> None: ...


class LinkStats:
    """Transmission-side counters of a link."""

    __slots__ = ("tx_packets", "tx_bytes", "delivered_packets", "channel_losses")

    def __init__(self) -> None:
        self.tx_packets = 0
        self.tx_bytes = 0
        self.delivered_packets = 0
        self.channel_losses = 0

    def utilization(self, rate_bps: float, duration: float) -> float:
        """Fraction of capacity used over ``duration`` seconds.

        Degenerate windows (``duration <= 0``) and non-positive rates
        report 0.0 instead of dividing by zero — callers summarize
        warmup-clipped windows that can collapse to empty.
        """
        if duration <= 0 or rate_bps <= 0:
            return 0.0
        return min(1.0, self.tx_bytes * 8 / (rate_bps * duration))


class Link:
    """Unidirectional link with rate, delay, queue, marker and channel.

    Parameters
    ----------
    sim: simulator the link schedules on.
    src, dst: endpoint nodes.  The link registers itself as
        ``src.links[dst.name]``.
    rate_bps: line rate in bits/s.
    delay: one-way propagation delay in seconds.
    queue: queue discipline (default: 100-packet DropTail).
    channel: optional loss/jitter model applied post-serialization.
    marker: optional DiffServ conditioner applied pre-queueing.
    """

    def __init__(
        self,
        sim: Simulator,
        src: "Node",
        dst: "Node",
        rate_bps: float,
        delay: float,
        queue=None,
        channel: Optional[Channel] = None,
        marker: Optional[Marker] = None,
        name: Optional[str] = None,
    ):
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if delay < 0:
            raise ValueError("link delay must be non-negative")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.rate_bps = float(rate_bps)
        self.delay = float(delay)
        self.queue = queue if queue is not None else DropTailQueue()
        self.channel = channel
        self.marker = marker
        self.name = name or f"{src.name}->{dst.name}"
        self.stats = LinkStats()
        self._busy = False
        self.on_drop: Optional[Callable[[Packet], None]] = None
        self._pool = PacketPool.of(sim)
        src.links[dst.name] = self
        # observability: register for end-of-run queue-stat harvesting.
        # _obs_links is None unless the metrics plane was enabled when
        # the simulator was constructed — one attribute check at link
        # construction, nothing on the packet path.
        obs_links = getattr(sim, "_obs_links", None)
        if obs_links is not None:
            obs_links.append(self)

    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Offer a packet to the link.  Returns False if queue-dropped.

        Hot path: one call per packet per hop.  ``sim.now`` is read
        once (marking and enqueueing happen at the same instant) and no
        packet copies are made — the same object rides the link end to
        end.  A queue drop is a terminal sink: pool-managed packets are
        recycled (after any ``on_drop`` observer ran).
        """
        now = self.sim.now
        if self.marker is not None:
            self.marker.mark(packet, now)
        if not self.queue.enqueue(packet, now):
            if self.on_drop is not None:
                self.on_drop(packet)
            if self._pool is not None:
                self._pool.release(packet)
            return False
        if not self._busy:
            self._start_transmission()
        return True

    def _start_transmission(self) -> None:
        sim = self.sim
        packet = self.queue.dequeue(sim.now)
        if packet is None:
            self._busy = False
            return
        self._busy = True
        # packet.size * 8 == packet.bits, without the property call;
        # the handle is never needed, so the Event object is recycled
        sim.schedule_pooled(
            packet.size * 8 / self.rate_bps, self._finish_transmission, packet
        )

    def _finish_transmission(self, packet: Packet) -> None:
        stats = self.stats
        stats.tx_packets += 1
        stats.tx_bytes += packet.size
        extra = 0.0
        lost = False
        if self.channel is not None:
            outcome = self.channel.transit(packet, self.sim.now)
            if outcome is None:
                lost = True
                stats.channel_losses += 1
            else:
                extra = outcome
        if not lost:
            self.sim.schedule_pooled(self.delay + extra, self._deliver, packet)
        elif self._pool is not None:
            # channel loss is terminal; the tracer's loss record (which
            # runs after this returns) only reads fields, and nothing
            # can re-acquire the object before then
            self._pool.release(packet)
        # pipeline the next packet regardless of the fate of this one
        self._start_transmission()

    def _deliver(self, packet: Packet) -> None:
        self.stats.delivered_packets += 1
        self.dst.receive(packet)

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """True while a packet is being serialized."""
        return self._busy

    def serialization_time(self, size_bytes: int) -> float:
        """Time to clock ``size_bytes`` onto the wire."""
        return size_bytes * 8 / self.rate_bps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link({self.name}, {self.rate_bps / 1e6:.2f} Mbit/s, "
            f"{self.delay * 1e3:.1f} ms, qlen={len(self.queue)})"
        )
