"""Loss and delay-variation channel models.

All channels draw from an injected :class:`random.Random` stream so runs
are reproducible and independent of other components (see
:meth:`repro.sim.engine.Simulator.rng`).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.sim.packet import Packet


class PerfectChannel:
    """A channel that never loses nor delays packets."""

    def transit(self, packet: Packet, now: float) -> Optional[float]:
        """Always deliver with zero extra delay."""
        return 0.0


class BernoulliLossChannel:
    """Independent (memoryless) random loss with probability ``loss_rate``.

    The canonical model for light random wireless corruption: each packet
    is dropped i.i.d., so losses are unclustered — the regime where TCP's
    loss-equals-congestion assumption costs it the most throughput.
    """

    def __init__(self, loss_rate: float, rng: Optional[random.Random] = None):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.loss_rate = loss_rate
        self._rng = rng or random.Random(0xBE11)
        self.offered = 0
        self.lost = 0

    def transit(self, packet: Packet, now: float) -> Optional[float]:
        """Drop with probability ``loss_rate``; otherwise no extra delay."""
        self.offered += 1
        if self._rng.random() < self.loss_rate:
            self.lost += 1
            return None
        return 0.0

    def observed_loss_rate(self) -> float:
        """Empirical loss fraction so far (0.0 before any traffic)."""
        return self.lost / self.offered if self.offered else 0.0


class GilbertElliottChannel:
    """Two-state Markov (Gilbert–Elliott) bursty loss channel.

    The channel alternates between a GOOD state with loss probability
    ``p_good`` and a BAD state with loss probability ``p_bad``;
    transitions occur per packet with probabilities ``p_g2b`` and
    ``p_b2g``.  This reproduces the clustered loss patterns of fading
    wireless links, which interact badly with TCP's fast-retransmit
    heuristics and with TFRC's loss-event clustering.

    The steady-state loss rate is
    ``(p_b2g * p_good + p_g2b * p_bad) / (p_g2b + p_b2g)``.
    """

    GOOD, BAD = 0, 1

    def __init__(
        self,
        p_g2b: float = 0.005,
        p_b2g: float = 0.2,
        p_good: float = 0.0,
        p_bad: float = 0.5,
        rng: Optional[random.Random] = None,
    ):
        for name, value in (
            ("p_g2b", p_g2b),
            ("p_b2g", p_b2g),
            ("p_good", p_good),
            ("p_bad", p_bad),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if p_g2b + p_b2g <= 0:
            raise ValueError("chain must be able to change state")
        self.p_g2b, self.p_b2g = p_g2b, p_b2g
        self.p_good, self.p_bad = p_good, p_bad
        self._rng = rng or random.Random(0x6E11)
        self.state = self.GOOD
        self.offered = 0
        self.lost = 0

    def steady_state_loss_rate(self) -> float:
        """Analytic long-run loss probability of the chain."""
        pi_bad = self.p_g2b / (self.p_g2b + self.p_b2g)
        return (1 - pi_bad) * self.p_good + pi_bad * self.p_bad

    def transit(self, packet: Packet, now: float) -> Optional[float]:
        """Advance the chain one packet and decide its fate."""
        self.offered += 1
        if self.state == self.GOOD:
            if self._rng.random() < self.p_g2b:
                self.state = self.BAD
        else:
            if self._rng.random() < self.p_b2g:
                self.state = self.GOOD
        p_loss = self.p_good if self.state == self.GOOD else self.p_bad
        if self._rng.random() < p_loss:
            self.lost += 1
            return None
        return 0.0

    def observed_loss_rate(self) -> float:
        """Empirical loss fraction so far (0.0 before any traffic)."""
        return self.lost / self.offered if self.offered else 0.0


class JitterChannel:
    """Adds uniform random extra delay in ``[0, max_jitter]`` seconds.

    Note: large jitter relative to packet spacing produces reordering,
    since each packet's delivery is scheduled independently.
    """

    def __init__(self, max_jitter: float, rng: Optional[random.Random] = None):
        if max_jitter < 0:
            raise ValueError("max_jitter must be non-negative")
        self.max_jitter = max_jitter
        self._rng = rng or random.Random(0x717E)

    def transit(self, packet: Packet, now: float) -> Optional[float]:
        """Always deliver, with uniform extra delay."""
        return self._rng.random() * self.max_jitter


class CompositeChannel:
    """Chain several channels; a drop by any stage drops the packet.

    Extra delays accumulate, e.g. ``CompositeChannel([loss, jitter])``.
    """

    def __init__(self, stages: Sequence[object]):
        if not stages:
            raise ValueError("need at least one stage")
        self.stages: List[object] = list(stages)

    def transit(self, packet: Packet, now: float) -> Optional[float]:
        """Run every stage; None from any stage is a loss."""
        total = 0.0
        for stage in self.stages:
            outcome = stage.transit(packet, now)
            if outcome is None:
                return None
            total += outcome
        return total
