"""Network emulation channels: loss, burst loss, jitter, reordering.

Channels implement the :class:`repro.sim.link.Channel` protocol — given
a packet at serialization end, they return the extra delay to apply or
``None`` to drop the packet.  They model the *non-congestion* path
impairments (wireless fading, interference) that motivate the paper's
claim that rate-based congestion control outperforms TCP on lossy paths.
"""

from repro.netem.channels import (
    BernoulliLossChannel,
    CompositeChannel,
    GilbertElliottChannel,
    JitterChannel,
    PerfectChannel,
)

__all__ = [
    "PerfectChannel",
    "BernoulliLossChannel",
    "GilbertElliottChannel",
    "JitterChannel",
    "CompositeChannel",
]
