"""The crash-safe campaign orchestrator.

A :class:`Campaign` runs many named :class:`~repro.api.Experiment`
sweeps as one unit into one durable directory (see
:mod:`repro.campaign.store` for the layout).  The execution contract:

* **Kill-anywhere resume.**  Every scenario is checkpointed to the
  fsync'd journal only *after* its artifacts are atomically published
  and hashed into the integrity manifest, so SIGKILLing the
  orchestrator at any instant and re-running with ``resume=True`` (or
  ``campaign resume <dir>``) completes exactly the missing work and
  produces byte-identical tracked artifacts — the memo cache makes the
  replayed cells free, and determinism makes them identical.
* **Graceful degradation.**  A job whose sweep fails terminally
  (crashed workers past retries in strict-ish conditions, a bad spec,
  an unregistered scenario) is recorded as ``failed`` with its
  :class:`~repro.harness.result.RunFailure`-style detail in
  ``failure.json`` and the journal; the campaign proceeds and the
  report carries an explicit coverage section.  Jobs default to
  ``on_failure="keep"`` so individual bad *cells* degrade to
  ``partial`` coverage instead of failing the job.
* **Chaos hooks.**  Before every journal append the runner consults
  the ambient fault plan under the
  :data:`~repro.harness.faults.CAMPAIGN_CHECKPOINT_SCOPE`
  pseudo-scenario, so ``REPRO_FAULTS`` plans can kill/hang/corrupt the
  orchestrator at exact checkpoints — that is how the chaos suite
  proves the resume contract at every injection point.

Campaign-level observability reuses the PR 8 plane: span events
(``campaign`` / ``job`` / ``report``) append to ``campaign.spans.jsonl``
across resumes, and — when the metrics plane is enabled — job outcomes
land on the ``repro_campaign_jobs_total`` counter.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from repro.api.experiment import Experiment
from repro.api.resultset import ResultSet
from repro.campaign.report import build_report
from repro.campaign.spec import CampaignError, CampaignSpec, JobSpec
from repro.campaign.store import (
    CampaignJournal,
    CampaignStore,
    REPORT_FILE,
    SCENARIOS_DIR,
    SPEC_FILE,
    VerifyReport,
)
from repro.harness.faults import CAMPAIGN_CHECKPOINT_SCOPE, FaultPlan, plan_from_env
from repro.harness.runner import code_version
from repro.ioutil import atomic_write_json, atomic_write_text
from repro.obs.spans import SpanWriter

__all__ = [
    "Campaign",
    "CampaignRun",
    "JobOutcome",
    "resume_campaign",
    "verify_campaign",
    "write_report",
]

TableRenderer = Callable[[ResultSet], str]


def _provenance() -> Dict[str, Any]:
    """The environment snapshot stored in ``campaign.json``.

    Only deterministic-per-setup facts: interpreter/platform and the
    ``REPRO_*`` knobs that change results or backends.  ``REPRO_FAULTS``
    is excluded on purpose — fault plans are chaos *tooling*, and
    including one would make a chaos run's ``campaign.json`` differ
    from the fault-free run it must be byte-identical to.
    """
    from repro.harness.faults import FAULTS_ENV

    env = {
        key: value
        for key, value in sorted(os.environ.items())
        if key.startswith("REPRO_") and key != FAULTS_ENV
    }
    return {
        "code_version": code_version(),
        "python": platform.python_version(),
        "platform": sys.platform,
        "env": env,
    }


@dataclass
class JobOutcome:
    """What happened to one job in one ``Campaign.run`` invocation."""

    name: str
    scenario: str
    status: str  # "ok" | "partial" | "failed"
    cells: int = 0
    ok_cells: int = 0
    restored: bool = False  # satisfied from a previous run's checkpoint
    failure: Optional[Dict[str, Any]] = None
    results: Optional[ResultSet] = None  # None when failed or restored

    @property
    def coverage(self) -> float:
        return self.ok_cells / self.cells if self.cells else 0.0


@dataclass
class CampaignRun:
    """The return value of :meth:`Campaign.run`."""

    directory: Path
    campaign: str
    outcomes: Dict[str, JobOutcome] = field(default_factory=dict)

    @property
    def report_path(self) -> Path:
        return self.directory / REPORT_FILE

    @property
    def ok(self) -> bool:
        """True when every job completed with full coverage."""
        return all(o.status == "ok" for o in self.outcomes.values())

    def summary(self) -> str:
        parts = []
        for outcome in self.outcomes.values():
            tag = outcome.status + ("/restored" if outcome.restored else "")
            parts.append(f"{outcome.name}={tag}")
        return f"campaign {self.campaign}: " + " ".join(parts)


class Campaign:
    """A named, ordered collection of experiments run as one unit."""

    def __init__(self, name: str):
        self._name = name
        self._jobs: List[JobSpec] = []
        self._renderers: Dict[str, TableRenderer] = {}

    @property
    def name(self) -> str:
        return self._name

    @property
    def spec(self) -> CampaignSpec:
        return CampaignSpec(name=self._name, jobs=tuple(self._jobs))

    def add(
        self,
        name: str,
        experiment: Experiment,
        *,
        on_failure: str = "keep",
        table: Optional[TableRenderer] = None,
    ) -> "Campaign":
        """Add one named job; returns ``self`` for chaining.

        ``table`` customizes the job's ``table.txt`` (a callable from
        :class:`ResultSet` to the table text); campaigns with custom
        tables can only be resumed through the same script, because a
        Python callable cannot be rebuilt from ``campaign.json``.
        """
        job = JobSpec.from_experiment(
            name, experiment, on_failure=on_failure,
            custom_table=table is not None,
        )
        if any(existing.name == name for existing in self._jobs):
            raise CampaignError(f"duplicate job name {name!r}")
        self._jobs.append(job)
        if table is not None:
            self._renderers[name] = table
        return self

    @classmethod
    def from_spec(cls, spec: CampaignSpec) -> "Campaign":
        campaign = cls(spec.name)
        campaign._jobs = list(spec.jobs)
        return campaign

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        directory: Union[str, Path],
        *,
        resume: bool = False,
        faults: Optional[FaultPlan] = None,
        workers: Optional[int] = None,
    ) -> CampaignRun:
        """Execute (or resume) the campaign into ``directory``.

        ``workers`` overrides every job's worker count for this
        invocation only (execution tuning is not campaign identity).
        ``faults`` defaults to the ambient ``REPRO_FAULTS`` plan.
        """
        if not self._jobs:
            raise CampaignError(f"campaign {self._name!r} has no jobs")
        spec = self.spec
        store = CampaignStore(directory)
        plan = faults if faults is not None else plan_from_env()

        if store.spec_path.exists():
            existing = store.read_spec_document()
            if existing.get("spec_hash") != spec.spec_hash():
                raise CampaignError(
                    f"directory {store.directory} holds campaign "
                    f"{existing.get('name')!r} with spec hash "
                    f"{existing.get('spec_hash')!r}, but this definition "
                    f"hashes to {spec.spec_hash()!r} — use a fresh "
                    "directory (or fix the spec) instead of mixing results"
                )
        else:
            if resume:
                raise CampaignError(
                    f"nothing to resume: {store.directory} has no {SPEC_FILE}"
                )
            store.write_spec(spec, _provenance())
        # idempotent re-record: self-heals a kill between spec write and
        # manifest update, and is a no-op otherwise
        store.record_artifacts([SPEC_FILE])

        journal = CampaignJournal(
            store.journal_path,
            spec.name,
            spec.spec_hash(),
            code_version(),
            resume=resume,
        )
        spans = SpanWriter(str(store.spans_path), append=journal.resumed)
        spans.emit({
            "event": "campaign",
            "campaign": spec.name,
            "jobs": len(spec.jobs),
            "resumed": journal.resumed,
            "started": time.time(),
        })
        run = CampaignRun(directory=store.directory, campaign=spec.name)
        try:
            for job in spec.jobs:
                outcome = self._run_job(store, journal, spans, plan, job, workers)
                run.outcomes[job.name] = outcome
                self._publish_metrics(outcome)
            self._write_report(store, journal, spans, plan)
        finally:
            spans.close()
            journal.close()
        return run

    # ------------------------------------------------------------------
    def _checkpoint(self, journal: CampaignJournal,
                    plan: Optional[FaultPlan], name: str) -> None:
        """The chaos hook guarding every journal append.

        ``exit`` faults kill the process *here* — after the artifacts
        are durable but before the checkpoint records them — which is
        the adversarial instant the resume contract must survive.  A
        ``corrupt`` fault writes a torn garbage line first, which the
        journal loader must skip.
        """
        if plan is None:
            return
        outcome = plan.apply(
            CAMPAIGN_CHECKPOINT_SCOPE,
            {"name": name, "seq": journal.next_seq},
            1,
        )
        if outcome is not None:
            journal.write_garbage_line()

    def _run_job(
        self,
        store: CampaignStore,
        journal: CampaignJournal,
        spans: SpanWriter,
        plan: Optional[FaultPlan],
        job: JobSpec,
        workers: Optional[int],
    ) -> JobOutcome:
        prefix = f"{SCENARIOS_DIR}/{job.name}/"
        prior = journal.scenario_status(job.name)
        if prior in ("ok", "partial") and store.artifacts_intact(prefix):
            entry = journal.scenarios[job.name]
            spans.emit({"event": "job", "name": job.name, "status": prior,
                        "restored": True})
            return JobOutcome(
                name=job.name,
                scenario=job.scenario,
                status=prior,
                cells=int(entry.get("cells", 0) or 0),
                ok_cells=int(entry.get("ok", 0) or 0),
                restored=True,
            )

        spans.emit({"event": "job", "name": job.name, "status": "started"})
        job_dir = store.scenario_dir(job.name)
        try:
            experiment = job.experiment().cache(store.cache_dir)
            if workers is not None:
                experiment.workers(workers)
            sweep_spans = SpanWriter(str(job_dir / "spans.jsonl"), header={
                "scenario": job.scenario,
                "campaign": self._name,
                "job": job.name,
                "cells": experiment.n_cells(),
                "started": time.time(),
            })
            try:
                results = experiment.run(
                    on_failure=job.on_failure, observer=sweep_spans,
                )
            finally:
                sweep_spans.close()
        except Exception as exc:  # terminal: record and move on
            failure = _failure_detail(exc)
            atomic_write_json(job_dir / "failure.json", failure)
            store.record_artifacts([f"{prefix}failure.json"])
            self._checkpoint(journal, plan, job.name)
            journal.record_scenario(job.name, "failed", failure=failure)
            spans.emit({"event": "job", "name": job.name, "status": "failed",
                        "error": failure["error"]})
            return JobOutcome(
                name=job.name,
                scenario=job.scenario,
                status="failed",
                failure=failure,
            )

        renderer = self._renderers.get(job.name)
        table_text = (
            renderer(results) if renderer is not None
            else results.table(title=f"{job.name} — {job.scenario}")
        )
        if not table_text.endswith("\n"):
            table_text += "\n"
        results.to_csv(job_dir / "results.csv")
        results.to_json(job_dir / "results.json")
        atomic_write_text(job_dir / "table.txt", table_text)
        store.record_artifacts([
            f"{prefix}results.csv",
            f"{prefix}results.json",
            f"{prefix}table.txt",
        ])

        status = "partial" if results.has_failures else "ok"
        cells, ok_cells = len(results), len(results.ok())
        self._checkpoint(journal, plan, job.name)
        journal.record_scenario(
            job.name, status, cells=cells, ok=ok_cells,
            failed=cells - ok_cells,
        )
        spans.emit({"event": "job", "name": job.name, "status": status,
                    "cells": cells, "ok": ok_cells})
        return JobOutcome(
            name=job.name,
            scenario=job.scenario,
            status=status,
            cells=cells,
            ok_cells=ok_cells,
            results=results,
        )

    def _write_report(
        self,
        store: CampaignStore,
        journal: CampaignJournal,
        spans: SpanWriter,
        plan: Optional[FaultPlan],
    ) -> None:
        # always regenerated: build_report is deterministic over the
        # on-disk state, so a resume rewrites byte-identical text (and
        # a degraded campaign gets its coverage section refreshed)
        text = build_report(store)
        atomic_write_text(store.report_path, text)
        store.record_artifacts([REPORT_FILE])
        self._checkpoint(journal, plan, "report")
        journal.record_report()
        spans.emit({"event": "report"})

    @staticmethod
    def _publish_metrics(outcome: JobOutcome) -> None:
        from repro.obs.metrics import metrics_enabled, registry

        if not metrics_enabled():
            return
        registry().counter(
            "repro_campaign_jobs_total",
            "campaign jobs by terminal status",
        ).inc(status=outcome.status)


def _failure_detail(exc: BaseException) -> Dict[str, Any]:
    """A JSON-able, deterministic-where-possible failure record."""
    return {
        "kind": getattr(exc, "failure_kind", "error"),
        "error": getattr(exc, "error", None) or type(exc).__name__,
        "message": str(exc),
        "attempts": int(getattr(exc, "attempts", 1)),
    }


# ----------------------------------------------------------------------
# directory-level entry points (what the CLI wraps)
# ----------------------------------------------------------------------
def resume_campaign(
    directory: Union[str, Path],
    *,
    workers: Optional[int] = None,
) -> CampaignRun:
    """Resume the campaign recorded in ``directory`` from its spec.

    Rebuilds every job from ``campaign.json``; refuses when any job was
    defined with a custom table renderer (a Python callable cannot be
    rebuilt from JSON — resume through the original script instead).
    """
    store = CampaignStore(directory)
    spec = store.read_spec()
    blocked = [job.name for job in spec.jobs if job.custom_table]
    if blocked:
        raise CampaignError(
            f"cannot resume from {SPEC_FILE} alone: job(s) "
            f"{blocked} use custom table renderers — re-run the script "
            "that defined this campaign with resume=True"
        )
    return Campaign.from_spec(spec).run(directory, resume=True, workers=workers)


def verify_campaign(
    directory: Union[str, Path],
    *,
    quarantine: bool = True,
) -> VerifyReport:
    """Re-check every tracked artifact's content hash (see store docs)."""
    store = CampaignStore(directory)
    store.read_spec_document()  # fail loudly on a non-campaign directory
    return store.verify(quarantine=quarantine)


def write_report(directory: Union[str, Path]) -> str:
    """Regenerate ``report.md`` from the on-disk state; return the text."""
    store = CampaignStore(directory)
    store.read_spec_document()
    text = build_report(store)
    atomic_write_text(store.report_path, text)
    store.record_artifacts([REPORT_FILE])
    return text
