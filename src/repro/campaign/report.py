"""The generated cross-scenario campaign report.

:func:`build_report` renders ``report.md`` purely from what is on disk
— ``campaign.json``, the journal, and the per-scenario ``table.txt`` /
``failure.json`` artifacts — so the exact same text is produced during
the run, by ``campaign report <dir>`` afterwards, and by a resumed run
regenerating it (byte-identical, which the chaos suite asserts).  No
wall-clock timestamps or host detail appear in the body: everything
non-deterministic about an execution lives in the journal and span
files, not in tracked artifacts.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional

from repro.campaign.store import CampaignJournal, CampaignStore

__all__ = ["build_report"]


def _job_row(job: Mapping[str, Any], entry: Optional[Mapping[str, Any]]) -> List[str]:
    name = str(job.get("name"))
    scenario = str(job.get("scenario"))
    if entry is None:
        return [name, scenario, "pending", "-", "-"]
    status = str(entry.get("status", "?"))
    cells = entry.get("cells")
    ok = entry.get("ok")
    if status == "failed" or cells in (None, 0):
        return [name, scenario, status, str(cells) if cells else "-", "0%"]
    coverage = f"{100.0 * float(ok) / float(cells):.0f}%"
    return [name, scenario, status, str(cells), coverage]


def _failure_text(store: CampaignStore, name: str,
                  entry: Optional[Mapping[str, Any]]) -> str:
    detail: Dict[str, Any] = {}
    failure_path = store.scenario_dir(name) / "failure.json"
    try:
        detail = json.loads(failure_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        if entry is not None and isinstance(entry.get("failure"), dict):
            detail = dict(entry["failure"])
    kind = detail.get("kind", "error")
    error = detail.get("error", "")
    message = detail.get("message", "no detail recorded")
    label = f"{kind} ({error})" if error else str(kind)
    return f"**FAILED** — {label}: {message}"


def build_report(store: CampaignStore) -> str:
    """Render the campaign report markdown from the on-disk state."""
    doc = store.read_spec_document()
    journal = CampaignJournal.read(store.journal_path)
    jobs = list(doc.get("jobs", []))
    entries = journal["scenarios"]

    statuses = [
        str(entries[str(j.get("name"))].get("status"))
        if str(j.get("name")) in entries else "pending"
        for j in jobs
    ]
    n_ok = statuses.count("ok")
    n_partial = statuses.count("partial")
    n_failed = statuses.count("failed") + statuses.count("pending")

    lines: List[str] = [
        f"# Campaign report: {doc.get('name')}",
        "",
        f"- spec hash: `{doc.get('spec_hash')}`",
        f"- code version: `{doc.get('provenance', {}).get('code_version')}`",
        f"- jobs: {len(jobs)} (ok {n_ok}, partial {n_partial}, "
        f"failed {n_failed})",
        "",
        "## Coverage",
        "",
        "| job | scenario | status | cells | coverage |",
        "| --- | --- | --- | --- | --- |",
    ]
    for job in jobs:
        entry = entries.get(str(job.get("name")))
        lines.append("| " + " | ".join(_job_row(job, entry)) + " |")
    lines.append("")
    if n_partial == 0 and n_failed == 0:
        lines.append(f"All {len(jobs)} jobs completed with full coverage.")
    else:
        lines.append(
            f"Coverage is INCOMPLETE: {n_failed} job(s) failed and "
            f"{n_partial} completed partially — the results below come "
            "from the surviving runs only."
        )
    lines += ["", "## Results", ""]

    for job in jobs:
        name = str(job.get("name"))
        entry = entries.get(name)
        status = str(entry.get("status")) if entry is not None else "pending"
        lines.append(f"### {name} — `{job.get('scenario')}`")
        lines.append("")
        table_path = store.scenario_dir(name) / "table.txt"
        if status in ("ok", "partial") and table_path.exists():
            if status == "partial":
                cells, ok = entry.get("cells"), entry.get("ok")
                lines.append(
                    f"Partial coverage: {ok} of {cells} cells completed."
                )
                lines.append("")
            lines.append("```")
            lines.append(table_path.read_text(encoding="utf-8").rstrip("\n"))
            lines.append("```")
        elif status == "pending":
            lines.append("*pending — never ran (campaign interrupted?)*")
        else:
            lines.append(_failure_text(store, name, entry))
        lines.append("")

    return "\n".join(lines).rstrip("\n") + "\n"
