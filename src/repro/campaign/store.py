"""The durable on-disk side of a campaign.

Layout under the campaign directory::

    campaign.json           spec + provenance (code_version, spec hash,
                            env snapshot) — written once, atomically
    journal.jsonl           the checkpoint ledger: header line, then one
                            fsync'd entry per completed scenario/report
    MANIFEST.json           integrity manifest: sha256 + size of every
                            tracked artifact, updated atomically
    report.md               the generated cross-scenario report
    campaign.spans.jsonl    campaign-level span events (execution
                            metadata — untracked, append across resumes)
    scenarios/<job>/        per-job artifacts: results.csv, results.json,
                            table.txt (or failure.json for a terminally
                            failed job)
    cache/                  the sweep memo cache + per-scenario sweep
                            manifests and span journals (execution
                            metadata — untracked)
    quarantine/             where ``verify`` moves corrupt artifacts

Two integrity planes, deliberately separate:

* the **journal** records *progress* — which checkpoints completed —
  and is what resume consults.  It is append-only JSONL, fsync'd per
  entry, torn-final-line tolerant, and pinned to the campaign identity
  (spec hash + code version) so a changed definition or edited code
  refuses to resume instead of silently mixing results.
* the **manifest** records *content* — the hash of every derived
  artifact at the moment it was atomically published.  ``verify``
  re-hashes and quarantines (never deletes) anything that diverged.

Every tracked artifact is written via :mod:`repro.ioutil`, so a crash
at any instant leaves either the old or the new complete file; the
journal entry for a scenario is only appended *after* its artifacts and
manifest entries are durable, which is what makes kill-anywhere resume
sound.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.ioutil import atomic_write_json
from repro.campaign.spec import CampaignError, CampaignSpec

__all__ = [
    "CampaignJournal",
    "CampaignStore",
    "VerifyFinding",
    "VerifyReport",
]

#: File names of the fixed layout (module-level so tests and docs can
#: reference them without a store instance).
SPEC_FILE = "campaign.json"
JOURNAL_FILE = "journal.jsonl"
MANIFEST_FILE = "MANIFEST.json"
REPORT_FILE = "report.md"
SPANS_FILE = "campaign.spans.jsonl"
SCENARIOS_DIR = "scenarios"
CACHE_DIR = "cache"
QUARANTINE_DIR = "quarantine"


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass(frozen=True)
class VerifyFinding:
    """One artifact that failed verification."""

    artifact: str  # manifest-relative path
    problem: str  # "missing" | "corrupt"
    expected: str  # recorded sha256
    actual: Optional[str] = None  # observed sha256 (None when missing)
    quarantined_to: Optional[str] = None  # dir-relative path when moved


@dataclass
class VerifyReport:
    """The outcome of ``campaign verify``."""

    directory: Path
    checked: int = 0
    findings: List[VerifyFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        if self.ok:
            return f"verify: {self.checked} artifacts intact"
        lines = [
            f"verify: {len(self.findings)} of {self.checked} artifacts bad"
        ]
        for f in self.findings:
            where = f" -> quarantined to {f.quarantined_to}" if f.quarantined_to else ""
            lines.append(f"  {f.problem}: {f.artifact}{where}")
        return "\n".join(lines)


class CampaignStore:
    """Path arithmetic + artifact/manifest operations for one directory."""

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------
    @property
    def spec_path(self) -> Path:
        return self.directory / SPEC_FILE

    @property
    def journal_path(self) -> Path:
        return self.directory / JOURNAL_FILE

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_FILE

    @property
    def report_path(self) -> Path:
        return self.directory / REPORT_FILE

    @property
    def spans_path(self) -> Path:
        return self.directory / SPANS_FILE

    @property
    def cache_dir(self) -> Path:
        return self.directory / CACHE_DIR

    @property
    def quarantine_dir(self) -> Path:
        return self.directory / QUARANTINE_DIR

    def scenario_dir(self, job_name: str) -> Path:
        return self.directory / SCENARIOS_DIR / job_name

    # ------------------------------------------------------------------
    # spec + provenance
    # ------------------------------------------------------------------
    def write_spec(self, spec: CampaignSpec, provenance: Mapping[str, Any]) -> None:
        payload = dict(spec.to_json())
        payload["spec_hash"] = spec.spec_hash()
        payload["provenance"] = dict(provenance)
        self.directory.mkdir(parents=True, exist_ok=True)
        # sort_keys would alphabetize each job's grid/base dicts, and a
        # later resume (which rebuilds jobs from THIS file) would then
        # enumerate sweep params in a different order than the original
        # run — changing CSV/table column order and breaking the
        # byte-identity contract.  Spec order is part of the identity.
        atomic_write_json(self.spec_path, payload, sort_keys=False)

    def read_spec_document(self) -> Dict[str, Any]:
        try:
            payload = json.loads(self.spec_path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise CampaignError(
                f"no campaign at {self.directory}: cannot read "
                f"{SPEC_FILE} ({exc})"
            ) from None
        except ValueError as exc:
            raise CampaignError(
                f"corrupt {SPEC_FILE} in {self.directory}: {exc}"
            ) from None
        if not isinstance(payload, dict):
            raise CampaignError(f"corrupt {SPEC_FILE} in {self.directory}")
        return payload

    def read_spec(self) -> CampaignSpec:
        return CampaignSpec.from_json(self.read_spec_document())

    # ------------------------------------------------------------------
    # integrity manifest
    # ------------------------------------------------------------------
    def read_manifest(self) -> Dict[str, Dict[str, Any]]:
        """The tracked-artifact map (empty when absent/corrupt).

        A corrupt manifest is treated as empty rather than fatal: the
        campaign re-runs and re-records everything, which is the
        recovery path anyway.
        """
        try:
            payload = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        artifacts = payload.get("artifacts") if isinstance(payload, dict) else None
        return dict(artifacts) if isinstance(artifacts, dict) else {}

    def _write_manifest(self, artifacts: Mapping[str, Mapping[str, Any]]) -> None:
        atomic_write_json(self.manifest_path, {
            "manifest": 1,
            "artifacts": {rel: dict(info) for rel, info in sorted(artifacts.items())},
        })

    def record_artifacts(self, relpaths: List[str]) -> None:
        """Hash the given directory-relative files into the manifest."""
        artifacts = self.read_manifest()
        for rel in relpaths:
            path = self.directory / rel
            artifacts[rel] = {
                "sha256": _sha256_file(path),
                "bytes": path.stat().st_size,
            }
        self._write_manifest(artifacts)

    def artifacts_intact(self, prefix: str = "") -> bool:
        """True when every tracked artifact under ``prefix`` checks out.

        The cheap (re-hash, no side effects) form of :meth:`verify`,
        used by resume to decide whether a journal-complete scenario
        really still has its outputs.
        """
        for rel, info in self.read_manifest().items():
            if not rel.startswith(prefix):
                continue
            path = self.directory / rel
            try:
                if _sha256_file(path) != info.get("sha256"):
                    return False
            except OSError:
                return False
        return True

    def verify(self, *, quarantine: bool = True) -> VerifyReport:
        """Re-hash every tracked artifact; quarantine what diverged.

        A corrupt file is *moved* (never deleted) to
        ``quarantine/<artifact path>`` so the evidence survives for
        diagnosis; its manifest entry stays, so a subsequent resume
        sees the artifact missing and regenerates it.
        """
        report = VerifyReport(directory=self.directory)
        for rel, info in sorted(self.read_manifest().items()):
            report.checked += 1
            path = self.directory / rel
            expected = str(info.get("sha256", ""))
            try:
                actual = _sha256_file(path)
            except OSError:
                report.findings.append(VerifyFinding(
                    artifact=rel, problem="missing", expected=expected,
                ))
                continue
            if actual == expected:
                continue
            quarantined_to = None
            if quarantine:
                quarantined_to = self._quarantine(rel)
            report.findings.append(VerifyFinding(
                artifact=rel,
                problem="corrupt",
                expected=expected,
                actual=actual,
                quarantined_to=quarantined_to,
            ))
        return report

    def _quarantine(self, rel: str) -> Optional[str]:
        """Move one corrupt artifact aside; return its new relative path."""
        src = self.directory / rel
        dst = self.quarantine_dir / rel
        dst.parent.mkdir(parents=True, exist_ok=True)
        # never clobber earlier evidence: suffix on collision
        candidate, suffix = dst, 1
        while candidate.exists():
            candidate = dst.with_name(f"{dst.name}.{suffix}")
            suffix += 1
        try:
            src.replace(candidate)
        except OSError:
            return None
        return str(candidate.relative_to(self.directory))


class CampaignJournal:
    """The append-only, fsync'd checkpoint ledger of one campaign.

    Line 1 is a header pinning the campaign identity::

        {"journal": 1, "campaign": ..., "spec_hash": ..., "code_version": ...}

    then one entry per completed checkpoint::

        {"seq": N, "event": "scenario", "name": ..., "status":
         "ok"|"partial"|"failed", ...}
        {"seq": N, "event": "report"}

    Each entry is written, flushed and fsync'd before the runner moves
    on, so a SIGKILL between checkpoints loses nothing and a SIGKILL
    *during* one loses at most the in-flight line — which the loader
    skips as torn.  ``resume=True`` validates the existing header and
    appends; a mismatch (edited spec or code) raises instead of mixing
    incompatible results in one directory.
    """

    VERSION = 1

    def __init__(self, path: Union[str, Path], campaign: str, spec_hash: str,
                 code_version: str, *, resume: bool = False):
        self.path = Path(path)
        self.campaign = campaign
        self.spec_hash = spec_hash
        self.code_version = code_version
        #: last recorded entry per scenario name (name -> entry dict)
        self.scenarios: Dict[str, Dict[str, Any]] = {}
        self.report_done = False
        self.next_seq = 1
        self.resumed = False
        self._torn_tail = False
        if resume and self.path.exists():
            state = self.read(self.path)
            self._check_header(state["header"])
            self.scenarios = state["scenarios"]
            self.report_done = state["report_done"]
            self.next_seq = state["max_seq"] + 1
            # a SIGKILL mid-write leaves a torn final line with no
            # newline; appending straight after it would glue the next
            # entry onto the garbage and lose a real checkpoint
            try:
                raw = self.path.read_text(encoding="utf-8")
                self._torn_tail = bool(raw) and not raw.endswith("\n")
            except OSError:
                pass
            self._fh = self.path.open("a", encoding="utf-8")
            self.resumed = True
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("w", encoding="utf-8")
            self._write_line({
                "journal": self.VERSION,
                "campaign": campaign,
                "spec_hash": spec_hash,
                "code_version": code_version,
            })

    @staticmethod
    def read(path: Union[str, Path]) -> Dict[str, Any]:
        """Parse a journal file (torn-final-line tolerant, no locking).

        Returns ``{"header": dict, "scenarios": {name: last entry},
        "report_done": bool, "max_seq": int}``.
        """
        header: Dict[str, Any] = {}
        scenarios: Dict[str, Dict[str, Any]] = {}
        report_done = False
        max_seq = 0
        try:
            lines = Path(path).read_text(encoding="utf-8").splitlines()
        except OSError:
            lines = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn (or chaos-injected) garbage line
            if not isinstance(entry, dict):
                continue
            if "journal" in entry and not header:
                header = entry
                continue
            if entry.get("event") == "scenario" and "name" in entry:
                scenarios[str(entry["name"])] = entry
            elif entry.get("event") == "report":
                report_done = True
            try:
                max_seq = max(max_seq, int(entry.get("seq", 0)))
            except (TypeError, ValueError):
                pass
        return {
            "header": header,
            "scenarios": scenarios,
            "report_done": report_done,
            "max_seq": max_seq,
        }

    def _check_header(self, header: Mapping[str, Any]) -> None:
        if not header:
            raise CampaignError(
                f"cannot resume: {self.path} has no readable journal header"
            )
        if header.get("campaign") != self.campaign:
            raise CampaignError(
                f"cannot resume: journal belongs to campaign "
                f"{header.get('campaign')!r}, not {self.campaign!r}"
            )
        if header.get("spec_hash") != self.spec_hash:
            raise CampaignError(
                "cannot resume: the campaign definition changed "
                f"(journal spec hash {header.get('spec_hash')!r}, current "
                f"{self.spec_hash!r}) — use a fresh directory"
            )
        if header.get("code_version") != self.code_version:
            raise CampaignError(
                "cannot resume: the repro code changed since this campaign "
                f"ran (journal code version {header.get('code_version')!r}, "
                f"current {self.code_version!r}) — results would mix code "
                "versions; re-run into a fresh directory"
            )

    def _write_line(self, entry: Mapping[str, Any]) -> None:
        if self._torn_tail:
            self._fh.write("\n")  # terminate the torn line first
            self._torn_tail = False
        self._fh.write(json.dumps(entry, sort_keys=True, default=repr) + "\n")
        self._fh.flush()
        try:
            os.fsync(self._fh.fileno())
        except OSError:
            pass

    def write_garbage_line(self) -> None:
        """Simulate a torn write (the ``corrupt`` checkpoint fault)."""
        self._fh.write('{"seq": ')  # no newline: a genuinely torn entry
        self._torn_tail = True
        self._fh.flush()
        try:
            os.fsync(self._fh.fileno())
        except OSError:
            pass

    def record_scenario(self, name: str, status: str, **detail: Any) -> None:
        entry = {
            "seq": self.next_seq,
            "event": "scenario",
            "name": name,
            "status": status,
            **detail,
        }
        self._write_line(entry)
        self.scenarios[name] = entry
        self.next_seq += 1

    def record_report(self) -> None:
        self._write_line({"seq": self.next_seq, "event": "report"})
        self.report_done = True
        self.next_seq += 1

    def scenario_status(self, name: str) -> Optional[str]:
        entry = self.scenarios.get(name)
        return None if entry is None else str(entry.get("status"))

    def close(self) -> None:
        try:
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except Exception:
            pass
        try:
            self._fh.close()
        except Exception:
            pass
