"""Campaign specifications: named, hashable bundles of experiments.

A :class:`CampaignSpec` is the durable identity of one campaign: an
ordered tuple of :class:`JobSpec` entries, each naming one
:class:`~repro.api.Experiment` definition (scenario, grid, base,
seeds) plus its execution tuning (workers, retries, timeout) and
failure policy.  The spec serializes to/from plain JSON — this is what
``campaign.json`` stores and what ``campaign run <spec.json>`` loads —
and :meth:`CampaignSpec.spec_hash` digests the *identity* fields so
resume can refuse a directory whose campaign definition changed.

Execution tuning (workers/retries/timeout) is deliberately excluded
from the hash: re-running a campaign with a different worker count
must produce identical results (the sweep fabric's determinism
guarantee), so it is not part of what makes two campaigns "the same".
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.experiment import Experiment

__all__ = ["CampaignError", "CampaignSpec", "JobSpec", "load_spec"]


class CampaignError(RuntimeError):
    """A campaign-level usage or state error (bad spec, bad resume)."""


def _frozen_grid(grid: Mapping[str, Sequence[Any]]) -> Tuple[Tuple[str, Tuple[Any, ...]], ...]:
    return tuple((name, tuple(values)) for name, values in grid.items())


@dataclass(frozen=True)
class JobSpec:
    """One named experiment inside a campaign.

    ``name`` keys the scenario subdirectory (``scenarios/<name>/``),
    the journal entries and the report section, so it must be unique
    within the campaign and filesystem-safe.  ``custom_table`` records
    that the in-process :class:`~repro.campaign.runner.Campaign` holds
    a Python renderer for this job's ``table.txt`` — such a campaign
    can only be resumed through the same script, never from the bare
    JSON spec (the CLI refuses, naming the job).
    """

    name: str
    scenario: str
    grid: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    base: Tuple[Tuple[str, Any], ...] = ()
    seeds: Optional[Tuple[int, ...]] = None
    workers: Optional[int] = 1
    retries: Optional[int] = None
    timeout: Optional[float] = None
    on_failure: str = "keep"
    custom_table: bool = False

    def __post_init__(self) -> None:
        if not self.name or any(ch in self.name for ch in "/\\\0"):
            raise CampaignError(f"job name {self.name!r} is not filesystem-safe")
        if self.on_failure not in ("keep", "retry"):
            # "raise" would abort the campaign on the first bad cell,
            # defeating graceful degradation; terminal sweep errors are
            # still caught and recorded per job
            raise CampaignError(
                f"job {self.name!r}: on_failure must be 'keep' or 'retry', "
                f"got {self.on_failure!r}"
            )

    @classmethod
    def from_experiment(
        cls,
        name: str,
        experiment: Experiment,
        *,
        on_failure: str = "keep",
        custom_table: bool = False,
    ) -> "JobSpec":
        d = experiment.describe()
        return cls(
            name=name,
            scenario=d["scenario"],
            grid=_frozen_grid(d["grid"]),
            base=tuple(d["base"].items()),
            seeds=tuple(d["seeds"]) if d["seeds"] is not None else None,
            workers=d["workers"],
            retries=d["retries"],
            timeout=d["timeout"],
            on_failure=on_failure,
            custom_table=custom_table,
        )

    def experiment(self) -> Experiment:
        """Rebuild the :class:`Experiment` this spec describes."""
        exp = Experiment(self.scenario)
        if self.grid:
            exp.sweep({name: list(values) for name, values in self.grid})
        if self.base:
            exp.configure(**dict(self.base))
        if self.seeds is not None:
            exp.seeds(self.seeds)
        exp.workers(self.workers)
        if self.retries is not None:
            exp.retries(self.retries)
        if self.timeout is not None:
            exp.timeout(self.timeout)
        return exp

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "scenario": self.scenario,
            "grid": {name: list(values) for name, values in self.grid},
            "base": dict(self.base),
            "seeds": list(self.seeds) if self.seeds is not None else None,
            "workers": self.workers,
            "retries": self.retries,
            "timeout": self.timeout,
            "on_failure": self.on_failure,
            "custom_table": self.custom_table,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "JobSpec":
        known = {
            "name", "scenario", "grid", "base", "seeds", "workers",
            "retries", "timeout", "on_failure", "custom_table",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise CampaignError(
                f"job spec has unknown key(s) {unknown}; known: {sorted(known)}"
            )
        if "name" not in payload or "scenario" not in payload:
            raise CampaignError("job spec needs at least 'name' and 'scenario'")
        seeds = payload.get("seeds")
        return cls(
            name=payload["name"],
            scenario=payload["scenario"],
            grid=_frozen_grid(payload.get("grid", {})),
            base=tuple(dict(payload.get("base", {})).items()),
            seeds=tuple(int(s) for s in seeds) if seeds is not None else None,
            workers=payload.get("workers", 1),
            retries=payload.get("retries"),
            timeout=payload.get("timeout"),
            on_failure=payload.get("on_failure", "keep"),
            custom_table=bool(payload.get("custom_table", False)),
        )

    def identity(self) -> Dict[str, Any]:
        """The hash-relevant subset (no execution tuning)."""
        return {
            "name": self.name,
            "scenario": self.scenario,
            "grid": {name: list(values) for name, values in self.grid},
            "base": dict(self.base),
            "seeds": list(self.seeds) if self.seeds is not None else None,
            "on_failure": self.on_failure,
            "custom_table": self.custom_table,
        }


@dataclass(frozen=True)
class CampaignSpec:
    """The full, ordered definition of one campaign."""

    name: str
    jobs: Tuple[JobSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("campaign needs a non-empty name")
        seen: Dict[str, int] = {}
        for job in self.jobs:
            if job.name in seen:
                raise CampaignError(f"duplicate job name {job.name!r}")
            seen[job.name] = 1

    def spec_hash(self) -> str:
        """Digest of the campaign identity (stable across runs/hosts)."""
        payload = json.dumps(
            {"name": self.name, "jobs": [job.identity() for job in self.jobs]},
            sort_keys=True,
            default=repr,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def to_json(self) -> Dict[str, Any]:
        return {
            "campaign": 1,
            "name": self.name,
            "jobs": [job.to_json() for job in self.jobs],
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "CampaignSpec":
        if not isinstance(payload, Mapping):
            raise CampaignError(
                f"campaign spec must be a JSON object, got {type(payload).__name__}"
            )
        if "name" not in payload:
            raise CampaignError("campaign spec needs a 'name'")
        jobs = payload.get("jobs", [])
        if not isinstance(jobs, (list, tuple)):
            raise CampaignError("'jobs' must be a list of job specs")
        return cls(
            name=payload["name"],
            jobs=tuple(JobSpec.from_json(entry) for entry in jobs),
        )


def load_spec(path: Union[str, Path]) -> CampaignSpec:
    """Parse a campaign spec file (the ``campaign run <spec>`` input)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise CampaignError(f"cannot read campaign spec {path}: {exc}") from None
    except ValueError as exc:
        raise CampaignError(f"unparseable campaign spec {path}: {exc}") from None
    return CampaignSpec.from_json(payload)
