"""Crash-safe multi-scenario experiment campaigns.

The campaign layer turns many :class:`~repro.api.Experiment` sweeps
into one named, durable, resumable unit::

    from repro.api import Experiment
    from repro.campaign import Campaign

    run = (
        Campaign("paper")
        .add("t1", Experiment("af_assurance").sweep(protocol=("tcp", "qtpaf")))
        .add("f1", Experiment("smoothness").seeds((0, 1, 2)))
        .run("results/paper")
    )
    print(run.summary())

Everything lands under one directory — spec + provenance, per-job
ResultSet exports and tables, an integrity manifest of content hashes,
an fsync'd checkpoint journal and a generated markdown report — and
the orchestrator can be SIGKILLed at any instant: ``Campaign.run(...,
resume=True)`` / ``campaign resume <dir>`` completes exactly the
missing work with byte-identical artifacts, and ``campaign verify
<dir>`` re-checks the hashes, quarantining anything corrupt.  See
:mod:`repro.campaign.store` for the layout and ``docs/campaigns.md``
for the full semantics.
"""

from repro.campaign.report import build_report
from repro.campaign.runner import (
    Campaign,
    CampaignRun,
    JobOutcome,
    resume_campaign,
    verify_campaign,
    write_report,
)
from repro.campaign.spec import CampaignError, CampaignSpec, JobSpec, load_spec
from repro.campaign.store import (
    CampaignJournal,
    CampaignStore,
    VerifyFinding,
    VerifyReport,
)

__all__ = [
    "Campaign",
    "CampaignError",
    "CampaignJournal",
    "CampaignRun",
    "CampaignSpec",
    "CampaignStore",
    "JobOutcome",
    "JobSpec",
    "VerifyFinding",
    "VerifyReport",
    "build_report",
    "load_spec",
    "resume_campaign",
    "verify_campaign",
    "write_report",
]
