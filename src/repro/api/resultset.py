""":class:`ResultSet` — the typed, queryable container for sweep results.

A :class:`ResultSet` wraps the :class:`~repro.harness.runner.RunRecord`
list a sweep produced and answers the questions every benchmark and
analysis script used to hand-roll:

* **lookup** — :meth:`one` / :meth:`value` fetch the single run (or one
  metric of it) matching a parameter/metric query;
* **slicing** — :meth:`filter` and :meth:`group_by` carve the set by
  parameters (or metrics), preserving deterministic grid order;
* **aggregation** — :meth:`aggregate` folds an axis (typically
  ``seed``) into mean/std/min/max/percentile summary rows;
* **presentation** — :meth:`table` renders via
  :func:`repro.harness.tables.format_table`, :meth:`to_rows` /
  :meth:`to_csv` / :meth:`to_json` export machine-readable forms.

Results are adapted through the
:class:`~repro.harness.result.ScenarioResult` contract; legacy raw
dict results are wrapped (with a one-time deprecation warning) so the
container never exposes free-form payloads.

Partial results (PR 7): a sweep run with ``on_failure="keep"`` may
contain terminally failed cells — records whose result is a
:class:`~repro.harness.result.RunFailure`.  The container surfaces
them instead of hiding them: :meth:`ok` / :meth:`failures` split the
set, :meth:`coverage` reports the completed fraction, tables and CSV
grow a ``status`` column *only when failures are present* (a fully
successful sweep renders byte-identically to before), metric columns
come from successful runs only, and :meth:`aggregate` skips failed
cells while counting them per group in a ``failed`` column.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.ioutil import atomic_write_text
from repro.harness.result import (
    MappingResult,
    RunFailure,
    ScenarioResult,
    coerce_result,
)
from repro.harness.runner import RunRecord
from repro.harness.tables import format_table
from repro.metrics.stats import mean as _mean
from repro.metrics.stats import percentile as _percentile
from repro.metrics.stats import stddev as _stddev

__all__ = ["ResultSet", "UnknownMetricError"]


class UnknownMetricError(KeyError):
    """A requested metric is not part of the scenario's declared contract.

    Raised by :meth:`ResultSet.value` and :meth:`ResultSet.aggregate`
    instead of a bare ``KeyError`` so the caller sees *which* metric
    was asked for and what the scenario actually declares — a typo in
    a benchmark script fails with the contract in hand, not with
    ``KeyError: 'ratio'``.  Subclasses ``KeyError`` so existing
    ``except KeyError`` call sites keep working.
    """

    def __init__(self, metric: str, known: Sequence[str], scenario: str = ""):
        where = f" of scenario {scenario!r}" if scenario else ""
        message = (
            f"unknown metric {metric!r}: not in the declared "
            f"contract{where}; known metrics: {sorted(known)}"
        )
        super().__init__(message)
        self.metric = metric
        self.known = sorted(known)
        self.scenario = scenario

    def __str__(self) -> str:  # KeyError would repr-quote the message
        return self.args[0]

#: Named statistics understood by :meth:`ResultSet.aggregate`; ``pNN``
#: strings (``p50``, ``p95``, ...) are resolved dynamically.
_STATS: Dict[str, Callable[[Sequence[float]], float]] = {
    "mean": _mean,
    "std": _stddev,
    "min": min,
    "max": max,
}


def _stat_fn(stat: str) -> Callable[[Sequence[float]], float]:
    fn = _STATS.get(stat)
    if fn is not None:
        return fn
    if stat.startswith("p") and stat[1:].isdigit():
        q = int(stat[1:])
        if 0 <= q <= 100:
            return lambda values: _percentile(values, q)
    raise ValueError(
        f"unknown statistic {stat!r}; known: "
        f"{sorted(_STATS)} plus percentiles like 'p95'"
    )


#: Sentinel distinguishing "metric absent" from a legitimate None value.
_MISSING = object()


class ResultSet:
    """An ordered, queryable collection of completed runs.

    Iteration yields :class:`RunRecord` objects in the deterministic
    grid order the runner produced; :attr:`results` yields the typed
    :class:`ScenarioResult` values.
    """

    def __init__(
        self,
        records: Sequence[RunRecord],
        *,
        declared_metrics: Optional[Sequence[str]] = None,
        spans: Optional[Sequence[Dict[str, Any]]] = None,
        obs_metrics: Optional[Dict[str, Any]] = None,
        _parent: Optional["ResultSet"] = None,
    ):
        self._records: List[RunRecord] = list(records)
        # the scenario's declared metric schema (from its registered
        # result type), used only when no successful record can supply
        # one — deliberately NOT inherited by derived slices, whose
        # records define their own schema (failures().metric_names must
        # keep exposing the failure fields)
        self._declared_metrics = (
            list(declared_metrics) if declared_metrics is not None else None
        )
        # observability payloads attached by Experiment.run (root set
        # only; slices answer through the records they hold)
        self._spans = list(spans) if spans is not None else None
        self._obs_metrics = obs_metrics
        # per-record coercion/metrics caches: query helpers visit every
        # record per call, and computed @property metrics should be
        # evaluated once per record, not once per table cell.  Derived
        # sets (filter/group_by slices) share the parent's caches —
        # they hold the same record objects (keys are record ids).
        if _parent is not None:
            self._coerced = _parent._coerced
            self._metric_cache = _parent._metric_cache
        else:
            self._coerced: Dict[int, ScenarioResult] = {}
            self._metric_cache: Dict[int, Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> RunRecord:
        return self._records[index]

    def __repr__(self) -> str:
        names = sorted({r.scenario for r in self._records})
        n_failed = sum(1 for r in self._records if self._is_failure(r))
        failed = f", {n_failed} failed" if n_failed else ""
        return (
            f"ResultSet({len(self._records)} runs{failed}, scenario={names})"
        )

    @property
    def records(self) -> List[RunRecord]:
        """The underlying run records (grid order)."""
        return list(self._records)

    @property
    def results(self) -> List[ScenarioResult]:
        """Every run's result under the :class:`ScenarioResult` contract."""
        return [self._result(r) for r in self._records]

    def _result(self, record: RunRecord) -> ScenarioResult:
        key = id(record)
        result = self._coerced.get(key)
        if result is None:
            result = coerce_result(record.result, record.scenario)
            self._coerced[key] = result
        return result

    def _metrics_of(self, record: RunRecord) -> Dict[str, Any]:
        """The record's metrics dict, computed once (do not mutate)."""
        key = id(record)
        metrics = self._metric_cache.get(key)
        if metrics is None:
            metrics = self._result(record).metrics()
            self._metric_cache[key] = metrics
        return metrics

    @staticmethod
    def _is_failure(record: RunRecord) -> bool:
        return isinstance(record.result, RunFailure)

    # ------------------------------------------------------------------
    # partial results
    # ------------------------------------------------------------------
    def ok(self) -> "ResultSet":
        """The successfully completed runs (grid order preserved)."""
        return ResultSet(
            [r for r in self._records if not self._is_failure(r)],
            _parent=self,
        )

    def failures(self) -> "ResultSet":
        """The terminally failed cells (records carrying a RunFailure).

        The failure's own metrics (``failure_kind``, ``error``,
        ``attempts``, ...) are queryable on the returned set, so
        ``results.failures().filter(failure_kind="timeout")`` works.
        """
        return ResultSet(
            [r for r in self._records if self._is_failure(r)],
            _parent=self,
        )

    @property
    def has_failures(self) -> bool:
        """True when any cell in this set failed terminally."""
        return any(self._is_failure(r) for r in self._records)

    def coverage(self) -> float:
        """Completed fraction of the set, in [0, 1] (1.0 when empty)."""
        if not self._records:
            return 1.0
        n_ok = sum(1 for r in self._records if not self._is_failure(r))
        return n_ok / len(self._records)

    # ------------------------------------------------------------------
    # observability payloads (attached by Experiment.run on the root set)
    # ------------------------------------------------------------------
    @property
    def spans(self) -> Optional[List[Dict[str, Any]]]:
        """The sweep's span events when tracing was on, else ``None``."""
        return list(self._spans) if self._spans is not None else None

    def metrics(self) -> Optional[Dict[str, Any]]:
        """The metrics-registry snapshot harvested for this sweep.

        ``None`` unless the metrics plane was enabled
        (:func:`repro.obs.enable_metrics` / ``REPRO_METRICS=1``) when
        the sweep ran; see :meth:`MetricsRegistry.to_json
        <repro.obs.metrics.MetricsRegistry.to_json>` for the shape.
        """
        return self._obs_metrics

    # ------------------------------------------------------------------
    # schema
    # ------------------------------------------------------------------
    @property
    def param_names(self) -> List[str]:
        """Union of parameter names, in first-appearance order."""
        names: List[str] = []
        for record in self._records:
            for key in record.params:
                if key not in names:
                    names.append(key)
        return names

    @property
    def metric_names(self) -> List[str]:
        """Union of metric names, in first-appearance order.

        Metrics shadowed by an identically-named parameter are dropped
        (the parameter column already carries the value).  Failed cells
        contribute no names: their :class:`RunFailure` fields describe
        the failure, not the scenario, and belong to
        ``failures().metric_names`` (where every record is a failure,
        they *are* the schema).
        """
        params = set(self.param_names)
        records = [r for r in self._records if not self._is_failure(r)]
        if not records and self._declared_metrics is not None:
            # no successful record can supply a schema (all-failed or
            # empty sweep): fall back to the scenario's declared one so
            # exports still emit explicit, parseable columns
            return [n for n in self._declared_metrics if n not in params]
        if not records:  # a pure-failure set: the failure IS the schema
            records = self._records
        names: List[str] = []
        for record in records:
            for key in self._metrics_of(record):
                if key not in names and key not in params:
                    names.append(key)
        return names

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def _known_keys(self) -> set:
        """Every key queryable somewhere in the set (params and metrics)."""
        known: set = set()
        for record in self._records:
            known.update(record.params)
            known.update(self._metrics_of(record))
        return known

    def _matches(self, record: RunRecord, query: Mapping[str, Any]) -> bool:
        metrics: Optional[Dict[str, Any]] = None
        for key, expected in query.items():
            if key in record.params:
                if record.params[key] != expected:
                    return False
                continue
            if metrics is None:
                metrics = self._metrics_of(record)
            # a key this record simply does not carry (heterogeneous
            # sets, aggregated rows) is a non-match, not an error —
            # filter() has already rejected set-wide unknowns
            if metrics.get(key, _MISSING) != expected:
                return False
        return True

    def filter(
        self,
        predicate: Optional[Callable[[RunRecord], bool]] = None,
        **query: Any,
    ) -> "ResultSet":
        """Runs matching ``predicate`` and/or ``param=value`` equality.

        Query keys name run parameters first, falling back to declared
        metrics (so ``filter(profile_name="TFRC")`` works even when the
        sweep axis used a different spelling than the result).  A key
        carried by only *some* runs simply excludes the runs that lack
        it; a key no run in the set carries at all is a typo and raises
        ``KeyError`` rather than silently matching nothing.
        """
        if query and self._records:
            unknown = sorted(set(query) - self._known_keys())
            if unknown:
                raise KeyError(
                    f"{unknown} are neither parameters nor metrics of any "
                    f"run in this set; known: {sorted(self._known_keys())}"
                )
        kept = [
            r
            for r in self._records
            if (predicate is None or predicate(r)) and self._matches(r, query)
        ]
        return ResultSet(kept, _parent=self)

    def _single(self, query: Mapping[str, Any]) -> RunRecord:
        matched = self.filter(**query)
        if len(matched) != 1:
            raise KeyError(
                f"query {query!r} matched {len(matched)} runs, expected 1"
            )
        return matched[0]

    def one(self, **query: Any) -> ScenarioResult:
        """The single result matching ``query`` (KeyError otherwise)."""
        return self._result(self._single(query))

    def value(self, metric: str, **query: Any) -> Any:
        """One metric of the single run matching ``query``.

        Raises :class:`UnknownMetricError` (a ``KeyError``) naming the
        run's declared metrics when ``metric`` is not one of them.
        """
        record = self._single(query)
        metrics = self._metrics_of(record)
        try:
            return metrics[metric]
        except KeyError:
            raise UnknownMetricError(
                metric, list(metrics), record.scenario
            ) from None

    def group_by(self, *keys: str) -> Dict[Any, "ResultSet"]:
        """Partition by parameter values, preserving grid order.

        Returns ``{value: ResultSet}`` for a single key and
        ``{(v1, v2, ...): ResultSet}`` for several; group insertion
        order follows first appearance in the record list.
        """
        if not keys:
            raise ValueError("group_by needs at least one parameter name")
        groups: Dict[Any, List[RunRecord]] = {}
        for record in self._records:
            values = tuple(record.params.get(k) for k in keys)
            key = values[0] if len(keys) == 1 else values
            groups.setdefault(key, []).append(record)
        return {
            key: ResultSet(records, _parent=self)
            for key, records in groups.items()
        }

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def aggregate(
        self,
        *metrics: str,
        over: str = "seed",
        stats: Sequence[str] = ("mean", "std"),
    ) -> "ResultSet":
        """Fold the ``over`` axis into summary statistics per group.

        Groups runs by every parameter except ``over``, then reduces
        each requested metric (default: all declared metrics that are
        numeric in every run) with each statistic in ``stats`` —
        ``mean``, ``std`` (population), ``min``, ``max`` or ``pNN``
        percentiles.  The result is a new :class:`ResultSet` whose
        records carry the group parameters, a ``runs`` count and
        ``<metric>_<stat>`` summary metrics.

        Terminally failed cells are *skipped*: statistics fold only
        the successful runs of each group, ``runs`` counts those, and
        — only when the set carries failures at all — each summary row
        gains a ``failed`` count so reduced coverage is visible rather
        than silently averaged over.  A group with no successful run
        keeps its row (``runs`` 0, all statistics ``None``).
        """
        stat_fns = [(s, _stat_fn(s)) for s in stats]
        report_failed = self.has_failures
        groups: Dict[Tuple[Any, ...], List[RunRecord]] = {}
        group_params: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
        for record in self._records:
            kept = {k: v for k, v in record.params.items() if k != over}
            key = tuple(sorted(kept.items(), key=lambda kv: kv[0]))
            groups.setdefault(key, []).append(record)
            group_params.setdefault(key, kept)
        aggregated: List[RunRecord] = []
        for key, records in groups.items():
            ok_records = [r for r in records if not self._is_failure(r)]
            rows = [self._metrics_of(r) for r in ok_records]
            names = list(metrics) or [
                name
                for name in ResultSet(ok_records, _parent=self).metric_names
                if all(
                    isinstance(row.get(name), (int, float))
                    and not isinstance(row.get(name), bool)
                    for row in rows
                )
            ]
            summary: Dict[str, Any] = {"runs": len(ok_records)}
            if report_failed:
                summary["failed"] = len(records) - len(ok_records)
            for name in names:
                values = []
                for row in rows:
                    if name not in row:
                        raise UnknownMetricError(
                            name, list(rows[0]), records[0].scenario
                        )
                    values.append(row[name])
                for stat, fn in stat_fns:
                    summary[f"{name}_{stat}"] = (
                        fn(values) if values else None
                    )
            aggregated.append(
                RunRecord(
                    scenario=records[0].scenario,
                    params=group_params[key],
                    result=MappingResult(summary),
                )
            )
        return ResultSet(aggregated)

    # ------------------------------------------------------------------
    # exports
    # ------------------------------------------------------------------
    def to_rows(self) -> Tuple[List[str], List[List[Any]]]:
        """``(headers, rows)`` — parameter columns then metric columns.

        When the set carries failures, a ``status`` column is inserted
        between the parameters and the metrics (``ok`` or
        ``failed:<kind>``), and a failed cell's metric columns are
        blank.  A fully successful set renders exactly as before —
        no extra column.
        """
        param_cols = self.param_names
        metric_cols = self.metric_names
        with_status = self.has_failures
        rows = []
        for record in self._records:
            row = [record.params.get(c, "") for c in param_cols]
            if with_status:
                row.append(
                    f"failed:{record.result.failure_kind}"
                    if self._is_failure(record) else "ok"
                )
            # in a mixed set the metric columns are scenario metrics, so
            # a failed cell's row is naturally blank; in a pure-failure
            # set (failures().table()) the columns ARE the failure
            # fields and fill in
            metrics = self._metrics_of(record)
            row.extend(metrics.get(c, "") for c in metric_cols)
            rows.append(row)
        headers = param_cols + (["status"] if with_status else []) + metric_cols
        return headers, rows

    def table(self, title: str = "") -> str:
        """A fixed-width text table of every run (params + metrics)."""
        headers, rows = self.to_rows()
        return format_table(headers, rows, title=title)

    def to_csv(self, path: Optional[Union[str, Path]] = None) -> str:
        """CSV export (written to ``path`` when given, always returned)."""
        headers, rows = self.to_rows()
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(headers)
        writer.writerows(rows)
        text = buffer.getvalue()
        if path is not None:
            atomic_write_text(path, text)
        return text

    def to_json(self, path: Optional[Union[str, Path]] = None) -> str:
        """JSON export: one object per run with params and metrics.

        Unlike the flat :meth:`to_csv`/:meth:`table` exports — which
        drop metric columns that duplicate a parameter — the nested
        form reports each run's metrics in full: params and metrics
        are separate objects, so the duplication is explicit rather
        than a colliding column.

        A terminally failed cell exports a ``failure`` object (kind,
        error, message, attempts, elapsed) instead of ``metrics``;
        fully successful sets export byte-identically to before.
        """
        payload: List[Dict[str, Any]] = []
        for record in self._records:
            entry: Dict[str, Any] = {
                "scenario": record.scenario,
                "params": dict(record.params),
            }
            if self._is_failure(record):
                failure = record.result
                entry["failure"] = {
                    "kind": failure.failure_kind,
                    "error": failure.error,
                    "message": failure.message,
                    "attempts": failure.attempts,
                    "elapsed": failure.elapsed,
                }
            else:
                entry["metrics"] = self._metrics_of(record)
            payload.append(entry)
        text = json.dumps(payload, indent=2, default=repr)
        if path is not None:
            atomic_write_text(path, text)
        return text
