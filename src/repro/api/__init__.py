"""``repro.api`` — the unified experiment front door (PR 5).

One import gives the whole define → run → analyze → export workflow
over the scenario registry, the warm sweep runner and the table
formatter:

* :class:`Experiment` — fluent, schema-validated sweep builder
  (``Experiment("af_assurance").sweep(...).seeds(...).workers(...)``),
  executing through :func:`repro.harness.runner.run_matrix` (warm
  worker pool, deterministic grid order, on-disk memo);
* :class:`ResultSet` — the typed, queryable result container:
  ``.one()/.value()`` lookups, ``.filter()/.group_by()`` slicing,
  ``.aggregate()`` over seeds, ``.table()/.to_rows()/.to_csv()/
  .to_json()`` presentation;
* :class:`ScenarioResult` — the contract scenario return values
  declare their metrics through (see :mod:`repro.harness.result`);
* :class:`RunFailure` — the structured terminal failure a cell carries
  when a sweep runs with ``on_failure="keep"``/``"retry"`` (PR 7):
  ``rs.failures()`` / ``rs.ok()`` / ``rs.coverage()`` surface partial
  results instead of aborting the whole sweep.

Quickstart::

    from repro.api import Experiment

    rs = (
        Experiment("lossy_path")
        .sweep(protocol=("tcp", "tfrc"), loss_rate=(0.01, 0.05))
        .configure(duration=30.0)
        .seeds(range(3))
        .run()
    )
    print(rs.aggregate("goodput_bps", over="seed").table(title="goodput"))
    rs.to_csv("lossy_path.csv")

``examples/experiment_api.py`` is the full walkthrough; the CLI
(``python -m repro.harness run ... --format table|csv|json``) and the
benchmark table suites are built on the same two classes.
"""

from repro.api.experiment import Experiment
from repro.api.resultset import ResultSet, UnknownMetricError
from repro.harness.result import (
    MappingResult,
    RunFailure,
    ScenarioResult,
    coerce_result,
)

__all__ = [
    "Experiment",
    "MappingResult",
    "ResultSet",
    "RunFailure",
    "ScenarioResult",
    "UnknownMetricError",
    "coerce_result",
]
