""":class:`Experiment` — the fluent front door to scenario sweeps.

An :class:`Experiment` names one registered scenario and accumulates
the sweep definition — axes, fixed configuration, seeds, worker count,
cache location — validating every parameter name against the registry
schema *at call time*, so a typo fails where it was written instead of
inside a worker process.  :meth:`run` executes through the existing
warm :func:`~repro.harness.runner.run_matrix` machinery (deterministic
grid order, on-disk memo, warm worker pool) and returns a
:class:`~repro.api.resultset.ResultSet`.

Typical use::

    from repro.api import Experiment

    results = (
        Experiment("af_assurance")
        .sweep(protocol=("tcp", "qtpaf"), target_bps=(2e6, 4e6))
        .configure(n_cross=8, duration=40.0)
        .seeds(range(5))
        .workers(8)
        .run()
    )
    print(results.aggregate("ratio", over="seed").table())
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.api.resultset import ResultSet
from repro.harness.registry import ScenarioSpec, get_scenario
from repro.harness.runner import RunRecord, run_matrix

__all__ = ["Experiment"]


class Experiment:
    """A declarative, schema-checked sweep over one registered scenario.

    The builder methods mutate and return ``self`` so definitions read
    as one fluent chain; :meth:`run` may be called repeatedly (e.g.
    with different caches) — the definition is not consumed.
    """

    def __init__(self, scenario: Union[str, ScenarioSpec]):
        if isinstance(scenario, ScenarioSpec):
            # run() executes by registry name, so the spec must BE the
            # registered one — a hand-built or modified spec would
            # validate against one schema here and execute another
            # function there, defeating the fail-at-call-site design
            registered = get_scenario(scenario.name)
            if registered is not scenario:
                raise ValueError(
                    f"spec {scenario.name!r} is not the registered "
                    "ScenarioSpec; pass the object returned by "
                    "repro.harness.registry.get_scenario()"
                )
            self._spec = scenario
        else:
            self._spec = get_scenario(scenario)
        self._grid: Dict[str, Tuple[Any, ...]] = {}
        self._base: Dict[str, Any] = {}
        self._seeds: Optional[List[int]] = None
        self._workers: Optional[int] = 1
        self._cache_dir: Optional[Path] = None
        self._max_retries: Optional[int] = None
        self._run_timeout: Optional[float] = None
        self._trace: bool = False
        self._profile: bool = False

    @classmethod
    def from_spec(cls, spec: ScenarioSpec) -> "Experiment":
        """Build directly from a registry :class:`ScenarioSpec`."""
        return cls(spec)

    # ------------------------------------------------------------------
    # definition
    # ------------------------------------------------------------------
    @property
    def spec(self) -> ScenarioSpec:
        """The registered scenario this experiment sweeps."""
        return self._spec

    @property
    def grid(self) -> Dict[str, Tuple[Any, ...]]:
        """The effective sweep grid (the registered default when empty)."""
        return dict(self._grid) if self._grid else dict(self._spec.default_grid)

    def _check_params(self, names: Iterable[str], what: str) -> None:
        unknown = sorted(set(names) - set(self._spec.params))
        if unknown:
            raise ValueError(
                f"scenario {self._spec.name!r} has no parameter(s) "
                f"{unknown} (in {what}); known: {sorted(self._spec.params)}"
            )

    def sweep(
        self,
        axes: Optional[Mapping[str, Sequence[Any]]] = None,
        /,
        **kw_axes: Sequence[Any],
    ) -> "Experiment":
        """Add sweep axes (``param=values``); replaces the default grid.

        Repeated calls accumulate; re-sweeping an axis replaces its
        values.  Axis names are validated against the scenario schema
        immediately, and every axis needs at least one value.
        """
        merged = {**(axes or {}), **kw_axes}
        self._check_params(merged, "sweep")
        for name, values in merged.items():
            frozen = tuple(values)
            if not frozen:
                raise ValueError(f"sweep axis {name!r} has no values")
            self._grid[name] = frozen
        return self

    def configure(self, **fixed: Any) -> "Experiment":
        """Fix parameters for every run (a sweep axis wins on conflict)."""
        self._check_params(fixed, "configure")
        self._base.update(fixed)
        return self

    def seeds(self, seeds: Union[int, Iterable[int]]) -> "Experiment":
        """Cross these seeds with every grid point (fastest-varying axis)."""
        self._seeds = [seeds] if isinstance(seeds, int) else list(seeds)
        if not self._seeds:
            raise ValueError("need at least one seed")
        return self

    def workers(self, n: Optional[int]) -> "Experiment":
        """Worker processes: 1 = in-process serial, ``None``/0 = one per CPU."""
        self._workers = None if not n else int(n)
        return self

    def cache(self, directory: Optional[Union[str, Path]]) -> "Experiment":
        """Memoize runs under ``directory`` (``None`` disables caching)."""
        self._cache_dir = None if directory is None else Path(directory)
        return self

    def retries(self, n: int) -> "Experiment":
        """Retry each failed run up to ``n`` extra times (backoff+jitter)."""
        if n < 0:
            raise ValueError(f"retries must be >= 0, got {n}")
        self._max_retries = int(n)
        return self

    def timeout(self, seconds: Optional[float]) -> "Experiment":
        """Per-run wall-clock deadline (``None`` disables the deadline).

        Setting a deadline forces pool execution even for one worker —
        an in-process run cannot preempt itself.
        """
        if seconds is not None and seconds <= 0:
            raise ValueError(f"timeout must be > 0 seconds, got {seconds}")
        self._run_timeout = None if seconds is None else float(seconds)
        return self

    def trace(self, enabled: bool = True) -> "Experiment":
        """Record structured span events for every cell of the sweep.

        The events land on ``ResultSet.spans``; with a configured
        :meth:`cache` they are also journaled as JSONL next to the
        sweep manifest (``<scenario>.spans.jsonl``).  Off by default —
        an untraced sweep constructs no events anywhere.
        """
        self._trace = bool(enabled)
        return self

    def profile(self, enabled: bool = True) -> "Experiment":
        """Wrap each fresh cell in cProfile (``REPRO_PROFILE=1`` twin).

        The compact per-cell stats ride ``RunRecord.profile``;
        aggregate them with :func:`repro.obs.merge_profiles` /
        :func:`repro.obs.hotspot_table`.
        """
        self._profile = bool(enabled)
        return self

    def n_cells(self) -> int:
        """The number of cells this definition expands to."""
        from repro.harness.runner import expand_grid

        n = len(expand_grid(self.grid))
        if self._seeds is not None:
            n *= len(self._seeds)
        return n

    def describe(self) -> Dict[str, Any]:
        """The accumulated definition as one JSON-ready dict.

        This is the serialization :mod:`repro.campaign` persists in
        ``campaign.json``; rebuilding an :class:`Experiment` from it
        (same scenario, grid, base, seeds, workers, retries, timeout)
        reproduces this definition exactly — parameter *values* must
        therefore be JSON-representable to round-trip.  Only the
        explicitly set grid is recorded (``{}`` means the registered
        default grid applies at run time).
        """
        return {
            "scenario": self._spec.name,
            "grid": {name: list(values) for name, values in self._grid.items()},
            "base": dict(self._base),
            "seeds": list(self._seeds) if self._seeds is not None else None,
            "workers": self._workers,
            "retries": self._max_retries,
            "timeout": self._run_timeout,
        }

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        progress: Optional[Callable[[RunRecord], None]] = None,
        *,
        on_failure: str = "raise",
        resume: bool = False,
        observer: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> ResultSet:
        """Execute the sweep and return its :class:`ResultSet`.

        Delegates to :func:`repro.harness.runner.run_matrix`: the grid
        expands in axis-insertion order, seeds vary fastest, records
        come back in deterministic grid order, completed runs are
        memoized in the configured cache, and multi-worker runs reuse
        the process-global warm pool.

        ``on_failure`` selects the failure semantics:

        ``"raise"`` (default)
            the first terminal failure raises (the seed behaviour) —
            the original exception where it survives pickling,
            :class:`~repro.harness.runner.SweepRunError` otherwise;
        ``"keep"``
            failed cells become part of the :class:`ResultSet`
            (``results.failures()`` / ``results.ok()``) and the sweep
            always completes;
        ``"retry"``
            like ``"keep"``, but with retries defaulting to 2 when
            :meth:`retries` was not called.

        ``resume=True`` re-opens this sweep's journaled manifest and
        re-runs only missing/failed cells (requires a configured
        :meth:`cache`).

        ``observer``, when given, receives every span event of the
        sweep (see :mod:`repro.obs.spans` for the vocabulary) — this is
        what the CLI ``--progress`` renderer hooks; it composes with
        :meth:`trace`, which additionally journals the events.
        """
        if on_failure not in ("raise", "keep", "retry"):
            raise ValueError(
                f"on_failure must be 'raise', 'keep' or 'retry', "
                f"got {on_failure!r}"
            )
        max_retries = self._max_retries or 0
        if on_failure == "retry" and self._max_retries is None:
            max_retries = 2

        writer = None
        run_observer = observer
        if self._trace:
            from repro.harness.runner import make_cache, spans_path
            from repro.obs.spans import SpanWriter

            cache = make_cache(self._cache_dir)
            path = (
                str(spans_path(cache, self._spec.name))
                if cache is not None else None
            )
            writer = SpanWriter(path, header={
                "scenario": self._spec.name,
                "cells": self.n_cells(),
                "started": time.time(),
            })
            if observer is None:
                run_observer = writer
            else:
                observer(writer.events[0])  # replay the sweep header

                def run_observer(event, _w=writer, _o=observer):
                    _w(event)
                    _o(event)

        try:
            records = run_matrix(
                self._spec.name,
                self._grid or None,
                base=self._base or None,
                seeds=self._seeds,
                workers=self._workers,
                cache_dir=self._cache_dir,
                progress=progress,
                max_retries=max_retries,
                run_timeout=self._run_timeout,
                strict=(on_failure == "raise"),
                resume=resume,
                observer=run_observer,
                profile=self._profile,
            )
        finally:
            if writer is not None:
                writer.close()

        declared = None
        if self._spec.result_type is not None:
            metric_names = getattr(self._spec.result_type, "metric_names", None)
            if callable(metric_names):
                declared = list(metric_names())

        obs_snapshot = None
        from repro.obs.metrics import metrics_enabled

        if metrics_enabled():
            from repro.obs.metrics import harvest_sweep, registry

            harvest_sweep(records)
            obs_snapshot = registry().to_json()

        return ResultSet(
            records,
            declared_metrics=declared,
            spans=writer.events if writer is not None else None,
            obs_metrics=obs_snapshot,
        )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        parts = [f"scenario={self._spec.name!r}", f"grid={self.grid!r}"]
        if self._base:
            parts.append(f"base={self._base!r}")
        if self._seeds is not None:
            parts.append(f"seeds={self._seeds!r}")
        return f"Experiment({', '.join(parts)})"
