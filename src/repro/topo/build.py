"""The spec compiler: ``build(sim, spec) -> BuiltScenario``.

The build order is **pinned** and must not be reordered — goldens and
benchmark tables fingerprint it (see
``tests/test_determinism_golden.py``):

1. **Nodes**: every name in ``spec.topology.nodes`` first, then lazily
   from link endpoints (forward ``src`` before ``dst``), in link order.
2. **Links**, in spec order.  Per link: the forward marker (its meter
   is built here, one fresh meter per ``MarkerSpec`` occurrence), the
   forward queue, the forward channel, the forward link; then, for
   duplex links, the reverse queue, reverse channel and reverse link.
   RED/RIO queues and netem channels draw their randomness from the
   named :meth:`~repro.sim.engine.Simulator.rng` stream
   (``QueueSpec.rng_stream`` / ``ChannelSpec.rng_stream``), which is
   memoized per name, so every element sharing a stream name shares
   one deterministic sequence.  A link with fluid background
   (``LinkSpec.background`` overriding ``QueueSpec.background``)
   compiles its :class:`~repro.fluid.source.FluidSource` **after both
   directions of that link**, forward direction then reverse — the
   source schedules its first epoch event here, so fluid events are
   tie-broken before every flow-start event.  ``REPRO_NO_FLUID=1``
   (sampled once per ``build``, mirroring ``REPRO_NO_POOL``) skips
   fluid compilation entirely: no events, no RNG streams, a
   byte-identical foreground-only run.
3. **Routes**: one ``compute_routes()`` pass.
4. **Flows**, in spec order.  Per flow: sender constructed, receiver
   constructed, sender attached, receiver attached, then the schedule
   (``start == 0`` starts the sender immediately — *during* the build,
   exactly like the historical scaffolds — otherwise ``sim.schedule``
   entries are created here, in flow order, pinning event-heap
   tie-breaking for simultaneous starts).

Nothing before ``sim.run()`` draws from any random stream, so the only
determinism-relevant orders are the queue/stream bindings of step 2 and
the schedule calls of step 4.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.core.instances import QTPAF, TFRC_MEDIA
from repro.fluid.source import FluidSource
from repro.core.profile import ReliabilityMode, TransportProfile
from repro.core.receiver import QtpReceiver
from repro.core.sender import QtpSender
from repro.metrics.fct import FlowCompletion
from repro.metrics.recorder import FlowRecorder
from repro.qos.marking import BestEffortMarker, ProfileMarker
from repro.qos.sla import ServiceLevelAgreement
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.packet import Color
from repro.sim.queues import DropTailQueue, RedQueue, RioQueue
from repro.sim.topology import Network
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender
from repro.tfrc.gtfrc import GtfrcRateController
from repro.netem.channels import (
    BernoulliLossChannel,
    GilbertElliottChannel,
    JitterChannel,
)
from repro.topo.specs import (
    ChannelSpec,
    FlowSpec,
    LinkSpec,
    MarkerSpec,
    QueueSpec,
    ScenarioSpec,
)

Sender = Union[QtpSender, TcpSender]
Receiver = Union[QtpReceiver, TcpReceiver]

#: Opt-in engine-level packet tracing (the observability plane):
#: ``REPRO_TRACE=1`` attaches one :class:`repro.sim.trace.PacketTracer`
#: to every link of every built scenario, reachable as
#: ``BuiltScenario.tracer``.  Off by default — no wrapper objects are
#: created and the packet path is untouched.
TRACE_ENV = "REPRO_TRACE"

#: Kill-switch for the fluid background subsystem (mirrors
#: ``REPRO_NO_POOL``): with ``REPRO_NO_FLUID=1`` every ``background``
#: field is ignored at compile time — the scenario runs its declared
#: packet-level flows only, byte-identical to a spec with no
#: background at all.  The debugging lever for "is the fluid model the
#: thing that changed this number?".
NO_FLUID_ENV = "REPRO_NO_FLUID"


def _tracing_requested() -> bool:
    return os.environ.get(TRACE_ENV, "") not in ("", "0")


def _fluid_disabled() -> bool:
    return os.environ.get(NO_FLUID_ENV, "") not in ("", "0")


@dataclass
class BuiltScenario:
    """Live objects compiled from a :class:`ScenarioSpec`.

    Dictionaries are keyed by flow id (``recorders``, ``senders``,
    ``receivers``, ``slas``) or by ``"src->dst"`` (``markers``).  Only
    flows with ``record=True`` appear in ``recorders``.  When a flow
    holds several SLAs (per-hop re-conditioning, e.g. the parking lot),
    ``slas`` keeps the *first* one in link-spec order — presets list
    the domain-edge link first so that is the flow's primary contract;
    every meter remains reachable via ``markers["src->dst"].meter``.
    """

    spec: ScenarioSpec
    net: Network
    recorders: Dict[str, FlowRecorder] = field(default_factory=dict)
    senders: Dict[str, Sender] = field(default_factory=dict)
    receivers: Dict[str, Receiver] = field(default_factory=dict)
    markers: Dict[str, Union[ProfileMarker, BestEffortMarker]] = field(
        default_factory=dict
    )
    slas: Dict[str, ServiceLevelAgreement] = field(default_factory=dict)
    #: fluid background sources keyed ``"src->dst"`` (empty unless the
    #: spec carries ``background`` fields and REPRO_NO_FLUID is unset)
    fluid_sources: Dict[str, "FluidSource"] = field(default_factory=dict)
    #: the opt-in PacketTracer attached to every link when REPRO_TRACE
    #: was set at build time; None (the default) otherwise
    tracer: Optional[object] = None

    def link(self, src: str, dst: str) -> Link:
        """The directed link ``src -> dst``."""
        return self.net.link(src, dst)

    def queue(self, src: str, dst: str):
        """The queue of the directed link ``src -> dst``."""
        return self.net.link(src, dst).queue

    def recorder(self, flow_id: str) -> FlowRecorder:
        """The recorder of ``flow_id``; KeyError for unrecorded flows."""
        return self.recorders[flow_id]

    def completions(self) -> Tuple[FlowCompletion, ...]:
        """Finished finite flows, in flow-spec order.

        One :class:`~repro.metrics.fct.FlowCompletion` per
        byte-budgeted flow (``FlowSpec.size_bytes``) whose sender has
        stamped ``completed_at``; still-running and unbounded flows are
        absent.  Feed the result to
        :func:`repro.metrics.fct.fct_summary`.
        """
        done = []
        for fs in self.spec.flows:
            if fs.size_bytes is None:
                continue
            completed_at = self.senders[fs.flow_id].completed_at
            if completed_at is not None:
                done.append(
                    FlowCompletion(
                        fs.flow_id, fs.start, completed_at, fs.size_bytes
                    )
                )
        return tuple(done)


def build(sim: Simulator, spec: ScenarioSpec) -> BuiltScenario:
    """Compile ``spec`` into a ready-to-run scenario (see module doc)."""
    net = Network(sim)
    built = BuiltScenario(spec=spec, net=net)
    fluid_enabled = not _fluid_disabled()  # sampled once per build
    # 1. nodes: declared order first, then lazily from links
    for name in spec.topology.nodes:
        net.add_node(name)
    # 2. links in spec order
    for ls in spec.topology.links:
        marker = None
        if ls.marker is not None:
            marker = _build_marker(ls.marker, built)
            built.markers[f"{ls.src}->{ls.dst}"] = marker
        net.add_simplex_link(
            ls.src,
            ls.dst,
            ls.rate_bps,
            ls.delay,
            queue=_build_queue(ls.queue, sim, ls.rate_bps),
            channel=_build_channel(ls.channel, sim),
            marker=marker,
        )
        if ls.duplex:
            reverse = ls.reverse_queue if ls.reverse_queue is not None else ls.queue
            reverse_channel = (
                ls.reverse_channel if ls.reverse_channel is not None else ls.channel
            )
            net.add_simplex_link(
                ls.dst,
                ls.src,
                ls.rate_bps,
                ls.delay,
                queue=_build_queue(reverse, sim, ls.rate_bps),
                channel=_build_channel(reverse_channel, sim),
            )
        # fluid background, after both directions of this link exist:
        # forward (LinkSpec.background overrides QueueSpec.background),
        # then reverse (its own queue spec only).  Each FluidSource
        # schedules its first epoch event at construction, in this
        # pinned order.
        if fluid_enabled:
            forward_bg = (
                ls.background if ls.background is not None
                else ls.queue.background
            )
            if forward_bg is not None:
                built.fluid_sources[f"{ls.src}->{ls.dst}"] = FluidSource(
                    sim, net.link(ls.src, ls.dst), forward_bg
                )
            if ls.duplex and reverse.background is not None:
                built.fluid_sources[f"{ls.dst}->{ls.src}"] = FluidSource(
                    sim, net.link(ls.dst, ls.src), reverse.background
                )
    # 3. routes
    net.compute_routes()
    # 4. flows in spec order
    for fs in spec.flows:
        recorder = None
        if fs.record:
            recorder = FlowRecorder(fs.flow_id)
            built.recorders[fs.flow_id] = recorder
        sender, receiver = _build_flow(sim, net, fs, recorder)
        built.senders[fs.flow_id] = sender
        built.receivers[fs.flow_id] = receiver
        if fs.start <= 0.0:
            sender.start()
        else:
            sim.schedule(fs.start, sender.start)
        if fs.stop is not None:
            sim.schedule(fs.stop, sender.stop)
    # 5. (opt-in observability; AFTER the pinned steps above) attach a
    # packet tracer to every link.  The wrappers only observe — no
    # random draws, no schedule calls — so the golden event order is
    # untouched even when tracing is on.
    if _tracing_requested():
        from repro.sim.trace import PacketTracer

        tracer = PacketTracer()
        for link in net.links:
            tracer.attach(link)
        built.tracer = tracer
    return built


# ----------------------------------------------------------------------
# element compilers
# ----------------------------------------------------------------------
def _build_queue(qs: QueueSpec, sim: Simulator, link_rate_bps: float):
    """Instantiate one queue; ``None`` spec fields keep class defaults."""
    if qs.kind == "droptail":
        # pass only the set fields so DropTailQueue's own defaults hold
        # (a bytes-only bound keeps the default 100-packet bound too)
        kwargs = {}
        if qs.capacity_packets is not None:
            kwargs["capacity_packets"] = qs.capacity_packets
        if qs.capacity_bytes is not None:
            kwargs["capacity_bytes"] = qs.capacity_bytes
        return DropTailQueue(**kwargs)
    kwargs = {}
    if qs.kind == "red":
        fields = ("min_th", "max_th", "max_p")
        cls = RedQueue
    else:  # rio
        fields = (
            "in_min_th", "in_max_th", "in_max_p",
            "out_min_th", "out_max_th", "out_max_p",
        )
        cls = RioQueue
    for name in fields + ("weight", "capacity_packets"):
        value = getattr(qs, name)
        if value is not None:
            kwargs[name] = value
    mean_pkt_time = qs.mean_pkt_time
    if mean_pkt_time is None:
        mean_pkt_time = qs.mean_pkt_bytes * 8 / link_rate_bps
    return cls(
        rng=sim.rng(qs.rng_stream), mean_pkt_time=mean_pkt_time, **kwargs
    )


def _build_channel(cs: Optional[ChannelSpec], sim: Simulator):
    """Instantiate one link-direction channel (``None``/"none" → none).

    Every channel draws from the named ``sim.rng(cs.rng_stream)``
    stream; ``None`` spec fields keep the channel class defaults.
    """
    if cs is None or cs.kind == "none":
        return None
    rng = sim.rng(cs.rng_stream)
    if cs.kind == "bernoulli":
        return BernoulliLossChannel(cs.loss_rate, rng=rng)
    if cs.kind == "gilbert_elliott":
        kwargs = {
            name: getattr(cs, name)
            for name in ("p_g2b", "p_b2g", "p_good", "p_bad")
            if getattr(cs, name) is not None
        }
        return GilbertElliottChannel(rng=rng, **kwargs)
    return JitterChannel(cs.max_jitter, rng=rng)  # jitter


def _build_marker(ms: MarkerSpec, built: BuiltScenario):
    """Instantiate one marker (and its meter/SLA, when profiled)."""
    color = Color[ms.default_color.upper()]
    if ms.sla is None:
        return BestEffortMarker(color=color)
    sla = ServiceLevelAgreement(
        flow_id=ms.sla.flow_id,
        committed_rate_bps=ms.sla.committed_rate_bps,
        burst_bytes=ms.sla.burst_bytes,
        excess_burst_bytes=ms.sla.excess_burst_bytes,
        af_class=ms.sla.af_class,
    )
    built.slas.setdefault(ms.sla.flow_id, sla)
    return ProfileMarker(
        sla.build_meter(), flow_id=ms.sla.flow_id, default_color=color
    )


def _profile_for(fs: FlowSpec) -> TransportProfile:
    """The canonical profile of a non-TCP transport label."""
    if fs.transport == "qtpaf":
        return QTPAF(fs.target_bps)
    if fs.transport == "gtfrc":
        return QTPAF(
            fs.target_bps, name="gTFRC", reliability=ReliabilityMode.NONE
        )
    return TFRC_MEDIA  # tfrc


def _build_flow(
    sim: Simulator,
    net: Network,
    fs: FlowSpec,
    recorder: Optional[FlowRecorder],
) -> Tuple[Sender, Receiver]:
    """Construct/attach one flow's endpoints (sender first, see module doc)."""
    if fs.transport == "tcp":
        sender: Sender = TcpSender(
            sim, dst=fs.dst, sack=fs.sack, size_bytes=fs.size_bytes
        )
        receiver: Receiver = TcpReceiver(sim, recorder=recorder, sack=fs.sack)
    else:
        profile = _profile_for(fs)
        controller = None
        if fs.transport == "gtfrc" and fs.p_scaling:
            controller = GtfrcRateController(
                fs.target_bps / 8, profile.segment_size, p_scaling=True
            )
        sender = QtpSender(
            sim,
            dst=fs.dst,
            profile=profile,
            controller=controller,
            size_bytes=fs.size_bytes,
        )
        receiver = QtpReceiver(sim, profile=profile, recorder=recorder)
    sender.attach(net.node(fs.src), fs.flow_id)
    receiver.attach(net.node(fs.dst), fs.flow_id)
    return sender, receiver
