"""Declarative topology & scenario composition (PR 3).

``repro.topo`` turns the copy-pasted experiment scaffolds into data:
frozen dataclass specs describe a scenario, and one compiler builds the
live simulation objects in a pinned order, so "add a scenario" is a
~30-line spec instead of a ~120-line module.

Module map
----------
:mod:`repro.topo.specs`
    The spec vocabulary — :class:`QueueSpec` (DropTail/RED/RIO),
    :class:`SlaSpec`/:class:`MarkerSpec` (DiffServ edge conditioning),
    :class:`LinkSpec`, :class:`TopologySpec`, :class:`FlowSpec`
    (transport profile + schedule) and the top-level
    :class:`ScenarioSpec`.  All frozen/hashable pure data.
:mod:`repro.topo.build`
    The compiler: :func:`build` constructs the
    :class:`~repro.sim.topology.Network`, queues, SLAs/markers,
    senders/receivers and recorders in a pinned, documented order
    (goldens fingerprint it) and returns a :class:`BuiltScenario`
    handle keyed by flow id and link direction.
:mod:`repro.topo.generators`
    Programmatic topology generators for generated populations
    (:func:`access_star_spec`, :func:`isp_chain_spec`,
    :func:`fat_tree_spec`) plus their ``*_endpoints`` pools, all in
    pinned deterministic order.
:mod:`repro.topo.presets`
    Canonical specs: the shared :func:`t1_dumbbell_spec` (the one copy
    of the T1 scaffold that ``af_assurance``, ``gtfrc_ablation``,
    ``convergence`` and the bench trace probe now share) and the PR 3
    multi-bottleneck shapes (:func:`parking_lot_spec`,
    :func:`reverse_path_chain_spec`, :func:`hetero_sla_dumbbell_spec`).

Quickstart::

    from repro.sim.engine import Simulator
    from repro.topo import build, t1_dumbbell_spec

    sim = Simulator(seed=0)
    built = build(sim, t1_dumbbell_spec("qtpaf", 4e6, n_cross=4))
    sim.run(until=30.0)
    print(built.recorder("assured").mean_rate_bps(5.0, 30.0))

See ``examples/compose_scenario.py`` for a from-scratch custom spec.
"""

from repro.topo.build import BuiltScenario, build  # noqa: F401
from repro.topo.generators import (  # noqa: F401
    access_star_endpoints,
    access_star_spec,
    fat_tree_endpoints,
    fat_tree_spec,
    isp_chain_endpoints,
    isp_chain_spec,
    random_access_star_spec,
)
from repro.topo.presets import (  # noqa: F401
    hetero_sla_dumbbell_spec,
    lossy_chain_spec,
    parking_lot_spec,
    reverse_path_chain_spec,
    t1_dumbbell_spec,
)
from repro.topo.specs import (  # noqa: F401
    ChannelSpec,
    FlowSpec,
    LinkSpec,
    MarkerSpec,
    QueueSpec,
    ScenarioSpec,
    SlaSpec,
    TopologySpec,
)

__all__ = [
    "BuiltScenario",
    "ChannelSpec",
    "FlowSpec",
    "LinkSpec",
    "MarkerSpec",
    "QueueSpec",
    "ScenarioSpec",
    "SlaSpec",
    "TopologySpec",
    "access_star_endpoints",
    "access_star_spec",
    "build",
    "fat_tree_endpoints",
    "fat_tree_spec",
    "hetero_sla_dumbbell_spec",
    "isp_chain_endpoints",
    "isp_chain_spec",
    "lossy_chain_spec",
    "parking_lot_spec",
    "random_access_star_spec",
    "reverse_path_chain_spec",
    "t1_dumbbell_spec",
]
