"""Canonical scenario specs: the shared T1 dumbbell and the PR 3 shapes.

:func:`t1_dumbbell_spec` is the single source of the DiffServ AF
dumbbell that ``af_assurance``, ``gtfrc_ablation``, ``convergence`` and
the benchmark network trace probe previously each rebuilt by hand; its
construction order (compiled by :func:`repro.topo.build.build`)
reproduces those scaffolds bit-for-bit — the determinism goldens pin
this.

The other presets open the multi-bottleneck workloads:

* :func:`parking_lot_spec` — two RIO bottlenecks in series with
  independent per-hop SLAs and per-hop TCP cross traffic;
* :func:`reverse_path_chain_spec` — an AF chain whose *reverse* path
  (the assured flow's feedback/ACK path) is congested by TCP;
* :func:`hetero_sla_dumbbell_spec` — several assured flows with
  different guarantees competing inside one AF class.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.topo.specs import (
    ChannelSpec,
    FlowSpec,
    LinkSpec,
    MarkerSpec,
    QueueSpec,
    ScenarioSpec,
    SlaSpec,
    TopologySpec,
)

#: The RIO discipline every AF bottleneck uses (class defaults;
#: ``mean_pkt_time`` derives from the owning link's rate).
RIO = QueueSpec(kind="rio")


def t1_dumbbell_spec(
    protocol: str,
    target_bps: float,
    n_cross: int = 4,
    *,
    bottleneck_bps: float = 10e6,
    bottleneck_delay: float = 0.02,
    access_rate: float = 100e6,
    access_delay: float = 0.002,
    assured_access_delay: Optional[float] = None,
    burst_bytes: float = 30_000.0,
    cross_start: float = 0.0,
    p_scaling: bool = False,
    cross_record: bool = False,
) -> ScenarioSpec:
    """The T1 AF dumbbell: one assured flow vs greedy TCP cross traffic.

    Pair 0 carries the assured flow (srTCM marker on its ``s0 -> left``
    access link, transport ``protocol``); pairs 1..n carry best-effort
    TCP flows ``x1..xn`` which start at ``cross_start`` (0 = with the
    assured flow; the convergence experiment steps them in later).
    """
    delay0 = assured_access_delay if assured_access_delay is not None else access_delay
    links = [
        LinkSpec("left", "right", bottleneck_bps, bottleneck_delay, queue=RIO),
        LinkSpec(
            "s0",
            "left",
            access_rate,
            delay0,
            marker=MarkerSpec(
                sla=SlaSpec("assured", target_bps, burst_bytes=burst_bytes)
            ),
        ),
        LinkSpec("right", "d0", access_rate, delay0),
    ]
    flows = [
        FlowSpec(
            "assured",
            "s0",
            "d0",
            transport=protocol,
            target_bps=target_bps,
            p_scaling=p_scaling,
        )
    ]
    for i in range(1, 1 + n_cross):
        links.append(LinkSpec(f"s{i}", "left", access_rate, access_delay))
        links.append(LinkSpec("right", f"d{i}", access_rate, access_delay))
        flows.append(
            FlowSpec(
                f"x{i}",
                f"s{i}",
                f"d{i}",
                transport="tcp",
                start=cross_start,
                record=cross_record,
            )
        )
    return ScenarioSpec(
        name="t1_dumbbell",
        topology=TopologySpec(links=tuple(links)),
        flows=tuple(flows),
        description="AF dumbbell: assured flow + TCP cross on one RIO bottleneck",
    )


def lossy_chain_spec(
    protocol: str,
    loss_rate: float,
    n_hops: int = 3,
    *,
    hop_rate_bps: float = 2e6,
    hop_delay: float = 0.005,
    bursty: bool = False,
    rng_stream: str = "wireless",
) -> ScenarioSpec:
    """The F2 lossy multi-hop chain: one flow over per-hop random loss.

    ``h0 -> h1 -> ... -> hN`` with an independent loss channel on
    *every* link direction (each drawing from the shared ``rng_stream``
    — the convention the hand-built ``chain(channel_factory=...)``
    scaffold used).  ``bursty=True`` selects a Gilbert–Elliott channel
    tuned to the same steady-state loss rate (fixed bad-state dynamics,
    ``p_g2b`` solved for the target); otherwise losses are Bernoulli.
    A non-positive ``loss_rate`` leaves the chain clean.
    """
    if n_hops < 1:
        raise ValueError("need at least one hop")
    channel = None
    if loss_rate > 0:
        if bursty:
            # fix the bad-state dynamics, solve p_g2b for the target rate
            p_bad, p_b2g = 0.5, 0.25
            p_g2b = loss_rate * p_b2g / max(1e-9, (p_bad - loss_rate))
            channel = ChannelSpec(
                kind="gilbert_elliott",
                p_g2b=min(0.9, p_g2b),
                p_b2g=p_b2g,
                p_bad=p_bad,
                rng_stream=rng_stream,
            )
        else:
            channel = ChannelSpec(
                kind="bernoulli", loss_rate=loss_rate, rng_stream=rng_stream
            )
    links = [
        LinkSpec(
            f"h{i}", f"h{i + 1}", hop_rate_bps, hop_delay, channel=channel
        )
        for i in range(n_hops)
    ]
    flows = (
        FlowSpec("flow", "h0", f"h{n_hops}", transport=protocol),
    )
    return ScenarioSpec(
        name="lossy_chain",
        topology=TopologySpec(links=tuple(links)),
        flows=flows,
        description="one flow over an H-hop chain with per-hop random loss",
    )


def parking_lot_spec(
    protocol: str,
    target_bps: float,
    n_cross_a: int = 3,
    n_cross_b: int = 3,
    *,
    bottleneck_bps: float = 10e6,
    hop_delay: float = 0.01,
    access_rate: float = 100e6,
    access_delay: float = 0.002,
    hop2_target_bps: Optional[float] = None,
    burst_bytes: float = 30_000.0,
    cross_record: bool = False,
) -> ScenarioSpec:
    """Parking lot: the assured flow crosses *two* RIO bottlenecks.

    ``s0 -> r0 -> r1 -> r2 -> d0``, with independent TCP cross bursts on
    each hop (``a*`` on ``r0 -> r1``, ``b*`` on ``r1 -> r2``).  The flow
    holds one SLA per hop: the edge meter on ``s0 -> r0`` and a fresh
    re-conditioning meter on ``r1 -> r2`` (``hop2_target_bps``, default
    the same guarantee), so in-profile protection is decided hop by hop
    — the multi-domain DiffServ picture.
    """
    hop2 = hop2_target_bps if hop2_target_bps is not None else target_bps
    links = [
        # the edge link comes first so built.slas["assured"] is the
        # flow's primary (domain-edge) contract, not the hop-2 re-meter
        LinkSpec(
            "s0",
            "r0",
            access_rate,
            access_delay,
            marker=MarkerSpec(
                sla=SlaSpec("assured", target_bps, burst_bytes=burst_bytes)
            ),
        ),
        LinkSpec("r0", "r1", bottleneck_bps, hop_delay, queue=RIO),
        LinkSpec(
            "r1",
            "r2",
            bottleneck_bps,
            hop_delay,
            queue=RIO,
            marker=MarkerSpec(
                sla=SlaSpec("assured", hop2, burst_bytes=burst_bytes)
            ),
        ),
        LinkSpec("r2", "d0", access_rate, access_delay),
    ]
    flows = [
        FlowSpec("assured", "s0", "d0", transport=protocol, target_bps=target_bps)
    ]
    for i in range(1, 1 + n_cross_a):
        links.append(LinkSpec(f"sa{i}", "r0", access_rate, access_delay))
        links.append(LinkSpec("r1", f"da{i}", access_rate, access_delay))
        flows.append(
            FlowSpec(
                f"a{i}", f"sa{i}", f"da{i}", transport="tcp", record=cross_record
            )
        )
    for i in range(1, 1 + n_cross_b):
        links.append(LinkSpec(f"sb{i}", "r1", access_rate, access_delay))
        links.append(LinkSpec("r2", f"db{i}", access_rate, access_delay))
        flows.append(
            FlowSpec(
                f"b{i}", f"sb{i}", f"db{i}", transport="tcp", record=cross_record
            )
        )
    return ScenarioSpec(
        name="parking_lot",
        topology=TopologySpec(links=tuple(links)),
        flows=tuple(flows),
        description="assured flow over two RIO bottlenecks with per-hop SLAs",
    )


def reverse_path_chain_spec(
    protocol: str,
    target_bps: float,
    n_hops: int = 3,
    n_reverse: int = 4,
    *,
    rate_bps: float = 10e6,
    hop_delay: float = 0.01,
    reverse_start: float = 0.0,
    reverse_stop: Optional[float] = None,
    burst_bytes: float = 30_000.0,
) -> ScenarioSpec:
    """An AF chain whose reverse (feedback) path carries TCP cross traffic.

    The assured flow runs ``h0 -> hN``; ``n_reverse`` greedy TCP flows
    run ``hN -> h0`` over the *same* duplex hops, congesting the RIO
    queues that the assured flow's feedback reports traverse — the
    ACK-path congestion case that stresses gTFRC's control loop.
    """
    if n_hops < 1:
        raise ValueError("need at least one hop")
    last = f"h{n_hops}"
    links = []
    for i in range(n_hops):
        links.append(
            LinkSpec(
                f"h{i}",
                f"h{i + 1}",
                rate_bps,
                hop_delay,
                queue=RIO,
                marker=(
                    MarkerSpec(
                        sla=SlaSpec("assured", target_bps, burst_bytes=burst_bytes)
                    )
                    if i == 0
                    else None
                ),
            )
        )
    flows = [
        FlowSpec("assured", "h0", last, transport=protocol, target_bps=target_bps)
    ]
    for j in range(1, 1 + n_reverse):
        flows.append(
            FlowSpec(
                f"rev{j}",
                last,
                "h0",
                transport="tcp",
                start=reverse_start,
                stop=reverse_stop,
            )
        )
    return ScenarioSpec(
        name="reverse_path_chain",
        topology=TopologySpec(links=tuple(links)),
        flows=tuple(flows),
        description="AF chain with TCP cross traffic on the feedback path",
    )


def hetero_sla_dumbbell_spec(
    protocol: str,
    targets_bps: Sequence[float],
    n_cross: int = 2,
    *,
    bottleneck_bps: float = 10e6,
    bottleneck_delay: float = 0.02,
    access_rate: float = 100e6,
    access_delay: float = 0.002,
    burst_bytes: float = 30_000.0,
) -> ScenarioSpec:
    """Several assured flows with *different* guarantees in one AF class.

    Flow ``af{i}`` holds an SLA of ``targets_bps[i]`` (its own srTCM
    meter on its access link); all compete for one RIO bottleneck,
    alongside ``n_cross`` best-effort TCP flows.  The question is
    whether each guarantee holds independently of its size.
    """
    targets: Tuple[float, ...] = tuple(targets_bps)
    if not targets:
        raise ValueError("need at least one assured target")
    links = [
        LinkSpec("left", "right", bottleneck_bps, bottleneck_delay, queue=RIO)
    ]
    flows = []
    for i, target in enumerate(targets):
        links.append(
            LinkSpec(
                f"s{i}",
                "left",
                access_rate,
                access_delay,
                marker=MarkerSpec(
                    sla=SlaSpec(f"af{i}", target, burst_bytes=burst_bytes)
                ),
            )
        )
        links.append(LinkSpec("right", f"d{i}", access_rate, access_delay))
        flows.append(
            FlowSpec(
                f"af{i}", f"s{i}", f"d{i}", transport=protocol, target_bps=target
            )
        )
    n = len(targets)
    for j in range(n_cross):
        links.append(LinkSpec(f"s{n + j}", "left", access_rate, access_delay))
        links.append(LinkSpec("right", f"d{n + j}", access_rate, access_delay))
        flows.append(
            FlowSpec(f"x{j + 1}", f"s{n + j}", f"d{n + j}", transport="tcp")
        )
    return ScenarioSpec(
        name="hetero_sla",
        topology=TopologySpec(links=tuple(links)),
        flows=tuple(flows),
        description="mixed-rate SLAs competing inside one AF class",
    )
