"""Programmatic topology generators (PR 6).

Parameterized network shapes for generated populations: an access star
(the canonical "many subscribers behind one conditioned uplink"), an
ISP-style parking-lot chain of N RIO bottlenecks, and a small folded
fat-tree.  Each generator returns a plain
:class:`~repro.topo.specs.TopologySpec` with links in a **pinned
deterministic order** (bottleneck links first, then access links in
host order — the convention the hand-written presets follow), so a
generated topology builds bit-identically for the same parameters.

Each shape ships an ``*_endpoints`` helper returning the natural
``(src, dst)`` pool for :class:`~repro.traffic.specs.PopulationSpec`,
in the same pinned order.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.topo.presets import RIO
from repro.topo.specs import LinkSpec, TopologySpec

Endpoints = Tuple[Tuple[str, str], ...]


def access_star_spec(
    n_hosts: int,
    *,
    bottleneck_bps: float = 20e6,
    bottleneck_delay: float = 0.02,
    access_rate: float = 100e6,
    access_delay: float = 0.002,
) -> TopologySpec:
    """An access star: ``h{i} -> gw -> srv`` over one RIO bottleneck.

    ``n_hosts`` subscriber hosts each hold a private access link to the
    gateway ``gw``; all share the conditioned ``gw -> srv`` uplink.
    Link order: the bottleneck first, then the access links in host
    order — per-host markers (see
    :func:`repro.traffic.population.apply_slas`) land on the ``h{i} ->
    gw`` links.
    """
    if n_hosts < 1:
        raise ValueError("need at least one host")
    links: List[LinkSpec] = [
        LinkSpec("gw", "srv", bottleneck_bps, bottleneck_delay, queue=RIO)
    ]
    for i in range(n_hosts):
        links.append(LinkSpec(f"h{i}", "gw", access_rate, access_delay))
    return TopologySpec(links=tuple(links))


def access_star_endpoints(n_hosts: int) -> Endpoints:
    """The star's natural flow endpoints: each host talks to ``srv``."""
    return tuple((f"h{i}", "srv") for i in range(n_hosts))


def random_access_star_spec(
    n_hosts: int,
    seed: int,
    *,
    bottleneck_bps: float = 20e6,
    bottleneck_delay: float = 0.02,
    access_rate_range: Tuple[float, float] = (10e6, 100e6),
    access_delay_range: Tuple[float, float] = (0.001, 0.02),
    rng_stream: str = "topo.random_star",
) -> TopologySpec:
    """An access star with *sampled* leaf capacities and delays.

    Same shape and pinned link order as :func:`access_star_spec`
    (bottleneck first, then ``h{i} -> gw`` in host order), but each
    access link draws its ``rate_bps`` and ``delay`` uniformly from the
    given ranges — a heterogeneous subscriber edge (DSL next to fiber)
    instead of the uniform one.  ``access_star_endpoints`` applies
    unchanged.

    Sampling is a pure function of ``(n_hosts, seed, ranges)``: rates
    and delays come from two *independent* streams seeded
    ``random.Random(f"{seed}:{rng_stream}:{substream}")`` (the
    :func:`repro.traffic.population.expand_population` discipline),
    each consuming one draw per host in host order — so widening the
    delay range never reshuffles the sampled rates, and the generated
    spec is golden-pinned like every other topology.
    """
    if n_hosts < 1:
        raise ValueError("need at least one host")
    rate_lo, rate_hi = access_rate_range
    delay_lo, delay_hi = access_delay_range
    if not 0 < rate_lo <= rate_hi:
        raise ValueError("access_rate_range must satisfy 0 < lo <= hi")
    if not 0 < delay_lo <= delay_hi:
        raise ValueError("access_delay_range must satisfy 0 < lo <= hi")
    rates_rng = random.Random(f"{seed}:{rng_stream}:rates")
    delays_rng = random.Random(f"{seed}:{rng_stream}:delays")
    links: List[LinkSpec] = [
        LinkSpec("gw", "srv", bottleneck_bps, bottleneck_delay, queue=RIO)
    ]
    for i in range(n_hosts):
        links.append(
            LinkSpec(
                f"h{i}",
                "gw",
                rates_rng.uniform(rate_lo, rate_hi),
                delays_rng.uniform(delay_lo, delay_hi),
            )
        )
    return TopologySpec(links=tuple(links))


def isp_chain_spec(
    n_bottlenecks: int,
    hosts_per_pop: int = 1,
    *,
    bottleneck_bps: float = 10e6,
    hop_delay: float = 0.01,
    access_rate: float = 100e6,
    access_delay: float = 0.002,
) -> TopologySpec:
    """A parking-lot ISP chain: N RIO bottlenecks ``r{i} -> r{i+1}``.

    Routers ``r0 .. r{N}`` form the backbone; every router (PoP) hosts
    ``hosts_per_pop`` subscriber nodes ``p{i}h{k}`` on private access
    links.  Link order: the N backbone bottlenecks first (in hop
    order), then the access links in ``(PoP, host)`` order.
    """
    if n_bottlenecks < 1:
        raise ValueError("need at least one bottleneck")
    if hosts_per_pop < 1:
        raise ValueError("need at least one host per PoP")
    links: List[LinkSpec] = [
        LinkSpec(f"r{i}", f"r{i + 1}", bottleneck_bps, hop_delay, queue=RIO)
        for i in range(n_bottlenecks)
    ]
    for i in range(n_bottlenecks + 1):
        for k in range(hosts_per_pop):
            links.append(
                LinkSpec(f"p{i}h{k}", f"r{i}", access_rate, access_delay)
            )
    return TopologySpec(links=tuple(links))


def isp_chain_endpoints(
    n_bottlenecks: int, hosts_per_pop: int = 1
) -> Endpoints:
    """Chain endpoints: per-hop neighbour pairs, then long-haul pairs.

    For every bottleneck ``i`` and host index ``k`` the pair
    ``(p{i}h{k}, p{i+1}h{k})`` crosses exactly that hop; the trailing
    ``(p0h{k}, p{N}h{k})`` pairs cross the whole chain (the multi-hop
    flows the parking-lot experiments stress).
    """
    pairs: List[Tuple[str, str]] = []
    for i in range(n_bottlenecks):
        for k in range(hosts_per_pop):
            pairs.append((f"p{i}h{k}", f"p{i + 1}h{k}"))
    if n_bottlenecks > 1:
        for k in range(hosts_per_pop):
            pairs.append((f"p0h{k}", f"p{n_bottlenecks}h{k}"))
    return tuple(pairs)


def fat_tree_spec(
    n_pods: int = 2,
    hosts_per_pod: int = 2,
    *,
    core_rate_bps: float = 40e6,
    agg_rate_bps: float = 100e6,
    core_delay: float = 0.005,
    access_delay: float = 0.002,
) -> TopologySpec:
    """A small folded fat-tree: one core, one aggregation switch per pod.

    ``core -> agg{p} -> p{p}h{k}``; cross-pod traffic funnels through
    the RIO-queued core links.  This is the single-core *degenerate*
    fat-tree (a tree): with one route per pair there is no multipath to
    exploit, which matches the simulator's single-shortest-path
    routing — the shape is here for its hierarchy and its shared-core
    contention, not for ECMP.  Link order: core links in pod order,
    then host links in ``(pod, host)`` order.
    """
    if n_pods < 2:
        raise ValueError("need at least two pods")
    if hosts_per_pod < 1:
        raise ValueError("need at least one host per pod")
    links: List[LinkSpec] = [
        LinkSpec("core", f"agg{p}", core_rate_bps, core_delay, queue=RIO)
        for p in range(n_pods)
    ]
    for p in range(n_pods):
        for k in range(hosts_per_pod):
            links.append(
                LinkSpec(f"p{p}h{k}", f"agg{p}", agg_rate_bps, access_delay)
            )
    return TopologySpec(links=tuple(links))


def fat_tree_endpoints(n_pods: int = 2, hosts_per_pod: int = 2) -> Endpoints:
    """Cross-pod pairs: host ``k`` of pod ``p`` talks to pod ``p+1``'s."""
    return tuple(
        (f"p{p}h{k}", f"p{(p + 1) % n_pods}h{k}")
        for p in range(n_pods)
        for k in range(hosts_per_pod)
    )
