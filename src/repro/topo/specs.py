"""Frozen declarative specs for topologies and scenarios.

A scenario is *data*: a :class:`TopologySpec` (links carrying
:class:`QueueSpec` disciplines and :class:`MarkerSpec` edge
conditioners) plus an ordered tuple of :class:`FlowSpec` transports.
The :func:`repro.topo.build.build` compiler turns a
:class:`ScenarioSpec` into live simulation objects in a pinned,
documented order, so two identical specs always produce bit-identical
runs.

Everything here is a frozen dataclass with JSON-scalar-or-spec fields:
specs are hashable, comparable, and printable, which is what lets
experiment modules share one ``t1_dumbbell_spec()`` instead of four
drifting copies of the same builder code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.fluid.specs import BackgroundLoadSpec

#: Queue disciplines understood by the compiler.
QUEUE_KINDS = ("droptail", "red", "rio")

#: Loss/delay channel models understood by the compiler (see
#: :mod:`repro.netem.channels`).  ``none`` compiles to no channel —
#: the explicit way to strip the reused forward channel from a duplex
#: link's reverse direction.
CHANNEL_KINDS = ("none", "bernoulli", "gilbert_elliott", "jitter")

#: Transports understood by the compiler.  ``tcp`` builds the SACK TCP
#: baseline; the others build QTP endpoints with the matching profile
#: (see :func:`repro.topo.build._profile_for`).
TRANSPORTS = ("tcp", "tfrc", "gtfrc", "qtpaf")


@dataclass(frozen=True)
class QueueSpec:
    """One queue discipline instance (a fresh queue per link direction).

    ``None`` parameters defer to the discipline's own defaults in
    :mod:`repro.sim.queues`; only non-``None`` values are passed
    through, so queue-class defaults stay defined in exactly one place.

    ``mean_pkt_time`` (RED/RIO idle-decay constant) defaults to the
    transmission time of a ``mean_pkt_bytes`` packet at the owning
    link's rate — the convention every T1 scaffold used, now computed
    in one place.

    ``background`` attaches an aggregate fluid cross-traffic model
    (:class:`repro.fluid.specs.BackgroundLoadSpec`) to every queue
    instance compiled from this spec — one independent
    :class:`~repro.fluid.source.FluidSource` per link direction.  A
    ``LinkSpec.background`` overrides it for that link's forward
    direction.
    """

    kind: str = "droptail"
    capacity_packets: Optional[int] = None
    capacity_bytes: Optional[int] = None  # droptail only
    # RED parameters
    min_th: Optional[float] = None
    max_th: Optional[float] = None
    max_p: Optional[float] = None
    # RIO parameters (per-precedence RED curves)
    in_min_th: Optional[float] = None
    in_max_th: Optional[float] = None
    in_max_p: Optional[float] = None
    out_min_th: Optional[float] = None
    out_max_th: Optional[float] = None
    out_max_p: Optional[float] = None
    weight: Optional[float] = None
    mean_pkt_time: Optional[float] = None
    mean_pkt_bytes: float = 1000.0
    rng_stream: str = "rio"
    background: Optional[BackgroundLoadSpec] = None

    #: Which optional fields each discipline consumes (beyond
    #: ``capacity_packets``); anything else set is a spec typo.
    _KIND_FIELDS = {
        "droptail": frozenset({"capacity_bytes"}),
        "red": frozenset({"min_th", "max_th", "max_p", "weight",
                          "mean_pkt_time", "mean_pkt_bytes"}),
        "rio": frozenset({"in_min_th", "in_max_th", "in_max_p",
                          "out_min_th", "out_max_th", "out_max_p",
                          "weight", "mean_pkt_time", "mean_pkt_bytes"}),
    }

    def __post_init__(self) -> None:
        if self.kind not in QUEUE_KINDS:
            raise ValueError(
                f"unknown queue kind {self.kind!r}; known: {QUEUE_KINDS}"
            )
        allowed = self._KIND_FIELDS[self.kind]
        tunables = frozenset().union(*self._KIND_FIELDS.values()) - {
            "mean_pkt_bytes"  # has a non-None default; never "set"
        }
        set_fields = {
            name for name in tunables if getattr(self, name) is not None
        }
        stray = sorted(set_fields - allowed)
        if stray:
            raise ValueError(
                f"queue kind {self.kind!r} does not use parameter(s) "
                f"{stray}; they would be silently ignored"
            )


@dataclass(frozen=True)
class ChannelSpec:
    """One netem loss/jitter channel on a link direction.

    Channels draw from the named :meth:`~repro.sim.engine.Simulator.rng`
    stream (memoized per name, like queue streams), so every channel
    sharing ``rng_stream`` shares one deterministic sequence — exactly
    the convention the hand-built ``chain(channel_factory=...)``
    scenarios used.

    ``kind`` selects the model: ``bernoulli`` (i.i.d. loss at
    ``loss_rate``), ``gilbert_elliott`` (two-state bursty loss;
    ``p_g2b``/``p_b2g`` transition and ``p_good``/``p_bad`` per-state
    loss probabilities), ``jitter`` (uniform extra delay in
    ``[0, max_jitter]``) or ``none`` (no channel — the explicit way to
    keep a duplex link's reverse direction clean).
    """

    kind: str = "bernoulli"
    loss_rate: Optional[float] = None  # bernoulli
    # Gilbert–Elliott parameters (None defers to the channel defaults)
    p_g2b: Optional[float] = None
    p_b2g: Optional[float] = None
    p_good: Optional[float] = None
    p_bad: Optional[float] = None
    max_jitter: Optional[float] = None  # jitter
    rng_stream: str = "wireless"

    #: Which tunables each kind consumes; anything else set is a typo.
    _KIND_FIELDS = {
        "none": frozenset(),
        "bernoulli": frozenset({"loss_rate"}),
        "gilbert_elliott": frozenset({"p_g2b", "p_b2g", "p_good", "p_bad"}),
        "jitter": frozenset({"max_jitter"}),
    }

    def __post_init__(self) -> None:
        if self.kind not in CHANNEL_KINDS:
            raise ValueError(
                f"unknown channel kind {self.kind!r}; known: {CHANNEL_KINDS}"
            )
        allowed = self._KIND_FIELDS[self.kind]
        tunables = frozenset().union(*self._KIND_FIELDS.values())
        stray = sorted(
            name
            for name in tunables
            if getattr(self, name) is not None and name not in allowed
        )
        if stray:
            raise ValueError(
                f"channel kind {self.kind!r} does not use parameter(s) "
                f"{stray}; they would be silently ignored"
            )
        if self.kind == "bernoulli" and self.loss_rate is None:
            raise ValueError("bernoulli channel requires loss_rate")
        if self.kind == "jitter" and self.max_jitter is None:
            raise ValueError("jitter channel requires max_jitter")


@dataclass(frozen=True)
class SlaSpec:
    """A service-level agreement to be realized as an srTCM edge meter."""

    flow_id: str
    committed_rate_bps: float
    burst_bytes: float = 15_000.0
    excess_burst_bytes: float = 0.0
    af_class: str = "AF1x"


@dataclass(frozen=True)
class MarkerSpec:
    """An edge conditioner installed on one (forward) link direction.

    With ``sla`` set, builds a :class:`~repro.qos.marking.ProfileMarker`
    metering that flow (every other flow gets ``default_color``); each
    occurrence of a ``MarkerSpec`` builds its *own* meter, so two
    markers for the same flow on different links model independent
    per-hop conditioning.  Without ``sla``, builds a
    :class:`~repro.qos.marking.BestEffortMarker` applying
    ``default_color`` to everything.
    """

    sla: Optional[SlaSpec] = None
    default_color: str = "red"  # Color name, lowercase


@dataclass(frozen=True)
class LinkSpec:
    """One (by default duplex) link.

    The forward direction is ``src -> dst``; ``marker`` conditions the
    forward direction only (the usual edge placement).  A duplex link
    gets a *fresh* queue instance per direction — ``reverse_queue``
    overrides the reverse discipline, otherwise ``queue`` is reused as
    the spec for both.  ``channel``/``reverse_channel`` work the same
    way: each direction compiles its own channel instance, the reverse
    reusing the forward spec unless overridden (pass
    ``ChannelSpec(kind="none")`` for a clean reverse direction) —
    matching the historical ``add_duplex_link(channel_factory=...)``
    convention of one independent channel per direction.

    ``background`` attaches aggregate fluid cross traffic
    (:class:`repro.fluid.specs.BackgroundLoadSpec`) to the *forward*
    direction, overriding any ``queue.background``; the reverse
    direction only carries background through its own queue spec
    (``reverse_queue.background``).  Compiled by ``build()`` in pinned
    link order; ``REPRO_NO_FLUID=1`` skips compilation entirely.
    """

    src: str
    dst: str
    rate_bps: float
    delay: float
    queue: QueueSpec = field(default_factory=QueueSpec)
    reverse_queue: Optional[QueueSpec] = None
    marker: Optional[MarkerSpec] = None
    channel: Optional[ChannelSpec] = None
    reverse_channel: Optional[ChannelSpec] = None
    duplex: bool = True
    background: Optional[BackgroundLoadSpec] = None


@dataclass(frozen=True)
class TopologySpec:
    """Nodes and links, in build order.

    ``nodes`` optionally pre-declares creation order; any endpoint not
    listed is created lazily when its first link is built (for the
    canonical dumbbell/chain/star shapes the lazy order already matches
    the historical builders exactly).
    """

    links: Tuple[LinkSpec, ...]
    nodes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        # a repeated directed pair would silently *replace* the earlier
        # link (and its queue/marker) inside Network — always a spec bug
        seen = set()
        for ls in self.links:
            directions = [(ls.src, ls.dst)] + ([(ls.dst, ls.src)] if ls.duplex else [])
            for pair in directions:
                if pair in seen:
                    raise ValueError(
                        f"duplicate directed link {pair[0]!r} -> {pair[1]!r} "
                        "(check duplex=True defaults)"
                    )
                seen.add(pair)


@dataclass(frozen=True)
class FlowSpec:
    """One transport flow: endpoints, profile, schedule.

    ``transport`` selects the stack: ``tcp`` (SACK TCP baseline),
    ``tfrc`` (stock RFC 3448), ``gtfrc`` (QoS-aware rate control only,
    no reliability) or ``qtpaf`` (the paper's full instance).
    ``target_bps`` is the AF guarantee ``g`` and is required for the
    QoS-aware transports.  ``p_scaling`` switches gTFRC to the
    loss-rate-scaling variant (the A1 ablation's smoother mechanism).

    ``start``/``stop`` schedule the sender: ``start == 0`` starts it
    during construction (the historical scaffold behaviour, which pins
    event tie-breaking), a positive ``start`` schedules it, and a
    non-``None`` ``stop`` schedules ``sender.stop``.

    ``size_bytes`` gives the flow a finite byte budget: the sender
    transmits that much application data, then stops itself once the
    budget is delivered (acknowledged for reliable transports, sent for
    unreliable ones) and records its completion time (see
    :meth:`repro.topo.build.BuiltScenario.completions`).  **Precedence
    between ``stop`` and the byte budget: whichever fires first wins.**
    A ``stop`` time cuts a still-unfinished flow off without a
    completion; a flow that exhausts its budget earlier stops then, and
    the later scheduled ``stop`` is a harmless no-op.  ``None`` (the
    default) keeps the historical unbounded bulk flow.
    """

    flow_id: str
    src: str
    dst: str
    transport: str = "tcp"
    target_bps: Optional[float] = None
    record: bool = True
    start: float = 0.0
    stop: Optional[float] = None
    p_scaling: bool = False
    sack: bool = True  # tcp only
    size_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r}; known: {TRANSPORTS}"
            )
        if self.transport in ("gtfrc", "qtpaf") and not self.target_bps:
            raise ValueError(
                f"flow {self.flow_id!r}: transport {self.transport!r} "
                "requires target_bps (the AF guarantee g)"
            )
        if self.start < 0:
            raise ValueError(f"flow {self.flow_id!r}: start must be >= 0")
        if self.stop is not None and self.stop <= self.start:
            raise ValueError(f"flow {self.flow_id!r}: stop must be > start")
        if self.size_bytes is not None and self.size_bytes <= 0:
            raise ValueError(
                f"flow {self.flow_id!r}: size_bytes must be positive "
                f"(got {self.size_bytes!r}); use None for an unbounded flow"
            )
        # parameters that only one transport consumes must not be set
        # elsewhere — they would be silently ignored (same policy as
        # QueueSpec's kind/parameter cross-check)
        if self.p_scaling and self.transport != "gtfrc":
            raise ValueError(
                f"flow {self.flow_id!r}: p_scaling only applies to the "
                f"'gtfrc' transport, not {self.transport!r}"
            )
        if not self.sack and self.transport != "tcp":
            raise ValueError(
                f"flow {self.flow_id!r}: sack only applies to the 'tcp' "
                f"transport, not {self.transport!r}"
            )


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete composable scenario: topology plus flows, in order.

    Flow order is semantic: senders start (or are scheduled) in tuple
    order, which pins simultaneous-event tie-breaking.
    """

    name: str
    topology: TopologySpec
    flows: Tuple[FlowSpec, ...]
    description: str = ""

    def __post_init__(self) -> None:
        seen = set()
        for flow in self.flows:
            if flow.flow_id in seen:
                raise ValueError(f"duplicate flow_id {flow.flow_id!r}")
            seen.add(flow.flow_id)
