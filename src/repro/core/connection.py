"""Wire-level connection setup: offer / accept capability handshake.

The initiator (conventionally the data sender) advertises its
:class:`~repro.core.negotiation.CapabilitySet` in an ``offer`` control
packet; the responder negotiates against its own capabilities and
returns the chosen :class:`~repro.core.profile.TransportProfile` in an
``accept`` (or a ``reject`` carrying the error).  On success both sides
replace their handshake agents with the composed transport endpoints
and the sender starts transmitting — one round trip, like the paper's
"negotiated between the transport entities".

Control packets are retransmitted on a timer, so the handshake survives
a lossy path.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.negotiation import CapabilitySet, NegotiationError, negotiate
from repro.core.profile import TransportProfile
from repro.core.receiver import QtpReceiver
from repro.core.sender import QtpSender
from repro.sim.engine import Simulator, Timer
from repro.sim.node import Agent, Node
from repro.sim.packet import NegotiationHeader, Packet, PacketKind

#: Size of a handshake control packet on the wire, bytes.
HANDSHAKE_SIZE = 64

#: Offer retransmission interval (seconds) and attempt budget.
HANDSHAKE_RTX_INTERVAL = 0.5
HANDSHAKE_MAX_ATTEMPTS = 10


class HandshakeFailed(Exception):
    """The responder rejected the offer or attempts were exhausted."""


class Responder(Agent):
    """Listening endpoint: answers offers, then becomes a receiver.

    Parameters
    ----------
    capabilities: what this endpoint supports.
    on_established: callback ``fn(receiver, profile)`` run after the
        transport receiver replaces this agent.
    receiver_kwargs: extra arguments for :class:`QtpReceiver`
        (recorder, meter, on_deliver, ...).
    """

    def __init__(
        self,
        sim: Simulator,
        capabilities: CapabilitySet,
        on_established: Optional[Callable[[QtpReceiver, TransportProfile], None]] = None,
        receiver_kwargs: Optional[dict] = None,
    ):
        super().__init__(sim)
        self.capabilities = capabilities
        self.on_established = on_established
        self.receiver_kwargs = receiver_kwargs or {}
        self.receiver: Optional[QtpReceiver] = None
        self.profile: Optional[TransportProfile] = None

    def receive(self, packet: Packet) -> None:
        """Handle an offer (idempotently — offers may be retransmitted)."""
        header = packet.header
        if not isinstance(header, NegotiationHeader) or header.phase != "offer":
            return
        if self.profile is None:
            offered = CapabilitySet.from_wire(header.payload)
            try:
                self.profile = negotiate(offered, self.capabilities)
            except NegotiationError as exc:
                self._reply(packet, "reject", {"error": str(exc)})
                return
            self._install_receiver()
        self._reply(packet, "accept", self.profile.to_wire())

    def _install_receiver(self) -> None:
        assert self.node is not None and self.profile is not None
        node, flow = self.node, self.flow_id
        node.unbind(flow)
        self.receiver = QtpReceiver(self.sim, self.profile, **self.receiver_kwargs)
        self.receiver.attach(node, flow)
        if self.on_established is not None:
            self.on_established(self.receiver, self.profile)

    def _reply(self, offer: Packet, phase: str, payload: dict) -> None:
        src, dst = offer.reply_to()
        packet = Packet(
            src=src,
            dst=dst,
            flow_id=self.flow_id,
            size=HANDSHAKE_SIZE,
            kind=PacketKind.CONTROL,
            header=NegotiationHeader(phase=phase, payload=payload),
            created_at=self.sim.now,
        )
        # we stay associated with the node even after the receiver
        # replaced our flow binding, so reply through it directly
        assert self.node is not None
        self.node.send(packet)


class Initiator(Agent):
    """Connecting endpoint: sends offers, then becomes a sender.

    Parameters
    ----------
    dst: responder's node name.
    capabilities: what this endpoint supports/prefers.
    on_established: callback ``fn(sender, profile)``; the sender is
        already started.
    sender_kwargs: extra arguments for :class:`QtpSender` (bulk, ...).
    on_failed: callback ``fn(reason)`` on reject/exhaustion.
    """

    def __init__(
        self,
        sim: Simulator,
        dst: str,
        capabilities: CapabilitySet,
        on_established: Optional[Callable[[QtpSender, TransportProfile], None]] = None,
        sender_kwargs: Optional[dict] = None,
        on_failed: Optional[Callable[[str], None]] = None,
        auto_start: bool = True,
    ):
        super().__init__(sim)
        self.dst = dst
        self.capabilities = capabilities
        self.on_established = on_established
        self.on_failed = on_failed
        self.sender_kwargs = sender_kwargs or {}
        self.auto_start = auto_start
        self.sender: Optional[QtpSender] = None
        self.profile: Optional[TransportProfile] = None
        self.attempts = 0
        self._rtx = Timer(sim, self._send_offer)

    def start(self) -> None:
        """Send the first offer."""
        self._send_offer()

    def stop(self) -> None:
        """Abort the handshake."""
        self._rtx.stop()

    def _send_offer(self) -> None:
        if self.profile is not None:
            return
        if self.attempts >= HANDSHAKE_MAX_ATTEMPTS:
            self._fail("handshake attempts exhausted")
            return
        self.attempts += 1
        packet = Packet(
            src=self.node.name if self.node else "?",
            dst=self.dst,
            flow_id=self.flow_id,
            size=HANDSHAKE_SIZE,
            kind=PacketKind.CONTROL,
            header=NegotiationHeader(
                phase="offer", payload=self.capabilities.to_wire()
            ),
            created_at=self.sim.now,
        )
        self.send(packet)
        self._rtx.restart(HANDSHAKE_RTX_INTERVAL)

    def receive(self, packet: Packet) -> None:
        """Handle the responder's accept/reject."""
        header = packet.header
        if not isinstance(header, NegotiationHeader):
            return
        if header.phase == "reject":
            self._fail(str(header.payload.get("error", "rejected")))
            return
        if header.phase != "accept" or self.profile is not None:
            return
        self._rtx.stop()
        self.profile = TransportProfile.from_wire(header.payload)
        assert self.node is not None
        node, flow = self.node, self.flow_id
        node.unbind(flow)
        self.sender = QtpSender(self.sim, dst=self.dst, profile=self.profile, **self.sender_kwargs)
        self.sender.attach(node, flow)
        if self.auto_start:
            self.sender.start()
        if self.on_established is not None:
            self.on_established(self.sender, self.profile)

    def _fail(self, reason: str) -> None:
        self._rtx.stop()
        if self.on_failed is not None:
            self.on_failed(reason)
        else:
            raise HandshakeFailed(reason)
