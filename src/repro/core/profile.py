"""Transport profiles: the composition axes of the versatile protocol.

The paper (§1) lists the features an instance negotiates: *partial/full
reliability*, *light processing for the receiver* and *QoS-awareness*.
A :class:`TransportProfile` pins one choice per axis; the composition
machinery in :mod:`repro.core.sender` / :mod:`repro.core.receiver`
assembles the matching endpoints.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional


class CongestionControl(enum.Enum):
    """Congestion-control engine of an instance."""

    TFRC = "tfrc"
    GTFRC = "gtfrc"
    WINDOW = "window"  # TCP-like AIMD window (baseline composition)


class ReliabilityMode(enum.Enum):
    """Reliability service provided on top of SACK."""

    NONE = "none"
    PARTIAL_TIME = "partial-time"  # retransmit while the deadline allows
    PARTIAL_COUNT = "partial-count"  # bounded retransmission attempts
    FULL = "full"


class LossEstimationSite(enum.Enum):
    """Where the TFRC loss-event rate is computed.

    ``RECEIVER`` is stock RFC 3448; ``SENDER`` is the QTPlight shift
    that lightens resource-constrained receivers (§3 of the paper).
    """

    RECEIVER = "receiver"
    SENDER = "sender"


class ProfileError(ValueError):
    """An inconsistent combination of profile options."""


@dataclass(frozen=True)
class TransportProfile:
    """A fully specified transport instance.

    Attributes
    ----------
    name: human-readable instance name ("QTPAF", ...).
    congestion_control: engine per :class:`CongestionControl`.
    reliability: service per :class:`ReliabilityMode`.
    loss_estimation: site per :class:`LossEstimationSite`.
    target_rate_bps: negotiated AF guarantee ``g`` in **bits/s**
        (required by gTFRC; converted internally to bytes/s).
    segment_size: data packet size in bytes.
    partial_max_retx: retransmission bound for ``PARTIAL_COUNT``.
    partial_deadline: per-message lifetime (s) for ``PARTIAL_TIME``
        when the application supplies no explicit deadline.
    sack_block_limit: maximum SACK blocks carried per feedback packet.
    feedback_padding: extra feedback bytes (models option overhead).
    """

    name: str = "QTP"
    congestion_control: CongestionControl = CongestionControl.TFRC
    reliability: ReliabilityMode = ReliabilityMode.NONE
    loss_estimation: LossEstimationSite = LossEstimationSite.RECEIVER
    target_rate_bps: Optional[float] = None
    segment_size: int = 1000
    partial_max_retx: int = 2
    partial_deadline: float = 0.5
    sack_block_limit: int = 16
    feedback_padding: int = 0
    #: With sender-side estimation, one in this many sequence numbers is
    #: silently skipped (allocated, never sent) as a lie detector: a
    #: receiver that acknowledges a skipped number before the sender's
    #: forward-ack passed it is provably fabricating SACK coverage
    #: (Gorinsky-style misbehavior detection).  0 disables auditing.
    audit_skip_interval: int = 150

    def __post_init__(self) -> None:
        if self.segment_size <= 0:
            raise ProfileError("segment size must be positive")
        if self.congestion_control is CongestionControl.GTFRC:
            if not self.target_rate_bps or self.target_rate_bps <= 0:
                raise ProfileError("gTFRC requires a positive target_rate_bps")
        if self.sack_block_limit < 1:
            raise ProfileError("need at least one SACK block")
        if self.partial_max_retx < 0:
            raise ProfileError("partial_max_retx cannot be negative")
        if self.partial_deadline <= 0:
            raise ProfileError("partial_deadline must be positive")

    # ------------------------------------------------------------------
    @property
    def needs_sack_feedback(self) -> bool:
        """True when feedback must carry SACK blocks.

        Sender-side estimation reconstructs losses from SACK vectors,
        and any reliability service needs them for retransmission.
        """
        return (
            self.loss_estimation is LossEstimationSite.SENDER
            or self.reliability is not ReliabilityMode.NONE
        )

    @property
    def receiver_runs_estimator(self) -> bool:
        """True when the receiver executes the RFC 3448 loss machinery."""
        return self.loss_estimation is LossEstimationSite.RECEIVER

    @property
    def target_rate_bytes(self) -> Optional[float]:
        """The guarantee in bytes/s (transport-layer unit), or None."""
        if self.target_rate_bps is None:
            return None
        return self.target_rate_bps / 8.0

    def with_target_rate(self, rate_bps: float) -> "TransportProfile":
        """Return a copy bound to a (new) AF guarantee."""
        return replace(self, target_rate_bps=rate_bps)

    def to_wire(self) -> dict:
        """Serialize for the handshake's accept message."""
        return {
            "name": self.name,
            "cc": self.congestion_control.value,
            "rel": self.reliability.value,
            "est": self.loss_estimation.value,
            "g": self.target_rate_bps,
            "mss": self.segment_size,
            "max_retx": self.partial_max_retx,
            "deadline": self.partial_deadline,
            "sack_limit": self.sack_block_limit,
        }

    @staticmethod
    def from_wire(payload: dict) -> "TransportProfile":
        """Parse an accept message back into a profile."""
        return TransportProfile(
            name=payload["name"],
            congestion_control=CongestionControl(payload["cc"]),
            reliability=ReliabilityMode(payload["rel"]),
            loss_estimation=LossEstimationSite(payload["est"]),
            target_rate_bps=payload.get("g"),
            segment_size=int(payload["mss"]),
            partial_max_retx=int(payload["max_retx"]),
            partial_deadline=float(payload["deadline"]),
            sack_block_limit=int(payload["sack_limit"]),
        )

    def describe(self) -> str:
        """One-line human description used by logs and examples."""
        parts = [
            self.name,
            f"cc={self.congestion_control.value}",
            f"rel={self.reliability.value}",
            f"est={self.loss_estimation.value}",
        ]
        if self.target_rate_bps:
            parts.append(f"g={self.target_rate_bps / 1e6:.2f}Mbit/s")
        return " ".join(parts)
