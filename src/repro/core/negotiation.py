"""Capability negotiation between transport endpoints.

The paper (§1) requires the protocol features — "(1) partial/full
reliability; (2) light processing for receiver; (3) QoS-awareness" — to
be *negotiated between the transport entities*.  Endpoints advertise a
:class:`CapabilitySet`; :func:`negotiate` intersects the two sets,
honours hard constraints (a light receiver cannot run the RFC 3448
estimator; a QoS request needs gTFRC on both sides) and resolves the
initiator's preferences into a concrete
:class:`~repro.core.profile.TransportProfile`.

The wire-level two-message handshake lives in
:mod:`repro.core.connection`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.core.profile import (
    CongestionControl,
    LossEstimationSite,
    ReliabilityMode,
    TransportProfile,
)


class NegotiationError(Exception):
    """The endpoints' capability sets admit no common profile."""


@dataclass(frozen=True)
class CapabilitySet:
    """What one endpoint supports and prefers.

    Tuples are in *preference order* (most preferred first); the
    initiator's order wins where both sides agree.

    Attributes
    ----------
    congestion_controls: supported CC engines.
    reliability_modes: supported reliability services.
    estimation_sites: supported loss-estimation placements.
    light_receiver: hard constraint — this endpoint cannot run the
        RFC 3448 loss machinery (PDA-class device, paper §3).
    qos_target_bps: the AF guarantee this endpoint wants honoured
        (requires gTFRC support on both sides), bits/s.
    strict_qos: refuse to fall back to plain TFRC when QoS cannot be
        honoured (otherwise degrade gracefully).
    segment_size: preferred segment size; the smaller of the two
        endpoints' preferences is chosen.
    """

    congestion_controls: Tuple[CongestionControl, ...] = (
        CongestionControl.TFRC,
        CongestionControl.GTFRC,
    )
    reliability_modes: Tuple[ReliabilityMode, ...] = (
        ReliabilityMode.NONE,
        ReliabilityMode.FULL,
        ReliabilityMode.PARTIAL_TIME,
        ReliabilityMode.PARTIAL_COUNT,
    )
    estimation_sites: Tuple[LossEstimationSite, ...] = (
        LossEstimationSite.RECEIVER,
        LossEstimationSite.SENDER,
    )
    light_receiver: bool = False
    qos_target_bps: Optional[float] = None
    strict_qos: bool = False
    segment_size: int = 1000

    def to_wire(self) -> dict:
        """Serialize for the handshake's offer message."""
        return {
            "cc": [c.value for c in self.congestion_controls],
            "rel": [r.value for r in self.reliability_modes],
            "est": [e.value for e in self.estimation_sites],
            "light": self.light_receiver,
            "qos": self.qos_target_bps,
            "strict_qos": self.strict_qos,
            "mss": self.segment_size,
        }

    @staticmethod
    def from_wire(payload: dict) -> "CapabilitySet":
        """Parse an offer message back into a capability set."""
        return CapabilitySet(
            congestion_controls=tuple(
                CongestionControl(v) for v in payload["cc"]
            ),
            reliability_modes=tuple(ReliabilityMode(v) for v in payload["rel"]),
            estimation_sites=tuple(LossEstimationSite(v) for v in payload["est"]),
            light_receiver=bool(payload.get("light", False)),
            qos_target_bps=payload.get("qos"),
            strict_qos=bool(payload.get("strict_qos", False)),
            segment_size=int(payload.get("mss", 1000)),
        )


def _pick(preferred: Sequence, supported: Sequence, axis: str):
    for candidate in preferred:
        if candidate in supported:
            return candidate
    raise NegotiationError(f"no common option on axis {axis!r}")


def negotiate(
    initiator: CapabilitySet, responder: CapabilitySet
) -> TransportProfile:
    """Resolve two capability sets into one transport profile.

    The initiator is conventionally the data *sender* and the responder
    the *receiver* (the paper's mobile client).  Raises
    :class:`NegotiationError` when any axis has no common option or a
    hard constraint cannot be met.
    """
    # --- loss estimation site: light receivers force SENDER -------------
    if responder.light_receiver or initiator.light_receiver:
        if (
            LossEstimationSite.SENDER not in initiator.estimation_sites
            or LossEstimationSite.SENDER not in responder.estimation_sites
        ):
            raise NegotiationError(
                "light receiver requires sender-side loss estimation"
            )
        estimation = LossEstimationSite.SENDER
    else:
        estimation = _pick(
            initiator.estimation_sites, responder.estimation_sites, "estimation"
        )

    # --- congestion control: honour the QoS request when possible -------
    qos_target = initiator.qos_target_bps or responder.qos_target_bps
    both_gtfrc = (
        CongestionControl.GTFRC in initiator.congestion_controls
        and CongestionControl.GTFRC in responder.congestion_controls
    )
    if qos_target is not None and both_gtfrc:
        cc = CongestionControl.GTFRC
    elif qos_target is not None and (
        initiator.strict_qos or responder.strict_qos
    ):
        raise NegotiationError("QoS requested but gTFRC unsupported")
    else:
        cc = _pick(
            initiator.congestion_controls,
            responder.congestion_controls,
            "congestion control",
        )
        qos_target = qos_target if cc is CongestionControl.GTFRC else None

    reliability = _pick(
        initiator.reliability_modes, responder.reliability_modes, "reliability"
    )
    segment = min(initiator.segment_size, responder.segment_size)
    return TransportProfile(
        name=_instance_name(cc, reliability, estimation),
        congestion_control=cc,
        reliability=reliability,
        loss_estimation=estimation,
        target_rate_bps=qos_target if cc is CongestionControl.GTFRC else None,
        segment_size=segment,
    )


def _instance_name(
    cc: CongestionControl,
    reliability: ReliabilityMode,
    estimation: LossEstimationSite,
) -> str:
    """Name the composed instance after the paper's taxonomy."""
    if cc is CongestionControl.GTFRC and reliability is ReliabilityMode.FULL:
        return "QTPAF"
    if estimation is LossEstimationSite.SENDER:
        return "QTPlight"
    return "QTP"
