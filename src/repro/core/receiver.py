"""The composed QTP receiver.

One class covers every receiver-side composition of the profile axes:

* stock TFRC receiver (loss estimation + plain reports),
* QTPAF receiver (loss estimation + SACK blocks + ordered delivery),
* QTPlight receiver (SACK bookkeeping only — the light path the paper
  designs for resource-constrained mobiles).

Per-packet work is charged to an injectable cost meter, which is what
experiment T3 compares across compositions.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.profile import ReliabilityMode, TransportProfile
from repro.core.qtplight import LyingFeedbackFilter
from repro.metrics.cost import CostMeter
from repro.metrics.recorder import FlowRecorder
from repro.reliability.delivery import DeliveryBuffer
from repro.sack.blocks import ReceiverSackState
from repro.sim.engine import Simulator, Timer
from repro.sim.node import Agent
from repro.sim.packet import (
    Packet,
    PacketKind,
    PacketPool,
    SackFeedbackHeader,
    TfrcDataHeader,
    TfrcFeedbackHeader,
)
from repro.tfrc.equation import solve_loss_rate
from repro.tfrc.loss_history import LossEventEstimator
from repro.tfrc.sender import FEEDBACK_SIZE


class QtpReceiver(Agent):
    """Profile-composed receiver endpoint.

    Parameters
    ----------
    sim: simulator.
    profile: the negotiated :class:`TransportProfile`.
    recorder: optional recorder fed with every *fresh* arrival
        (wire goodput).
    meter: optional cost meter for the receiver's per-packet work.
    on_deliver: application callback, invoked respecting the profile's
        delivery semantics (ordered when reliability is on).
    feedback_filter: optional selfish-receiver mangler (experiment T4).
    """

    def __init__(
        self,
        sim: Simulator,
        profile: TransportProfile,
        recorder: Optional[FlowRecorder] = None,
        meter: Optional[CostMeter] = None,
        on_deliver: Optional[Callable[[Packet], None]] = None,
        feedback_filter: Optional[LyingFeedbackFilter] = None,
    ):
        super().__init__(sim)
        self.profile = profile
        self.recorder = recorder
        self.meter = meter
        self.on_deliver = on_deliver
        self.feedback_filter = feedback_filter
        self.sack_state = (
            ReceiverSackState(meter=meter) if profile.needs_sack_feedback else None
        )
        self.estimator = (
            LossEventEstimator(
                meter=meter, first_interval_fn=self._synthetic_first_interval
            )
            if profile.receiver_runs_estimator
            else None
        )
        self._buffer: Optional[DeliveryBuffer] = None
        if profile.reliability is not ReliabilityMode.NONE:
            gap_timeout = (
                None
                if profile.reliability is ReliabilityMode.FULL
                else max(profile.partial_deadline, 0.05)
            )
            self._buffer = DeliveryBuffer(self._deliver_app, gap_timeout)
        self._gap_timer = Timer(sim, self._poll_buffer)
        self._feedback_timer = Timer(sim, self._on_feedback_timer)
        self._pool = PacketPool.of(sim)
        self._peer = ""
        self._rtt_hint = 0.0
        self._segment_size = profile.segment_size
        self._last_data_ts = 0.0
        self._last_data_arrival = 0.0
        self._bytes_since_feedback = 0
        self._last_feedback_time: Optional[float] = None
        self._x_recv = 0.0
        self.received_packets = 0
        self.feedback_sent = 0
        self.app_delivered = 0
        self.app_latencies: List[float] = []

    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        """Handle an arriving data packet."""
        header = packet.header
        if not isinstance(header, TfrcDataHeader):
            return
        if not self._peer:
            self._peer = packet.src
        self.received_packets += 1
        self._segment_size = packet.size
        self._rtt_hint = header.rtt_estimate
        self._last_data_ts = header.timestamp
        self._last_data_arrival = self.sim.now
        fresh = True
        if self.sack_state is not None:
            fresh = self.sack_state.record(header.seq, packet.size)
            if header.forward_ack > 0:
                self.sack_state.advance_floor(header.forward_ack)
                if self._buffer is not None:
                    self._buffer.advance(header.forward_ack, self.sim.now)
        new_event = False
        if self.estimator is not None:
            new_event = self.estimator.on_packet(
                header.seq, self.sim.now, max(header.rtt_estimate, 1e-6)
            )
        if fresh:
            self._bytes_since_feedback += packet.size
            if self.recorder is not None:
                self.recorder.record(self.sim.now, packet)
            self._handle_delivery(header.seq, packet)
        elif self._pool is not None:
            # duplicate: neither buffered nor delivered, so it is
            # terminal right here
            self._pool.release(packet)
        if self._last_feedback_time is None or new_event:
            self._send_feedback()
        elif not self._feedback_timer.armed:
            self._feedback_timer.restart(self._feedback_interval())

    def _handle_delivery(self, seq: int, packet: Packet) -> None:
        if self._buffer is None:
            self._deliver_app(packet)
            return
        duplicates_before = self._buffer.duplicates
        self._buffer.push(seq, packet, self.sim.now)
        if self._buffer.duplicates > duplicates_before and self._pool is not None:
            # the buffer rejected it (seq below the delivery floor, or
            # already pending): neither buffered nor delivered, so it
            # is terminal right here
            self._pool.release(packet)
        if self._buffer.waiting and not self._gap_timer.armed:
            self._gap_timer.restart(self._gap_poll_interval())

    def _deliver_app(self, packet: Packet) -> None:
        self.app_delivered += 1
        self.app_latencies.append(self.sim.now - packet.created_at)
        if self.on_deliver is not None:
            self.on_deliver(packet)
        if self._pool is not None:
            # terminal sink: recycle unless the app callback claimed the
            # packet via Packet.retain() (which makes this a no-op)
            self._pool.release(packet)

    def _poll_buffer(self) -> None:
        if self._buffer is None:
            return
        self._buffer.poll(self.sim.now)
        if self._buffer.waiting:
            self._gap_timer.restart(self._gap_poll_interval())

    def _gap_poll_interval(self) -> float:
        return max(self.profile.partial_deadline / 4.0, 0.01)

    # ------------------------------------------------------------------
    def _feedback_interval(self) -> float:
        return self._rtt_hint if self._rtt_hint > 0 else 0.05

    def _measure_x_recv(self) -> float:
        if self._last_feedback_time is None:
            return self._x_recv
        interval = self.sim.now - self._last_feedback_time
        if interval < 1e-3:
            # an immediate (loss-triggered) report right after a timed one:
            # too short a window to measure a rate, keep the previous value
            return self._x_recv
        return self._bytes_since_feedback / interval

    def _synthetic_first_interval(self) -> Optional[float]:
        rtt = self._rtt_hint
        rate = self._x_recv if self._x_recv > 0 else self._measure_x_recv()
        if rtt <= 0 or rate <= 0:
            return None
        p = solve_loss_rate(self._segment_size, rtt, rate)
        if p <= 0:
            return None
        return 1.0 / p

    def _on_feedback_timer(self) -> None:
        # RFC 3448 §6: if no data arrived since the last report, stay
        # quiet (the sender's nofeedback timer will throttle); the timer
        # re-arms on the next data arrival.
        if self._bytes_since_feedback == 0:
            return
        self._send_feedback()

    def _send_feedback(self) -> None:
        if self.node is None or self.received_packets == 0:
            return
        elapsed = self.sim.now - self._last_data_arrival
        if self.sack_state is not None:
            header = self._build_sack_feedback(elapsed)
            size = FEEDBACK_SIZE + 8 * len(header.blocks) + self.profile.feedback_padding
        else:
            header = self._build_tfrc_feedback(elapsed)
            size = FEEDBACK_SIZE + self.profile.feedback_padding
        # report headers are built (and possibly mangled) fresh; the
        # pool recycles just the Packet shell around them
        pool = self._pool
        packet = (
            pool.acquire(
                type(header), self.node.name, self._peer, self.flow_id,
                size, PacketKind.FEEDBACK, self.sim.now,
            )
            if pool is not None
            else None
        )
        if packet is not None:
            packet.header = header
        else:
            packet = Packet(
                src=self.node.name,
                dst=self._peer,
                flow_id=self.flow_id,
                size=size,
                kind=PacketKind.FEEDBACK,
                header=header,
                created_at=self.sim.now,
            )
            if pool is not None:
                packet.pooled = True
        self.send(packet)
        self.feedback_sent += 1
        self._bytes_since_feedback = 0
        self._last_feedback_time = self.sim.now
        self._feedback_timer.restart(self._feedback_interval())

    def _build_tfrc_feedback(self, elapsed: float) -> TfrcFeedbackHeader:
        self._x_recv = self._measure_x_recv()
        assert self.estimator is not None
        header = TfrcFeedbackHeader(
            timestamp_echo=self._last_data_ts,
            elapsed=elapsed,
            x_recv=self._x_recv,
            p=self.estimator.loss_event_rate(),
            last_seq=self.estimator.max_seq,
        )
        if self.feedback_filter is not None:
            header = self.feedback_filter.mangle_tfrc(header)
        return header

    def _build_sack_feedback(self, elapsed: float) -> SackFeedbackHeader:
        assert self.sack_state is not None
        p = None
        x_recv = None
        if self.estimator is not None:
            self._x_recv = self._measure_x_recv()
            p = self.estimator.loss_event_rate()
            x_recv = self._x_recv
        interval = (
            self.sim.now - self._last_feedback_time
            if self._last_feedback_time is not None
            else 0.0
        )
        header = SackFeedbackHeader(
            cum_ack=self.sack_state.cum_ack,
            blocks=self.sack_state.blocks(self.profile.sack_block_limit),
            timestamp_echo=self._last_data_ts,
            elapsed=elapsed,
            recv_bytes=self._bytes_since_feedback,
            last_seq=self.sack_state.max_seq,
            interval=interval,
            p=p,
            x_recv=x_recv,
        )
        if self.feedback_filter is not None:
            header = self.feedback_filter.mangle_sack(header)
        return header

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Cancel timers."""
        self._feedback_timer.stop()
        self._gap_timer.stop()

    @property
    def delivered_in_order(self) -> int:
        """Messages handed to the application."""
        return self.app_delivered

    @property
    def skipped_messages(self) -> int:
        """Holes skipped by partial-reliability delivery."""
        return self._buffer.skipped if self._buffer is not None else 0
