"""The versatile transport protocol (the paper's primary contribution).

A transport instance is *composed* from orthogonal components selected
by a :class:`~repro.core.profile.TransportProfile`:

* a congestion-control engine (TFRC, gTFRC, or a TCP-like window),
* a reliability service over SACK (none / partial / full),
* a loss-estimation site (receiver — stock RFC 3448 — or sender —
  the QTPlight lightening),
* an optional QoS binding (the AF SLA used by gTFRC).

:mod:`repro.core.negotiation` implements the capability negotiation the
paper calls for ("features to be negotiated between the transport
entities"); :mod:`repro.core.instances` provides the two published
instances, ``QTPAF`` and ``QTPLIGHT``, plus helper presets.
"""

from repro.core.profile import (
    CongestionControl,
    LossEstimationSite,
    ReliabilityMode,
    TransportProfile,
)
from repro.core.negotiation import CapabilitySet, NegotiationError, negotiate
from repro.core.instances import (
    QTPAF,
    QTPLIGHT,
    TCP_LIKE,
    TFRC_MEDIA,
    build_transport_pair,
)
from repro.core.sender import QtpSender
from repro.core.receiver import QtpReceiver

__all__ = [
    "TransportProfile",
    "CongestionControl",
    "ReliabilityMode",
    "LossEstimationSite",
    "CapabilitySet",
    "negotiate",
    "NegotiationError",
    "QTPAF",
    "QTPLIGHT",
    "TFRC_MEDIA",
    "TCP_LIKE",
    "QtpSender",
    "QtpReceiver",
    "build_transport_pair",
]
