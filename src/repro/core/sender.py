"""The composed QTP sender.

One class covers the sender-side compositions:

* stock TFRC sender (rate control only),
* QTPAF sender (gTFRC rate control + SACK scoreboard + full-reliability
  retransmission),
* QTPlight sender (TFRC rate control + scoreboard + sender-side loss
  estimation from SACK vectors),
* any partial-reliability variant in between.

Transmission is paced at the controller's allowed rate; at each tick a
pending retransmission (if the reliability policy still wants it) takes
precedence over new data.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.core.profile import (
    CongestionControl,
    LossEstimationSite,
    ReliabilityMode,
    TransportProfile,
)
from repro.core.qtplight import SenderLossEstimator
from repro.metrics.cost import CostMeter
from repro.reliability.policies import policy_for
from repro.sack.scoreboard import SenderScoreboard
from repro.sim.engine import Simulator, Timer
from repro.sim.node import Agent
from repro.sim.packet import (
    AppDataHeader,
    Packet,
    PacketKind,
    PacketPool,
    SackFeedbackHeader,
    TfrcDataHeader,
    TfrcFeedbackHeader,
)
from repro.tfrc.gtfrc import GtfrcRateController
from repro.tfrc.rate_control import TfrcRateController


class QtpSender(Agent):
    """Profile-composed sender endpoint.

    Parameters
    ----------
    sim: simulator.
    dst: receiver's node name.
    profile: the negotiated :class:`TransportProfile`.
    bulk: when True (default) the sender always has data; when False it
        only transmits messages queued via :meth:`enqueue_message`.
    sender_meter: cost meter charged for sender-side estimation work
        (shows where QTPlight moved the load).
    controller: override the congestion controller (tests/ablations).
    size_bytes: optional finite byte budget for the *bulk* source.  The
        sender stops injecting new data once that many fresh bytes have
        been transmitted, and completes — stamping ``completed_at`` and
        firing ``on_complete`` — once the budget is also out of the
        reliability scoreboard (acknowledged or abandoned; immediately
        after the last send when the profile keeps no scoreboard).
        Explicitly queued messages are not budgeted.
    """

    def __init__(
        self,
        sim: Simulator,
        dst: str,
        profile: TransportProfile,
        bulk: bool = True,
        sender_meter: Optional[CostMeter] = None,
        controller: Optional[TfrcRateController] = None,
        size_bytes: Optional[int] = None,
    ):
        super().__init__(sim)
        self.dst = dst
        self.profile = profile
        self.bulk = bulk
        self.controller = controller or self._build_controller(profile)
        self.policy = policy_for(profile)
        self.scoreboard = (
            SenderScoreboard() if profile.needs_sack_feedback else None
        )
        self.estimator = (
            SenderLossEstimator(profile.segment_size, meter=sender_meter)
            if profile.loss_estimation is LossEstimationSite.SENDER
            else None
        )
        self._app_queue: Deque[Tuple[AppDataHeader, int]] = deque()
        if size_bytes is not None and size_bytes <= 0:
            raise ValueError("size_bytes must be positive (or None)")
        self.size_bytes = size_bytes
        self._new_bytes_sent = 0
        self.completed_at: Optional[float] = None
        self.on_complete: Optional[Callable[["QtpSender"], None]] = None
        self.next_seq = 0
        self.sent_packets = 0
        self.sent_bytes = 0
        self.retransmissions = 0
        self.abandoned = 0
        self.feedback_received = 0
        self._running = False
        self._send_event = None
        self._nofeedback = Timer(sim, self._on_nofeedback)
        self._pool = PacketPool.of(sim)
        self._last_feedback_arrival: Optional[float] = None
        self._x_recv_sender = 0.0
        self._forward_cache = 0
        self._last_send_time = 0.0
        # audit-skip lie detection (sender-side estimation only): seqs
        # allocated but never transmitted; acknowledging one is proof of
        # a fabricated SACK vector
        self._audit_enabled = (
            self.estimator is not None and profile.audit_skip_interval > 0
        )
        self._skipped: set[int] = set()
        self._audit_rng = sim.rng(f"audit-{dst}")
        self._next_audit_seq = (
            self._draw_audit_gap() if self._audit_enabled else -1
        )
        self.cheater_detected = False
        self._sent_bytes_at_last_fb = 0
        self.rate_log: list[tuple[float, float]] = []

    @staticmethod
    def _build_controller(profile: TransportProfile) -> TfrcRateController:
        if profile.congestion_control is CongestionControl.GTFRC:
            target = profile.target_rate_bytes
            assert target is not None  # enforced by the profile
            return GtfrcRateController(target, profile.segment_size)
        if profile.congestion_control is CongestionControl.TFRC:
            return TfrcRateController(profile.segment_size)
        raise ValueError(
            f"QtpSender does not implement {profile.congestion_control!r}; "
            "use the TCP baseline for WINDOW"
        )

    # ------------------------------------------------------------------
    # application interface
    # ------------------------------------------------------------------
    def enqueue_message(
        self, app: AppDataHeader, size: Optional[int] = None
    ) -> None:
        """Queue one application message (one packet) for transmission."""
        self._app_queue.append((app, size or self.profile.segment_size))

    @property
    def backlog(self) -> int:
        """Messages queued and not yet first-transmitted."""
        return len(self._app_queue)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin paced transmission."""
        if self._running:
            return
        self._running = True
        self._nofeedback.restart(self.controller.nofeedback_interval())
        self._tick()

    def stop(self) -> None:
        """Stop sending and cancel timers."""
        self._running = False
        if self._send_event is not None:
            self._send_event.cancel()
            self._send_event = None
        self._nofeedback.stop()

    # ------------------------------------------------------------------
    # paced transmission
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self._send_event = None
        if not self._running:
            return
        self._last_send_time = self.sim.now
        self._transmit_something()
        self._maybe_complete()
        if not self._running:  # completed (or stopped) during this tick
            return
        self._send_event = self.sim.schedule(
            self.controller.send_interval(), self._tick
        )

    def _reschedule_tick(self) -> None:
        """Re-pace the pending transmission after a rate change.

        Without this, a rate increase granted by feedback would only
        take effect after the previously scheduled (possibly very long)
        inter-packet gap — fatal right after the 1 packet/s start-up.
        """
        if not self._running or self._send_event is None:
            return
        due = max(
            self.sim.now, self._last_send_time + self.controller.send_interval()
        )
        if due >= self._send_event.time:
            return  # never delay an already-scheduled earlier send
        self._send_event.cancel()
        self._send_event = self.sim.schedule_at(due, self._tick)

    def _transmit_something(self) -> None:
        if self._retransmit_one():
            return
        if self._app_queue:
            app, size = self._app_queue.popleft()
            self._transmit_new(app, size)
        elif self.bulk and (
            self.size_bytes is None or self._new_bytes_sent < self.size_bytes
        ):
            self._transmit_new(None, self.profile.segment_size)

    def _maybe_complete(self) -> None:
        """Finish a byte-budgeted flow once its data is out of flight.

        Budget spent, nothing queued, and — when the profile tracks
        outstanding data — an empty scoreboard (everything acknowledged
        or abandoned).  Profiles without SACK feedback complete right
        after the budget's last transmission (send-based completion,
        like the unreliable media sources they model).
        """
        if self.size_bytes is None or self.completed_at is not None:
            return
        if not self._running or self._new_bytes_sent < self.size_bytes:
            return
        if self._app_queue:
            return
        if self.scoreboard is not None and self.scoreboard.outstanding > 0:
            return
        self.completed_at = self.sim.now
        self.stop()
        if self.on_complete is not None:
            self.on_complete(self)

    def _retransmit_one(self) -> bool:
        if self.scoreboard is None:
            return False
        rtt = self.controller.current_rtt or 0.0
        for record in self.scoreboard.retransmission_candidates():
            if self.policy.should_retransmit(record, self.sim.now, rtt):
                self.scoreboard.on_retransmit(
                    record.seq, self.sim.now, highest_sent=self.next_seq - 1
                )
                self.retransmissions += 1
                self._emit(record.seq, record.size, record.app, retx=True)
                return True
            self.scoreboard.abandon(record.seq)
            self.abandoned += 1
        return False

    def _draw_audit_gap(self) -> int:
        base = self.profile.audit_skip_interval
        return self.next_seq + self._audit_rng.randint(base // 2, base + base // 2)

    def _transmit_new(self, app: Optional[AppDataHeader], size: int) -> None:
        if self._audit_enabled and self.next_seq >= self._next_audit_seq:
            # burn one sequence number without sending anything; the
            # honest receiver sees a loss, a lying receiver may "ack" it
            self._skipped.add(self.next_seq)
            self.next_seq += 1
            self._next_audit_seq = self._draw_audit_gap()
        seq = self.next_seq
        self.next_seq += 1
        if self.scoreboard is not None:
            self.scoreboard.on_send(seq, size, self.sim.now, app)
        self._new_bytes_sent += size  # budget counts fresh data only
        self._emit(seq, size, app, retx=False)

    def _emit(
        self, seq: int, size: int, app: Optional[AppDataHeader], retx: bool
    ) -> None:
        # the forward point is recomputed per feedback, not per packet
        forward = self._forward_cache if self.scoreboard is not None else 0
        now = self.sim.now
        src = self.node.name if self.node else "?"
        rtt = self.controller.current_rtt or 0.0
        pool = self._pool
        packet = (
            pool.acquire(
                TfrcDataHeader, src, self.dst, self.flow_id,
                size, PacketKind.DATA, now, app=app,
            )
            if pool is not None
            else None
        )
        if packet is not None:
            header = packet.header
            header.seq = seq
            header.timestamp = now
            header.rtt_estimate = rtt
            header.forward_ack = forward
        else:
            packet = Packet(
                src=src,
                dst=self.dst,
                flow_id=self.flow_id,
                size=size,
                kind=PacketKind.DATA,
                header=TfrcDataHeader(
                    seq=seq,
                    timestamp=now,
                    rtt_estimate=rtt,
                    forward_ack=forward,
                ),
                created_at=now,
                app=app,
            )
            if pool is not None:
                packet.pooled = True
        self.sent_packets += 1
        self.sent_bytes += size
        self.send(packet)

    # ------------------------------------------------------------------
    # feedback processing
    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        """Process a receiver report (either feedback format)."""
        header = packet.header
        if isinstance(header, SackFeedbackHeader):
            self._on_sack_feedback(header)
        elif isinstance(header, TfrcFeedbackHeader):
            self._on_tfrc_feedback(header)
        else:
            return
        if self._pool is not None:  # report fully consumed: recycle
            self._pool.release(packet)

    def _rtt_sample(self, timestamp_echo: float, elapsed: float) -> float:
        sample = self.sim.now - timestamp_echo - elapsed
        return sample if sample > 0 else 1e-6

    def _on_tfrc_feedback(self, header: TfrcFeedbackHeader) -> None:
        self.feedback_received += 1
        sample = self._rtt_sample(header.timestamp_echo, header.elapsed)
        self.controller.on_feedback(self.sim.now, header.p, header.x_recv, sample)
        self._after_feedback()

    def _on_sack_feedback(self, header: SackFeedbackHeader) -> None:
        self.feedback_received += 1
        if self._audit_enabled and self._audit_violated(header):
            self._on_cheater_detected()
        if self.cheater_detected:
            # provably fabricated reports: stop trusting feedback; the
            # nofeedback timer keeps the rate at the floor
            return
        sample = self._rtt_sample(header.timestamp_echo, header.elapsed)
        digest = None
        if self.scoreboard is not None:
            digest = self.scoreboard.on_feedback(
                header.cum_ack, header.blocks, self.sim.now
            )
        if self.estimator is not None:
            p, x_recv = self._sender_side_estimates(header, digest, sample)
        else:
            # receiver-side estimation rode along in the SACK report
            p = header.p if header.p is not None else 0.0
            x_recv = header.x_recv if header.x_recv is not None else 0.0
        if digest is not None:
            self._apply_reliability(digest, sample)
        if self.scoreboard is not None:
            self._forward_cache = self.scoreboard.forward_point(self.next_seq)
            self.scoreboard.prune_delivered(self._forward_cache)
        self.controller.on_feedback(self.sim.now, p, x_recv, sample)
        self._after_feedback()

    def _audit_violated(self, header: SackFeedbackHeader) -> bool:
        """True when the report acknowledges a never-sent sequence number.

        Skipped numbers below the advertised forward-ack floor are
        legitimately coverable (the receiver was told to move past
        them), so they are dropped from the watch set instead.
        """
        floor = self._forward_cache
        violated = False
        for seq in sorted(self._skipped):
            claimed = seq <= header.cum_ack or any(
                start <= seq < end for start, end in header.blocks
            )
            if claimed and seq >= floor:
                violated = True
                break
        self._skipped = {s for s in self._skipped if s >= floor}
        return violated

    def _on_cheater_detected(self) -> None:
        if self.cheater_detected:
            return
        self.cheater_detected = True
        # punish: collapse to the protocol's minimum rate immediately
        self.controller.rate = self.profile.segment_size / 64.0

    def _sender_side_estimates(
        self, header: SackFeedbackHeader, digest, rtt_sample: float
    ) -> Tuple[float, float]:
        assert self.estimator is not None
        # prefer the receiver's own O(1) interval measurement: deriving it
        # from feedback arrival spacing is unstable when an immediate and a
        # timed report land back to back
        interval = header.interval if header.interval > 0 else rtt_sample
        # plausibility clamp: the receiver cannot have received more
        # bytes than the sender transmitted since the previous report
        sent_window = self.sent_bytes - self._sent_bytes_at_last_fb
        recv_bytes = min(header.recv_bytes, sent_window + 4 * self.profile.segment_size)
        self._sent_bytes_at_last_fb = self.sent_bytes
        if interval > 0:
            self._x_recv_sender = recv_bytes / interval
        rtt = self.controller.current_rtt or rtt_sample
        if digest is not None:
            self.estimator.on_acked(digest.newly_acked)
            self.estimator.on_lost(digest.newly_lost, rtt, self._x_recv_sender)
        return self.estimator.loss_event_rate(), self._x_recv_sender

    def _apply_reliability(self, digest, rtt_sample: float) -> None:
        if self.scoreboard is None:
            return
        rtt = self.controller.current_rtt or rtt_sample
        if self.profile.reliability is ReliabilityMode.NONE:
            # no repair service: drop lost packets from tracking at once
            for record in digest.newly_lost:
                self.scoreboard.abandon(record.seq)
            return
        for record in digest.newly_lost:
            if not self.policy.should_retransmit(record, self.sim.now, rtt):
                self.scoreboard.abandon(record.seq)
                self.abandoned += 1

    def _after_feedback(self) -> None:
        self._last_feedback_arrival = self.sim.now
        self.rate_log.append((self.sim.now, self.controller.rate))
        self._nofeedback.restart(self.controller.nofeedback_interval())
        self._reschedule_tick()
        # ack-based completion: this feedback may have drained the last
        # budgeted bytes out of the scoreboard
        self._maybe_complete()

    def _on_nofeedback(self) -> None:
        if not self._running:
            return
        self.controller.on_nofeedback_timeout(self.sim.now)
        self.rate_log.append((self.sim.now, self.controller.rate))
        self._nofeedback.restart(self.controller.nofeedback_interval())

    # ------------------------------------------------------------------
    @property
    def rate(self) -> float:
        """Current allowed sending rate, bytes/s."""
        return self.controller.rate
