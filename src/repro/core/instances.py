"""The published protocol instances and a pair-construction helper.

* :func:`QTPAF` — the QoS-aware reliable instance of the paper's §4:
  gTFRC congestion control bound to an AF guarantee, composed with SACK
  full reliability (a factory, because the guarantee ``g`` is part of
  the instance).
* :data:`QTPLIGHT` — the light-receiver instance of §3: TFRC whose
  loss-event estimation runs at the sender, fed by SACK vectors.
* :data:`QTPLIGHT_RELIABLE` — QTPlight plus the selective
  retransmission the paper notes the SACK feedback enables.
* :data:`TFRC_MEDIA` — stock RFC 3448 TFRC (the baseline composition).
* :data:`TCP_LIKE` — a window-based fully reliable profile, realized by
  the TCP baseline in :func:`build_transport_pair`.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple, Union

from repro.core.profile import (
    CongestionControl,
    LossEstimationSite,
    ReliabilityMode,
    TransportProfile,
)
from repro.core.receiver import QtpReceiver
from repro.core.sender import QtpSender
from repro.metrics.cost import CostMeter
from repro.metrics.recorder import FlowRecorder
from repro.sim.engine import Simulator
from repro.sim.node import Node
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender


def QTPAF(target_rate_bps: float, **overrides) -> TransportProfile:
    """The QTPAF instance bound to an AF guarantee of ``target_rate_bps``.

    gTFRC + SACK full reliability + receiver-side estimation — "the
    first reliable transport protocol really adapted to carry
    efficiently QoS traffic" (paper §4).
    """
    params = dict(
        name="QTPAF",
        congestion_control=CongestionControl.GTFRC,
        reliability=ReliabilityMode.FULL,
        loss_estimation=LossEstimationSite.RECEIVER,
        target_rate_bps=target_rate_bps,
    )
    params.update(overrides)
    return TransportProfile(**params)


#: QTPlight (§3): stock-friendly TFRC rate control, loss estimation at
#: the sender, O(1)-per-packet receiver.  No repair service.
QTPLIGHT = TransportProfile(
    name="QTPlight",
    congestion_control=CongestionControl.TFRC,
    reliability=ReliabilityMode.NONE,
    loss_estimation=LossEstimationSite.SENDER,
)

#: QTPlight with the selective retransmission its SACK feedback enables
#: (bounded, so late multimedia data is not repaired forever).
QTPLIGHT_RELIABLE = TransportProfile(
    name="QTPlight+retx",
    congestion_control=CongestionControl.TFRC,
    reliability=ReliabilityMode.PARTIAL_COUNT,
    loss_estimation=LossEstimationSite.SENDER,
)

#: Stock RFC 3448 TFRC: the media-streaming baseline composition.
TFRC_MEDIA = TransportProfile(
    name="TFRC",
    congestion_control=CongestionControl.TFRC,
    reliability=ReliabilityMode.NONE,
    loss_estimation=LossEstimationSite.RECEIVER,
)

#: Window-based fully reliable profile — realized by the TCP baseline.
TCP_LIKE = TransportProfile(
    name="TCP",
    congestion_control=CongestionControl.WINDOW,
    reliability=ReliabilityMode.FULL,
    loss_estimation=LossEstimationSite.RECEIVER,
)


Endpoints = Tuple[Union[QtpSender, TcpSender], Union[QtpReceiver, TcpReceiver]]


def build_transport_pair(
    sim: Simulator,
    src_node: Node,
    dst_node: Node,
    flow_id: str,
    profile: TransportProfile,
    recorder: Optional[FlowRecorder] = None,
    rx_meter: Optional[CostMeter] = None,
    tx_meter: Optional[CostMeter] = None,
    on_deliver: Optional[Callable] = None,
    bulk: bool = True,
    feedback_filter=None,
    start: bool = False,
) -> Endpoints:
    """Construct and attach a sender/receiver pair for ``profile``.

    ``WINDOW`` profiles build the TCP baseline (with SACK enabled);
    everything else builds the composed QTP endpoints.  Set
    ``start=True`` to begin transmission immediately.
    """
    if profile.congestion_control is CongestionControl.WINDOW:
        tcp_sender = TcpSender(
            sim, dst=dst_node.name, segment_size=profile.segment_size, sack=True
        )
        tcp_receiver = TcpReceiver(sim, recorder=recorder, sack=True)
        tcp_sender.attach(src_node, flow_id)
        tcp_receiver.attach(dst_node, flow_id)
        if start:
            tcp_sender.start()
        return tcp_sender, tcp_receiver
    sender = QtpSender(
        sim, dst=dst_node.name, profile=profile, bulk=bulk, sender_meter=tx_meter
    )
    receiver = QtpReceiver(
        sim,
        profile=profile,
        recorder=recorder,
        meter=rx_meter,
        on_deliver=on_deliver,
        feedback_filter=feedback_filter,
    )
    sender.attach(src_node, flow_id)
    receiver.attach(dst_node, flow_id)
    if start:
        sender.start()
    return sender, receiver
