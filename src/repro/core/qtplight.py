"""QTPlight machinery: sender-side loss estimation and selfish receivers.

The paper's §3 shifts the RFC 3448 loss-event history from the receiver
to the sender: the receiver returns plain SACK vectors, and the sender
reconstructs loss events from its own scoreboard.  This module provides

* :class:`SenderLossEstimator` — the sender-side replacement for
  :class:`repro.tfrc.loss_history.LossEventEstimator`: it consumes
  scoreboard digests (newly lost / newly acked packets) instead of
  packet arrivals, clustering losses into events by their *send* times
  (the send timeline is the sender's best proxy for the receive
  timeline, offset by a constant half-RTT);
* selfish-receiver models for experiment T4 (Georg & Gorinsky):
  :class:`LyingFeedbackFilter` scales ``p`` down / ``x_recv`` up in
  standard TFRC reports, and fabricates SACK coverage for QTPlight
  reports — demonstrating that the sender-computed loss rate removes
  the cheating incentive.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.metrics.cost import CostMeter, NullMeter
from repro.sack.scoreboard import SentRecord
from repro.sim.packet import SackFeedbackHeader, TfrcFeedbackHeader
from repro.tfrc.equation import solve_loss_rate
from repro.tfrc.loss_history import LossIntervalHistory


class SenderLossEstimator:
    """RFC 3448 §5 loss-interval accounting, driven from the sender side.

    Parameters
    ----------
    segment_size:
        Used for the synthetic first interval (§6.3.1).
    meter:
        Cost meter charged for the (sender-side) estimation work; T3
        reports it alongside the receiver meters to show the shift.
    """

    def __init__(self, segment_size: int = 1000, meter: Optional[CostMeter] = None):
        self.meter = meter or NullMeter()
        self.segment_size = segment_size
        self.history = LossIntervalHistory(meter=self.meter)
        self._last_event_seq: Optional[int] = None
        self._last_event_time = -1.0
        self._highest_acked = -1
        self.losses_seen = 0

    # ------------------------------------------------------------------
    def on_acked(self, records: Iterable[SentRecord]) -> None:
        """Track delivery progress (defines the open interval length)."""
        for record in records:
            self.meter.charge(1)
            if record.seq > self._highest_acked:
                self._highest_acked = record.seq

    def on_lost(
        self,
        records: Iterable[SentRecord],
        rtt: float,
        x_recv: float = 0.0,
    ) -> bool:
        """Fold newly lost packets into the loss-event history.

        ``rtt`` is the sender's current RTT estimate; ``x_recv`` the
        latest receive-rate estimate, used only to seed the first
        interval.  Returns True when a new loss event started.
        """
        new_event = False
        for record in sorted(records, key=lambda r: r.seq):
            self.meter.charge(4)
            self.losses_seen += 1
            loss_time = record.first_send_time
            if (
                self._last_event_seq is None
                or loss_time > self._last_event_time + rtt
            ):
                self._start_event(record.seq, loss_time, rtt, x_recv)
                new_event = True
        return new_event

    def _start_event(
        self, seq: int, loss_time: float, rtt: float, x_recv: float
    ) -> None:
        if self._last_event_seq is None:
            self.history.record_event(max(1, seq))
            synthetic = self._synthetic_first_interval(rtt, x_recv)
            if synthetic is not None:
                self.history.seed_first_interval(synthetic)
        else:
            self.history.record_event(max(1, seq - self._last_event_seq))
        self._last_event_seq = seq
        self._last_event_time = loss_time

    def _synthetic_first_interval(self, rtt: float, x_recv: float) -> Optional[float]:
        if rtt <= 0 or x_recv <= 0:
            return None
        p = solve_loss_rate(self.segment_size, rtt, x_recv)
        if p <= 0:
            return None
        return 1.0 / p

    # ------------------------------------------------------------------
    def loss_event_rate(self) -> float:
        """Current ``p`` (0.0 before any loss event)."""
        if self._last_event_seq is not None:
            self.history.open_interval = float(
                max(0, self._highest_acked - self._last_event_seq)
            )
        return self.history.loss_event_rate()

    @property
    def loss_events(self) -> int:
        """Number of loss events recorded."""
        return self.history.events


class LyingFeedbackFilter:
    """A selfish receiver's report mangler (Georg & Gorinsky model).

    Installed on a receiver, it rewrites outgoing reports to understate
    congestion:

    * standard TFRC reports: ``p`` is multiplied by ``p_scale`` (< 1)
      and ``x_recv`` by ``x_scale`` (> 1) — the classic attack that
      makes the sender overshoot;
    * QTPlight SACK reports: the receiver *claims* every hole was
      received by extending the cumulative ack to the highest sequence
      seen.  The sender then observes no losses — but it also never
      retransmits, and its own estimation is otherwise untouched, so
      the receiver cannot raise the sender's rate this way beyond
      suppressing genuine loss events it actually suffered.
    """

    def __init__(self, p_scale: float = 0.0, x_scale: float = 2.0):
        if p_scale < 0 or x_scale <= 0:
            raise ValueError("p_scale must be >= 0 and x_scale > 0")
        self.p_scale = p_scale
        self.x_scale = x_scale
        self.mangled_reports = 0

    def mangle_tfrc(self, header: TfrcFeedbackHeader) -> TfrcFeedbackHeader:
        """Rewrite a standard TFRC report in the attacker's favour."""
        self.mangled_reports += 1
        header.p = header.p * self.p_scale
        header.x_recv = header.x_recv * self.x_scale
        return header

    def mangle_sack(self, header: SackFeedbackHeader) -> SackFeedbackHeader:
        """Rewrite a QTPlight SACK report to hide all losses."""
        self.mangled_reports += 1
        header.cum_ack = max(header.cum_ack, header.last_seq)
        header.blocks = ()
        header.recv_bytes = int(header.recv_bytes * self.x_scale)
        if header.p is not None:
            header.p = header.p * self.p_scale
        if header.x_recv is not None:
            header.x_recv = header.x_recv * self.x_scale
        return header
