"""Reproduction of *Towards a Versatile Transport Protocol* (CoNEXT 2006).

This package implements, from scratch, the composable transport protocol
framework sketched by Jourjon, Lochin and Sénac, together with every
substrate it depends on:

* a deterministic discrete-event network simulator (:mod:`repro.sim`),
* DiffServ/AF QoS machinery — token-bucket meters, markers and RIO
  queues (:mod:`repro.qos`),
* loss/jitter channel emulation (:mod:`repro.netem`),
* TFRC congestion control per RFC 3448 and its gTFRC QoS-aware
  extension (:mod:`repro.tfrc`),
* selective acknowledgments per RFC 2018 (:mod:`repro.sack`) and the
  reliability services built on them (:mod:`repro.reliability`),
* a TCP Reno/NewReno baseline (:mod:`repro.tcp`),
* the versatile-transport composition framework with the two paper
  instances, QTPAF and QTPlight (:mod:`repro.core`),
* application traffic models (:mod:`repro.apps`), measurement utilities
  (:mod:`repro.metrics`), declarative topology/scenario specs
  (:mod:`repro.topo`) and an experiment harness (:mod:`repro.harness`).

:mod:`repro.api` (``Experiment`` / ``ResultSet``) is the unified front
door for defining, running and analyzing experiment sweeps; the
simulator-level surface re-exported here is the stable substrate the
examples and benchmarks build on.
"""

from repro.core.instances import (
    QTPAF,
    QTPLIGHT,
    TCP_LIKE,
    TFRC_MEDIA,
    build_transport_pair,
)
from repro.core.profile import (
    CongestionControl,
    LossEstimationSite,
    ReliabilityMode,
    TransportProfile,
)
from repro.sim.engine import Simulator
from repro.sim.topology import dumbbell, chain, star

__all__ = [
    "Simulator",
    "TransportProfile",
    "CongestionControl",
    "ReliabilityMode",
    "LossEstimationSite",
    "QTPAF",
    "QTPLIGHT",
    "TFRC_MEDIA",
    "TCP_LIKE",
    "build_transport_pair",
    "dumbbell",
    "chain",
    "star",
]

__version__ = "1.0.0"
