"""T3 — receiver processing load (paper §3).

Regenerates the QTPlight claim table: per-packet receiver operations
and resident state for the three receiver compositions, across loss
rates, plus where the work went (the sender-side estimator).  The
pytest-benchmark micro-kernels time the exact per-packet code paths in
wall-clock terms: the RFC 3448 loss-event machinery vs the QTPlight
SACK bookkeeping.

The sweep runs through :class:`repro.api.Experiment`; lookups use the
ResultSet's metric fallback (``profile_name`` is a *result* metric, not
a sweep axis — the display-name join the old dict-building code did by
hand).
"""

import random

import pytest

from conftest import SWEEP_CACHE, emit_table, sweep_workers
from repro.api import Experiment
from repro.harness.tables import format_table
from repro.sack.blocks import ReceiverSackState
from repro.tfrc.loss_history import LossEventEstimator


pytestmark = pytest.mark.slow

#: Sweep names in table order; results key by the composition's
#: display name ("TFRC", "QTPlight", "QTPAF").
PROFILE_NAMES = ("tfrc", "qtplight", "qtpaf")
LOSS_RATES = (0.0, 0.02, 0.05)


@pytest.fixture(scope="module")
def sweep():
    return (
        Experiment("receiver_load")
        .sweep(profile=PROFILE_NAMES, loss_rate=LOSS_RATES)
        .configure(duration=30.0, seed=2)
        .workers(sweep_workers())
        .cache(SWEEP_CACHE)
        .run()
    )


def test_t3_table(sweep, benchmark):
    rows = []
    for name in ("TFRC", "QTPlight", "QTPAF"):
        for loss in LOSS_RATES:
            r = sweep.one(profile_name=name, loss_rate=loss)
            rows.append(
                [
                    name,
                    f"{loss * 100:.0f}%",
                    r.packets,
                    r.rx_ops_per_packet,
                    r.rx_peak_bytes,
                    r.tx_estimator_ops_per_packet,
                    r.feedback_sent,
                ]
            )
    emit_table(
        "t3_receiver_load",
        format_table(
            ["profile", "loss", "pkts", "rx ops/pkt", "rx peak B",
             "tx est ops/pkt", "reports"],
            rows,
            title="T3: receiver processing/memory load by composition",
        ),
    )

    # micro-kernel: one simulated arrival stream through each receiver path
    def loss_pattern(n, p, seed=7):
        rng = random.Random(seed)
        return [seq for seq in range(n) if rng.random() >= p]

    seqs = loss_pattern(20_000, 0.02)

    def rfc3448_receiver_path():
        est = LossEventEstimator()
        t = 0.0
        for seq in seqs:
            t += 0.001
            est.on_packet(seq, t, 0.05)
        return est.loss_event_rate()

    benchmark(rfc3448_receiver_path)


def test_t3_qtplight_kernel(benchmark):
    rng = random.Random(7)
    seqs = [seq for seq in range(20_000) if rng.random() >= 0.02]

    def qtplight_receiver_path():
        state = ReceiverSackState()
        for i, seq in enumerate(seqs):
            state.record(seq, 1000)
            if i % 50 == 49:
                # the sender's forward-ack floor passes abandoned holes
                # about once per RTT, keeping the interval set tiny —
                # mirror that here as the live protocol does
                state.advance_floor(max(0, seq - 100))
        return state.blocks(16)

    benchmark(qtplight_receiver_path)


def test_t3_receiver_load_ordering(sweep):
    for loss in LOSS_RATES:
        light = sweep.value(
            "rx_ops_per_packet", profile_name="QTPlight", loss_rate=loss
        )
        std = sweep.value("rx_ops_per_packet", profile_name="TFRC", loss_rate=loss)
        full = sweep.value("rx_ops_per_packet", profile_name="QTPAF", loss_rate=loss)
        assert light < std < full


def test_t3_work_shifted_to_sender(sweep):
    assert sweep.value(
        "tx_estimator_ops_per_packet", profile_name="QTPlight", loss_rate=0.02
    ) > 0
    assert sweep.value(
        "tx_estimator_ops_per_packet", profile_name="TFRC", loss_rate=0.02
    ) == 0
