"""T2 — AF assurance vs RTT asymmetry (paper §4 / Seddigh et al.).

The TCP bandwidth-assurance failure is RTT-dependent: the longer the
assured flow's RTT relative to the cross traffic, the further TCP falls
below its reservation, while QTPAF stays pinned.  This regenerates the
achieved/target matrix over the assured flow's access delay, driven by
the :mod:`repro.api` Experiment/ResultSet front door.
"""

import pytest

from conftest import SWEEP_CACHE, emit_table, sweep_workers
from repro.api import Experiment
from repro.harness.experiments.af_assurance import af_dumbbell_scenario
from repro.harness.tables import format_table


pytestmark = pytest.mark.slow

ACCESS_DELAYS = (0.002, 0.03, 0.06, 0.1)  # one-way; RTT ~= 4x + 40 ms
PROTOCOLS = ("tcp", "qtpaf")
CONFIG = dict(target_bps=5e6, n_cross=8, duration=40.0, warmup=10.0, seed=3)


@pytest.fixture(scope="module")
def sweep():
    return (
        Experiment("af_assurance")
        .sweep(assured_access_delay=ACCESS_DELAYS, protocol=PROTOCOLS)
        .configure(**CONFIG)
        .workers(sweep_workers())
        .cache(SWEEP_CACHE)
        .run()
    )


def test_t2_table(sweep, benchmark):
    rows = []
    for delay in ACCESS_DELAYS:
        rtt_ms = (2 * (delay + 0.002) + 2 * 0.02) * 1e3
        row = [f"{rtt_ms:.0f}"]
        for proto in PROTOCOLS:
            row.append(
                sweep.value("ratio", assured_access_delay=delay, protocol=proto)
            )
        rows.append(row)
    emit_table(
        "t2_rtt_asymmetry",
        format_table(
            ["assured RTT (ms)", "tcp ratio", "qtpaf ratio"],
            rows,
            title="T2: achieved/negotiated vs assured-flow RTT (g = 5 Mb/s)",
        ),
    )
    benchmark.pedantic(
        af_dumbbell_scenario,
        args=("tcp",),
        kwargs=dict(target_bps=5e6, n_cross=4, duration=10.0, warmup=2.0, seed=3),
        rounds=1,
        iterations=1,
    )


def test_t2_tcp_degrades_with_rtt(sweep):
    first = sweep.value(
        "ratio", assured_access_delay=ACCESS_DELAYS[0], protocol="tcp"
    )
    last = sweep.value(
        "ratio", assured_access_delay=ACCESS_DELAYS[-1], protocol="tcp"
    )
    assert last < first

def test_t2_qtpaf_rtt_insensitive(sweep):
    ratios = [
        sweep.value("ratio", assured_access_delay=d, protocol="qtpaf")
        for d in ACCESS_DELAYS
    ]
    assert min(ratios) >= 0.9
