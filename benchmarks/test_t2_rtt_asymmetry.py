"""T2 — AF assurance vs RTT asymmetry (paper §4 / Seddigh et al.).

The TCP bandwidth-assurance failure is RTT-dependent: the longer the
assured flow's RTT relative to the cross traffic, the further TCP falls
below its reservation, while QTPAF stays pinned.  This regenerates the
achieved/target matrix over the assured flow's access delay.
"""

import pytest

from conftest import SWEEP_CACHE, emit_table, sweep_workers
from repro.harness.runner import run_matrix
from repro.harness.scenarios import af_dumbbell_scenario
from repro.harness.tables import format_table


pytestmark = pytest.mark.slow

ACCESS_DELAYS = (0.002, 0.03, 0.06, 0.1)  # one-way; RTT ~= 4x + 40 ms
PROTOCOLS = ("tcp", "qtpaf")
CONFIG = dict(target_bps=5e6, n_cross=8, duration=40.0, warmup=10.0, seed=3)


@pytest.fixture(scope="module")
def sweep():
    records = run_matrix(
        "af_assurance",
        {"assured_access_delay": ACCESS_DELAYS, "protocol": PROTOCOLS},
        base=CONFIG,
        workers=sweep_workers(),
        cache_dir=SWEEP_CACHE,
    )
    return {
        (r.params["assured_access_delay"], r.params["protocol"]): r.result
        for r in records
    }


def test_t2_table(sweep, benchmark):
    rows = []
    for delay in ACCESS_DELAYS:
        rtt_ms = (2 * (delay + 0.002) + 2 * 0.02) * 1e3
        row = [f"{rtt_ms:.0f}"]
        for proto in PROTOCOLS:
            row.append(sweep[(delay, proto)].ratio)
        rows.append(row)
    emit_table(
        "t2_rtt_asymmetry",
        format_table(
            ["assured RTT (ms)", "tcp ratio", "qtpaf ratio"],
            rows,
            title="T2: achieved/negotiated vs assured-flow RTT (g = 5 Mb/s)",
        ),
    )
    benchmark.pedantic(
        af_dumbbell_scenario,
        args=("tcp",),
        kwargs=dict(target_bps=5e6, n_cross=4, duration=10.0, warmup=2.0, seed=3),
        rounds=1,
        iterations=1,
    )


def test_t2_tcp_degrades_with_rtt(sweep):
    first = sweep[(ACCESS_DELAYS[0], "tcp")].ratio
    last = sweep[(ACCESS_DELAYS[-1], "tcp")].ratio
    assert last < first

def test_t2_qtpaf_rtt_insensitive(sweep):
    ratios = [sweep[(d, "qtpaf")].ratio for d in ACCESS_DELAYS]
    assert min(ratios) >= 0.9
