"""F2 — lossy multi-hop paths: TCP vs TFRC (paper §2, claim 1).

Regenerates the goodput-vs-loss-rate figure over a 3-hop chain whose
hops carry independent Gilbert–Elliott bursty loss (the vehicular /
ad-hoc regime of refs [1] and [9]).  Expected shape: comparable at low
loss; TFRC increasingly ahead as loss grows (TCP melts down to RTO
backoff under loss bursts).  A Bernoulli column is included to show
that the advantage is specific to bursty loss.

The chain itself is now spec-compiled (``lossy_chain_spec`` +
``ChannelSpec``) and the sweep runs through
:class:`repro.api.Experiment` — the committed table is byte-identical
to the hand-built version both replaced.
"""

import pytest

from conftest import SWEEP_CACHE, emit_table, sweep_workers
from repro.api import Experiment
from repro.harness.experiments.lossy_path import lossy_path_scenario
from repro.harness.tables import format_table

pytestmark = pytest.mark.slow

LOSS_RATES = (0.005, 0.01, 0.02, 0.05, 0.08)
CONFIG = dict(n_hops=3, duration=40.0, warmup=10.0, seed=2)


@pytest.fixture(scope="module")
def sweep():
    return (
        Experiment("lossy_path")
        .sweep(
            loss_rate=LOSS_RATES,
            protocol=("tcp", "tfrc"),
            bursty=(True, False),
        )
        .configure(**CONFIG)
        .workers(sweep_workers())
        .cache(SWEEP_CACHE)
        .run()
    )


def test_f2_table(sweep, benchmark):
    rows = []
    for loss in LOSS_RATES:
        tcp_b = sweep.value("goodput_bps", loss_rate=loss, protocol="tcp", bursty=True)
        tfrc_b = sweep.value("goodput_bps", loss_rate=loss, protocol="tfrc", bursty=True)
        tcp_u = sweep.value("goodput_bps", loss_rate=loss, protocol="tcp", bursty=False)
        tfrc_u = sweep.value("goodput_bps", loss_rate=loss, protocol="tfrc", bursty=False)
        rows.append(
            [
                f"{loss * 100:.1f}%",
                tcp_b / 1e3,
                tfrc_b / 1e3,
                tfrc_b / max(tcp_b, 1e3),
                tcp_u / 1e3,
                tfrc_u / 1e3,
            ]
        )
    emit_table(
        "f2_wireless",
        format_table(
            ["loss", "tcp bursty (kb/s)", "tfrc bursty (kb/s)",
             "tfrc/tcp (bursty)", "tcp iid (kb/s)", "tfrc iid (kb/s)"],
            rows,
            title="F2: goodput over a 3-hop 2 Mb/s chain with per-hop loss",
        ),
    )
    benchmark.pedantic(
        lossy_path_scenario,
        args=("tfrc", 0.02),
        kwargs=dict(bursty=True, duration=10.0, warmup=2.0, seed=2),
        rounds=1,
        iterations=1,
    )


def test_f2_tfrc_ahead_under_bursty_loss(sweep):
    for loss in LOSS_RATES[2:]:
        tcp = sweep.value("goodput_bps", loss_rate=loss, protocol="tcp", bursty=True)
        tfrc = sweep.value("goodput_bps", loss_rate=loss, protocol="tfrc", bursty=True)
        assert tfrc > tcp, loss


def test_f2_advantage_grows_with_loss(sweep):
    def ratio(loss):
        tcp = sweep.value("goodput_bps", loss_rate=loss, protocol="tcp", bursty=True)
        tfrc = sweep.value("goodput_bps", loss_rate=loss, protocol="tfrc", bursty=True)
        return tfrc / max(tcp, 1e3)

    assert ratio(LOSS_RATES[-1]) > ratio(LOSS_RATES[0])
