"""F3 — sender-side vs receiver-side loss estimation (paper §3).

Regenerates the accuracy figure behind QTPlight: on one packet stream,
the sender's SACK-reconstructed loss event rate against a shadow
RFC 3448 receiver-side estimator, across channel loss rates.

Driven by the :mod:`repro.api` Experiment/ResultSet front door.
"""

import pytest

from conftest import SWEEP_CACHE, emit_table, sweep_workers
from repro.api import Experiment
from repro.harness.experiments.estimation import estimation_accuracy_scenario
from repro.harness.tables import format_table


pytestmark = pytest.mark.slow

LOSS_RATES = (0.005, 0.01, 0.02, 0.04, 0.08)


@pytest.fixture(scope="module")
def sweep():
    return (
        Experiment("estimation_accuracy")
        .sweep(loss_rate=LOSS_RATES)
        .configure(duration=50.0, warmup=10.0, seed=2)
        .workers(sweep_workers())
        .cache(SWEEP_CACHE)
        .run()
    )


def test_f3_table(sweep, benchmark):
    rows = []
    for loss in LOSS_RATES:
        r = sweep.one(loss_rate=loss)
        rows.append(
            [
                f"{loss * 100:.1f}%",
                r.mean_p_shadow,
                r.mean_p_sender,
                r.mean_abs_rel_error,
                r.goodput_bps / 1e3,
            ]
        )
    emit_table(
        "f3_estimation_accuracy",
        format_table(
            ["channel loss", "p receiver-side", "p sender-side",
             "mean |rel err|", "goodput (kb/s)"],
            rows,
            title="F3: QTPlight sender-side loss-event rate vs shadow "
                  "RFC 3448 receiver estimate",
        ),
    )
    benchmark.pedantic(
        estimation_accuracy_scenario,
        args=(0.02,),
        kwargs=dict(duration=15.0, warmup=3.0, seed=2),
        rounds=1,
        iterations=1,
    )


def test_f3_agreement_within_ten_percent(sweep):
    for loss in LOSS_RATES[1:]:
        assert sweep.value("mean_abs_rel_error", loss_rate=loss) < 0.10, loss


def test_f3_estimates_track_channel(sweep):
    for loss in (0.02, 0.04, 0.08):
        assert sweep.value("mean_p_sender", loss_rate=loss) == pytest.approx(
            loss, rel=0.5
        )
