"""F4 — TCP-friendliness of TFRC (paper §2).

Regenerates the sharing figure: one TFRC flow against N TCP flows on an
8 Mb/s RED bottleneck.  The normalized throughput (TFRC rate over the
mean TCP rate) should stay within the conventional [0.5, 2] friendliness
band across N, with a high Jain index.

Driven by the :mod:`repro.api` Experiment/ResultSet front door.
"""

import pytest

from conftest import SWEEP_CACHE, emit_table, sweep_workers
from repro.api import Experiment
from repro.harness.experiments.friendliness import friendliness_scenario
from repro.harness.tables import format_table

pytestmark = pytest.mark.slow

N_TCP = (1, 2, 4, 8, 16)


@pytest.fixture(scope="module")
def sweep():
    return (
        Experiment("friendliness")
        .sweep(n_tcp=N_TCP)
        .configure(duration=60.0, warmup=15.0, seed=2)
        .workers(sweep_workers())
        .cache(SWEEP_CACHE)
        .run()
    )


def test_f4_table(sweep, benchmark):
    rows = []
    for n in N_TCP:
        r = sweep.one(n_tcp=n)
        rows.append(
            [n, r.tfrc_bps / 1e6, r.tcp_mean_bps / 1e6, r.normalized, r.jain]
        )
    emit_table(
        "f4_friendliness",
        format_table(
            ["n tcp", "tfrc (Mb/s)", "tcp mean (Mb/s)", "normalized", "jain"],
            rows,
            title="F4: one TFRC vs N TCP on an 8 Mb/s RED bottleneck",
        ),
    )
    benchmark.pedantic(
        friendliness_scenario,
        args=(2,),
        kwargs=dict(duration=15.0, warmup=5.0, seed=2),
        rounds=1,
        iterations=1,
    )


def test_f4_friendliness_band(sweep):
    for n in N_TCP:
        assert 0.4 <= sweep.value("normalized", n_tcp=n) <= 2.0, n


def test_f4_jain_high(sweep):
    for n in N_TCP:
        assert sweep.value("jain", n_tcp=n) > 0.85, n
