"""T5 — negotiable reliability over a media stream (paper §1, feature 1).

Regenerates the reliability trade-off table: an MPEG-like 25 fps stream
over a 3%-lossy link under the four negotiable modes.  The decisive
column is ``useful`` — the fraction of sent messages that arrived
*before their playout deadline*: NONE loses frames outright, FULL
repairs them but late, and the partial modes give the best of both.

Driven by the :mod:`repro.api` Experiment/ResultSet front door.
"""

import pytest

from conftest import SWEEP_CACHE, emit_table, sweep_workers
from repro.api import Experiment
from repro.core.profile import ReliabilityMode
from repro.harness.experiments.reliability import reliability_scenario
from repro.harness.tables import format_table


pytestmark = pytest.mark.slow

MODES = (
    ReliabilityMode.NONE,
    ReliabilityMode.PARTIAL_TIME,
    ReliabilityMode.PARTIAL_COUNT,
    ReliabilityMode.FULL,
)


@pytest.fixture(scope="module")
def sweep():
    return (
        Experiment("reliability_modes")
        .sweep(mode=tuple(m.value for m in MODES))
        .configure(duration=60.0, seed=2)
        .workers(sweep_workers())
        .cache(SWEEP_CACHE)
        .run()
    )


def test_t5_table(sweep, benchmark):
    rows = []
    for mode in MODES:
        r = sweep.one(mode=mode.value)
        rows.append(
            [
                r.mode,
                r.sent,
                r.delivered,
                r.skipped,
                r.retransmissions,
                r.abandoned,
                r.on_time_ratio,
                r.useful_ratio,
                r.mean_latency * 1e3,
                r.p95_latency * 1e3,
            ]
        )
    emit_table(
        "t5_reliability_modes",
        format_table(
            ["mode", "sent", "delivered", "skipped", "retx", "abandoned",
             "on-time", "useful", "mean lat (ms)", "p95 lat (ms)"],
            rows,
            title="T5: media stream (25 fps, 280 ms playout) over a 3% lossy "
                  "link, by reliability mode",
        ),
    )
    benchmark.pedantic(
        reliability_scenario,
        args=(ReliabilityMode.PARTIAL_TIME,),
        kwargs=dict(duration=15.0, seed=2),
        rounds=1,
        iterations=1,
    )


def test_t5_full_delivers_most(sweep):
    assert sweep.value("delivered", mode="full") >= sweep.value(
        "delivered", mode="none"
    )


def test_t5_latency_ordering(sweep):
    assert sweep.value("p95_latency", mode="none") < sweep.value(
        "p95_latency", mode="full"
    )


def test_t5_partial_time_best_useful_ratio(sweep):
    best = sweep.value("useful_ratio", mode="partial-time")
    assert best >= sweep.value("useful_ratio", mode="none") - 0.01
    assert best >= sweep.value("useful_ratio", mode="full") - 0.01
