"""P1 — simulation-core speed: pinned perf suite + golden equality.

Two guarantees, together the contract of the PR 2 hot-path overhaul:

1. **Speed is recorded and guarded.**  ``BENCH_core.json`` (repo root)
   commits the pre-optimization baseline next to the current numbers;
   this suite re-runs the pinned benchmarks and fails if the live tree
   has regressed more than 20% below the committed rates (the same
   check as ``python -m repro.harness bench --check``).  Wall-clock
   rates are machine-relative: re-run ``bench`` on the reference
   machine after intentional perf changes to refresh ``current``
   (never the frozen ``baseline``).

2. **Speed never changed the physics.**  The golden-equality test
   replays the trace probes and compares them — event-sequence digest,
   ``events_processed``, final ``sim.now``, per-flow delivered bytes —
   against fingerprints captured from the seed engine in
   ``benchmarks/goldens/core_goldens.json``.  Bit-identical or bust.
"""

import json
from pathlib import Path

import pytest

from conftest import emit_table
from repro.harness import bench
from repro.harness.tables import format_table

pytestmark = pytest.mark.slow

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_core.json"
GOLDENS_PATH = Path(__file__).resolve().parent / "goldens" / "core_goldens.json"

#: Speedups the PR 2 overhaul committed to (vs the frozen seed baseline).
REQUIRED_SPEEDUPS = {"engine_events": 1.5, "t1_scenario": 1.3}


@pytest.fixture(scope="module")
def committed():
    record = bench.load_record(BENCH_PATH)
    assert record is not None, f"missing {BENCH_PATH}"
    return record


@pytest.fixture(scope="module")
def fresh():
    # best-of-5: the guard compares best wall clocks, so transient load
    # on the host (CI neighbors, the preceding benchmark churn) must
    # not read as a perf regression
    return bench.run_suite(repeats=5)


def test_p1_bench_record_shape(committed):
    assert committed["schema"] == 1
    assert set(committed["suite"]) == {s.name for s in bench.BENCHMARKS}
    assert committed["baseline"], "frozen pre-optimization baseline missing"
    assert committed["current"], "current numbers missing"


def test_p1_committed_speedups_hold(committed):
    """The committed record must show the overhaul's promised speedups."""
    for name, required in REQUIRED_SPEEDUPS.items():
        assert committed["speedup"][name] >= required, (
            f"{name}: committed speedup {committed['speedup'][name]:.2f}x "
            f"is below the required {required}x"
        )


def test_p1_no_perf_regression(committed, fresh):
    """Fresh run within 20% of the committed rates (the CI perf guard)."""
    rows = [
        [
            spec.name,
            f"{fresh[spec.name]['rate']:,.0f}",
            f"{committed['current']['metrics'][spec.name]['rate']:,.0f}",
            f"{committed['speedup'].get(spec.name, 0.0):.2f}x",
        ]
        for spec in bench.BENCHMARKS
    ]
    emit_table(
        "p1_core_speed",
        format_table(
            ["benchmark", "fresh rate", "committed rate", "committed speedup"],
            rows,
            title="P1: simulation-core perf suite (rates per second)",
        ),
    )
    failures = bench.check_regression(committed, fresh)
    if failures:
        # wall clocks on a shared host can spike; a genuine regression
        # reproduces on an immediate re-measure, a load blip does not
        retry = bench.run_suite(repeats=5)
        failures = bench.check_regression(committed, retry)
    assert not failures, "; ".join(failures)


def test_p1_golden_trace_equality():
    """The optimized core reproduces the seed engine's traces exactly."""
    golden = json.loads(GOLDENS_PATH.read_text())
    live = bench.capture_goldens()
    assert live["engine"] == golden["engine"], (
        "engine event traces diverged from the seed engine"
    )
    for key, fingerprint in golden["network"].items():
        assert live["network"][key] == fingerprint, (
            f"network trace {key} diverged from the seed engine"
        )
    for key, fingerprint in golden.get("topo", {}).items():
        assert live["topo"][key] == fingerprint, (
            f"topo scenario trace {key} diverged from its pinned golden"
        )
