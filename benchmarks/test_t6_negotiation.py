"""T6 — versatility: one stack, many negotiated instances (paper §1).

Regenerates the negotiation matrix (which capability pairs produce
which instance) via the registered ``negotiation`` scenario driven
through :class:`repro.api.Experiment`, and measures the cost of
versatility itself: the time to negotiate and to compose a transport
pair, and the wire handshake's one-round-trip establishment.
"""

import pytest

from conftest import SWEEP_CACHE, emit_table, sweep_workers
from repro.api import Experiment
from repro.core.connection import Initiator, Responder
from repro.core.negotiation import CapabilitySet, negotiate
from repro.core.instances import TFRC_MEDIA, build_transport_pair
from repro.harness.experiments.negotiation_matrix import NEGOTIATION_PAIRS
from repro.harness.tables import format_table
from repro.sim.engine import Simulator
from repro.sim.topology import dumbbell


pytestmark = pytest.mark.slow


def test_t6_matrix(benchmark):
    results = (
        Experiment("negotiation")
        .sweep(pair=NEGOTIATION_PAIRS)
        .workers(sweep_workers())
        .cache(SWEEP_CACHE)
        .run()
    )
    rows = []
    for r in results.results:
        rows.append(
            [r.pair, r.instance, r.congestion_control, r.reliability, r.estimation]
        )
    emit_table(
        "t6_negotiation",
        format_table(
            ["endpoints", "instance", "cc", "reliability", "estimation"],
            rows,
            title="T6: negotiated instance per capability pair",
        ),
    )
    benchmark(negotiate, CapabilitySet(), CapabilitySet(light_receiver=True))


def test_t6_composition_overhead(benchmark):
    """Time to build a composed transport pair (the versatility tax)."""
    sim = Simulator(seed=0)
    d = dumbbell(sim, n_pairs=1)
    counter = [0]

    def build():
        counter[0] += 1
        flow = f"f{counter[0]}"
        return build_transport_pair(
            sim, d.net.node("s0"), d.net.node("d0"), flow, TFRC_MEDIA
        )

    benchmark(build)


def test_t6_handshake_one_round_trip(benchmark):
    """Wire-level establishment completes in ~1 RTT."""

    def establish():
        sim = Simulator(seed=1)
        d = dumbbell(sim, n_pairs=1, bottleneck_rate=10e6,
                     bottleneck_delay=0.02, access_delay=0.002)
        done = {}
        Responder(
            sim, CapabilitySet(),
            on_established=lambda rcv, prof: done.update(t=sim.now),
        ).attach(d.net.node("d0"), "conn")
        init = Initiator(sim, dst="d0", capabilities=CapabilitySet()).attach(
            d.net.node("s0"), "conn"
        )
        init.start()
        sim.run(until=2.0)
        assert done, "handshake did not complete"
        return done["t"]

    establishment_time = benchmark(establish)
    rtt = 2 * (0.02 + 2 * 0.002)
    assert establishment_time <= 2 * rtt
