"""T1 — AF bandwidth assurance (paper §4).

Regenerates the paper's central comparison: an assured flow with an AF
reservation ``g`` against 8 greedy best-effort TCP flows on a 10 Mbit/s
RIO bottleneck (assured-flow RTT ≈ 240 ms, the regime where the
Seddigh-style TCP failure appears).  Expected shape: TCP's
achieved/target ratio well below 1 and falling as ``g`` grows; plain
TFRC in between; gTFRC and QTPAF pinned at ≈ 1.0 with zero in-profile
drops.

Driven by the :mod:`repro.api` front door: the sweep is an
:class:`~repro.api.Experiment`, lookups go through
:meth:`~repro.api.ResultSet.one` — the committed table is byte-identical
to the ``run_matrix`` version this replaced.
"""

import pytest

from conftest import SWEEP_CACHE, emit_table, sweep_workers
from repro.api import Experiment
from repro.harness.experiments.af_assurance import af_dumbbell_scenario
from repro.harness.tables import format_table

pytestmark = pytest.mark.slow

PROTOCOLS = ("tcp", "tfrc", "gtfrc", "qtpaf")
TARGETS = (2e6, 4e6, 6e6, 8e6)
CONFIG = dict(n_cross=8, assured_access_delay=0.1, duration=40.0, warmup=10.0, seed=3)


@pytest.fixture(scope="module")
def sweep():
    return (
        Experiment("af_assurance")
        .sweep(target_bps=TARGETS, protocol=PROTOCOLS)
        .configure(**CONFIG)
        .workers(sweep_workers())
        .cache(SWEEP_CACHE)
        .run()
    )


def test_t1_table(sweep, benchmark):
    rows = []
    for target in TARGETS:
        for proto in PROTOCOLS:
            r = sweep.one(target_bps=target, protocol=proto)
            rows.append(
                [
                    f"{target / 1e6:.0f}",
                    proto,
                    r.achieved_bps / 1e6,
                    r.ratio,
                    r.green_drop_ratio,
                    r.out_drop_ratio,
                    r.cross_total_bps / 1e6,
                ]
            )
    emit_table(
        "t1_af_assurance",
        format_table(
            ["g (Mb/s)", "protocol", "achieved (Mb/s)", "ratio",
             "green drop", "out drop", "cross (Mb/s)"],
            rows,
            title="T1: AF bandwidth assurance "
                  "(10 Mb/s RIO, 8 TCP cross, assured RTT ~240 ms)",
        ),
    )
    benchmark.pedantic(
        af_dumbbell_scenario,
        args=("qtpaf",),
        kwargs=dict(target_bps=4e6, n_cross=4, duration=10.0, warmup=2.0, seed=3),
        rounds=1,
        iterations=1,
    )


def test_t1_tcp_fails_increasingly(sweep):
    ratios = [sweep.value("ratio", target_bps=t, protocol="tcp") for t in TARGETS]
    assert ratios[-1] < 0.8
    assert ratios[-1] < ratios[0]


def test_t1_qtpaf_holds_every_target(sweep):
    for target in TARGETS:
        assert sweep.value("ratio", target_bps=target, protocol="qtpaf") >= 0.9, target


def test_t1_ordering_tcp_tfrc_gtfrc(sweep):
    for target in TARGETS[2:]:  # the discriminating high-target cells
        tcp = sweep.value("ratio", target_bps=target, protocol="tcp")
        tfrc = sweep.value("ratio", target_bps=target, protocol="tfrc")
        qtpaf = sweep.value("ratio", target_bps=target, protocol="qtpaf")
        assert tcp < qtpaf and tfrc < qtpaf
