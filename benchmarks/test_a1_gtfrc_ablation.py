"""A1 — gTFRC design ablation (DESIGN.md §6).

Compares the guaranteed-rate mechanisms on the T1 configuration:

* ``floor``      — the draft's hard ``X = max(g, X_tfrc)`` (default);
* ``p-scaling``  — scale the loss event rate by the out-of-profile
  share before the equation (smoother variant);
* ``none``       — plain TFRC (no QoS awareness).

Expected: both QoS-aware variants hold the reservation where plain
TFRC undershoots; the hard floor is the most exact.
"""

import pytest

from conftest import emit_table
from repro.core.instances import QTPAF, TFRC_MEDIA, build_transport_pair
from repro.core.profile import ReliabilityMode
from repro.harness.tables import format_table
from repro.metrics.recorder import FlowRecorder
from repro.qos.marking import ProfileMarker
from repro.qos.sla import ServiceLevelAgreement
from repro.sim.engine import Simulator
from repro.sim.queues import RioQueue
from repro.sim.topology import dumbbell
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender
from repro.tfrc.gtfrc import GtfrcRateController


pytestmark = pytest.mark.slow

TARGET = 6e6
N_CROSS = 8


def ablation_run(variant: str, seed: int = 3):
    sim = Simulator(seed=seed)
    sla = ServiceLevelAgreement("assured", TARGET, burst_bytes=30_000)
    markers = [ProfileMarker(sla.build_meter(), flow_id="assured")] + [None] * N_CROSS
    d = dumbbell(
        sim,
        n_pairs=1 + N_CROSS,
        bottleneck_rate=10e6,
        bottleneck_delay=0.02,
        bottleneck_queue_factory=lambda: RioQueue(
            rng=sim.rng("rio"), mean_pkt_time=0.0008
        ),
        access_delays=[0.1] + [0.002] * N_CROSS,
        access_markers=markers,
    )
    rec = FlowRecorder()
    if variant == "none":
        profile, controller = TFRC_MEDIA, None
    else:
        profile = QTPAF(TARGET, name=f"gTFRC-{variant}",
                        reliability=ReliabilityMode.NONE)
        controller = GtfrcRateController(
            TARGET / 8, profile.segment_size, p_scaling=(variant == "p-scaling")
        )
    from repro.core.sender import QtpSender
    from repro.core.receiver import QtpReceiver

    sender = QtpSender(sim, dst="d0", profile=profile, controller=controller)
    receiver = QtpReceiver(sim, profile=profile, recorder=rec)
    sender.attach(d.net.node("s0"), "assured")
    receiver.attach(d.net.node("d0"), "assured")
    sender.start()
    for i in range(1, 1 + N_CROSS):
        TcpSender(sim, dst=f"d{i}", sack=True).attach(
            d.net.node(f"s{i}"), f"x{i}"
        ).start()
        TcpReceiver(sim, sack=True).attach(d.net.node(f"d{i}"), f"x{i}")
    sim.run(until=40.0)
    floor_hits = getattr(sender.controller, "floor_activations", 0)
    return {
        "achieved": rec.mean_rate_bps(10.0, 40.0),
        "floor_hits": floor_hits,
    }


@pytest.fixture(scope="module")
def runs():
    return {v: ablation_run(v) for v in ("floor", "p-scaling", "none")}


def test_a1_table(runs, benchmark):
    rows = [
        [v, r["achieved"] / 1e6, r["achieved"] / TARGET, r["floor_hits"]]
        for v, r in runs.items()
    ]
    emit_table(
        "a1_gtfrc_ablation",
        format_table(
            ["variant", "achieved (Mb/s)", "ratio", "floor activations"],
            rows,
            title="A1: gTFRC mechanism ablation (g = 6 Mb/s, T1 conditions)",
        ),
    )
    benchmark.pedantic(ablation_run, args=("floor",), kwargs=dict(seed=4),
                       rounds=1, iterations=1)


def test_a1_qos_variants_beat_plain_tfrc(runs):
    assert runs["floor"]["achieved"] > runs["none"]["achieved"]
    assert runs["p-scaling"]["achieved"] > runs["none"]["achieved"]


def test_a1_floor_most_exact(runs):
    floor_err = abs(runs["floor"]["achieved"] / TARGET - 1.0)
    assert floor_err < 0.1
