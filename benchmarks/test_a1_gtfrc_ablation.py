"""A1 — gTFRC design ablation (DESIGN.md §6).

Compares the guaranteed-rate mechanisms on the T1 configuration:

* ``floor``      — the draft's hard ``X = max(g, X_tfrc)`` (default);
* ``p-scaling``  — scale the loss event rate by the out-of-profile
  share before the equation (smoother variant);
* ``none``       — plain TFRC (no QoS awareness).

Expected: both QoS-aware variants hold the reservation where plain
TFRC undershoots; the hard floor is the most exact.

Driven by the :mod:`repro.api` Experiment/ResultSet front door.
"""

import pytest

from conftest import SWEEP_CACHE, emit_table, sweep_workers
from repro.api import Experiment
from repro.harness.experiments.ablation import gtfrc_ablation_scenario
from repro.harness.tables import format_table


pytestmark = pytest.mark.slow

TARGET = 6e6
VARIANTS = ("floor", "p-scaling", "none")


@pytest.fixture(scope="module")
def runs():
    return (
        Experiment("gtfrc_ablation")
        .sweep(variant=VARIANTS)
        .configure(target_bps=TARGET, seed=3)
        .workers(sweep_workers())
        .cache(SWEEP_CACHE)
        .run()
    )


def test_a1_table(runs, benchmark):
    rows = []
    for v in VARIANTS:
        r = runs.one(variant=v)
        rows.append(
            [v, r.achieved_bps / 1e6, r.achieved_bps / TARGET, r.floor_hits]
        )
    emit_table(
        "a1_gtfrc_ablation",
        format_table(
            ["variant", "achieved (Mb/s)", "ratio", "floor activations"],
            rows,
            title="A1: gTFRC mechanism ablation (g = 6 Mb/s, T1 conditions)",
        ),
    )
    benchmark.pedantic(gtfrc_ablation_scenario, args=("floor",),
                       kwargs=dict(seed=4), rounds=1, iterations=1)


def test_a1_qos_variants_beat_plain_tfrc(runs):
    none = runs.value("achieved_bps", variant="none")
    assert runs.value("achieved_bps", variant="floor") > none
    assert runs.value("achieved_bps", variant="p-scaling") > none


def test_a1_floor_most_exact(runs):
    floor_err = abs(runs.value("achieved_bps", variant="floor") / TARGET - 1.0)
    assert floor_err < 0.1
