"""A1 — gTFRC design ablation (DESIGN.md §6).

Compares the guaranteed-rate mechanisms on the T1 configuration:

* ``floor``      — the draft's hard ``X = max(g, X_tfrc)`` (default);
* ``p-scaling``  — scale the loss event rate by the out-of-profile
  share before the equation (smoother variant);
* ``none``       — plain TFRC (no QoS awareness).

Expected: both QoS-aware variants hold the reservation where plain
TFRC undershoots; the hard floor is the most exact.
"""

import pytest

from conftest import SWEEP_CACHE, emit_table, sweep_workers
from repro.harness.experiments.ablation import gtfrc_ablation_scenario
from repro.harness.runner import run_matrix
from repro.harness.tables import format_table


pytestmark = pytest.mark.slow

TARGET = 6e6
VARIANTS = ("floor", "p-scaling", "none")


@pytest.fixture(scope="module")
def runs():
    records = run_matrix(
        "gtfrc_ablation",
        {"variant": VARIANTS},
        base=dict(target_bps=TARGET, seed=3),
        workers=sweep_workers(),
        cache_dir=SWEEP_CACHE,
    )
    return {r.params["variant"]: r.result for r in records}


def test_a1_table(runs, benchmark):
    rows = [
        [v, r.achieved_bps / 1e6, r.achieved_bps / TARGET, r.floor_hits]
        for v, r in runs.items()
    ]
    emit_table(
        "a1_gtfrc_ablation",
        format_table(
            ["variant", "achieved (Mb/s)", "ratio", "floor activations"],
            rows,
            title="A1: gTFRC mechanism ablation (g = 6 Mb/s, T1 conditions)",
        ),
    )
    benchmark.pedantic(gtfrc_ablation_scenario, args=("floor",),
                       kwargs=dict(seed=4), rounds=1, iterations=1)


def test_a1_qos_variants_beat_plain_tfrc(runs):
    assert runs["floor"].achieved_bps > runs["none"].achieved_bps
    assert runs["p-scaling"].achieved_bps > runs["none"].achieved_bps


def test_a1_floor_most_exact(runs):
    floor_err = abs(runs["floor"].achieved_bps / TARGET - 1.0)
    assert floor_err < 0.1
