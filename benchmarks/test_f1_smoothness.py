"""F1 — throughput smoothness: TFRC vs TCP (paper §2/§3 motivation).

Regenerates the classic time-series comparison: one measured flow
against a TCP competitor on a RED bottleneck; the figure's signal is
the coefficient of variation of the per-200-ms throughput series.
"""

import pytest

from conftest import SWEEP_CACHE, emit_table, sweep_workers
from repro.harness.runner import run_matrix
from repro.harness.scenarios import smoothness_scenario
from repro.harness.tables import format_table

pytestmark = pytest.mark.slow

SEEDS = (0, 1, 2)


@pytest.fixture(scope="module")
def runs():
    records = run_matrix(
        "smoothness",
        {"protocol": ("tfrc", "tcp")},
        base=dict(duration=80, warmup=20),
        seeds=SEEDS,
        workers=sweep_workers(),
        cache_dir=SWEEP_CACHE,
    )
    return {(r.params["protocol"], r.params["seed"]): r.result for r in records}


def test_f1_table(runs, benchmark):
    rows = []
    for proto in ("tfrc", "tcp"):
        for seed in SEEDS:
            r = runs[(proto, seed)]
            rows.append([proto, seed, r.mean_bps / 1e6, r.cov])
    mean_cov = {
        proto: sum(runs[(proto, s)].cov for s in SEEDS) / len(SEEDS)
        for proto in ("tfrc", "tcp")
    }
    rows.append(["tfrc", "mean", "", mean_cov["tfrc"]])
    rows.append(["tcp", "mean", "", mean_cov["tcp"]])
    emit_table(
        "f1_smoothness",
        format_table(
            ["protocol", "seed", "mean rate (Mb/s)", "CoV (200 ms bins)"],
            rows,
            title="F1: throughput smoothness vs one TCP competitor "
                  "(4 Mb/s RED bottleneck)",
        ),
    )
    benchmark.pedantic(
        smoothness_scenario,
        args=("tfrc",),
        kwargs=dict(duration=20, warmup=5, seed=0),
        rounds=1,
        iterations=1,
    )


def test_f1_tfrc_smoother_on_every_seed(runs):
    for seed in SEEDS:
        assert runs[("tfrc", seed)].cov < runs[("tcp", seed)].cov


def test_f1_comparable_mean_rates(runs):
    for seed in SEEDS:
        tfrc, tcp = runs[("tfrc", seed)], runs[("tcp", seed)]
        assert tfrc.mean_bps > 0.3 * tcp.mean_bps
