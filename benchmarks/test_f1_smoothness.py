"""F1 — throughput smoothness: TFRC vs TCP (paper §2/§3 motivation).

Regenerates the classic time-series comparison: one measured flow
against a TCP competitor on a RED bottleneck; the figure's signal is
the coefficient of variation of the per-200-ms throughput series.

The per-protocol "mean" rows are :meth:`repro.api.ResultSet.aggregate`
over the seed axis — the paper-style summary the old code assembled by
hand (same arithmetic, byte-identical table).
"""

import pytest

from conftest import SWEEP_CACHE, emit_table, sweep_workers
from repro.api import Experiment
from repro.harness.experiments.smoothness import smoothness_scenario
from repro.harness.tables import format_table

pytestmark = pytest.mark.slow

SEEDS = (0, 1, 2)


@pytest.fixture(scope="module")
def runs():
    return (
        Experiment("smoothness")
        .sweep(protocol=("tfrc", "tcp"))
        .configure(duration=80, warmup=20)
        .seeds(SEEDS)
        .workers(sweep_workers())
        .cache(SWEEP_CACHE)
        .run()
    )


def test_f1_table(runs, benchmark):
    rows = []
    for proto in ("tfrc", "tcp"):
        for seed in SEEDS:
            r = runs.one(protocol=proto, seed=seed)
            rows.append([proto, seed, r.mean_bps / 1e6, r.cov])
    mean_cov = runs.aggregate("cov", over="seed", stats=("mean",))
    rows.append(["tfrc", "mean", "", mean_cov.value("cov_mean", protocol="tfrc")])
    rows.append(["tcp", "mean", "", mean_cov.value("cov_mean", protocol="tcp")])
    emit_table(
        "f1_smoothness",
        format_table(
            ["protocol", "seed", "mean rate (Mb/s)", "CoV (200 ms bins)"],
            rows,
            title="F1: throughput smoothness vs one TCP competitor "
                  "(4 Mb/s RED bottleneck)",
        ),
    )
    benchmark.pedantic(
        smoothness_scenario,
        args=("tfrc",),
        kwargs=dict(duration=20, warmup=5, seed=0),
        rounds=1,
        iterations=1,
    )


def test_f1_tfrc_smoother_on_every_seed(runs):
    for seed in SEEDS:
        assert runs.value("cov", protocol="tfrc", seed=seed) < runs.value(
            "cov", protocol="tcp", seed=seed
        )


def test_f1_comparable_mean_rates(runs):
    for seed in SEEDS:
        tfrc = runs.one(protocol="tfrc", seed=seed)
        tcp = runs.one(protocol="tcp", seed=seed)
        assert tfrc.mean_bps > 0.3 * tcp.mean_bps
