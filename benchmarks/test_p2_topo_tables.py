"""P2 — paper-style tables for the PR 3 multi-bottleneck scenarios.

Regenerates one table per spec-built DiffServ workload (closing the
ROADMAP open item that nothing produced tables for them):

* ``parking_lot`` — the T1 question across *two* conditioned RIO
  bottlenecks in series, per-hop TCP cross bursts.  Expected shape:
  TCP's achieved/target ratio erodes as ``g`` grows (multiplicative
  per-domain loss), gTFRC/QTPAF hold ≈ 1.0 with near-zero green drops
  on both hops.
* ``reverse_path_chain`` — greedy TCP against the assured flow's
  *feedback* channel on a duplex RIO chain.  Expected shape: reverse
  drops grow with the burst size while the gTFRC floor still holds.
* ``hetero_sla`` — mixed committed rates inside one AF class.
  Expected shape: every guarantee holds regardless of size (min ratio
  ≈ 1) and Jain fairness over the assurance ratios stays near 1.

All three sweeps run through the :mod:`repro.api` Experiment/ResultSet
front door.
"""

import pytest

from conftest import SWEEP_CACHE, emit_table, sweep_workers
from repro.api import Experiment
from repro.harness.tables import format_table

pytestmark = pytest.mark.slow

PL_PROTOCOLS = ("tcp", "tfrc", "gtfrc", "qtpaf")
PL_TARGETS = (2e6, 4e6, 6e6)
PL_CONFIG = dict(n_cross_a=4, n_cross_b=4, seed=3)

RP_PROTOCOLS = ("tfrc", "gtfrc", "qtpaf")
RP_BURSTS = (2, 6)
RP_CONFIG = dict(seed=3)

HS_PROTOCOLS = ("tfrc", "gtfrc", "qtpaf")
HS_MIXES = ("1,2,4", "2,2,2", "1,1,6")
HS_CONFIG = dict(n_cross=4, seed=3)


@pytest.fixture(scope="module")
def parking_lot():
    return (
        Experiment("parking_lot")
        .sweep(protocol=PL_PROTOCOLS, target_bps=PL_TARGETS)
        .configure(**PL_CONFIG)
        .workers(sweep_workers())
        .cache(SWEEP_CACHE)
        .run()
    )


@pytest.fixture(scope="module")
def reverse_path():
    return (
        Experiment("reverse_path_chain")
        .sweep(protocol=RP_PROTOCOLS, n_reverse=RP_BURSTS)
        .configure(**RP_CONFIG)
        .workers(sweep_workers())
        .cache(SWEEP_CACHE)
        .run()
    )


@pytest.fixture(scope="module")
def hetero():
    return (
        Experiment("hetero_sla")
        .sweep(protocol=HS_PROTOCOLS, targets_mbps=HS_MIXES)
        .configure(**HS_CONFIG)
        .workers(sweep_workers())
        .cache(SWEEP_CACHE)
        .run()
    )


# ----------------------------------------------------------------------
# parking lot
# ----------------------------------------------------------------------
def test_p2_parking_lot_table(parking_lot):
    rows = []
    for target in PL_TARGETS:
        for proto in PL_PROTOCOLS:
            r = parking_lot.one(protocol=proto, target_bps=target)
            rows.append(
                [
                    f"{target / 1e6:.0f}",
                    proto,
                    r.achieved_bps / 1e6,
                    r.ratio,
                    r.hop1_green_drop_ratio,
                    r.hop2_green_drop_ratio,
                    r.cross_a_bps / 1e6,
                    r.cross_b_bps / 1e6,
                ]
            )
    emit_table(
        "p2_parking_lot",
        format_table(
            ["g (Mb/s)", "protocol", "achieved (Mb/s)", "ratio",
             "green drop A", "green drop B", "cross A (Mb/s)",
             "cross B (Mb/s)"],
            rows,
            title="P2a: parking-lot AF assurance "
                  "(two 10 Mb/s RIO hops in series, 4+4 TCP cross)",
        ),
    )


def test_p2_parking_lot_tcp_erodes_across_domains(parking_lot):
    ratios = [
        parking_lot.value("ratio", protocol="tcp", target_bps=t)
        for t in PL_TARGETS
    ]
    assert ratios[-1] < ratios[0]
    assert ratios[-1] < 0.95  # the reservation is not honoured


def test_p2_parking_lot_gtfrc_holds_end_to_end(parking_lot):
    for proto in ("gtfrc", "qtpaf"):
        for target in PL_TARGETS:
            r = parking_lot.one(protocol=proto, target_bps=target)
            assert r.ratio >= 0.95, (proto, target)
            assert r.hop1_green_drop_ratio < 0.01
            assert r.hop2_green_drop_ratio < 0.01


def test_p2_parking_lot_conditioned_beats_tcp_at_high_g(parking_lot):
    target = PL_TARGETS[-1]
    tcp = parking_lot.value("ratio", protocol="tcp", target_bps=target)
    for proto in ("gtfrc", "qtpaf"):
        assert parking_lot.value("ratio", protocol=proto, target_bps=target) > tcp


# ----------------------------------------------------------------------
# reverse path
# ----------------------------------------------------------------------
def test_p2_reverse_path_table(reverse_path):
    rows = []
    for burst in RP_BURSTS:
        for proto in RP_PROTOCOLS:
            r = reverse_path.one(protocol=proto, n_reverse=burst)
            rows.append(
                [
                    burst,
                    proto,
                    r.achieved_bps / 1e6,
                    r.ratio,
                    r.reverse_total_bps / 1e6,
                    r.feedback_received,
                    r.reverse_drop_ratio,
                ]
            )
    emit_table(
        "p2_reverse_path",
        format_table(
            ["n_reverse", "protocol", "achieved (Mb/s)", "ratio",
             "reverse (Mb/s)", "feedback rx", "rev drop"],
            rows,
            title="P2b: reverse-path congestion on the duplex AF chain "
                  "(TCP bursts against the feedback channel)",
        ),
    )


def test_p2_reverse_path_floor_survives_feedback_attack(reverse_path):
    for proto in ("gtfrc", "qtpaf"):
        for burst in RP_BURSTS:
            r = reverse_path.one(protocol=proto, n_reverse=burst)
            assert r.feedback_received > 100, (proto, burst)
            assert r.ratio >= 0.9, (proto, burst)


def test_p2_reverse_path_drops_grow_with_burst(reverse_path):
    for proto in RP_PROTOCOLS:
        light = reverse_path.one(protocol=proto, n_reverse=RP_BURSTS[0])
        heavy = reverse_path.one(protocol=proto, n_reverse=RP_BURSTS[-1])
        assert heavy.reverse_drop_ratio > light.reverse_drop_ratio
        assert heavy.reverse_total_bps > 0


# ----------------------------------------------------------------------
# heterogeneous SLAs
# ----------------------------------------------------------------------
def test_p2_hetero_sla_table(hetero):
    rows = []
    for mix in HS_MIXES:
        for proto in HS_PROTOCOLS:
            r = hetero.one(protocol=proto, targets_mbps=mix)
            rows.append(
                [
                    mix,
                    proto,
                    r.total_assured_bps / 1e6,
                    r.min_ratio,
                    r.max_ratio,
                    r.mean_ratio,
                    r.jain_fairness,
                    r.cross_total_bps / 1e6,
                ]
            )
    emit_table(
        "p2_hetero_sla",
        format_table(
            ["targets (Mb/s)", "protocol", "assured (Mb/s)", "min ratio",
             "max ratio", "mean ratio", "Jain", "cross (Mb/s)"],
            rows,
            title="P2c: heterogeneous SLAs in one AF class "
                  "(10 Mb/s RIO, 4 TCP cross)",
        ),
    )


def test_p2_hetero_small_guarantees_are_safe(hetero):
    # RIO cannot tell whose profile a green packet belongs to, so a
    # small reservation must not be starved next to a big one
    for proto in ("gtfrc", "qtpaf"):
        for mix in HS_MIXES:
            assert hetero.value(
                "min_ratio", protocol=proto, targets_mbps=mix
            ) >= 0.9, (proto, mix)


def test_p2_hetero_fairness_over_ratios(hetero):
    for proto in ("gtfrc", "qtpaf"):
        for mix in HS_MIXES:
            assert hetero.value(
                "jain_fairness", protocol=proto, targets_mbps=mix
            ) >= 0.97, (proto, mix)
