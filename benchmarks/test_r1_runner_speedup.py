"""R1 — sweep-runner scaling: 4 workers vs serial on the AF grid.

Times the same AF-assurance :class:`repro.api.Experiment` twice (cache
disabled): serially in-process, then fanned out over 4 worker
processes.  On a multi-core host the parallel sweep must be at least
1.5x faster; on fewer than 4 CPUs the speedup assertion is skipped
(process fan-out cannot beat the serial path without cores to run on)
but the equality of results is still checked.
"""

import os
import time

import pytest

from conftest import emit_table
from repro.api import Experiment
from repro.harness.tables import format_table

pytestmark = pytest.mark.slow

GRID = {"target_bps": (2e6, 4e6, 6e6, 8e6), "protocol": ("tcp", "tfrc", "gtfrc", "qtpaf")}
CONFIG = dict(n_cross=4, duration=15.0, warmup=5.0, seed=3)
WORKERS = 4


def _timed(workers):
    experiment = (
        Experiment("af_assurance")
        .sweep(GRID)
        .configure(**CONFIG)
        .workers(workers)
        .cache(None)
    )
    start = time.perf_counter()
    results = experiment.run()
    return results, time.perf_counter() - start


def test_r1_parallel_speedup():
    serial_results, serial_s = _timed(1)
    parallel_results, parallel_s = _timed(WORKERS)
    speedup = serial_s / parallel_s if parallel_s else float("inf")
    emit_table(
        "r1_runner_speedup",
        format_table(
            ["mode", "runs", "wall (s)", "speedup"],
            [
                ["serial", len(serial_results), serial_s, 1.0],
                [f"{WORKERS} workers", len(parallel_results), parallel_s, speedup],
            ],
            title=f"R1: sweep-runner wall clock on the AF grid "
                  f"({os.cpu_count()} CPUs available)",
        ),
    )
    # parallel execution must never change the science
    assert parallel_results.records == serial_results.records
    if (os.cpu_count() or 1) >= WORKERS:
        assert speedup >= 1.5, f"expected >=1.5x on {os.cpu_count()} CPUs, got {speedup:.2f}x"
    else:
        pytest.skip(
            f"only {os.cpu_count()} CPU(s): measured {speedup:.2f}x; "
            f"speedup assertion needs >= {WORKERS} cores"
        )
