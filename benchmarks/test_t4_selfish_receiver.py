"""T4 — selfish receiver robustness (paper §3 / Georg & Gorinsky).

Regenerates the 2x2 attack table: a (possibly lying) receiver sharing a
4 Mb/s bottleneck with an honest TFRC flow.  Standard TFRC trusts the
receiver-computed loss rate, so the lie doubles the cheater's share and
starves the victim; QTPlight computes the loss rate at the sender and
audits SACK coverage with never-sent sequence numbers, so the cheater
is detected and throttled to the protocol floor.

Driven by the :mod:`repro.api` Experiment/ResultSet front door.
"""

import pytest

from conftest import SWEEP_CACHE, emit_table, sweep_workers
from repro.api import Experiment
from repro.harness.experiments.selfish import selfish_receiver_scenario
from repro.harness.tables import format_table


pytestmark = pytest.mark.slow

CONFIG = dict(duration=60.0, warmup=15.0, seed=2)


@pytest.fixture(scope="module")
def matrix():
    return (
        Experiment("selfish_receiver")
        .sweep(mode=("tfrc", "qtplight"), lying=(False, True))
        .configure(**CONFIG)
        .workers(sweep_workers())
        .cache(SWEEP_CACHE)
        .run()
    )


def test_t4_table(matrix, benchmark):
    rows = []
    for mode in ("tfrc", "qtplight"):
        honest = matrix.one(mode=mode, lying=False)
        lying = matrix.one(mode=mode, lying=True)
        rows.append(
            [
                mode,
                honest.cheater_bps / 1e6,
                lying.cheater_bps / 1e6,
                lying.cheater_bps / max(honest.cheater_bps, 1.0),
                honest.victim_bps / 1e6,
                lying.victim_bps / 1e6,
            ]
        )
    emit_table(
        "t4_selfish_receiver",
        format_table(
            ["estimation", "cheater honest (Mb/s)", "cheater lying (Mb/s)",
             "lying gain", "victim (honest run)", "victim (lying run)"],
            rows,
            title="T4: selfish-receiver attack, 4 Mb/s bottleneck shared "
                  "with one honest TFRC",
        ),
    )
    benchmark.pedantic(
        selfish_receiver_scenario,
        args=("qtplight", True),
        kwargs=dict(duration=15.0, warmup=5.0, seed=2),
        rounds=1,
        iterations=1,
    )


def test_t4_standard_tfrc_cheatable(matrix):
    lying = matrix.one(mode="tfrc", lying=True)
    honest = matrix.one(mode="tfrc", lying=False)
    assert lying.cheater_bps > 1.5 * honest.cheater_bps


def test_t4_qtplight_throttles_cheater(matrix):
    lying = matrix.one(mode="qtplight", lying=True)
    honest = matrix.one(mode="qtplight", lying=False)
    assert lying.cheater_bps < 0.1 * honest.cheater_bps


def test_t4_victim_protected_under_qtplight(matrix):
    # with the cheater throttled, the honest victim keeps (at least) its share
    lying = matrix.one(mode="qtplight", lying=True)
    honest = matrix.one(mode="qtplight", lying=False)
    assert lying.victim_bps >= honest.victim_bps
