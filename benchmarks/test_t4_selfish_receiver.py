"""T4 — selfish receiver robustness (paper §3 / Georg & Gorinsky).

Regenerates the 2x2 attack table: a (possibly lying) receiver sharing a
4 Mb/s bottleneck with an honest TFRC flow.  Standard TFRC trusts the
receiver-computed loss rate, so the lie doubles the cheater's share and
starves the victim; QTPlight computes the loss rate at the sender and
audits SACK coverage with never-sent sequence numbers, so the cheater
is detected and throttled to the protocol floor.
"""

import pytest

from conftest import SWEEP_CACHE, emit_table, sweep_workers
from repro.harness.runner import run_matrix
from repro.harness.scenarios import selfish_receiver_scenario
from repro.harness.tables import format_table


pytestmark = pytest.mark.slow

CONFIG = dict(duration=60.0, warmup=15.0, seed=2)


@pytest.fixture(scope="module")
def matrix():
    records = run_matrix(
        "selfish_receiver",
        {"mode": ("tfrc", "qtplight"), "lying": (False, True)},
        base=CONFIG,
        workers=sweep_workers(),
        cache_dir=SWEEP_CACHE,
    )
    return {(r.params["mode"], r.params["lying"]): r.result for r in records}


def test_t4_table(matrix, benchmark):
    rows = []
    for mode in ("tfrc", "qtplight"):
        honest = matrix[(mode, False)]
        lying = matrix[(mode, True)]
        rows.append(
            [
                mode,
                honest.cheater_bps / 1e6,
                lying.cheater_bps / 1e6,
                lying.cheater_bps / max(honest.cheater_bps, 1.0),
                honest.victim_bps / 1e6,
                lying.victim_bps / 1e6,
            ]
        )
    emit_table(
        "t4_selfish_receiver",
        format_table(
            ["estimation", "cheater honest (Mb/s)", "cheater lying (Mb/s)",
             "lying gain", "victim (honest run)", "victim (lying run)"],
            rows,
            title="T4: selfish-receiver attack, 4 Mb/s bottleneck shared "
                  "with one honest TFRC",
        ),
    )
    benchmark.pedantic(
        selfish_receiver_scenario,
        args=("qtplight", True),
        kwargs=dict(duration=15.0, warmup=5.0, seed=2),
        rounds=1,
        iterations=1,
    )


def test_t4_standard_tfrc_cheatable(matrix):
    assert matrix[("tfrc", True)].cheater_bps > 1.5 * matrix[("tfrc", False)].cheater_bps


def test_t4_qtplight_throttles_cheater(matrix):
    assert matrix[("qtplight", True)].cheater_bps < 0.1 * (
        matrix[("qtplight", False)].cheater_bps
    )


def test_t4_victim_protected_under_qtplight(matrix):
    # with the cheater throttled, the honest victim keeps (at least) its share
    assert matrix[("qtplight", True)].victim_bps >= matrix[("qtplight", False)].victim_bps
