"""P3 — hybrid fidelity buys population scale (PR 10).

The scale argument for ``repro.fluid`` (``docs/hybrid.md``), pinned as
a table: the ``population_1000`` macro simulates a 1000-flow generated
population with every flow packet-level, while the
``population_100k_hybrid`` macro pushes a 100,000-flow flash crowd
through one fluid aggregate per bottleneck with only the assured
foreground packet-level.  A packet-level run at 100k flows would cost
roughly 100x the 1000-flow wall clock; the hybrid run must deliver the
hundredfold population for a small constant factor instead, because
its event count is bounded by the foreground plus the epoch clock —
not by the crowd.

The assertion is deliberately coarse (wall-clock ratios on shared CI
hosts are noisy): 100x the population for less than 25x the wall
clock, i.e. at least a 4x reduction in cost per simulated flow, where
the measured reduction on the reference machine is ~25x
(0.69s vs 2.77s for 100x the flows).
"""

import time

import pytest

from conftest import emit_table
from repro.harness.registry import get_scenario
from repro.harness.tables import format_table

pytestmark = pytest.mark.slow

#: The exact configurations pinned by the two bench macros
#: (``repro.harness.bench``); keep these in sync with them.
PACKET_CONFIG = dict(
    n_hosts=64,
    n_flows=1000,
    arrival_rate_per_s=250.0,
    elephant_share=0.02,
    duration=6.0,
    seed=1,
)
HYBRID_CONFIG = dict(
    fidelity="hybrid",
    n_flows=100_000,
    n_hosts=64,
    base_rate_per_s=2000.0,
    peak_rate_per_s=30000.0,
    ramp_start=1.0,
    ramp_duration=2.0,
    bottleneck_bps=2e9,
    target_bps=40e6,
    duration=6.0,
    seed=1,
)

#: 100x the population must cost less than this wall-clock multiple.
MAX_WALL_RATIO = 25.0


def _timed(scenario, *args, **kwargs):
    spec = get_scenario(scenario)
    start = time.perf_counter()
    result = spec.fn(*args, **kwargs)
    return result, time.perf_counter() - start


@pytest.fixture(scope="module")
def runs():
    packet, packet_wall = _timed("mice_elephants", "gtfrc", **PACKET_CONFIG)
    hybrid, hybrid_wall = _timed("hybrid_flash_crowd", **HYBRID_CONFIG)
    return {
        "packet": (packet, packet_wall),
        "hybrid": (hybrid, hybrid_wall),
    }


def test_p3_hybrid_scale(runs):
    packet, packet_wall = runs["packet"]
    hybrid, hybrid_wall = runs["hybrid"]
    wall_ratio = hybrid_wall / packet_wall
    flows_ratio = HYBRID_CONFIG["n_flows"] / PACKET_CONFIG["n_flows"]
    rows = [
        [
            "population_1000 (packet)",
            PACKET_CONFIG["n_flows"],
            f"{packet_wall:.2f}",
            "-",
            f"{packet_wall / PACKET_CONFIG['n_flows'] * 1e3:.3f}",
        ],
        [
            "population_100k_hybrid",
            HYBRID_CONFIG["n_flows"],
            f"{hybrid_wall:.2f}",
            hybrid.events,
            f"{hybrid_wall / HYBRID_CONFIG['n_flows'] * 1e3:.3f}",
        ],
    ]
    emit_table(
        "p3_hybrid_scale",
        format_table(
            ["benchmark", "flows", "wall (s)", "events", "ms/flow"],
            rows,
            title=(
                "P3: hybrid fidelity at population scale "
                f"({flows_ratio:.0f}x flows for {wall_ratio:.1f}x wall clock)"
            ),
        ),
    )
    # the scale claim: >=10x the population at bounded wall clock
    assert flows_ratio >= 10.0
    assert wall_ratio < MAX_WALL_RATIO, (
        f"100x population cost {wall_ratio:.1f}x wall clock "
        f"({hybrid_wall:.2f}s vs {packet_wall:.2f}s); hybrid fidelity "
        f"should stay under {MAX_WALL_RATIO}x"
    )


def test_p3_hybrid_run_is_healthy(runs):
    """The 100k run must be a real experiment, not a degenerate one."""
    hybrid, _ = runs["hybrid"]
    assert hybrid.ratio >= 1.0  # the assured foreground kept its rate
    assert hybrid.bg_offered_bytes > 1e9  # the crowd really offered GBs
    assert hybrid.bg_served_bytes > 0.0
    # bounded events: the crowd never became packet transports
    assert hybrid.events < 1_000_000
