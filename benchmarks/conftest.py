"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table/figure from DESIGN.md's
experiment index.  Tables are written to ``benchmarks/results/*.txt``
(so they survive pytest's output capture) and echoed to the real
stdout for interactive runs.

The sweep-driven benchmarks declare :class:`repro.api.Experiment`
sweeps and query the returned :class:`repro.api.ResultSet` instead of
hand-rolling loops and dicts: results are memoized under
``results/.sweep-cache`` (keyed by scenario, params, seed and a hash of
the ``repro`` sources), so re-running an unchanged benchmark matrix is
free, and ``REPRO_SWEEP_WORKERS`` fans the runs out across processes.

The whole suite carries the ``slow`` marker (registered in
``pytest.ini``): plain ``pytest -x -q`` deselects it to keep tier-1
fast, ``pytest -m slow`` runs the full matrix.
"""

import os
import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: On-disk memo for run_matrix-driven benchmarks.
SWEEP_CACHE = RESULTS_DIR / ".sweep-cache"


def sweep_workers() -> int:
    """Worker processes for benchmark sweeps (``REPRO_SWEEP_WORKERS``).

    Defaults to one per CPU; set ``REPRO_SWEEP_WORKERS=1`` to force the
    serial in-process path.
    """
    return int(os.environ.get("REPRO_SWEEP_WORKERS") or 0) or (os.cpu_count() or 1)


def emit_table(name: str, text: str) -> None:
    """Persist a result table and echo it to the terminal."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    real_stdout = getattr(sys, "__stdout__", sys.stdout)
    print(f"\n{text}\n[saved to {path}]", file=real_stdout, flush=True)


def pytest_collection_modifyitems(items):
    """Safety net: every benchmark item is ``slow``, marked or not."""
    here = Path(__file__).parent
    for item in items:
        if here in Path(str(item.fspath)).parents and "slow" not in item.keywords:
            item.add_marker(pytest.mark.slow)
