"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table/figure from DESIGN.md's
experiment index.  Tables are written to ``benchmarks/results/*.txt``
(so they survive pytest's output capture) and echoed to the real
stdout for interactive runs.
"""

import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit_table(name: str, text: str) -> None:
    """Persist a result table and echo it to the terminal."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    real_stdout = getattr(sys, "__stdout__", sys.stdout)
    print(f"\n{text}\n[saved to {path}]", file=real_stdout, flush=True)
