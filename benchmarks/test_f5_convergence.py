"""F5 — recovery of the guaranteed rate after a congestion step (paper §4).

At t = 20 s a burst of 8 greedy TCP flows joins the AF bottleneck.
Plain TFRC reacts to the resulting (out-of-profile) losses and dips far
below the reservation, taking seconds to crawl back; gTFRC's floor
keeps the assured flow at ``g`` throughout.  The figure is the assured
flow's throughput time series around the step; the table reports the
dip depth and the time spent below 90% of ``g``.
"""

import pytest

from conftest import emit_table
from repro.harness.tables import format_table
from repro.core.instances import QTPAF, TFRC_MEDIA, build_transport_pair
from repro.core.profile import ReliabilityMode
from repro.metrics.recorder import FlowRecorder
from repro.qos.marking import ProfileMarker
from repro.qos.sla import ServiceLevelAgreement
from repro.sim.engine import Simulator
from repro.sim.queues import RioQueue
from repro.sim.topology import dumbbell
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender


pytestmark = pytest.mark.slow

TARGET = 5e6
STEP_TIME = 20.0
DURATION = 60.0
N_CROSS = 8


def convergence_run(protocol: str, seed: int = 3):
    """One assured flow; cross traffic joins at STEP_TIME."""
    sim = Simulator(seed=seed)
    sla = ServiceLevelAgreement("assured", TARGET, burst_bytes=30_000)
    markers = [ProfileMarker(sla.build_meter(), flow_id="assured")] + [None] * N_CROSS
    d = dumbbell(
        sim,
        n_pairs=1 + N_CROSS,
        bottleneck_rate=10e6,
        bottleneck_delay=0.02,
        bottleneck_queue_factory=lambda: RioQueue(
            rng=sim.rng("rio"), mean_pkt_time=0.0008
        ),
        access_delays=[0.1] + [0.002] * N_CROSS,
        access_markers=markers,
    )
    rec = FlowRecorder("assured")
    profile = (
        QTPAF(TARGET, name="gTFRC", reliability=ReliabilityMode.NONE)
        if protocol == "gtfrc"
        else TFRC_MEDIA
    )
    build_transport_pair(
        sim, d.net.node("s0"), d.net.node("d0"), "assured", profile,
        recorder=rec, start=True,
    )
    for i in range(1, 1 + N_CROSS):
        snd = TcpSender(sim, dst=f"d{i}", sack=True)
        rcv = TcpReceiver(sim, sack=True)
        snd.attach(d.net.node(f"s{i}"), f"x{i}")
        rcv.attach(d.net.node(f"d{i}"), f"x{i}")
        sim.schedule(STEP_TIME, snd.start)
    sim.run(until=DURATION)
    series = rec.series(1.0, end=DURATION)  # bytes/s per 1 s bin
    series_bps = [8 * v for v in series]
    after = series_bps[int(STEP_TIME) + 1:]
    below = [v for v in after if v < 0.9 * TARGET]
    return {
        "series": series_bps,
        "min_after_step": min(after),
        "time_below_90pct": float(len(below)),  # 1 s bins
        "mean_after_step": sum(after) / len(after),
    }


@pytest.fixture(scope="module")
def runs():
    return {proto: convergence_run(proto) for proto in ("tfrc", "gtfrc")}


def test_f5_table(runs, benchmark):
    rows = [
        [
            proto,
            r["min_after_step"] / 1e6,
            r["time_below_90pct"],
            r["mean_after_step"] / 1e6,
        ]
        for proto, r in runs.items()
    ]
    emit_table(
        "f5_convergence",
        format_table(
            ["protocol", "min rate after step (Mb/s)",
             "seconds below 0.9 g", "mean after step (Mb/s)"],
            rows,
            title=f"F5: congestion step at t={STEP_TIME:.0f}s, g = 5 Mb/s "
                  "(8 TCP join)",
        ),
    )
    # series "figure" as a coarse text sparkline
    marks = " ".join(
        f"{v / 1e6:.1f}" for v in runs["gtfrc"]["series"][::5]
    )
    emit_table("f5_series_gtfrc", "gTFRC Mb/s every 5 s: " + marks)
    benchmark.pedantic(convergence_run, args=("gtfrc",), rounds=1, iterations=1)


def test_f5_gtfrc_holds_through_step(runs):
    assert runs["gtfrc"]["time_below_90pct"] <= 3.0
    assert runs["gtfrc"]["mean_after_step"] >= 0.9 * TARGET


def test_f5_tfrc_dips_deeper(runs):
    assert runs["tfrc"]["min_after_step"] < runs["gtfrc"]["min_after_step"]
