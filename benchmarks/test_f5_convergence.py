"""F5 — recovery of the guaranteed rate after a congestion step (paper §4).

At t = 20 s a burst of 8 greedy TCP flows joins the AF bottleneck.
Plain TFRC reacts to the resulting (out-of-profile) losses and dips far
below the reservation, taking seconds to crawl back; gTFRC's floor
keeps the assured flow at ``g`` throughout.  The figure is the assured
flow's throughput time series around the step; the table reports the
dip depth and the time spent below 90% of ``g``.

Driven by the :mod:`repro.api` Experiment/ResultSet front door; the
series "figure" reads the result's payload (non-metric) field.
"""

import pytest

from conftest import SWEEP_CACHE, emit_table, sweep_workers
from repro.api import Experiment
from repro.harness.experiments.convergence import convergence_scenario
from repro.harness.tables import format_table


pytestmark = pytest.mark.slow

TARGET = 5e6
STEP_TIME = 20.0
PROTOCOLS = ("tfrc", "gtfrc")


@pytest.fixture(scope="module")
def runs():
    return (
        Experiment("convergence")
        .sweep(protocol=PROTOCOLS)
        .configure(target_bps=TARGET, step_time=STEP_TIME, seed=3)
        .workers(sweep_workers())
        .cache(SWEEP_CACHE)
        .run()
    )


def test_f5_table(runs, benchmark):
    rows = []
    for proto in PROTOCOLS:
        r = runs.one(protocol=proto)
        rows.append(
            [
                proto,
                r.min_after_step / 1e6,
                r.time_below_90pct,
                r.mean_after_step / 1e6,
            ]
        )
    emit_table(
        "f5_convergence",
        format_table(
            ["protocol", "min rate after step (Mb/s)",
             "seconds below 0.9 g", "mean after step (Mb/s)"],
            rows,
            title=f"F5: congestion step at t={STEP_TIME:.0f}s, g = 5 Mb/s "
                  "(8 TCP join)",
        ),
    )
    # series "figure" as a coarse text sparkline (a payload field, not
    # a metric — read through the result object)
    marks = " ".join(
        f"{v / 1e6:.1f}"
        for v in runs.one(protocol="gtfrc").series_bps[::5]
    )
    emit_table("f5_series_gtfrc", "gTFRC Mb/s every 5 s: " + marks)
    benchmark.pedantic(convergence_scenario, args=("gtfrc",), rounds=1,
                       iterations=1)


def test_f5_gtfrc_holds_through_step(runs):
    gtfrc = runs.one(protocol="gtfrc")
    assert gtfrc.time_below_90pct <= 3.0
    assert gtfrc.mean_after_step >= 0.9 * TARGET


def test_f5_tfrc_dips_deeper(runs):
    assert runs.value("min_after_step", protocol="tfrc") < runs.value(
        "min_after_step", protocol="gtfrc"
    )
