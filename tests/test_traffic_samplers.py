"""Property tests for the traffic samplers (bounds, means, clamping)."""

import random

from hypothesis import given, settings, strategies as st

from repro.traffic import ArrivalSpec, SizeSpec, sample_arrivals, sample_size


class TestArrivalProperties:
    @given(
        rate=st.floats(min_value=0.5, max_value=200.0),
        horizon=st.floats(min_value=0.5, max_value=20.0),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_poisson_bounds_and_order(self, rate, horizon, seed):
        spec = ArrivalSpec(kind="poisson", rate_per_s=rate)
        times = sample_arrivals(spec, random.Random(seed), horizon, 500)
        assert len(times) <= 500
        assert all(0.0 < t < horizon for t in times)
        assert times == sorted(times)

    @given(seed=st.integers(min_value=0, max_value=999))
    def test_onoff_bounds_and_order(self, seed):
        spec = ArrivalSpec(
            kind="onoff", rate_per_s=20.0, mean_on=0.5, mean_off=0.5
        )
        times = sample_arrivals(spec, random.Random(seed), 10.0, 200)
        assert len(times) <= 200
        assert all(0.0 < t < 10.0 for t in times)
        assert times == sorted(times)

    @given(seed=st.integers(min_value=0, max_value=999))
    def test_flash_crowd_bounds_and_order(self, seed):
        spec = ArrivalSpec(
            kind="flash_crowd",
            base_rate_per_s=2.0,
            peak_rate_per_s=50.0,
            ramp_start=2.0,
            ramp_duration=2.0,
        )
        times = sample_arrivals(spec, random.Random(seed), 8.0, 500)
        assert all(0.0 < t < 8.0 for t in times)
        assert times == sorted(times)

    def test_poisson_empirical_rate_near_nominal(self):
        # fixed seed, long horizon: the empirical rate should sit within
        # a loose tolerance of the nominal one (law of large numbers)
        spec = ArrivalSpec(kind="poisson", rate_per_s=50.0)
        times = sample_arrivals(spec, random.Random(7), 200.0, 100_000)
        empirical = len(times) / 200.0
        assert 45.0 < empirical < 55.0

    def test_flash_crowd_ramps_up(self):
        # arrivals after the ramp should be much denser than before it
        spec = ArrivalSpec(
            kind="flash_crowd",
            base_rate_per_s=1.0,
            peak_rate_per_s=100.0,
            ramp_start=10.0,
            ramp_duration=1.0,
        )
        times = sample_arrivals(spec, random.Random(3), 20.0, 100_000)
        before = sum(1 for t in times if t < 10.0)
        after = sum(1 for t in times if t >= 11.0)
        assert after > 5 * before

    def test_n_max_caps_the_population(self):
        spec = ArrivalSpec(kind="poisson", rate_per_s=1000.0)
        times = sample_arrivals(spec, random.Random(0), 100.0, 17)
        assert len(times) == 17


class TestSizeProperties:
    @given(
        alpha=st.floats(min_value=0.5, max_value=3.0),
        min_bytes=st.integers(min_value=1, max_value=10_000),
        span=st.integers(min_value=0, max_value=1_000_000),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_pareto_within_truncation_bounds(self, alpha, min_bytes, span, seed):
        spec = SizeSpec(
            kind="pareto",
            alpha=alpha,
            min_bytes=min_bytes,
            max_bytes=min_bytes + span,
        )
        rng = random.Random(seed)
        for _ in range(50):
            size = sample_size(spec, rng)
            assert isinstance(size, int)
            assert min_bytes <= size <= min_bytes + span

    @given(
        mean=st.floats(min_value=10.0, max_value=1e6),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_exponential_floor(self, mean, seed):
        spec = SizeSpec(kind="exponential", mean_bytes=mean, min_bytes=100)
        rng = random.Random(seed)
        for _ in range(50):
            assert sample_size(spec, rng) >= 100

    def test_fixed_is_constant(self):
        spec = SizeSpec(kind="fixed", size_bytes=1234)
        rng = random.Random(0)
        assert [sample_size(spec, rng) for _ in range(5)] == [1234] * 5

    def test_pareto_degenerate_truncation_clamps(self):
        # max_bytes == min_bytes: every sample collapses to the scale
        spec = SizeSpec(kind="pareto", alpha=1.1, min_bytes=500, max_bytes=500)
        rng = random.Random(1)
        assert all(sample_size(spec, rng) == 500 for _ in range(20))

    def test_exponential_empirical_mean_near_nominal(self):
        spec = SizeSpec(kind="exponential", mean_bytes=50_000.0)
        rng = random.Random(11)
        n = 20_000
        mean = sum(sample_size(spec, rng) for _ in range(n)) / n
        assert 48_000 < mean < 52_000

    @settings(max_examples=25)
    @given(seed=st.integers(min_value=0, max_value=999))
    def test_pareto_untruncated_mean_matches_theory(self, seed):
        # alpha=2, scale m: E[X] = alpha*m/(alpha-1) = 2m.  A huge
        # max_bytes makes truncation negligible; check a loose band.
        spec = SizeSpec(
            kind="pareto", alpha=2.0, min_bytes=1000, max_bytes=10**9
        )
        rng = random.Random(seed)
        n = 5000
        mean = sum(sample_size(spec, rng) for _ in range(n)) / n
        assert 1600 < mean < 2600
