"""Unit tests for nodes, links, routing and topology builders."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.node import Agent, Node, RoutingError
from repro.sim.packet import Packet, PacketKind
from repro.sim.queues import DropTailQueue
from repro.sim.topology import Network, chain, dumbbell, star


class Sink(Agent):
    """Collects delivered packets."""

    def __init__(self, sim):
        super().__init__(sim)
        self.got = []

    def receive(self, packet):
        self.got.append((self.sim.now, packet))


def make_pkt(dst, flow="f", size=1000):
    return Packet(src="a", dst=dst, flow_id=flow, size=size)


class TestLinkDelivery:
    def test_serialization_plus_propagation_delay(self):
        sim = Simulator()
        net = Network(sim)
        net.add_simplex_link("a", "b", rate_bps=8000.0, delay=0.5)
        net.compute_routes()
        sink = Sink(sim).attach(net.node("b"), "f")
        net.node("a").send(make_pkt("b", size=1000))  # 1 s serialization
        sim.run()
        t, _ = sink.got[0]
        assert t == pytest.approx(1.5)

    def test_back_to_back_packets_pipeline(self):
        sim = Simulator()
        net = Network(sim)
        net.add_simplex_link("a", "b", rate_bps=8000.0, delay=0.0)
        net.compute_routes()
        sink = Sink(sim).attach(net.node("b"), "f")
        net.node("a").send(make_pkt("b"))
        net.node("a").send(make_pkt("b"))
        sim.run()
        times = [t for t, _ in sink.got]
        assert times == pytest.approx([1.0, 2.0])

    def test_queue_overflow_drops(self):
        sim = Simulator()
        net = Network(sim)
        link = net.add_simplex_link(
            "a", "b", rate_bps=8000.0, delay=0.0,
            queue=DropTailQueue(capacity_packets=2),
        )
        net.compute_routes()
        Sink(sim).attach(net.node("b"), "f")
        for _ in range(5):
            net.node("a").send(make_pkt("b"))
        sim.run()
        assert link.queue.stats.dropped > 0

    def test_utilization(self):
        sim = Simulator()
        net = Network(sim)
        link = net.add_simplex_link("a", "b", rate_bps=8000.0, delay=0.0)
        net.compute_routes()
        Sink(sim).attach(net.node("b"), "f")
        net.node("a").send(make_pkt("b", size=1000))
        sim.run()
        assert link.stats.utilization(8000.0, 2.0) == pytest.approx(0.5)

    def test_utilization_degenerate_window_is_zero(self):
        # a warmup-clipped summary window can collapse to zero or go
        # negative; that must report 0.0, not divide by zero
        sim = Simulator()
        net = Network(sim)
        link = net.add_simplex_link("a", "b", rate_bps=8000.0, delay=0.0)
        net.compute_routes()
        Sink(sim).attach(net.node("b"), "f")
        net.node("a").send(make_pkt("b", size=1000))
        sim.run()
        assert link.stats.tx_bytes > 0
        assert link.stats.utilization(8000.0, 0.0) == 0.0
        assert link.stats.utilization(8000.0, -1.0) == 0.0
        assert link.stats.utilization(0.0, 2.0) == 0.0

    def test_link_validates_args(self):
        sim = Simulator()
        net = Network(sim)
        with pytest.raises(ValueError):
            net.add_simplex_link("a", "b", rate_bps=0.0, delay=0.1)


class TestRouting:
    def test_multi_hop_forwarding(self):
        sim = Simulator()
        topo = chain(sim, n_hops=3, rate=1e6, delay=0.01)
        sink = Sink(sim).attach(topo.last, "f")
        topo.first.send(Packet(src="h0", dst=topo.last.name, flow_id="f", size=100))
        sim.run()
        assert len(sink.got) == 1
        assert sink.got[0][1].hops == 3

    def test_shortest_path_chosen(self):
        sim = Simulator()
        net = Network(sim)
        # a-b-c slow path, a-c direct but longer delay
        net.add_duplex_link("a", "b", 1e6, 0.001)
        net.add_duplex_link("b", "c", 1e6, 0.001)
        net.add_duplex_link("a", "c", 1e6, 0.1)
        net.compute_routes()
        assert net.node("a").next_hop["c"] == "b"

    def test_path_delay(self):
        sim = Simulator()
        topo = chain(sim, n_hops=4, rate=1e6, delay=0.01)
        assert topo.net.path_delay("h0", "h4") == pytest.approx(0.04)

    def test_no_route_raises(self):
        sim = Simulator()
        net = Network(sim)
        net.add_node("a")
        net.add_node("z")
        net.compute_routes()
        with pytest.raises(RoutingError):
            net.node("a").send(make_pkt("z"))

    def test_unroutable_hook(self):
        sim = Simulator()
        net = Network(sim)
        net.add_node("a")
        net.compute_routes()
        dropped = []
        net.node("a").on_unroutable = dropped.append
        net.node("a").send(make_pkt("zz"))
        assert len(dropped) == 1


class TestAgentBinding:
    def test_unknown_flow_raises(self):
        sim = Simulator()
        net = Network(sim)
        net.add_simplex_link("a", "b", 1e6, 0.0)
        net.compute_routes()
        net.node("a").send(make_pkt("b", flow="nobody"))
        with pytest.raises(RoutingError):
            sim.run()

    def test_rebinding_same_flow_rejected(self):
        sim = Simulator()
        node = Node(sim, "n")
        Sink(sim).attach(node, "f")
        with pytest.raises(RoutingError):
            Sink(sim).attach(node, "f")

    def test_unbind_allows_rebinding(self):
        sim = Simulator()
        node = Node(sim, "n")
        Sink(sim).attach(node, "f")
        node.unbind("f")
        sink2 = Sink(sim).attach(node, "f")
        assert node.agent_for("f") is sink2


class TestBuilders:
    def test_dumbbell_structure(self):
        sim = Simulator()
        d = dumbbell(sim, n_pairs=3)
        assert len(d.sources) == 3 and len(d.sinks) == 3
        assert d.bottleneck.src.name == "left"
        # each source routes to its sink via the bottleneck
        assert d.net.node("s0").next_hop["d0"] == "left"
        assert d.net.node("left").next_hop["d0"] == "right"

    def test_dumbbell_per_pair_delays(self):
        sim = Simulator()
        d = dumbbell(sim, n_pairs=2, access_delays=[0.001, 0.1])
        assert d.net.path_delay("s1", "d1") > d.net.path_delay("s0", "d0")

    def test_chain_structure(self):
        sim = Simulator()
        c = chain(sim, n_hops=5)
        assert c.first.name == "h0" and c.last.name == "h5"
        assert len(c.hops) == 5

    def test_chain_validates(self):
        with pytest.raises(ValueError):
            chain(Simulator(), n_hops=0)

    def test_star_structure(self):
        sim = Simulator()
        s = star(Simulator(), n_leaves=4)
        assert len(s.leaves) == 4
        assert s.hub.name == "hub"


class TestChainRouting:
    def test_route_tables_follow_the_line(self):
        c = chain(Simulator(), n_hops=4)
        # every node forwards toward the destination along the line,
        # one hop at a time, in both directions
        for i in range(5):
            for j in range(5):
                if i == j:
                    continue
                expected = f"h{i + 1}" if j > i else f"h{i - 1}"
                assert c.net.node(f"h{i}").next_hop[f"h{j}"] == expected

    def test_duplex_links_are_symmetric(self):
        c = chain(Simulator(), n_hops=3, rate=2e6, delay=0.007)
        for i in range(3):
            fwd = c.net.link(f"h{i}", f"h{i + 1}")
            back = c.net.link(f"h{i + 1}", f"h{i}")
            assert fwd.rate_bps == back.rate_bps == 2e6
            assert fwd.delay == back.delay == 0.007
            assert fwd.queue is not back.queue  # independent queues

    def test_end_to_end_path_delay_symmetric(self):
        c = chain(Simulator(), n_hops=3, delay=0.01)
        assert c.net.path_delay("h0", "h3") == pytest.approx(0.03)
        assert c.net.path_delay("h3", "h0") == pytest.approx(0.03)

    def test_hops_are_the_forward_links(self):
        c = chain(Simulator(), n_hops=3)
        assert [(l.src.name, l.dst.name) for l in c.hops] == [
            ("h0", "h1"), ("h1", "h2"), ("h2", "h3")
        ]


class TestStarRouting:
    def test_leaf_to_leaf_routes_via_hub(self):
        s = star(Simulator(), n_leaves=4)
        for i in range(4):
            for j in range(4):
                if i != j:
                    assert s.net.node(f"m{i}").next_hop[f"m{j}"] == "hub"

    def test_hub_routes_directly_to_each_leaf(self):
        s = star(Simulator(), n_leaves=3)
        for i in range(3):
            assert s.net.node("hub").next_hop[f"m{i}"] == f"m{i}"

    def test_duplex_spokes_are_symmetric(self):
        s = star(Simulator(), n_leaves=3, rate=1e6, delay=0.02)
        for i in range(3):
            out = s.net.link("hub", f"m{i}")
            back = s.net.link(f"m{i}", "hub")
            assert out.rate_bps == back.rate_bps == 1e6
            assert out.delay == back.delay == 0.02
            assert out.queue is not back.queue

    def test_leaf_to_leaf_delay_is_two_spokes(self):
        s = star(Simulator(), n_leaves=2, delay=0.02)
        assert s.net.path_delay("m0", "m1") == pytest.approx(0.04)

    def test_leaf_to_leaf_forwarding_delivers(self):
        sim = Simulator()
        s = star(sim, n_leaves=3)
        sink = Sink(sim).attach(s.net.node("m2"), "f")
        s.net.node("m0").send(
            Packet(src="m0", dst="m2", flow_id="f", size=100)
        )
        sim.run()
        assert len(sink.got) == 1
        assert sink.got[0][1].hops == 2  # via the hub
