"""Tests for the allocation-free fast path (PR 4).

Three layers are covered:

* :class:`repro.sim.packet.PacketPool` — type-keyed recycling, full
  field re-init (fresh uid, color reset), the ``pooled`` ownership
  flag, the ``REPRO_NO_POOL`` kill-switch, and pool-on/pool-off
  equivalence of a full network run;
* engine event reuse — ``schedule_pooled`` ordering parity with
  ``schedule``, recycling only after the callback ran, and the
  :class:`Timer` spare re-arm (allocation-free periodic timers, no
  tombstone reuse);
* end-to-end: agents actually hit the pool in a real scenario.
"""

import pytest

from repro.sim.engine import Simulator, Timer
from repro.sim.packet import (
    Color,
    NO_POOL_ENV,
    Packet,
    PacketKind,
    PacketPool,
    TcpSegmentHeader,
    TfrcDataHeader,
    pooling_enabled,
)


def _data_packet(**overrides):
    fields = dict(
        src="a",
        dst="b",
        flow_id="f",
        size=1000,
        kind=PacketKind.DATA,
        header=TfrcDataHeader(seq=1, timestamp=2.0, rtt_estimate=0.05),
        color=Color.GREEN,
        created_at=2.0,
    )
    fields.update(overrides)
    return Packet(**fields)


class TestPacketPool:
    def test_miss_then_recycle_roundtrip(self):
        pool = PacketPool()
        assert pool.acquire(
            TfrcDataHeader, "a", "b", "f", 100, PacketKind.DATA, 0.0
        ) is None  # empty pool: caller constructs
        packet = _data_packet()
        packet.pooled = True
        pool.release(packet)
        again = pool.acquire(
            TfrcDataHeader, "x", "y", "g", 40, PacketKind.FEEDBACK, 9.0
        )
        assert again is packet  # same object, recycled
        assert isinstance(again.header, TfrcDataHeader)

    def test_acquire_reinitializes_every_packet_field(self):
        pool = PacketPool()
        packet = _data_packet()
        packet.hops = 7
        packet.pooled = True
        old_uid = packet.uid
        pool.release(packet)
        p = pool.acquire(TfrcDataHeader, "s", "d", "flow", 500,
                         PacketKind.DATA, 3.5)
        assert (p.src, p.dst, p.flow_id, p.size) == ("s", "d", "flow", 500)
        assert p.kind is PacketKind.DATA
        assert p.color is Color.RED  # construction default restored
        assert p.created_at == 3.5
        assert p.app is None
        assert p.hops == 0
        assert p.uid > old_uid  # fresh uid from the shared counter
        assert p.pooled

    def test_uid_draw_parity_with_construction(self):
        # one logical packet = one uid draw, pooled or constructed, so
        # uid sequences are identical with pooling on or off
        pool = PacketPool()
        packet = _data_packet()
        packet.pooled = True
        pool.release(packet)
        recycled = pool.acquire(TfrcDataHeader, "a", "b", "f", 1,
                                PacketKind.DATA, 0.0)
        fresh = _data_packet()
        assert fresh.uid == recycled.uid + 1

    def test_free_lists_are_keyed_by_header_class(self):
        pool = PacketPool()
        packet = _data_packet()
        packet.pooled = True
        pool.release(packet)
        # a different header class must not receive this object
        assert pool.acquire(TcpSegmentHeader, "a", "b", "f", 1,
                            PacketKind.DATA, 0.0) is None
        assert pool.acquire(TfrcDataHeader, "a", "b", "f", 1,
                            PacketKind.DATA, 0.0) is packet

    def test_release_ignores_unmanaged_packets(self):
        pool = PacketPool()
        packet = _data_packet()  # pooled=False: a test/app-owned packet
        pool.release(packet)
        assert pool.acquire(TfrcDataHeader, "a", "b", "f", 1,
                            PacketKind.DATA, 0.0) is None

    def test_double_release_is_harmless(self):
        pool = PacketPool()
        packet = _data_packet()
        packet.pooled = True
        pool.release(packet)
        pool.release(packet)  # flag cleared by the first release
        assert pool.acquire(TfrcDataHeader, "a", "b", "f", 1,
                            PacketKind.DATA, 0.0) is packet
        assert pool.acquire(TfrcDataHeader, "a", "b", "f", 1,
                            PacketKind.DATA, 0.0) is None

    def test_copy_is_never_pool_managed(self):
        packet = _data_packet()
        packet.pooled = True
        assert packet.copy().pooled is False

    def test_free_list_is_bounded(self):
        pool = PacketPool(max_free=2)
        for _ in range(5):
            packet = _data_packet()
            packet.pooled = True
            pool.release(packet)
        assert pool.recycled == 2

    def test_pool_is_per_simulator(self, monkeypatch):
        monkeypatch.delenv(NO_POOL_ENV, raising=False)
        sim_a, sim_b = Simulator(seed=0), Simulator(seed=0)
        assert PacketPool.of(sim_a) is PacketPool.of(sim_a)
        assert PacketPool.of(sim_a) is not PacketPool.of(sim_b)

    def test_kill_switch_disables_pooling(self, monkeypatch):
        monkeypatch.setenv(NO_POOL_ENV, "1")
        assert not pooling_enabled()
        assert PacketPool.of(Simulator(seed=0)) is None

    def test_kill_switch_zero_means_enabled(self, monkeypatch):
        monkeypatch.setenv(NO_POOL_ENV, "0")
        assert pooling_enabled()


class TestPoolEquivalence:
    def test_network_results_identical_with_pool_off(self, monkeypatch):
        from repro.harness.bench import network_trace_probe

        pooled = network_trace_probe(seed=4, protocol="qtpaf", duration=3.0)
        monkeypatch.setenv(NO_POOL_ENV, "1")
        bare = network_trace_probe(seed=4, protocol="qtpaf", duration=3.0)
        assert pooled == bare

    def test_agents_hit_the_pool_in_a_real_run(self, monkeypatch):
        from repro.topo import build, t1_dumbbell_spec

        monkeypatch.delenv(NO_POOL_ENV, raising=False)
        sim = Simulator(seed=0)
        build(sim, t1_dumbbell_spec("qtpaf", 4e6, n_cross=1))
        sim.run(until=3.0)
        pool = PacketPool.of(sim)
        assert pool is not None
        assert pool.hits > 0 and pool.recycled > pool.hits / 2


class TestEventReuse:
    def test_schedule_pooled_orders_like_schedule(self):
        sim = Simulator(seed=0)
        fired = []
        sim.schedule(0.5, fired.append, "handle-1")
        sim.schedule_pooled(0.5, fired.append, "pooled-1")
        sim.schedule(0.5, fired.append, "handle-2")
        sim.schedule_pooled(0.2, fired.append, "pooled-2")
        sim.run()
        assert fired == ["pooled-2", "handle-1", "pooled-1", "handle-2"]

    def test_pooled_event_object_recycled_after_firing(self):
        sim = Simulator(seed=0)
        sim.schedule_pooled(0.1, lambda: None)
        assert len(sim._event_pool) == 0  # in the heap, not reusable yet
        sim.run()
        assert len(sim._event_pool) == 1
        before = sim._event_pool[0]
        sim.schedule_pooled(0.1, lambda: None)
        assert len(sim._event_pool) == 0  # popped for reuse
        sim.run()
        assert sim._event_pool[0] is before  # same object cycled through

    def test_schedule_pooled_counts_and_rejects_past(self):
        sim = Simulator(seed=0)
        sim.schedule_pooled(0.1, lambda: None)
        assert sim.pending == 1
        from repro.sim.engine import SimulationError

        with pytest.raises(SimulationError):
            sim.schedule_pooled(-0.1, lambda: None)

    def test_timer_rearm_after_fire_reuses_event_object(self):
        sim = Simulator(seed=0)
        ticks = []
        timer = Timer(sim, lambda: ticks.append(sim.now))
        timer.restart(1.0)
        first = timer._event
        sim.run()
        assert ticks == [1.0]
        timer.restart(1.0)
        assert timer._event is first  # spare reused, no allocation
        sim.run()
        assert ticks == [1.0, 2.0]

    def test_timer_restart_while_armed_never_reuses_tombstone(self):
        sim = Simulator(seed=0)
        ticks = []
        timer = Timer(sim, lambda: ticks.append(sim.now))
        timer.restart(1.0)
        tombstoned = timer._event
        timer.restart(2.0)  # while armed: old shot cancelled in-heap
        assert timer._event is not tombstoned
        sim.run()
        assert ticks == [2.0]  # exactly one shot; the tombstone is dead

    def test_timer_periodic_chain_fires_like_before(self):
        sim = Simulator(seed=0)
        ticks = []

        def tick():
            ticks.append(round(sim.now, 6))
            if len(ticks) < 5:
                timer.restart(0.5)

        timer = Timer(sim, tick)
        timer.restart(0.5)
        sim.run()
        assert ticks == [0.5, 1.0, 1.5, 2.0, 2.5]

    def test_engine_probe_unchanged_by_reuse(self):
        # the golden digests pin absolute values; this guards the
        # schedule()/schedule_pooled() seq parity on top of them
        from repro.harness.bench import engine_trace_probe

        assert engine_trace_probe(seed=9) == engine_trace_probe(seed=9)
