"""Property-based tests: equation, loss history, token buckets, delivery."""

import math

from hypothesis import assume, given, settings, strategies as st

from repro.metrics.stats import jain_index, percentile
from repro.qos.meters import SrTcmMeter, TokenBucket
from repro.reliability.delivery import DeliveryBuffer
from repro.sim.packet import Color, Packet
from repro.tfrc.equation import solve_loss_rate, tcp_throughput
from repro.tfrc.loss_history import LossEventEstimator, LossIntervalHistory


class TestEquationProperties:
    @given(
        s=st.integers(min_value=40, max_value=9000),
        rtt=st.floats(min_value=1e-3, max_value=5.0),
        p1=st.floats(min_value=1e-6, max_value=1.0),
        p2=st.floats(min_value=1e-6, max_value=1.0),
    )
    def test_monotone_decreasing_in_p(self, s, rtt, p1, p2):
        lo, hi = sorted((p1, p2))
        assume(hi - lo > 1e-9)
        assert tcp_throughput(s, rtt, lo) >= tcp_throughput(s, rtt, hi)

    @given(
        s=st.integers(min_value=40, max_value=9000),
        rtt=st.floats(min_value=1e-3, max_value=5.0),
        p=st.floats(min_value=1e-6, max_value=1.0),
    )
    def test_rate_always_positive_and_finite(self, s, rtt, p):
        rate = tcp_throughput(s, rtt, p)
        assert rate > 0
        assert math.isfinite(rate)

    @given(
        rtt=st.floats(min_value=1e-3, max_value=2.0),
        p=st.floats(min_value=1e-5, max_value=0.5),
    )
    def test_solve_inverts_throughput(self, rtt, p):
        rate = tcp_throughput(1000, rtt, p)
        recovered = solve_loss_rate(1000, rtt, rate)
        assert math.isclose(recovered, p, rel_tol=1e-3, abs_tol=1e-9)


class TestLossHistoryProperties:
    @given(st.lists(st.floats(min_value=1, max_value=1e5), min_size=1, max_size=40))
    def test_average_within_interval_range(self, intervals):
        h = LossIntervalHistory()
        for interval in intervals:
            h.record_event(interval)
        kept = intervals[-8:]
        assert min(kept) <= h.average_interval() <= max(kept) * 1.0001

    @given(st.lists(st.floats(min_value=1, max_value=1e5), min_size=1, max_size=40))
    def test_rate_in_unit_interval(self, intervals):
        h = LossIntervalHistory()
        for interval in intervals:
            h.record_event(interval)
        assert 0.0 < h.loss_event_rate() <= 1.0

    @given(
        st.lists(st.floats(min_value=1, max_value=1e4), min_size=1, max_size=20),
        st.floats(min_value=0, max_value=1e6),
    )
    def test_open_interval_never_raises_rate(self, intervals, open_len):
        h = LossIntervalHistory()
        for interval in intervals:
            h.record_event(interval)
        p_before = h.loss_event_rate()
        h.open_interval = open_len
        assert h.loss_event_rate() <= p_before + 1e-12

    @given(st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=200))
    def test_estimator_never_crashes_and_p_bounded(self, seqs):
        est = LossEventEstimator()
        for i, seq in enumerate(seqs):
            est.on_packet(seq, i * 0.01, 0.05)
        assert 0.0 <= est.loss_event_rate() <= 1.0


class TestTokenBucketProperties:
    @given(
        rate=st.floats(min_value=8.0, max_value=1e9),
        burst=st.floats(min_value=100.0, max_value=1e6),
        sizes=st.lists(st.integers(min_value=1, max_value=2000), max_size=100),
    )
    def test_conservation(self, rate, burst, sizes):
        """Consumed tokens never exceed burst + rate * elapsed."""
        tb = TokenBucket(rate, burst)
        consumed = 0
        t = 0.0
        for i, size in enumerate(sizes):
            t = i * 0.01
            if tb.try_consume(size, t):
                consumed += size
        assert consumed <= burst + rate / 8.0 * t + 1e-6

    @given(
        cir=st.floats(min_value=800.0, max_value=1e8),
        sizes=st.lists(st.integers(min_value=40, max_value=1500),
                       min_size=10, max_size=200),
    )
    def test_srtcm_green_bytes_bounded_by_cir(self, cir, sizes):
        meter = SrTcmMeter(cir_bps=cir, cbs_bytes=3000, ebs_bytes=3000)
        green = 0
        t = 0.0
        for i, size in enumerate(sizes):
            t = i * 0.01
            if meter.color_of(size, t) is Color.GREEN:
                green += size
        assert green <= 3000 + cir / 8.0 * t + 1500


class TestDeliveryBufferProperties:
    @given(
        st.permutations(list(range(30))),
        st.integers(min_value=0, max_value=29),
    )
    def test_all_packets_delivered_exactly_once_in_order(self, order, _):
        out = []
        buf = DeliveryBuffer(lambda p: out.append(p.uid - 1))
        for i, seq in enumerate(order):
            packet = Packet(src="a", dst="b", flow_id="f", size=1, uid=seq + 1)
            buf.push(seq, packet, now=i * 0.1)
        assert out == list(range(30))

    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=100))
    def test_delivery_is_monotone_even_with_gaps(self, seqs):
        out = []
        buf = DeliveryBuffer(lambda p: out.append(p.uid - 1), gap_timeout=0.5)
        for i, seq in enumerate(seqs):
            packet = Packet(src="a", dst="b", flow_id="f", size=1, uid=seq + 1)
            buf.push(seq, packet, now=i * 0.2)
            buf.poll(i * 0.2)
        assert out == sorted(out)
        assert len(out) == len(set(out))


class TestStatsProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=50))
    def test_jain_bounds(self, values):
        idx = jain_index(values)
        assert 1.0 / len(values) - 1e-9 <= idx <= 1.0 + 1e-9

    @settings(max_examples=500)
    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100),
        st.floats(min_value=0, max_value=100),
    )
    def test_percentile_within_range(self, values, q):
        result = percentile(values, q)
        assert min(values) <= result <= max(values)
