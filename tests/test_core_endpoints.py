"""Behavioural tests for the composed QTP sender/receiver."""

import pytest

from repro.core.instances import (
    QTPAF,
    QTPLIGHT,
    QTPLIGHT_RELIABLE,
    TFRC_MEDIA,
    build_transport_pair,
)
from repro.core.profile import (
    CongestionControl,
    LossEstimationSite,
    ReliabilityMode,
    TransportProfile,
)
from repro.metrics.cost import CostMeter
from repro.metrics.recorder import FlowRecorder
from repro.netem.channels import BernoulliLossChannel
from repro.sim.engine import Simulator
from repro.sim.packet import AppDataHeader
from repro.sim.queues import DropTailQueue
from repro.sim.topology import chain, dumbbell


def lossy_link(sim, loss=0.02, rate=2e6):
    return chain(
        sim, n_hops=1, rate=rate, delay=0.02,
        channel_factory=lambda: (
            BernoulliLossChannel(loss, rng=sim.rng("loss")) if loss > 0 else None
        ),
    )


class TestProfileEquivalence:
    def run_profile(self, profile, seed=1, duration=25.0):
        sim = Simulator(seed=seed)
        d = dumbbell(sim, n_pairs=1, bottleneck_rate=2e6, bottleneck_delay=0.02,
                     bottleneck_queue_factory=lambda: DropTailQueue(capacity_packets=25))
        rec = FlowRecorder()
        snd, rcv = build_transport_pair(
            sim, d.net.node("s0"), d.net.node("d0"), "f", profile,
            recorder=rec, start=True,
        )
        sim.run(until=duration)
        return snd, rcv, rec

    def test_all_instances_saturate_clean_bottleneck(self):
        for profile in (TFRC_MEDIA, QTPLIGHT, QTPLIGHT_RELIABLE, QTPAF(1e6)):
            _, _, rec = self.run_profile(profile)
            rate = rec.mean_rate_bps(10, 25)
            assert rate == pytest.approx(2e6, rel=0.08), profile.name

    def test_qtplight_rate_close_to_stock_tfrc(self):
        _, _, rec_std = self.run_profile(TFRC_MEDIA)
        _, _, rec_light = self.run_profile(QTPLIGHT)
        std = rec_std.mean_rate_bps(10, 25)
        light = rec_light.mean_rate_bps(10, 25)
        assert light == pytest.approx(std, rel=0.15)


class TestQtplightCostShift:
    def test_receiver_work_reduced_and_moved_to_sender(self):
        results = {}
        for profile in (TFRC_MEDIA, QTPLIGHT):
            sim = Simulator(seed=2)
            topo = lossy_link(sim, loss=0.03)
            rx, tx = CostMeter(), CostMeter()
            snd, rcv = build_transport_pair(
                sim, topo.first, topo.last, "f", profile,
                rx_meter=rx, tx_meter=tx, start=True,
            )
            sim.run(until=20)
            results[profile.name] = (
                rx.ops / max(1, rcv.received_packets),
                tx.ops,
                rx.peak_bytes,
            )
        tfrc_rx_ops, tfrc_tx_ops, tfrc_rx_mem = results["TFRC"]
        light_rx_ops, light_tx_ops, light_rx_mem = results["QTPlight"]
        assert light_rx_ops < tfrc_rx_ops / 1.5  # receiver lighter
        assert light_tx_ops > tfrc_tx_ops  # work moved to the sender
        assert light_rx_mem < tfrc_rx_mem  # no loss-interval history held

    def test_qtplight_receiver_has_no_estimator(self):
        sim = Simulator(seed=1)
        topo = lossy_link(sim)
        snd, rcv = build_transport_pair(
            sim, topo.first, topo.last, "f", QTPLIGHT, start=True
        )
        assert rcv.estimator is None
        assert rcv.sack_state is not None
        assert snd.estimator is not None


class TestReliability:
    def test_full_reliability_delivers_everything_in_order(self):
        sim = Simulator(seed=3)
        topo = lossy_link(sim, loss=0.05)
        got = []
        profile = TransportProfile(
            name="full",
            reliability=ReliabilityMode.FULL,
        )
        snd, rcv = build_transport_pair(
            sim, topo.first, topo.last, "f", profile,
            on_deliver=lambda p: got.append(p.header.seq), start=True,
        )
        sim.run(until=30)
        assert len(got) > 1000
        assert got == sorted(got)
        assert got == list(range(len(got)))  # no holes at all
        assert snd.retransmissions > 0

    def test_no_reliability_never_retransmits(self):
        sim = Simulator(seed=3)
        topo = lossy_link(sim, loss=0.05)
        snd, rcv = build_transport_pair(
            sim, topo.first, topo.last, "f", TFRC_MEDIA, start=True
        )
        sim.run(until=20)
        assert snd.retransmissions == 0

    def test_partial_count_bounds_retransmissions(self):
        sim = Simulator(seed=3)
        topo = lossy_link(sim, loss=0.05)
        profile = TransportProfile(
            name="partial",
            reliability=ReliabilityMode.PARTIAL_COUNT,
            partial_max_retx=1,
        )
        snd, rcv = build_transport_pair(
            sim, topo.first, topo.last, "f", profile, start=True
        )
        sim.run(until=20)
        assert snd.retransmissions > 0
        assert snd.abandoned >= 0
        # bounded: no packet retransmitted more than once
        # (total retx <= total losses detected)
        assert snd.retransmissions <= snd.scoreboard.total_lost

    def test_forward_ack_lets_receiver_skip_abandoned(self):
        sim = Simulator(seed=4)
        topo = lossy_link(sim, loss=0.08)
        got = []
        profile = TransportProfile(
            name="partial-time",
            reliability=ReliabilityMode.PARTIAL_TIME,
            partial_deadline=0.2,
        )
        snd, rcv = build_transport_pair(
            sim, topo.first, topo.last, "f", profile,
            on_deliver=lambda p: got.append(p.header.seq), start=True,
        )
        sim.run(until=20)
        assert got == sorted(got)  # still ordered
        assert rcv.skipped_messages > 0  # holes were given up on
        # delivery kept flowing at roughly the equation rate for p=8%
        assert len(got) > 700

    def test_media_mode_sender_idles_without_data(self):
        sim = Simulator(seed=1)
        topo = lossy_link(sim, loss=0.0)
        snd, rcv = build_transport_pair(
            sim, topo.first, topo.last, "f", TFRC_MEDIA, bulk=False, start=True
        )
        sim.run(until=5)
        assert snd.sent_packets == 0
        for i in range(10):
            snd.enqueue_message(AppDataHeader(app_seq=i))
        sim.run(until=20)
        assert snd.sent_packets == 10
        assert rcv.received_packets == 10


class TestGtfrcComposition:
    def test_qtpaf_sender_uses_gtfrc(self):
        from repro.tfrc.gtfrc import GtfrcRateController

        sim = Simulator(seed=1)
        d = dumbbell(sim, n_pairs=1)
        snd, _ = build_transport_pair(
            sim, d.net.node("s0"), d.net.node("d0"), "f", QTPAF(1e6)
        )
        assert isinstance(snd.controller, GtfrcRateController)
        assert snd.controller.target_rate == pytest.approx(1e6 / 8)

    def test_window_profile_builds_tcp(self):
        from repro.core.instances import TCP_LIKE
        from repro.tcp.sender import TcpSender

        sim = Simulator(seed=1)
        d = dumbbell(sim, n_pairs=1)
        snd, rcv = build_transport_pair(
            sim, d.net.node("s0"), d.net.node("d0"), "f", TCP_LIKE
        )
        assert isinstance(snd, TcpSender)
