"""The ``Packet.retain()`` application-ownership contract (PR 6).

Receivers are terminal pool sinks: after the ``on_deliver`` callback
returns they recycle the packet.  A callback that keeps the packet past
its return must call :meth:`Packet.retain` to opt it out of recycling;
these tests pin the contract at the pool layer and end to end through
both receiver families (QTP and stock TFRC).
"""

import pytest

from repro.sim.engine import Simulator
from repro.sim.packet import (
    NO_POOL_ENV,
    Packet,
    PacketKind,
    PacketPool,
    TfrcDataHeader,
)
from repro.topo import ScenarioSpec, build
from repro.topo.generators import access_star_spec
from repro.topo.specs import FlowSpec


def _data_packet(seq=1):
    return Packet(
        src="a",
        dst="b",
        flow_id="f",
        size=1000,
        kind=PacketKind.DATA,
        header=TfrcDataHeader(seq=seq, timestamp=0.0, rtt_estimate=0.05),
        created_at=0.0,
    )


class TestRetainContract:
    def test_retain_returns_self_and_clears_pooled(self):
        packet = _data_packet()
        packet.pooled = True
        assert packet.retain() is packet
        assert packet.pooled is False

    def test_retained_packet_survives_release(self):
        pool = PacketPool()
        packet = _data_packet()
        packet.pooled = True
        pool.release(packet.retain())
        # the pool must not hand the retained object back out
        assert pool.acquire(
            TfrcDataHeader, "x", "y", "g", 1, PacketKind.DATA, 0.0
        ) is None

    def test_retain_is_idempotent(self):
        packet = _data_packet()
        packet.pooled = True
        packet.retain().retain()
        assert packet.pooled is False

    def test_retain_on_never_pooled_packet_is_harmless(self):
        packet = _data_packet()  # pooled=False from construction
        assert packet.retain() is packet
        assert packet.pooled is False


def _run_star(transport, on_deliver, monkeypatch, pool_on=True):
    if pool_on:
        monkeypatch.delenv(NO_POOL_ENV, raising=False)
    else:
        monkeypatch.setenv(NO_POOL_ENV, "1")
    sim = Simulator(seed=0)
    built = build(
        sim,
        ScenarioSpec(
            name="retain",
            topology=access_star_spec(1),
            flows=(
                FlowSpec(
                    "f", "h0", "srv",
                    transport=transport,
                    target_bps=4e6 if transport == "qtpaf" else None,
                ),
            ),
        ),
    )
    built.receivers["f"].on_deliver = on_deliver
    sim.run(until=2.0)
    return built


class TestRetainEndToEnd:
    @pytest.mark.parametrize("transport", ["qtpaf", "tfrc"])
    def test_kept_packets_stay_intact(self, transport, monkeypatch):
        # a callback that retains every packet may read it later: all
        # kept sequence numbers are distinct and consecutive (nothing
        # was recycled and overwritten under the app's feet)
        kept = []
        _run_star(transport, lambda p: kept.append(p.retain()), monkeypatch)
        assert len(kept) >= 100
        seqs = [p.header.seq for p in kept]
        assert len(set(seqs)) == len(seqs)
        assert all(p.kind is PacketKind.DATA for p in kept)

    @pytest.mark.parametrize("transport", ["qtpaf", "tfrc"])
    def test_without_retain_packets_are_recycled(self, transport, monkeypatch):
        seen = []
        built = _run_star(transport, seen.append, monkeypatch)
        pool = PacketPool.of(built.net.sim)
        assert pool is not None and pool.recycled > 0
        # the shells were recycled: far fewer distinct objects than
        # deliveries flowed through the callback
        assert len({id(p) for p in seen}) < len(seen)

    @pytest.mark.parametrize("transport", ["qtpaf", "tfrc"])
    def test_retain_under_no_pool_is_equivalent(self, transport, monkeypatch):
        kept = []
        _run_star(
            transport,
            lambda p: kept.append(p.retain()),
            monkeypatch,
            pool_on=False,
        )
        seqs = [p.header.seq for p in kept]
        assert len(set(seqs)) == len(seqs)

    def test_delivery_counts_unchanged_by_retaining(self, monkeypatch):
        # retaining must not perturb the simulation itself: same
        # delivered count with a retaining and a non-retaining callback
        a = _run_star("qtpaf", lambda p: p.retain(), monkeypatch)
        b = _run_star("qtpaf", lambda p: None, monkeypatch)
        assert a.receivers["f"].app_delivered == b.receivers["f"].app_delivered
        assert a.receivers["f"].app_delivered > 0
