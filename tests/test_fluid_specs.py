"""BackgroundLoadSpec validation and population -> background derivation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fluid import BACKGROUND_KINDS, BackgroundLoadSpec, hybridize
from repro.fluid.derive import _class_of, background_from_population
from repro.harness.experiments.flash_crowd import (
    flash_crowd_population,
    flash_crowd_spec,
)
from repro.topo.specs import FlowSpec
from repro.traffic.population import offered_load_profile


class TestSpecValidation:
    def test_kinds_constant(self):
        assert BACKGROUND_KINDS == ("constant", "mmpp", "population")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown background kind"):
            BackgroundLoadSpec(kind="sawtooth")

    def test_constant_requires_rate(self):
        with pytest.raises(ValueError, match="rate_bps"):
            BackgroundLoadSpec(kind="constant")
        with pytest.raises(ValueError, match="rate_bps"):
            BackgroundLoadSpec(kind="constant", rate_bps=-1.0)

    def test_stray_parameters_rejected(self):
        # the QueueSpec convention: a tunable the kind does not consume
        # is an error, never silently ignored
        with pytest.raises(ValueError, match="does not use"):
            BackgroundLoadSpec(kind="constant", rate_bps=1e6, profile=(1.0,))
        with pytest.raises(ValueError, match="does not use"):
            BackgroundLoadSpec(
                kind="population", profile=(1.0,), rate_high_bps=1e6
            )

    def test_mmpp_requires_dwell_and_high_rate(self):
        with pytest.raises(ValueError, match="mmpp background requires"):
            BackgroundLoadSpec(kind="mmpp", rate_high_bps=1e6)
        with pytest.raises(ValueError, match="dwell"):
            BackgroundLoadSpec(
                kind="mmpp",
                rate_high_bps=1e6,
                mean_low_s=0.0,
                mean_high_s=0.5,
            )

    def test_mmpp_low_rate_defaults_to_silent(self):
        spec = BackgroundLoadSpec(
            kind="mmpp", rate_high_bps=1e6, mean_low_s=0.5, mean_high_s=0.5
        )
        assert spec.rate_low_bps is None  # source treats None as 0.0

    def test_population_requires_profile(self):
        with pytest.raises(ValueError, match="profile"):
            BackgroundLoadSpec(kind="population")
        with pytest.raises(ValueError, match="non-negative"):
            BackgroundLoadSpec(kind="population", profile=(100.0, -1.0))

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"epoch": 0.0}, "epoch"),
            ({"start": -1.0}, "start"),
            ({"stop": 0.0, "start": 1.0}, "stop"),
            ({"mean_pkt_bytes": 0.0}, "mean_pkt_bytes"),
            ({"min_foreground_share": 0.0}, "min_foreground_share"),
            ({"min_foreground_share": 1.5}, "min_foreground_share"),
            ({"buffer_packets": -2}, "buffer_packets"),
        ],
    )
    def test_common_knob_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            BackgroundLoadSpec(kind="constant", rate_bps=1e6, **kwargs)


def _finite_flows(sizes_and_starts):
    return tuple(
        FlowSpec(
            f"bg{i}",
            "a",
            "b",
            transport="tcp",
            start=start,
            size_bytes=size,
        )
        for i, (size, start) in enumerate(sizes_and_starts)
    )


class TestOfferedLoadProfile:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=500_000),
                st.floats(min_value=0.0, max_value=20.0),
            ),
            min_size=1,
            max_size=25,
        ),
        st.floats(min_value=0.01, max_value=0.5),
    )
    @settings(max_examples=50, deadline=None)
    def test_point_deposits_conserve_bytes(self, sizes_and_starts, epoch):
        flows = _finite_flows(sizes_and_starts)
        profile = offered_load_profile(flows, epoch)
        total = sum(size for size, _ in sizes_and_starts)
        assert sum(profile) == pytest.approx(total, rel=1e-9)
        assert all(b >= 0.0 for b in profile)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=500_000),
                st.floats(min_value=0.0, max_value=10.0),
            ),
            min_size=1,
            max_size=15,
        ),
        st.floats(min_value=0.02, max_value=0.2),
        st.floats(min_value=50e3, max_value=5e6),
    )
    @settings(max_examples=50, deadline=None)
    def test_paced_deposits_conserve_bytes(
        self, sizes_and_starts, epoch, pace
    ):
        flows = _finite_flows(sizes_and_starts)
        profile = offered_load_profile(flows, epoch, per_flow_rate_bps=pace)
        total = sum(size for size, _ in sizes_and_starts)
        assert sum(profile) == pytest.approx(total, rel=1e-9)
        assert all(b >= 0.0 for b in profile)

    def test_unbounded_flow_rejected(self):
        flow = FlowSpec("bulk", "a", "b", transport="tcp")
        with pytest.raises(ValueError, match="size_bytes"):
            offered_load_profile((flow,), 0.05)

    def test_horizon_truncates(self):
        flows = _finite_flows([(1000, 0.0), (2000, 5.0)])
        profile = offered_load_profile(flows, 0.1, horizon=1.0)
        assert sum(profile) == pytest.approx(1000.0)


class TestDerive:
    def test_class_of_longest_match_wins(self):
        assert _class_of("mice12", {"mice", "mice1"}) == "mice1"
        assert _class_of("mice12", {"mice"}) == "mice"
        assert _class_of("other3", {"mice"}) is None

    def test_background_from_population_unknown_class(self):
        population = flash_crowd_population(n_hosts=8, n_flows=6)
        with pytest.raises(ValueError, match="no class"):
            background_from_population(population, 0, classes=("rat",))

    def test_background_from_population_is_elastic_by_default(self):
        population = flash_crowd_population(n_hosts=8, n_flows=6)
        bg = background_from_population(population, 0)
        assert bg.kind == "population"
        assert bg.elastic is True
        assert sum(bg.profile) > 0

    def test_hybridize_splits_foreground_and_background(self):
        spec = flash_crowd_spec("gtfrc", 4e6, n_hosts=8, n_flows=6, seed=1)
        population = flash_crowd_population(n_hosts=8, n_flows=6)
        hybrid = hybridize(spec, population, seed=1)
        # only the declared (non-population) foreground flow survives
        assert [f.flow_id for f in hybrid.flows] == ["assured"]
        bottleneck = [
            ls for ls in hybrid.topology.links if ls.background is not None
        ]
        assert len(bottleneck) == 1
        assert bottleneck[0].queue.kind == "rio"
        # demand is byte-identical to the packet-level population
        expected = sum(
            f.size_bytes for f in spec.flows if f.flow_id != "assured"
        )
        assert sum(bottleneck[0].background.profile) == pytest.approx(expected)

    def test_hybridize_derives_foreground_floor_from_committed_rates(self):
        spec = flash_crowd_spec(
            "gtfrc", 4e6, n_hosts=8, n_flows=6, bottleneck_bps=20e6, seed=1
        )
        population = flash_crowd_population(n_hosts=8, n_flows=6)
        hybrid = hybridize(spec, population, seed=1)
        bg = next(
            ls.background
            for ls in hybrid.topology.links
            if ls.background is not None
        )
        assert bg.min_foreground_share == pytest.approx(4e6 / 20e6 + 0.05)

    def test_hybridize_without_population_flows_refuses(self):
        from dataclasses import replace as d_replace

        spec = flash_crowd_spec("gtfrc", 4e6, n_hosts=8, n_flows=6, seed=1)
        population = flash_crowd_population(n_hosts=8, n_flows=6)
        foreground_only = d_replace(spec, flows=(spec.flows[0],))
        with pytest.raises(ValueError, match="nothing to hybridize"):
            hybridize(foreground_only, population, seed=1)

    def test_hybridize_unknown_attach_point(self):
        spec = flash_crowd_spec("gtfrc", 4e6, n_hosts=8, n_flows=6, seed=1)
        population = flash_crowd_population(n_hosts=8, n_flows=6)
        with pytest.raises(ValueError, match="not in the topology"):
            hybridize(spec, population, seed=1, at=[("gw", "nowhere")])

    def test_hybridize_unknown_background_class(self):
        spec = flash_crowd_spec("gtfrc", 4e6, n_hosts=8, n_flows=6, seed=1)
        population = flash_crowd_population(n_hosts=8, n_flows=6)
        with pytest.raises(ValueError, match="no class"):
            hybridize(spec, population, seed=1, background_classes=("rat",))
