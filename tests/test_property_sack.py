"""Property-based tests for SACK receiver state and the scoreboard.

The receiver state is checked against a trivially correct set-based
model; the scoreboard against conservation invariants.
"""

from hypothesis import given, settings, strategies as st

from repro.sack.blocks import ReceiverSackState
from repro.sack.scoreboard import SenderScoreboard

seq_lists = st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=300)


class TestReceiverStateModel:
    @given(seq_lists)
    def test_cum_ack_matches_set_model(self, seqs):
        state = ReceiverSackState()
        model = set()
        for seq in seqs:
            state.record(seq)
            model.add(seq)
        expected = -1
        while expected + 1 in model:
            expected += 1
        assert state.cum_ack == expected

    @given(seq_lists)
    def test_intervals_exactly_cover_out_of_order_set(self, seqs):
        state = ReceiverSackState()
        model = set()
        for seq in seqs:
            state.record(seq)
            model.add(seq)
        covered = set()
        for start, end in zip(state._starts, state._ends):
            assert start < end
            covered.update(range(start, end))
        above = {s for s in model if s > state.cum_ack}
        assert covered == above

    @given(seq_lists)
    def test_intervals_sorted_and_disjoint(self, seqs):
        state = ReceiverSackState()
        for seq in seqs:
            state.record(seq)
        for i in range(1, state.interval_count):
            # gap of at least one missing seq between intervals
            assert state._starts[i] > state._ends[i - 1]

    @given(seq_lists)
    def test_duplicate_detection_matches_model(self, seqs):
        state = ReceiverSackState()
        model = set()
        dups = 0
        for seq in seqs:
            if seq in model:
                dups += 1
            model.add(seq)
            state.record(seq)
        assert state.duplicates == dups
        assert state.received == len(model)

    @given(seq_lists, st.integers(min_value=0, max_value=220))
    def test_advance_floor_preserves_coverage_above(self, seqs, floor):
        state = ReceiverSackState()
        model = set()
        for seq in seqs:
            state.record(seq)
            model.add(seq)
        state.advance_floor(floor)
        # everything below the floor is considered received now
        assert state.cum_ack >= floor - 1
        covered = set()
        for start, end in zip(state._starts, state._ends):
            covered.update(range(start, end))
        assert covered == {s for s in model if s > state.cum_ack}

    @given(seq_lists, st.integers(min_value=1, max_value=5))
    def test_blocks_subset_of_intervals(self, seqs, limit):
        state = ReceiverSackState()
        for seq in seqs:
            state.record(seq)
        blocks = state.blocks(limit)
        assert len(blocks) <= limit
        intervals = set(zip(state._starts, state._ends))
        assert all(b in intervals for b in blocks)


@st.composite
def feedback_script(draw):
    """A plausible (cum_ack, blocks) report sequence over 100 packets."""
    n = draw(st.integers(min_value=5, max_value=100))
    reports = []
    for _ in range(draw(st.integers(min_value=1, max_value=10))):
        cum = draw(st.integers(min_value=-1, max_value=n - 1))
        blocks = []
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            start = draw(st.integers(min_value=0, max_value=n - 1))
            end = draw(st.integers(min_value=start + 1, max_value=n))
            blocks.append((start, end))
        reports.append((cum, tuple(blocks)))
    return n, reports


class TestScoreboardInvariants:
    @given(feedback_script())
    @settings(max_examples=200)
    def test_conservation(self, script):
        n, reports = script
        sb = SenderScoreboard()
        for seq in range(n):
            sb.on_send(seq, 1000, seq * 0.01)
        for i, (cum, blocks) in enumerate(reports):
            sb.on_feedback(cum, blocks, 1.0 + i)
        # every sent packet is outstanding or was cumulatively acked
        assert sb.outstanding <= n
        assert sb.total_acked <= n
        assert sb.pipe() <= sb.outstanding
        assert sb.cum_ack <= n - 1

    @given(feedback_script())
    @settings(max_examples=200)
    def test_no_packet_acked_twice(self, script):
        n, reports = script
        sb = SenderScoreboard()
        for seq in range(n):
            sb.on_send(seq, 1000, seq * 0.01)
        seen = []
        for i, (cum, blocks) in enumerate(reports):
            digest = sb.on_feedback(cum, blocks, 1.0 + i)
            seen.extend(r.seq for r in digest.newly_acked)
        assert len(seen) == len(set(seen))

    @given(feedback_script())
    @settings(max_examples=200)
    def test_lost_packets_are_real_holes(self, script):
        n, reports = script
        sb = SenderScoreboard()
        for seq in range(n):
            sb.on_send(seq, 1000, seq * 0.01)
        sacked = set()
        cum_max = -1
        for i, (cum, blocks) in enumerate(reports):
            digest = sb.on_feedback(cum, blocks, 1.0 + i)
            cum_max = max(cum_max, cum)
            for start, end in blocks:
                sacked.update(range(start, end))
            for rec in digest.newly_lost:
                assert rec.seq not in sacked
                assert rec.seq > cum_max
                # at least 3 SACKed above it
                assert sum(1 for s in sacked if s > rec.seq) >= 3

    @given(feedback_script())
    @settings(max_examples=100)
    def test_forward_point_below_unsacked(self, script):
        n, reports = script
        sb = SenderScoreboard()
        for seq in range(n):
            sb.on_send(seq, 1000, seq * 0.01)
        for i, (cum, blocks) in enumerate(reports):
            sb.on_feedback(cum, blocks, 1.0 + i)
        fp = sb.forward_point(default=n)
        for seq, rec in sb._outstanding.items():
            if not rec.sacked:
                assert fp <= seq
