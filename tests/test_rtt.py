"""Unit tests for RTT/RTO estimators."""

import pytest

from repro.tfrc.rtt import RtoEstimator, RttEstimator


class TestRttEstimator:
    def test_first_sample_taken_directly(self):
        est = RttEstimator()
        assert est.update(0.2) == 0.2
        assert est.valid

    def test_ewma_smoothing(self):
        est = RttEstimator(q=0.9)
        est.update(0.1)
        smoothed = est.update(0.2)
        assert smoothed == pytest.approx(0.9 * 0.1 + 0.1 * 0.2)

    def test_converges_to_constant_input(self):
        est = RttEstimator()
        est.update(0.5)
        for _ in range(200):
            est.update(0.1)
        assert est.rtt == pytest.approx(0.1, rel=1e-3)

    def test_rto_is_four_rtt(self):
        est = RttEstimator()
        est.update(0.1)
        assert est.rto() == pytest.approx(0.4)

    def test_rto_requires_sample(self):
        with pytest.raises(ValueError):
            RttEstimator().rto()

    def test_rejects_nonpositive_sample(self):
        with pytest.raises(ValueError):
            RttEstimator().update(0.0)

    def test_validates_q(self):
        with pytest.raises(ValueError):
            RttEstimator(q=1.0)

    def test_initial_value(self):
        est = RttEstimator(initial=0.3)
        assert est.valid and est.rtt == 0.3


class TestRtoEstimator:
    def test_initial_rto_without_samples(self):
        est = RtoEstimator(min_rto=0.2)
        assert est.rto() == 1.0

    def test_first_sample_initializes_srtt_and_var(self):
        est = RtoEstimator()
        est.update(0.1)
        assert est.srtt == pytest.approx(0.1)
        assert est.rttvar == pytest.approx(0.05)

    def test_rto_floor(self):
        est = RtoEstimator(min_rto=0.2)
        for _ in range(100):
            est.update(0.001)
        assert est.rto() == pytest.approx(0.2)

    def test_rto_responds_to_variance(self):
        stable, jittery = RtoEstimator(), RtoEstimator()
        for i in range(50):
            stable.update(0.1)
            jittery.update(0.05 if i % 2 else 0.25)
        assert jittery.rto() > stable.rto()

    def test_backoff_doubles_and_sample_resets(self):
        est = RtoEstimator(min_rto=0.2)
        est.update(0.3)
        base = est.rto()
        est.backoff()
        assert est.rto() == pytest.approx(2 * base)
        est.backoff()
        assert est.rto() == pytest.approx(4 * base)
        est.update(0.3)
        assert est.rto() == pytest.approx(est.srtt + 4 * est.rttvar, rel=0.01)

    def test_max_rto_cap(self):
        est = RtoEstimator(max_rto=5.0)
        est.update(2.0)
        for _ in range(10):
            est.backoff()
        assert est.rto() == 5.0
